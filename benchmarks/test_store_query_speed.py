"""Benchmark: SqliteRunStore's indexed queries vs the fs directory scan.

The fs backend's ``list``/``find`` are O(N full-JSON-parses) by
construction — every summary costs a complete ``run.json`` parse.  The
SQLite backend answers the same queries from indexed metadata columns
(and the per-seed ``cells`` index for axis filters) without touching a
single payload.  This bench builds one registry of ``N_RUNS``
synthetic runs, presents it through both backends, verifies they
return identical summaries in identical order, and pins the speedup.
"""

import time

import numpy as np
import pytest

from repro.experiments.store import (
    FsRunStore,
    SqliteRunStore,
    compare_runs,
    find_regressions,
)
from repro.experiments.sweep import ScenarioVariant, SweepResult
from repro.metrics.report import PerformanceReport

N_RUNS = 200
SEEDS = (0, 1, 2)
SCHEDULERS = ("minmin", "stga")
VARIANTS = ("psa-1000", "psa-2000")


def _report(scheduler, makespan):
    return PerformanceReport(
        scheduler=scheduler,
        n_jobs=1000,
        makespan=makespan,
        avg_response_time=makespan / 2,
        avg_service_span=makespan / 4,
        slowdown_ratio=2.0,
        n_risk=30,
        n_fail=10,
        n_forced=0,
        total_attempts=1010,
        site_utilization=np.array([50.0, 75.0, 62.5]),
        scheduler_seconds=0.01,
        n_batches=12,
    )


def _synthetic_result(i: int) -> SweepResult:
    return SweepResult(
        variants=tuple(
            ScenarioVariant(name=v, n_jobs=1000) for v in VARIANTS
        ),
        seeds=SEEDS,
        reports={
            v: {
                sched: tuple(
                    _report(sched, 1000.0 + i + 10 * s) for s in SEEDS
                )
                for sched in SCHEDULERS
            }
            for v in VARIANTS
        },
    )


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """One ``N_RUNS``-run registry, presented through both backends."""
    root = tmp_path_factory.mktemp("store-bench")
    fs = FsRunStore(root / "registry")
    sqlite = SqliteRunStore(root / "runs.db")
    for i in range(N_RUNS):
        stored = fs.save(_synthetic_result(i), name=f"run-{i:03d}")
        sqlite.import_fs(stored.path)
    yield fs, sqlite
    sqlite.close()


def _best_of(fn, reps=5):
    """Best-of-N wall time — robust against CI scheduling noise."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_backends_agree_on_the_registry(stores):
    fs, sqlite = stores
    fs_rows = [
        (s.name, s.created_at, s.n_variants, s.n_seeds, s.n_schedulers)
        for s in fs.list()
    ]
    sq_rows = [
        (s.name, s.created_at, s.n_variants, s.n_seeds, s.n_schedulers)
        for s in sqlite.list()
    ]
    assert len(fs_rows) == N_RUNS
    assert fs_rows == sq_rows


def test_sqlite_list_beats_fs_scan(stores):
    fs, sqlite = stores
    fs.list(), sqlite.list()  # warm caches (page cache, sqlite plan)
    fs_s = _best_of(fs.list)
    sq_s = _best_of(sqlite.list)
    speedup = fs_s / sq_s
    print(
        f"\nlist() over {N_RUNS} runs: fs {fs_s * 1e3:.2f} ms, "
        f"sqlite {sq_s * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    # indexed SQL vs 200 full-JSON parses is typically >>10x; 5x keeps
    # the assertion robust on loaded CI machines
    assert speedup > 5.0, f"sqlite list only {speedup:.2f}x faster"


def test_sqlite_axis_find_beats_fs_scan(stores):
    fs, sqlite = stores
    kwargs = dict(variant=VARIANTS[1], scheduler=SCHEDULERS[1])
    assert (
        [s.name for s in fs.find(**kwargs)]
        == [s.name for s in sqlite.find(**kwargs)]
    )
    fs_s = _best_of(lambda: fs.find(**kwargs))
    sq_s = _best_of(lambda: sqlite.find(**kwargs))
    speedup = fs_s / sq_s
    print(
        f"\nfind(variant, scheduler) over {N_RUNS} runs: "
        f"fs {fs_s * 1e3:.2f} ms, sqlite {sq_s * 1e3:.2f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup > 5.0, f"sqlite find only {speedup:.2f}x faster"


def test_regression_gate_over_store_refs(stores):
    """find_regressions on two store-loaded runs: the gate works
    identically through either backend, and catches the planted shift
    (run i's makespans grow with i)."""
    fs, sqlite = stores
    first, last = fs.list()[0].ref, fs.list()[-1].ref
    rows_fs = compare_runs(first, last, store=fs)
    rows_sq = compare_runs("1", str(N_RUNS), store=sqlite)
    assert rows_fs == rows_sq
    regressions = find_regressions(rows_fs, threshold_pct=5.0)
    assert regressions  # +199 on ~1000 with disjoint CIs across seeds
    # makespan regresses, and avg_response_time with it (it is
    # makespan/2 in the synthetic reports); the constant metrics don't
    assert {r.metric for r in regressions} == {
        "makespan",
        "avg_response_time",
    }
