"""Figure 7(b) — STGA makespan vs the GA iteration budget.

Paper claims (PSA, N = 1000): the makespan fluctuates below ~25
iterations, starts converging around 40, and is flat after ~50 — so
100 iterations is a safe online budget.

Shape assertions: the makespan at a generous budget (>= 50) is within
a few percent of the best over the whole grid, and large budgets do
not beat it meaningfully (the curve has flattened).  We also check the
per-batch convergence directly: the GA's tracked best-so-far fitness
stops improving well before the full budget on the vast majority of
batches.
"""

import numpy as np
from dataclasses import replace

from benchmarks.conftest import run_once
from repro.experiments.fig7 import stga_iteration_sweep
from repro.util.tables import render_table

GRID = (0, 10, 25, 50, 100, 150)


def test_fig7b_iteration_sweep(benchmark, settings, scale):
    # The sweep itself re-runs the whole simulation per budget, so the
    # GA early-stop must be off to honour the exact budget.
    cfg = replace(settings, ga=replace(settings.ga, stall_generations=None))

    result = run_once(
        benchmark,
        stga_iteration_sweep,
        n_jobs=1000,
        scale=scale,
        generations=GRID,
        settings=cfg,
    )

    print()
    print(render_table(
        ["generations", "STGA makespan"],
        list(zip(result.generations.tolist(), result.makespan.tolist())),
        title=(
            "Figure 7(b): STGA makespan vs iterations (PSA; paper: "
            "converges by ~50)"
        ),
    ))

    best = result.makespan.min()
    by_gen = dict(zip(result.generations.tolist(), result.makespan.tolist()))
    # converged by 50 generations: within 5% of the grid optimum
    assert by_gen[50] <= best * 1.05, "not converged by 50 generations"
    # flat beyond 50: tripling the budget buys < 5%
    assert by_gen[150] >= by_gen[50] * 0.95, "still improving after 50"
    print(f"converged_after (1% tol): {result.converged_after()} generations")
