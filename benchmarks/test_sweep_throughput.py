"""Benchmark: replication-sweep fan-out, determinism and throughput.

The acceptance contract of the sweep subsystem: a >= 3-seed sweep
produces per-seed reports (and therefore mean ± std summaries)
*identical* to sequential ``run_lineup`` calls driven by the same
``RngFactory`` streams — the ProcessPoolExecutor fan-out changes
wall-clock time only.  The bench checks that for both the sequential
in-process fallback (``max_workers=1``) and a real 2-worker pool, and
prints the achieved replication throughput.
"""

import time
from dataclasses import replace

import numpy as np

from repro.core.ga import GAConfig
from repro.experiments.config import RunSettings
from repro.experiments.runner import run_lineup, scale_jobs
from repro.experiments.sweep import (
    SWEEP_METRICS,
    job_scaling_variants,
    run_sweep,
    seed_list,
)
from repro.util.stats import t_critical
from repro.workloads.psa import PSAConfig, psa_scenario

SEEDS = seed_list(3, base_seed=11)  # >= 3 seeds per the acceptance bar
SCALE = 0.1
N_JOBS, N_TRAIN = 120, 100
SETTINGS = RunSettings(
    ga=GAConfig(population_size=24, generations=6, flow_weight=1.0)
)


def sequential_reference():
    """Direct run_lineup calls with the sweep's RngFactory streams."""
    per_seed = []
    for seed in SEEDS:
        scenario = psa_scenario(
            PSAConfig(n_jobs=scale_jobs(N_JOBS, SCALE)), rng=seed
        )
        training = psa_scenario(
            PSAConfig(n_jobs=scale_jobs(N_TRAIN, SCALE)), rng=seed + 7919
        )
        per_seed.append(
            run_lineup(scenario, training, replace(SETTINGS, seed=seed))
        )
    return per_seed

def _assert_cells_match(sweep_result, reference_per_seed):
    vname = sweep_result.variants[0].name
    for i, reports in enumerate(reference_per_seed):
        for rep in reports:
            got = sweep_result.cell(vname, rep.scheduler)[i]
            for metric in SWEEP_METRICS:
                assert getattr(got, metric) == getattr(rep, metric), (
                    rep.scheduler,
                    metric,
                )


def test_sweep_per_seed_identical_to_sequential_lineups():
    variants = job_scaling_variants([N_JOBS], n_training_jobs=N_TRAIN)
    reference = sequential_reference()

    t0 = time.perf_counter()
    seq = run_sweep(
        variants, SEEDS, settings=SETTINGS, scale=SCALE, max_workers=1
    )
    seq_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    par = run_sweep(
        variants, SEEDS, settings=SETTINGS, scale=SCALE, max_workers=2
    )
    par_s = time.perf_counter() - t0

    _assert_cells_match(seq, reference)
    _assert_cells_match(par, reference)

    # mean/std summaries therefore agree bit for bit as well
    vname = variants[0].name
    for sched in seq.schedulers():
        for metric in SWEEP_METRICS:
            a = seq.summary(vname, sched, metric)
            b = par.summary(vname, sched, metric)
            assert a.values == b.values
            assert a.mean == b.mean and a.std == b.std

    n_runs = len(SEEDS)
    print(
        f"\nsweep throughput ({n_runs} replications x "
        f"{len(seq.schedulers())} schedulers): "
        f"sequential {seq_s:.2f}s ({n_runs / seq_s:.2f} rep/s), "
        f"2 workers {par_s:.2f}s ({n_runs / par_s:.2f} rep/s)"
    )


def test_sweep_summaries_are_finite_and_ordered():
    """Sanity on the aggregation itself at >= 3 seeds."""
    # sizes chosen so scale_jobs' 20-job floor keeps them distinct
    variants = job_scaling_variants([200, 600], n_training_jobs=N_TRAIN)
    res = run_sweep(
        variants, SEEDS, settings=SETTINGS, scale=SCALE, max_workers=1
    )
    for v in variants:
        for sched in res.schedulers():
            s = res.summary(v.name, sched, "makespan")
            assert s.n == len(SEEDS)
            assert np.isfinite(s.mean) and s.std >= 0
            assert s.ci95 == t_critical(s.n - 1) * s.std / np.sqrt(s.n)
    # more jobs -> larger mean makespan for every scheduler
    for sched in res.schedulers():
        small = res.summary(variants[0].name, sched, "makespan").mean
        big = res.summary(variants[1].name, sched, "makespan").mean
        assert big > small
