"""Figure 7(a) — makespan of the f-risky heuristics vs the risk level f.

Paper claims (PSA, N = 1000): both curves are concave with interior
minima around f = 0.5 (Min-Min) / 0.6 (Sufferage); the optimum lies in
0.5-0.6, justifying f = 0.5 everywhere else.

Shape assertions here: an interior f beats *both* endpoints (f = 0 is
the secure mode, f = 1 the risky mode) on the seed ensemble, and the
best f is not at the secure end.
"""

import numpy as np

from benchmarks.conftest import ENSEMBLE_SEEDS, run_once
from dataclasses import replace

from repro.experiments.fig7 import frisky_makespan_sweep
from repro.util.tables import render_table

F_GRID = (0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0)


def test_fig7a_frisky_sweep(benchmark, settings, scale):
    def experiment():
        mm = np.zeros(len(F_GRID))
        sf = np.zeros(len(F_GRID))
        for seed in ENSEMBLE_SEEDS:
            res = frisky_makespan_sweep(
                n_jobs=1000,
                scale=scale,
                f_values=F_GRID,
                settings=replace(settings, seed=seed),
            )
            mm += res.minmin_makespan
            sf += res.sufferage_makespan
        return mm / len(ENSEMBLE_SEEDS), sf / len(ENSEMBLE_SEEDS)

    mm, sf = run_once(benchmark, experiment)

    print()
    print(render_table(
        ["f", "Min-Min f-Risky", "Sufferage f-Risky"],
        [[f, a, b] for f, a, b in zip(F_GRID, mm, sf)],
        title=(
            "Figure 7(a): makespan vs f (PSA, ensemble mean; paper: "
            "concave, min at f=0.5-0.6)"
        ),
    ))

    for series, label in ((mm, "Min-Min"), (sf, "Sufferage")):
        interior_best = series[1:-1].min()
        # An intermediate risk level beats the fully secure endpoint...
        assert interior_best < series[0], (
            f"{label}: no interior f beats the secure endpoint"
        )
        # ...and does not lose to the fully risky endpoint.
        assert interior_best <= series[-1] * 1.02, (
            f"{label}: interior minimum loses to the risky endpoint"
        )
        best_f = F_GRID[int(np.argmin(series))]
        assert best_f > 0.0, f"{label}: best f is the secure endpoint"
        print(f"{label}: best f = {best_f} "
              f"(paper: 0.5-0.6), secure/interior ratio = "
              f"{series[0] / interior_best:.3f}")
