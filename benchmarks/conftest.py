"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure (see DESIGN.md §5)
at a scaled-down workload size controlled by the ``REPRO_SCALE``
environment variable (default ~5 % of paper scale; ``REPRO_SCALE=1``
reproduces the full runs).  Each bench

* prints the regenerated rows/series next to the paper's values, and
* asserts the paper's *shape* claims (who wins, roughly by how much,
  where crossovers fall) — never absolute numbers.

Because single simulation runs are noisy (heavy-tailed job sizes plus
stochastic failures), shape assertions are made on small seed
ensembles where it matters.
"""

from __future__ import annotations

import pytest

from repro.core.ga import GAConfig
from repro.experiments.config import PaperDefaults, RunSettings, bench_scale

#: seeds used for ensemble-averaged shape assertions
ENSEMBLE_SEEDS = (1, 7, 2005)


@pytest.fixture(scope="session")
def scale() -> float:
    """Workload scale factor (1.0 = paper size)."""
    return bench_scale(0.05)


@pytest.fixture(scope="session")
def bench_ga(scale) -> GAConfig:
    """GA budget for benches: paper operators, reduced population and
    early stop so CI-scale runs stay fast; REPRO_SCALE=1 restores the
    full Table 1 budget."""
    if scale >= 0.5:
        return PaperDefaults().ga_config(flow_weight=1.0)
    return GAConfig(
        population_size=100,
        generations=50,
        stall_generations=15,
        flow_weight=1.0,
    )


@pytest.fixture(scope="session")
def settings(bench_ga) -> RunSettings:
    """Engine settings shared by all benches."""
    return RunSettings(batch_interval=2000.0, seed=2005, ga=bench_ga)


@pytest.fixture(scope="session")
def nas_ensemble(settings, scale):
    """NAS experiment results for the seed ensemble (computed once;
    shared by the Figure 8, Figure 9 and Table 2 benches)."""
    from dataclasses import replace

    from repro.experiments.fig8 import nas_experiment

    return [
        nas_experiment(scale=scale, settings=replace(settings, seed=seed))
        for seed in ENSEMBLE_SEEDS
    ]


def ensemble_mean(results, name, metric):
    """Mean of one scheduler's metric across an ensemble."""
    import numpy as np

    return float(
        np.mean([getattr(r.by_name()[name], metric) for r in results])
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark.

    These experiments take seconds to minutes; statistical timing
    comes from pytest-benchmark's single round, and the *result* is
    what the bench asserts on.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
