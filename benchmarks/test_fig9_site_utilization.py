"""Figure 9 — per-site utilization on the NAS workload.

Paper claims:

* secure mode is unbalanced: several low-security sites are never used
  (3 of 12 idle in the paper), others run >95 %;
* f-risky uses more sites than secure (2 idle in the paper);
* risky and the STGA leave no site idle, and the STGA has the most
  balanced utilization of all.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig9 import utilization_panels


def test_fig9_site_utilization(benchmark, nas_ensemble):
    panels_per_seed = run_once(
        benchmark, lambda: [utilization_panels(r) for r in nas_ensemble]
    )

    # Print the first seed's three panels (paper layout).
    for panel in panels_per_seed[0]:
        print()
        print(panel.render())

    idle = {"secure": [], "f-risky": [], "risky": [], "stga": []}
    balance = {"secure": [], "risky": [], "stga": []}
    for (a, b, c) in panels_per_seed:
        for panel, prefix in ((a, "Min-Min"), (b, "Sufferage")):
            idle["secure"].append(panel.idle_sites(f"{prefix} Secure"))
            idle["f-risky"].append(panel.idle_sites(f"{prefix} f-Risky(f=0.5)"))
            idle["risky"].append(panel.idle_sites(f"{prefix} Risky"))
            balance["secure"].append(panel.balance(f"{prefix} Secure"))
            balance["risky"].append(panel.balance(f"{prefix} Risky"))
        idle["stga"].append(c.idle_sites("STGA"))
        balance["stga"].append(c.balance("STGA"))

    mean_idle = {k: float(np.mean(v)) for k, v in idle.items()}
    mean_balance = {k: float(np.mean(v)) for k, v in balance.items()}
    print(f"\nmean idle sites: {mean_idle}")
    print(f"mean utilization std-dev (balance): {mean_balance}")

    # Secure leaves sites idle; risky/STGA leave none.
    assert mean_idle["secure"] >= 1.0, (
        "secure mode should leave low-SL sites unused"
    )
    assert mean_idle["f-risky"] <= mean_idle["secure"]
    assert mean_idle["risky"] < 0.5
    assert mean_idle["stga"] < 0.5

    # STGA is the most balanced (lowest cross-site std dev).
    assert mean_balance["stga"] <= mean_balance["secure"]
    assert mean_balance["stga"] <= mean_balance["risky"] * 1.1

    print("paper: secure idles 3/12 sites, risky/STGA idle none, "
          "STGA most balanced — measured shape matches" )
