"""Figure 10 — scaling the PSA workload size N.

Paper claims (PSA, N in {1000, 2000, 5000, 10000}; Min-Min f-risky,
Sufferage f-risky and STGA, the three best performers):

* all metrics grow monotonically with N;
* the STGA leads throughout (~6 % makespan, bigger margins on
  slowdown/response in the paper);
* the two f-risky heuristics are nearly indistinguishable (<~1 %).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig10 import psa_scaling_experiment
from repro.util.tables import render_table

MM = "Min-Min f-Risky(f=0.5)"
SF = "Sufferage f-Risky(f=0.5)"


def test_fig10_psa_scaling(benchmark, settings, scale):
    from dataclasses import replace

    from benchmarks.conftest import ENSEMBLE_SEEDS

    def experiment():
        return [
            psa_scaling_experiment(
                n_values=(1000, 2000, 5000, 10000),
                scale=scale,
                settings=replace(settings, seed=seed),
            )
            for seed in ENSEMBLE_SEEDS
        ]

    results = run_once(benchmark, experiment)
    result = results[0]  # printed series: first seed

    for metric in ("makespan", "avg_response_time", "slowdown_ratio",
                   "n_fail", "n_risk"):
        print()
        rows = [
            [n, *(result.series(name, metric)[i]
                  for name in (MM, SF, "STGA"))]
            for i, n in enumerate(result.n_values)
        ]
        print(render_table(
            ["N", MM, SF, "STGA"], rows,
            title=f"Figure 10: {metric} vs N (PSA)",
        ))

    # Monotone growth with N for the load-driven metrics (ensemble
    # mean smooths single-run noise).
    def mean_series(name, metric):
        return np.mean([r.series(name, metric) for r in results], axis=0)

    for name in (MM, SF, "STGA"):
        for metric in ("makespan", "avg_response_time"):
            series = mean_series(name, metric)
            assert (np.diff(series) > 0).all(), (
                f"{name} {metric} not increasing with N"
            )

    # The two f-risky heuristics stay close (paper: within ~1%; we
    # allow more at reduced scale).
    mm_ms = mean_series(MM, "makespan")
    sf_ms = mean_series(SF, "makespan")
    assert (np.abs(mm_ms - sf_ms) / mm_ms < 0.25).all()

    # STGA leads overall: geometric-mean makespan ratio <= 1, and it
    # wins at the largest N (where averaging effects dominate noise).
    ratios = mean_series("STGA", "makespan") / np.minimum(mm_ms, sf_ms)
    gmean = float(np.exp(np.log(ratios).mean()))
    print(f"\nSTGA/best-heuristic makespan ratio per N (ensemble): "
          f"{np.round(ratios, 3).tolist()} (geometric mean {gmean:.3f})")
    assert gmean <= 1.03, "STGA not leading the PSA scaling study"
    assert ratios[-1] <= 1.03, "STGA loses at the largest N"
