"""Figure 5 (concept) — STGA vs the conventional GA.

The paper's Figure 5 argues the STGA's seeded initial population
starts closer to convergence than a conventional GA's random one.  We
quantify exactly that: identical GA configuration, with and without
the history table (plus heuristic seeding), on the same PSA stream.

Assertions: the STGA's mean initial-population fitness is strictly
better, its history table actually hits, and its end-to-end makespan
is no worse.
"""

from dataclasses import replace

import numpy as np

from benchmarks.conftest import ENSEMBLE_SEEDS, run_once
from repro.experiments.ablation import stga_vs_conventional
from repro.util.tables import render_table


def test_stga_vs_conventional_ga(benchmark, settings, scale):
    def experiment():
        return [
            stga_vs_conventional(
                n_jobs=1000,
                scale=scale,
                settings=replace(settings, seed=seed),
            )
            for seed in ENSEMBLE_SEEDS
        ]

    results = run_once(benchmark, experiment)

    stga_ms = np.mean([r.stga.makespan for r in results])
    conv_ms = np.mean([r.conventional.makespan for r in results])
    stga_init = np.mean([r.stga_initial_mean for r in results])
    conv_init = np.mean([r.conventional_initial_mean for r in results])
    hit = np.mean([r.stga_history_hit_rate for r in results])

    print()
    print(render_table(
        ["GA variant", "makespan", "avg_response", "mean initial fitness"],
        [
            ["STGA", stga_ms,
             np.mean([r.stga.avg_response_time for r in results]),
             stga_init],
            ["conventional GA", conv_ms,
             np.mean([r.conventional.avg_response_time for r in results]),
             conv_init],
        ],
        title=(
            "Figure 5 concept (ensemble mean): seeded vs random "
            "initial population"
        ),
    ))
    print(f"STGA history hit rate: {hit:.1%}")

    # The whole point of the 'time' dimension: seeded populations
    # start fitter, the table actually hits, and end-to-end quality
    # does not regress.
    assert stga_init < conv_init, (
        "STGA's seeded initial population should start fitter"
    )
    assert hit > 0.0, "history table never hit"
    assert stga_ms <= conv_ms * 1.10
