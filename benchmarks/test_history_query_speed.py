"""Benchmark: vectorised HistoryTable.query vs the seed's Python loop.

The STGA queries its lookup table on *every* scheduling event, so at
the paper's capacity of 150 the seed implementation paid 150
Python-level ``batch_similarity`` calls (450 ``vector_similarity``
calls) per event.  The vectorised query stacks same-shape entries and
scores them in one numpy pass; this bench pins both the exactness
(same scores, same order) and the speedup at capacity 150.
"""

import time

import numpy as np

from repro.core.history import HistoryTable
from repro.core.similarity import batch_similarity

CAPACITY = 150
B, S = 40, 12  # jobs x sites per stored batch, a realistic NAS batch


def loop_query_scores(table, ready, etc, sds):
    """The seed implementation's scoring loop, kept as the reference."""
    scored = []
    for key, entry in table._entries.items():
        if entry.shape != etc.shape:
            continue
        sim = batch_similarity(
            entry.ready,
            entry.etc,
            entry.security_demands,
            ready,
            etc,
            sds,
            normalized=table.normalized,
        )
        if sim >= table.threshold:
            scored.append((sim, key))
    scored.sort(key=lambda t: (-t[0], t[1]))
    return scored


def full_table(seed=0):
    rng = np.random.default_rng(seed)
    table = HistoryTable(capacity=CAPACITY, threshold=0.8, eviction="fifo")
    base_ready = rng.uniform(0, 1000, size=S)
    base_etc = rng.uniform(10, 5000, size=(B, S))
    base_sd = rng.uniform(0.6, 0.9, size=B)
    for _ in range(CAPACITY):
        jitter = rng.uniform(0.97, 1.03)
        table.insert(
            base_ready * jitter,
            base_etc * jitter,
            np.clip(base_sd * jitter, 0.6, 0.9),
            rng.integers(0, S, size=B),
        )
    return table, base_ready, base_etc, base_sd


def test_vectorized_query_matches_loop_exactly():
    table, ready, etc, sds = full_table()
    expected = loop_query_scores(table, ready, etc, sds)
    assert len(expected) > CAPACITY // 2  # the jittered entries do match

    # reach into the scoring path: query() returns assignments in
    # score order, and the keys must match the reference ordering
    results = table.query(ready, etc, sds)
    assert len(results) == len(expected)
    for (sim, key), assignment in zip(expected, results):
        np.testing.assert_array_equal(
            assignment, table._entries[key].assignment
        )


def test_vectorized_query_beats_loop_at_capacity_150():
    table, ready, etc, sds = full_table()
    reps = 30

    # warm both paths (stack build, numpy caches)
    table.query(ready, etc, sds)
    loop_query_scores(table, ready, etc, sds)

    t0 = time.perf_counter()
    for _ in range(reps):
        loop_query_scores(table, ready, etc, sds)
    loop_s = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        table.query(ready, etc, sds)
    vec_s = (time.perf_counter() - t0) / reps

    speedup = loop_s / vec_s
    print(
        f"\nHistoryTable.query at capacity {CAPACITY} ({B}x{S} batches): "
        f"loop {loop_s * 1e3:.3f} ms, vectorized {vec_s * 1e3:.3f} ms, "
        f"speedup {speedup:.1f}x"
    )
    # The one-pass kernel is typically >10x faster; 2x keeps the
    # assertion robust on loaded CI machines.
    assert speedup > 2.0, f"vectorized query only {speedup:.2f}x faster"


def test_query_returns_stored_arrays_without_copying():
    """The last per-match allocation: query used to ``.copy()`` every
    returned assignment (up to ``max_results`` copies per scheduling
    event).  Pin the fix — results ARE the stored arrays, frozen
    read-only so callers cannot corrupt the table through them."""
    table, ready, etc, sds = full_table()
    results = table.query(ready, etc, sds)
    assert len(results) > CAPACITY // 2
    stored = {id(e.assignment) for e in table._entries.values()}
    for out in results:
        assert id(out) in stored, "query copied an assignment"
        assert not out.flags.writeable


def test_stacks_survive_match_heavy_churn():
    """At capacity, an evict+insert of matching shape overwrites the
    victim's row in place: the cached stack arrays must stay the *same
    objects* (no rebuild), and queries must keep returning exactly
    what a from-scratch scoring loop returns."""
    rng = np.random.default_rng(7)
    table, ready, etc, sds = full_table(seed=7)
    table.eviction = "lru"  # matches refresh recency, the paper setup
    block = table._blocks[(B, S)]

    table.query(ready, etc, sds)  # builds the stacks
    stacks_before = block.stacks()
    for _ in range(20):
        # matching query (refreshes LRU order), then an insert that
        # evicts one same-shape entry
        assert table.query(ready, etc, sds)
        table.insert(
            ready * rng.uniform(0.97, 1.03),
            etc * rng.uniform(0.97, 1.03),
            sds,
            rng.integers(0, S, size=B),
        )
        assert len(table) == CAPACITY
    stacks_after = block.stacks()
    for before, after in zip(stacks_before, stacks_after):
        assert before is after, "churn rebuilt the stacked block"

    # in-place rows stayed exact: the vectorised scores still equal
    # the reference loop's, in the same order
    expected = loop_query_scores(table, ready, etc, sds)
    results = table.query(ready, etc, sds)
    assert len(results) == len(expected)
    for (_, key), assignment in zip(expected, results):
        np.testing.assert_array_equal(
            assignment, table._entries[key].assignment
        )


def test_mixed_shape_insert_still_invalidates():
    """A shape change (or multi-eviction) falls back to the rebuild
    path — correctness over cleverness outside the steady state."""
    table, ready, etc, sds = full_table(seed=3)
    block = table._blocks[(B, S)]
    table.query(ready, etc, sds)
    assert block._stacks is not None

    # different shape: new block, old block loses its evicted row
    rng = np.random.default_rng(3)
    table.insert(
        rng.uniform(0, 1000, size=S),
        rng.uniform(10, 5000, size=(B + 1, S)),
        rng.uniform(0.6, 0.9, size=B + 1),
        rng.integers(0, S, size=B + 1),
    )
    assert len(block) == CAPACITY - 1
    assert block._stacks is None  # row removal invalidated, as it must
    expected = loop_query_scores(table, ready, etc, sds)
    results = table.query(ready, etc, sds)
    assert len(results) == len(expected)


def test_match_churn_query_stays_fast_at_capacity():
    """The STGA's steady state: every event inserts (evicting) and
    queries with many matches.  With in-place row replacement the
    vectorised path pays no per-event restack; pin a comfortable win
    over the reference loop under exactly that access pattern."""
    rng = np.random.default_rng(11)
    table, ready, etc, sds = full_table(seed=11)
    table.eviction = "lru"
    reps = 30

    def churn_vec():
        table.insert(
            ready * rng.uniform(0.97, 1.03),
            etc * rng.uniform(0.97, 1.03),
            sds,
            rng.integers(0, S, size=B),
        )
        return table.query(ready, etc, sds)

    def churn_loop():
        table.insert(
            ready * rng.uniform(0.97, 1.03),
            etc * rng.uniform(0.97, 1.03),
            sds,
            rng.integers(0, S, size=B),
        )
        return loop_query_scores(table, ready, etc, sds)

    churn_vec(), churn_loop()  # warm-up
    t0 = time.perf_counter()
    for _ in range(reps):
        churn_loop()
    loop_s = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        churn_vec()
    vec_s = (time.perf_counter() - t0) / reps

    speedup = loop_s / vec_s
    print(f"\nmatch-heavy LRU churn speedup: {speedup:.1f}x")
    assert speedup > 2.0, f"match-churn query only {speedup:.2f}x faster"


def test_vectorized_query_beats_loop_with_insert_churn():
    """STGA's real access pattern: insert-then-query every event, so
    the stacks are rebuilt each time.  The vectorised path must still
    win with that rebuild cost included."""
    rng = np.random.default_rng(1)
    table, ready, etc, sds = full_table(seed=1)
    reps = 30

    def churn_query():
        table.insert(
            ready * rng.uniform(0.97, 1.03),
            etc * rng.uniform(0.97, 1.03),
            sds,
            rng.integers(0, S, size=B),
        )
        return table.query(ready, etc, sds)

    def churn_loop():
        table.insert(
            ready * rng.uniform(0.97, 1.03),
            etc * rng.uniform(0.97, 1.03),
            sds,
            rng.integers(0, S, size=B),
        )
        return loop_query_scores(table, ready, etc, sds)

    churn_query(), churn_loop()  # warm-up
    t0 = time.perf_counter()
    for _ in range(reps):
        churn_loop()
    loop_s = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        churn_query()
    vec_s = (time.perf_counter() - t0) / reps

    speedup = loop_s / vec_s
    print(f"\ninsert+query churn speedup: {speedup:.1f}x")
    assert speedup > 1.5, f"churned query only {speedup:.2f}x faster"
