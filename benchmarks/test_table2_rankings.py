"""Table 2 — global alpha/beta comparison and ranking on NAS.

Paper values: secure alpha~1.31 / beta~2.0 (4th), f-risky alpha~1.16-1.18 /
beta~1.44-1.56 (3rd), risky alpha~1.09-1.10 / beta~1.26-1.28 (2nd),
STGA 1.000/1.000 (1st).

Shape assertions (ensemble means): STGA ranks first; every alpha and
beta >= ~1; the secure modes have the largest alpha AND beta; beta of
secure ~= 2x (paper: 2.0-2.04).
"""

import numpy as np

from benchmarks.conftest import ENSEMBLE_SEEDS, run_once
from repro.experiments.table2 import PAPER_TABLE2, render_table2, table2_rows
from repro.util.tables import render_table


def test_table2_rankings(benchmark, nas_ensemble):
    rows_per_seed = run_once(
        benchmark, lambda: [table2_rows(r) for r in nas_ensemble]
    )

    # Ensemble-mean alpha/beta per scheduler.
    names = [r.scheduler for r in rows_per_seed[0]]
    alpha = {n: [] for n in names}
    beta = {n: [] for n in names}
    for rows in rows_per_seed:
        for r in rows:
            alpha[r.scheduler].append(r.alpha)
            beta[r.scheduler].append(r.beta)
    mean_a = {n: float(np.mean(v)) for n, v in alpha.items()}
    mean_b = {n: float(np.mean(v)) for n, v in beta.items()}

    print()
    print(render_table(
        ["Heuristics", "alpha (measured)", "beta (measured)",
         "alpha (paper)", "beta (paper)", "paper rank"],
        [
            [n, mean_a[n], mean_b[n], *PAPER_TABLE2[n][:2], PAPER_TABLE2[n][2]]
            for n in names
        ],
        title=(
            f"Table 2 (ensemble mean over seeds {ENSEMBLE_SEEDS}) "
            "vs paper"
        ),
    ))
    print()
    print(render_table2(nas_ensemble[0]))

    # STGA is the reference and the winner.
    assert mean_a["STGA"] == 1.0 and mean_b["STGA"] == 1.0
    for n in names:
        if n == "STGA":
            continue
        # nobody decisively beats the STGA on either ratio
        assert mean_a[n] >= 0.98, f"{n} beat STGA on makespan"
    # secure modes carry the largest alpha and beta, as in the paper
    secure_names = [n for n in names if "Secure" in n]
    others = [n for n in names if "Secure" not in n and n != "STGA"]
    worst_other_a = max(mean_a[n] for n in others)
    worst_other_b = max(mean_b[n] for n in others)
    for n in secure_names:
        assert mean_a[n] >= worst_other_a - 0.02
        assert mean_b[n] > worst_other_b, (
            "secure beta should be the largest (paper: ~2.0)"
        )
        assert mean_b[n] > 1.5, "secure beta should approach the paper's ~2x"

    # Measured ranking: STGA first on the ensemble mean (alpha+beta
    # score), and never worse than a close second in any single seed.
    mean_score = {n: mean_a[n] + mean_b[n] for n in names}
    assert mean_score["STGA"] <= min(mean_score.values()) + 1e-9, (
        "STGA is not the ensemble-mean winner"
    )
    for rows in rows_per_seed:
        stga_rank = next(r.rank for r in rows if r.scheduler == "STGA")
        assert stga_rank <= 2, "STGA fell below 2nd place in a seed"
