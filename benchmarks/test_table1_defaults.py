"""Table 1 — simulation parameters.

Not a timing benchmark in the usual sense: this regenerates Table 1
from the library's actual defaults and asserts they match the paper
verbatim, so any drift in generator or GA defaults breaks the
reproduction loudly.
"""

from repro.core.ga import GAConfig
from repro.core.history import HistoryTable
from repro.experiments.config import PaperDefaults
from repro.util.tables import render_table
from repro.workloads.nas import NASConfig
from repro.workloads.psa import PSAConfig


def test_table1_defaults(benchmark):
    d = benchmark.pedantic(PaperDefaults, rounds=1, iterations=1)
    psa, nas, ga, table = PSAConfig(), NASConfig(), GAConfig(), HistoryTable()

    rows = [
        ["Number of jobs", f"NAS: {nas.n_jobs}; PSA: {psa.n_jobs}",
         "NAS: 16000; PSA: 5000"],
        ["Number of sites", f"NAS: {len(nas.site_nodes)}; PSA: {psa.n_sites}",
         "NAS: 12; PSA: 20"],
        ["Job arrival rate (PSA)", f"{psa.arrival_rate}", "0.008"],
        ["Job workloads (PSA)",
         f"{psa.n_workload_levels} levels (0-{psa.max_workload:g}) "
         "[calibrated; see DESIGN.md #3]",
         "20 levels (0-300000)"],
        ["Site processing speed",
         f"NAS: {nas.site_nodes.count(8)}x8 and {nas.site_nodes.count(16)}x16"
         f" nodes; PSA: {psa.n_speed_levels} levels",
         "NAS: 8x8 and 4x16 nodes; PSA: 10 levels"],
        ["Site security level", f"{psa.sl_range}", "(0.4, 1.0) uniform"],
        ["Job security demand", f"{psa.sd_range}", "(0.6, 0.9) uniform"],
        ["Number of generations", f"{ga.generations}", "100"],
        ["Initial population size", f"{ga.population_size}", "200"],
        ["Crossover probability", f"{ga.crossover_prob}", "0.8"],
        ["Mutation probability", f"{ga.mutation_prob}", "0.01"],
        ["Lookup table size", f"{table.capacity}", "150"],
        ["Number of training jobs", f"{d.n_training_jobs}", "500"],
        ["Similarity threshold", f"{table.threshold}", "0.8"],
    ]
    print()
    print(render_table(["Parameter", "library default", "paper (Table 1)"],
                       rows, title="Table 1: simulation parameters"))

    # Hard assertions: library defaults == Table 1.
    assert nas.n_jobs == 16_000 and psa.n_jobs == 5_000
    assert len(nas.site_nodes) == 12 and psa.n_sites == 20
    assert psa.arrival_rate == 0.008
    assert psa.n_workload_levels == 20
    # Table 1 prints 300000; the paper's own makespans imply 30000.
    assert d.psa_max_workload_printed == 300_000.0
    assert psa.max_workload == 30_000.0
    assert sorted(nas.site_nodes, reverse=True)[:4] == [16] * 4
    assert psa.n_speed_levels == 10
    assert psa.sl_range == (0.4, 1.0) and psa.sd_range == (0.6, 0.9)
    assert ga.generations == 100 and ga.population_size == 200
    assert ga.crossover_prob == 0.8 and ga.mutation_prob == 0.01
    assert table.capacity == 150 and table.threshold == 0.8
    assert d.n_training_jobs == 500 and d.f_risky == 0.5
