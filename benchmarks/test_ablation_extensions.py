"""Ablation benches for the library's extensions beyond the paper.

* island-model GA (coarse-grained parallel STGA) vs the single-deme
  STGA at an identical total population/generation budget;
* Duplex (best of Min-Min/Max-Min) vs its members;
* alternative failure laws (Weibull / step / linear) driving the same
  risky Min-Min schedule — quantifying how much the unspecified
  failure model shapes the headline metrics.
"""

from dataclasses import replace

import numpy as np

from benchmarks.conftest import ENSEMBLE_SEEDS, run_once
from repro.core.islands import IslandConfig, IslandSTGAScheduler
from repro.experiments.runner import (
    make_trained_stga,
    run_scheduler,
    scale_jobs,
)
from repro.grid.engine import GridSimulator
from repro.grid.reliability import (
    ExponentialFailure,
    LinearFailure,
    StepFailure,
    WeibullFailure,
)
from repro.heuristics.duplex import DuplexScheduler
from repro.heuristics.maxmin import MaxMinScheduler
from repro.heuristics.minmin import MinMinScheduler
from repro.metrics.report import evaluate
from repro.util.rng import RngFactory
from repro.util.tables import render_table
from repro.workloads.psa import PSAConfig, psa_scenario


def test_island_stga(benchmark, settings, scale):
    def experiment():
        rows = []
        for seed in ENSEMBLE_SEEDS:
            s = replace(settings, seed=seed)
            n = scale_jobs(1000, scale)
            sc = psa_scenario(PSAConfig(n_jobs=n), rng=seed)
            tr = psa_scenario(
                PSAConfig(n_jobs=scale_jobs(500, scale)), rng=seed + 7919
            )
            stga = make_trained_stga(sc, tr, s)
            island = IslandSTGAScheduler(
                "f-risky",
                config=s.ga,
                islands=IslandConfig(n_islands=4, migration_interval=10),
                rng=RngFactory(seed).stream("island"),
                history=make_trained_stga(sc, tr, s).history,
            )
            rows.append(
                (
                    run_scheduler(sc, stga, s).makespan,
                    run_scheduler(sc, island, s).makespan,
                )
            )
        return np.array(rows)

    rows = run_once(benchmark, experiment)
    stga_ms, island_ms = rows[:, 0].mean(), rows[:, 1].mean()
    print()
    print(render_table(
        ["variant", "mean makespan"],
        [["STGA (single deme)", stga_ms],
         ["Island-STGA (4 demes)", island_ms]],
        title="Ablation: island-model GA at equal total budget",
    ))
    # Same operators, same budget: quality must be comparable.
    assert island_ms <= stga_ms * 1.10


def test_duplex_heuristic(benchmark, settings, scale):
    def experiment():
        out = {}
        for seed in ENSEMBLE_SEEDS:
            s = replace(settings, seed=seed)
            sc = psa_scenario(
                PSAConfig(n_jobs=scale_jobs(1000, scale)), rng=seed
            )
            for sched in (
                MinMinScheduler("f-risky"),
                MaxMinScheduler("f-risky"),
                DuplexScheduler("f-risky"),
            ):
                rep = run_scheduler(sc, sched, s)
                out.setdefault(sched.name, []).append(rep.makespan)
        return {k: float(np.mean(v)) for k, v in out.items()}

    means = run_once(benchmark, experiment)
    print()
    print(render_table(
        ["heuristic", "mean makespan"],
        [[k, v] for k, v in means.items()],
        title="Ablation: Duplex vs its members (PSA)",
    ))
    dup = means["Duplex f-Risky(f=0.5)"]
    # Duplex hedges per batch; end-to-end it should track the better
    # member closely (failures decorrelate exact equality).
    assert dup <= max(means.values()) * 1.05


def test_failure_laws(benchmark, settings, scale):
    laws = {
        "exponential(3)": ExponentialFailure(lam=3.0),
        "weibull(2, .3)": WeibullFailure(shape=2.0, scale=0.3),
        "step(.1, .8)": StepFailure(tolerance=0.1, p_fail=0.8),
        "linear(1.6)": LinearFailure(slope=1.6, ceiling=0.95),
    }

    def experiment():
        sc = psa_scenario(
            PSAConfig(n_jobs=scale_jobs(1000, scale)), rng=settings.seed
        )
        out = {}
        for name, law in laws.items():
            sim = GridSimulator(
                sc.grid,
                MinMinScheduler("risky", lam=settings.lam),
                batch_interval=settings.batch_interval,
                lam=settings.lam,
                failure_law=law,
                record_attempts=True,
                rng=RngFactory(settings.seed).stream("failure-law"),
            )
            res = sim.run(sc.jobs)
            rep = evaluate(res, name)
            waste = res.attempts.wasted_time() / max(
                res.attempts.total_busy_time(), 1e-12
            )
            out[name] = (rep.makespan, rep.n_fail, waste)
        return out

    out = run_once(benchmark, experiment)
    print()
    print(render_table(
        ["failure law", "makespan", "N_fail", "waste fraction"],
        [[k, v[0], v[1], v[2]] for k, v in out.items()],
        title="Ablation: failure law under risky Min-Min (PSA)",
    ))
    # Every law completes the workload; waste is bounded.
    for name, (ms, n_fail, waste) in out.items():
        assert ms > 0
        assert 0.0 <= waste < 1.0
