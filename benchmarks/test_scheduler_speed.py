"""Scheduler decision-time microbenchmarks.

The paper's pitch is that the STGA is *fast enough for online use*
("very fast and easy to implement"; Section 5 reports low overhead).
These benches time a single scheduling decision on a realistic batch
and let pytest-benchmark do proper statistics — the one place where
wall-clock timing, not schedule quality, is the deliverable.
"""

import numpy as np
import pytest

from repro.core.ga import GAConfig
from repro.core.stga import STGAScheduler
from repro.grid.batch import Batch
from repro.grid.site import Grid
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.sufferage import SufferageScheduler


def make_batch(n_jobs=50, n_sites=20, seed=0):
    rng = np.random.default_rng(seed)
    grid = Grid.from_arrays(
        rng.integers(1, 11, size=n_sites).astype(float),
        rng.uniform(0.4, 1.0, size=n_sites),
    )
    w = rng.choice(15000.0 * np.arange(1, 21), size=n_jobs)
    return Batch(
        now=0.0,
        job_ids=np.arange(n_jobs),
        workloads=w,
        security_demands=rng.uniform(0.6, 0.9, size=n_jobs),
        secure_only=np.zeros(n_jobs, dtype=bool),
        etc=w[:, None] / grid.speeds[None, :],
        ready=rng.uniform(0, 1e4, size=n_sites),
        site_security=grid.security_levels.copy(),
        speeds=grid.speeds.copy(),
    )


@pytest.mark.parametrize("n_jobs", [10, 50, 200])
def test_minmin_decision_time(benchmark, n_jobs):
    batch = make_batch(n_jobs)
    sched = MinMinScheduler("f-risky", f=0.5)
    benchmark(sched.schedule, batch)


@pytest.mark.parametrize("n_jobs", [10, 50, 200])
def test_sufferage_decision_time(benchmark, n_jobs):
    batch = make_batch(n_jobs)
    sched = SufferageScheduler("f-risky", f=0.5)
    benchmark(sched.schedule, batch)


@pytest.mark.parametrize("n_jobs", [10, 50])
def test_stga_decision_time_paper_budget(benchmark, n_jobs):
    """Full Table 1 budget: 200 chromosomes x 100 generations."""
    batch = make_batch(n_jobs)
    sched = STGAScheduler(
        "f-risky",
        config=GAConfig(population_size=200, generations=100,
                        flow_weight=1.0),
        rng=0,
    )
    result = benchmark(sched.schedule, batch)
    assert result.n_assigned == n_jobs


def test_stga_decision_subsecond_at_paper_budget(benchmark):
    """The paper's online-suitability claim: a full-budget STGA
    decision on a 50-job batch stays well under a second."""
    import time

    batch = make_batch(50)
    sched = STGAScheduler(
        "f-risky",
        config=GAConfig(population_size=200, generations=100,
                        flow_weight=1.0),
        rng=0,
    )
    start = time.perf_counter()
    benchmark.pedantic(sched.schedule, args=(batch,), rounds=3, iterations=1)
    elapsed = (time.perf_counter() - start) / 3
    assert elapsed < 1.0, f"STGA decision took {elapsed:.2f}s"
