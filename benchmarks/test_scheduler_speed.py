"""Scheduler decision-time microbenchmarks.

The paper's pitch is that the STGA is *fast enough for online use*
("very fast and easy to implement"; Section 5 reports low overhead).
These benches time a single scheduling decision on a realistic batch
and let pytest-benchmark do proper statistics — the one place where
wall-clock timing, not schedule quality, is the deliverable.
"""

import numpy as np
import pytest

from repro.core.ga import GAConfig
from repro.core.stga import STGAScheduler
from repro.grid.batch import Batch
from repro.grid.site import Grid
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.sufferage import SufferageScheduler


def make_batch(n_jobs=50, n_sites=20, seed=0):
    rng = np.random.default_rng(seed)
    grid = Grid.from_arrays(
        rng.integers(1, 11, size=n_sites).astype(float),
        rng.uniform(0.4, 1.0, size=n_sites),
    )
    w = rng.choice(15000.0 * np.arange(1, 21), size=n_jobs)
    return Batch(
        now=0.0,
        job_ids=np.arange(n_jobs),
        workloads=w,
        security_demands=rng.uniform(0.6, 0.9, size=n_jobs),
        secure_only=np.zeros(n_jobs, dtype=bool),
        etc=w[:, None] / grid.speeds[None, :],
        ready=rng.uniform(0, 1e4, size=n_sites),
        site_security=grid.security_levels.copy(),
        speeds=grid.speeds.copy(),
    )


@pytest.mark.parametrize("n_jobs", [10, 50, 200])
def test_minmin_decision_time(benchmark, n_jobs):
    batch = make_batch(n_jobs)
    sched = MinMinScheduler("f-risky", f=0.5)
    benchmark(sched.schedule, batch)


@pytest.mark.parametrize("n_jobs", [10, 50, 200])
def test_sufferage_decision_time(benchmark, n_jobs):
    batch = make_batch(n_jobs)
    sched = SufferageScheduler("f-risky", f=0.5)
    benchmark(sched.schedule, batch)


@pytest.mark.parametrize("backend", ["reference", "fast"])
@pytest.mark.parametrize("n_jobs", [10, 50])
def test_stga_decision_time_paper_budget(benchmark, n_jobs, backend):
    """Full Table 1 budget: 200 chromosomes x 100 generations."""
    batch = make_batch(n_jobs)
    sched = STGAScheduler(
        "f-risky",
        config=GAConfig(population_size=200, generations=100,
                        flow_weight=1.0),
        rng=0,
        backend=backend,
    )
    result = benchmark(sched.schedule, batch)
    assert result.n_assigned == n_jobs


def test_fast_backend_beats_reference_at_paper_budget():
    """The fast backend's fused kernels vs the reference path, same
    seed, bit-identical output (enforced by tests/test_backend_parity).

    The speedup ceiling here is the bit-identity contract itself:
    mutation must consume two full (P, B) uniform draws per generation
    to stay on the reference RNG stream, which at 200x50 costs ~90us/gen
    of irreducible ``Generator.random`` time.  That caps the end-to-end
    decision speedup near ~2.5x theoretical; measured ~1.6x on one core
    (see docs/PERF.md for the full accounting).  Assert a robust floor
    and print the real number.
    """
    import time

    batch = make_batch(50)
    cfg = GAConfig(population_size=200, generations=100, flow_weight=1.0)
    timings = {}
    for backend in ("reference", "fast"):
        sched = STGAScheduler("f-risky", config=cfg, rng=0, backend=backend)
        sched.schedule(batch)  # warm-up (numpy caches, history insert)
        reps = 3
        t0 = time.perf_counter()
        for _ in range(reps):
            sched.schedule(batch)
        timings[backend] = (time.perf_counter() - t0) / reps

    speedup = timings["reference"] / timings["fast"]
    print(
        f"\nSTGA decision at paper budget (50 jobs x 20 sites, 200x100): "
        f"reference {timings['reference'] * 1e3:.1f} ms, "
        f"fast {timings['fast'] * 1e3:.1f} ms, speedup {speedup:.2f}x"
    )
    # Typically ~1.6x; 1.2x keeps the assertion robust on loaded CI.
    assert speedup > 1.2, f"fast backend only {speedup:.2f}x faster"


def test_stga_decision_subsecond_at_paper_budget(benchmark):
    """The paper's online-suitability claim: a full-budget STGA
    decision on a 50-job batch stays well under a second."""
    import time

    batch = make_batch(50)
    sched = STGAScheduler(
        "f-risky",
        config=GAConfig(population_size=200, generations=100,
                        flow_weight=1.0),
        rng=0,
    )
    start = time.perf_counter()
    benchmark.pedantic(sched.schedule, args=(batch,), rounds=3, iterations=1)
    elapsed = (time.perf_counter() - start) / 3
    assert elapsed < 1.0, f"STGA decision took {elapsed:.2f}s"
