"""Sensitivity benches: batch interval and runtime-estimate error.

* The scheduling period (unspecified in the paper) trades packing
  quality against queueing delay; we print the sweep and assert only
  the mechanical fact that longer periods produce fewer, larger
  batches.
* The §5 future-work question: ETC-driven schedulers degrade smoothly
  with log-normal estimate error, while OLB (which never looks at
  execution times) is exactly noise-immune.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.sensitivity import (
    batch_interval_sweep,
    estimation_error_sweep,
)
from repro.util.tables import render_table


def test_batch_interval(benchmark, settings, scale):
    out = run_once(
        benchmark,
        batch_interval_sweep,
        intervals=(250.0, 1000.0, 4000.0, 16000.0),
        n_jobs=1000,
        scale=scale,
        settings=settings,
    )
    print()
    print(render_table(
        ["interval (s)", "makespan", "avg_response", "batches",
         "mean batch"],
        [
            [i, r.makespan, r.avg_response_time, r.n_batches,
             r.n_jobs / max(r.n_batches, 1)]
            for i, r in out.items()
        ],
        title="Sensitivity: scheduling period (unspecified in paper)",
    ))
    intervals = sorted(out)
    batches = [out[i].n_batches for i in intervals]
    assert all(a >= b for a, b in zip(batches, batches[1:])), (
        "longer periods must produce no more batches"
    )


def test_estimation_error(benchmark, settings, scale):
    out = run_once(
        benchmark,
        estimation_error_sweep,
        sigmas=(0.0, 0.5, 1.0, 2.0),
        n_jobs=1000,
        scale=scale,
        settings=settings,
    )
    sigmas = sorted(out)
    names = list(out[sigmas[0]])
    print()
    print(render_table(
        ["sigma"] + names,
        [[s] + [out[s][n].makespan for n in names] for s in sigmas],
        title="Sensitivity: makespan vs runtime-estimate error "
              "(paper §5 future work)",
    ))

    olb = next(n for n in names if n.startswith("OLB"))
    olb_series = [out[s][olb].makespan for s in sigmas]
    assert len(set(np.round(olb_series, 6))) == 1, "OLB must be immune"

    # Oracle estimates should not lose to heavily corrupted ones for
    # the ETC-driven schedulers (allowing failure-sampling noise).
    for n in names:
        if n == olb:
            continue
        assert out[0.0][n].makespan <= out[2.0][n].makespan * 1.15, (
            f"{n}: oracle ETC lost badly to sigma=2 noise"
        )
