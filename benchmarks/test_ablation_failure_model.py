"""Ablations of the failure model (the parameters the paper leaves
unspecified; DESIGN.md §3).

* λ — the Eq. 1 rate constant (our default 3.0): as λ grows, risky
  placements fail more and the secure mode's *relative* standing
  improves;
* failure point — whether a doomed attempt wastes a uniform fraction
  (default) or its full execution time;
* risk-penalised GA fitness (extension) — inflating ETC by expected
  rework trades failures against makespan.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.ablation import (
    failure_point_comparison,
    lambda_sensitivity,
    risk_penalty_sweep,
)
from repro.util.tables import render_table


def test_lambda_sensitivity(benchmark, settings, scale):
    out = run_once(
        benchmark,
        lambda_sensitivity,
        lams=(1.0, 3.0, 6.0, 12.0),
        n_jobs=1000,
        scale=scale,
        settings=settings,
    )
    print()
    rows = []
    for lam, pair in out.items():
        rows.append([
            lam,
            pair["risky"].makespan,
            pair["secure"].makespan,
            pair["risky"].n_fail,
            pair["risky"].failure_rate,
        ])
    print(render_table(
        ["lambda", "risky makespan", "secure makespan", "risky N_fail",
         "risky fail rate"],
        rows,
        title="Ablation: failure-law steepness (our default lambda=3)",
    ))

    # Secure mode never fails and is lambda-invariant by construction.
    secure_ms = [p["secure"].makespan for p in out.values()]
    assert max(secure_ms) - min(secure_ms) < 1e-6 * max(secure_ms)
    for pair in out.values():
        assert pair["secure"].n_fail == 0
    # Risky failure *rate* grows with lambda (Eq. 1 is monotone).
    rates = [out[lam]["risky"].failure_rate for lam in sorted(out)]
    assert rates[0] <= rates[-1] + 1e-9


def test_failure_point(benchmark, settings, scale):
    out = run_once(
        benchmark,
        failure_point_comparison,
        n_jobs=1000,
        scale=scale,
        settings=settings,
    )
    print()
    print(render_table(
        ["failure point", "makespan", "avg_response", "N_fail"],
        [[p, r.makespan, r.avg_response_time, r.n_fail]
         for p, r in out.items()],
        title="Ablation: fail-stop point ('uniform' default vs 'end')",
    ))
    assert set(out) == {"uniform", "end"}


def test_risk_penalty(benchmark, settings, scale):
    out = run_once(
        benchmark,
        risk_penalty_sweep,
        penalties=(0.0, 1.0, 4.0),
        n_jobs=1000,
        scale=scale,
        settings=settings,
    )
    print()
    print(render_table(
        ["penalty", "makespan", "N_risk", "N_fail"],
        [[p, r.makespan, r.n_risk, r.n_fail] for p, r in out.items()],
        title="Ablation: risk-penalised GA fitness (extension)",
    ))
    # Penalising expected rework should push risk-taking down.
    n_risk = [out[p].n_risk for p in sorted(out)]
    assert n_risk[-1] <= n_risk[0] * 1.1
