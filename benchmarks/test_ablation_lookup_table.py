"""Ablations of the history lookup table (Table 1's fixed choices).

* capacity (paper: 150) — a tiny table starves the STGA of seeds;
* similarity threshold (paper: 0.8) — looser thresholds hit more;
* eviction policy — LRU (paper) vs FIFO.

These are extensions beyond the paper's figures; we print the sweeps
and assert only the mechanically-guaranteed monotonicity (hit rates).
"""

from benchmarks.conftest import run_once
from repro.experiments.ablation import (
    eviction_comparison,
    lookup_capacity_sweep,
    threshold_sweep,
)
from repro.util.tables import render_table


def test_lookup_capacity_sweep(benchmark, settings, scale):
    out = run_once(
        benchmark,
        lookup_capacity_sweep,
        capacities=(10, 50, 150),
        n_jobs=1000,
        scale=scale,
        settings=settings,
    )
    print()
    print(render_table(
        ["capacity", "makespan", "avg_response"],
        [[c, r.makespan, r.avg_response_time] for c, r in out.items()],
        title="Ablation: history-table capacity (paper fixes 150)",
    ))
    assert all(r.makespan > 0 for r in out.values())


def test_threshold_sweep(benchmark, settings, scale):
    out = run_once(
        benchmark,
        threshold_sweep,
        thresholds=(0.5, 0.8, 0.95),
        n_jobs=1000,
        scale=scale,
        settings=settings,
    )
    print()
    print(render_table(
        ["threshold", "makespan", "hit rate"],
        [[t, rep.makespan, hr] for t, (rep, hr) in out.items()],
        title="Ablation: similarity threshold (paper fixes 0.8)",
    ))
    hit = {t: hr for t, (_, hr) in out.items()}
    # A looser threshold can only match more entries.
    assert hit[0.5] >= hit[0.8] >= hit[0.95]


def test_eviction_comparison(benchmark, settings, scale):
    out = run_once(
        benchmark,
        eviction_comparison,
        n_jobs=1000,
        scale=scale,
        settings=settings,
    )
    print()
    print(render_table(
        ["policy", "makespan", "avg_response"],
        [[p, r.makespan, r.avg_response_time] for p, r in out.items()],
        title="Ablation: LRU (paper) vs FIFO eviction",
    ))
    # Both complete; on recurring workloads LRU should not lose badly.
    assert out["lru"].makespan <= out["fifo"].makespan * 1.15
