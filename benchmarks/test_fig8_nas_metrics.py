"""Figure 8 — the seven-algorithm comparison on the NAS trace.

Paper claims (NAS, ensemble-robust shapes):

* (a) makespan: STGA best; secure modes worst (paper: STGA ~10 % under
  risky, ~15 % under f-risky, ~30 % under secure);
* (b) failures: secure modes have N_fail = 0; N_fail <= N_risk always;
  the f-risky heuristics fail (roughly half as) less often than risky;
* (c) slowdown: STGA and the risk-taking modes far below secure
  (paper: >46 % improvement over secure);
* (d) response: risk-taking modes beat secure by ~2x (paper: STGA
  roughly 50 % under secure).
"""

import numpy as np

from benchmarks.conftest import ENSEMBLE_SEEDS, ensemble_mean, run_once
from dataclasses import replace

from repro.experiments.fig8 import nas_experiment
from repro.util.tables import render_table

NAMES = [
    "Min-Min Secure",
    "Min-Min f-Risky(f=0.5)",
    "Min-Min Risky",
    "Sufferage Secure",
    "Sufferage f-Risky(f=0.5)",
    "Sufferage Risky",
    "STGA",
]


def test_fig8_nas_metrics(benchmark, settings, scale, nas_ensemble):
    # Timed: one representative full lineup run.
    run_once(
        benchmark,
        nas_experiment,
        scale=scale,
        settings=replace(settings, seed=123),
    )

    means = {
        name: {
            m: ensemble_mean(nas_ensemble, name, m)
            for m in (
                "makespan",
                "avg_response_time",
                "slowdown_ratio",
                "n_risk",
                "n_fail",
            )
        }
        for name in NAMES
    }
    print()
    print(render_table(
        ["scheduler", "makespan", "avg_response", "slowdown", "N_risk",
         "N_fail"],
        [
            [n, v["makespan"], v["avg_response_time"], v["slowdown_ratio"],
             v["n_risk"], v["n_fail"]]
            for n, v in means.items()
        ],
        title=(
            f"Figure 8 (ensemble mean over seeds {ENSEMBLE_SEEDS}): "
            "NAS workload"
        ),
    ))

    stga = means["STGA"]
    secure = [means["Min-Min Secure"], means["Sufferage Secure"]]
    frisky = [means["Min-Min f-Risky(f=0.5)"],
              means["Sufferage f-Risky(f=0.5)"]]
    risky = [means["Min-Min Risky"], means["Sufferage Risky"]]

    # (a) makespan: STGA best overall (paper: 10-30% margins).
    best_heuristic_ms = min(
        v["makespan"] for n, v in means.items() if n != "STGA"
    )
    assert stga["makespan"] <= best_heuristic_ms * 1.02, (
        "STGA lost the makespan comparison"
    )
    for sec in secure:
        assert stga["makespan"] < sec["makespan"] * 0.9, (
            "STGA should beat secure modes by a clear margin"
        )

    # (b) failures: secure never fails; N_fail <= N_risk everywhere.
    for res in nas_ensemble:
        for rep in res.reports:
            assert rep.n_fail <= rep.n_risk
            if "Secure" in rep.scheduler:
                assert rep.n_fail == 0 and rep.n_risk == 0
    # f-risky heuristics fail at a lower *rate* than risky ones.
    frisky_rate = np.mean([v["n_fail"] / max(v["n_risk"], 1) for v in frisky])
    risky_rate = np.mean([v["n_fail"] / max(v["n_risk"], 1) for v in risky])
    assert frisky_rate < risky_rate, (
        "f-risky should fail less often per risk taken"
    )
    # STGA takes abundant risk (paper: among the largest N_risk).
    assert stga["n_risk"] > 0.5 * max(v["n_risk"] for v in risky)

    # (c) slowdown: risk-taking modes crush the secure modes.
    secure_slow = np.mean([v["slowdown_ratio"] for v in secure])
    assert stga["slowdown_ratio"] < 0.5 * secure_slow

    # (d) response: STGA & risk-takers at least ~2x under secure.
    secure_resp = np.mean([v["avg_response_time"] for v in secure])
    assert stga["avg_response_time"] < 0.6 * secure_resp
    # STGA within 15% of the best heuristic response.
    best_resp = min(v["avg_response_time"] for n, v in means.items()
                    if n != "STGA")
    assert stga["avg_response_time"] <= best_resp * 1.15, (
        "STGA response drifted too far from the best heuristic"
    )

    print(f"paper vs measured (makespan improvement of STGA): "
          f"vs risky ~10% -> "
          f"{(1 - stga['makespan'] / np.mean([v['makespan'] for v in risky])) * 100:.1f}%, "
          f"vs f-risky ~15% -> "
          f"{(1 - stga['makespan'] / np.mean([v['makespan'] for v in frisky])) * 100:.1f}%, "
          f"vs secure ~30% -> "
          f"{(1 - stga['makespan'] / np.mean([v['makespan'] for v in secure])) * 100:.1f}%")
