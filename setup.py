"""Legacy setup shim.

The metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on environments whose setuptools
lacks the ``wheel`` package required for PEP 660 editable builds.
"""

from setuptools import setup

setup()
