"""repro — a reproduction of *"Security-Driven Heuristics and A Fast
Genetic Algorithm for Trusted Grid Job Scheduling"* (Song, Kwok,
Hwang — IPDPS 2005).

The package implements, from scratch:

* a discrete-event grid simulator with the paper's security/risk model
  (:mod:`repro.grid`),
* the security-driven Min-Min and Sufferage heuristics under secure /
  risky / f-risky modes plus extra baselines (:mod:`repro.heuristics`),
* the Space-Time Genetic Algorithm with its history lookup table —
  the paper's contribution (:mod:`repro.core`),
* the NAS-trace synthesizer and PSA workload generator
  (:mod:`repro.workloads`),
* the Section 4.1 metrics (:mod:`repro.metrics`) and one experiment
  driver per paper table/figure (:mod:`repro.experiments`).

Quickstart::

    from repro import (GridSimulator, MinMinScheduler, evaluate,
                       psa_scenario, PSAConfig)
    sc = psa_scenario(PSAConfig(n_jobs=200), rng=0)
    sim = GridSimulator(sc.grid, MinMinScheduler("f-risky", f=0.5))
    print(evaluate(sim.run(sc.jobs), "Min-Min f-Risky"))
"""

from repro.core import (
    GAConfig,
    GAResult,
    HistoryTable,
    RecordingScheduler,
    StandardGAScheduler,
    STGAScheduler,
    warmup_history,
)
from repro.grid import (
    DEFAULT_LAMBDA,
    Batch,
    Grid,
    GridSimulator,
    Job,
    RiskMode,
    ScheduleResult,
    SimulationResult,
    Site,
    failure_probability,
)
from repro.heuristics import (
    BatchScheduler,
    MaxMinScheduler,
    MCTScheduler,
    METScheduler,
    MinMinScheduler,
    OLBScheduler,
    RandomScheduler,
    SufferageScheduler,
    make_heuristic,
    paper_heuristics,
)
from repro.metrics import PerformanceReport, compare_to_reference, evaluate
from repro.registry import (
    SchedulerSpec,
    WorkloadSpec,
    available_schedulers,
    available_workloads,
    build_scheduler,
    build_workload,
    register_scheduler,
    register_workload,
    scheduler_spec,
    workload_spec,
)
from repro.workloads import (
    NASConfig,
    PSAConfig,
    Scenario,
    nas_scenario,
    psa_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # grid
    "Job",
    "Site",
    "Grid",
    "Batch",
    "ScheduleResult",
    "GridSimulator",
    "SimulationResult",
    "RiskMode",
    "failure_probability",
    "DEFAULT_LAMBDA",
    # heuristics
    "BatchScheduler",
    "MinMinScheduler",
    "MaxMinScheduler",
    "SufferageScheduler",
    "MCTScheduler",
    "METScheduler",
    "OLBScheduler",
    "RandomScheduler",
    "make_heuristic",
    "paper_heuristics",
    # core
    "GAConfig",
    "GAResult",
    "HistoryTable",
    "STGAScheduler",
    "StandardGAScheduler",
    "RecordingScheduler",
    "warmup_history",
    # workloads
    "Scenario",
    "PSAConfig",
    "psa_scenario",
    "NASConfig",
    "nas_scenario",
    # metrics
    "PerformanceReport",
    "evaluate",
    "compare_to_reference",
    # registry
    "SchedulerSpec",
    "WorkloadSpec",
    "register_scheduler",
    "register_workload",
    "scheduler_spec",
    "workload_spec",
    "available_schedulers",
    "available_workloads",
    "build_scheduler",
    "build_workload",
]
