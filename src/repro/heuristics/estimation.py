"""Scheduling with inaccurate runtime estimates (paper §5 future work).

The paper closes with: "investigating the performance of the STGA,
when the job execution durations are unknown a priori is also an
important problem".  This module implements that study's machinery:
:class:`NoisyETCScheduler` wraps any batch scheduler and corrupts the
ETC matrix it sees with multiplicative log-normal estimation error —
the standard model for user runtime estimates — while the *engine*
still executes true durations.

With ``sigma = 0`` the wrapper is exact passthrough; growing ``sigma``
degrades every ETC-driven scheduler gracefully (OLB, which ignores
execution times, is immune — a useful control).
"""

from __future__ import annotations

import numpy as np

from repro.grid.batch import Batch, ScheduleResult
from repro.heuristics.base import BatchScheduler
from repro.util.rng import as_generator
from repro.util.validation import check_non_negative

__all__ = ["NoisyETCScheduler"]


class NoisyETCScheduler(BatchScheduler):
    """Feed a scheduler log-normally perturbed execution times.

    Parameters
    ----------
    inner:
        The scheduler whose decisions to study under estimation error.
    sigma:
        Standard deviation of the log-normal noise (0 = oracle ETC;
        ~0.5 corresponds to typical user-estimate error; >1 is close
        to uninformative).
    per_job:
        If True (default), one multiplicative factor per *job* —
        mis-estimated workload, the usual case.  If False, each
        (job, site) entry is perturbed independently (machine-level
        estimation error).
    rng:
        Seed or generator for the noise.
    """

    def __init__(
        self,
        inner: BatchScheduler,
        *,
        sigma: float = 0.5,
        per_job: bool = True,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        self.inner = inner
        self.sigma = check_non_negative("sigma", sigma)
        self.per_job = per_job
        self.rng = as_generator(rng)

    @property
    def name(self) -> str:
        return f"{self.inner.name} +noise(sigma={self.sigma:g})"

    def _perturb(self, batch: Batch) -> Batch:
        if self.sigma == 0:
            return batch
        if self.per_job:
            factors = self.rng.lognormal(
                0.0, self.sigma, size=batch.n_jobs
            )[:, None]
        else:
            factors = self.rng.lognormal(
                0.0, self.sigma, size=batch.etc.shape
            )
        return Batch(
            now=batch.now,
            job_ids=batch.job_ids,
            workloads=batch.workloads * factors.reshape(-1)[: batch.n_jobs]
            if self.per_job
            else batch.workloads,
            security_demands=batch.security_demands,
            secure_only=batch.secure_only,
            etc=batch.etc * factors,
            ready=batch.ready,
            site_security=batch.site_security,
            speeds=batch.speeds,
        )

    def schedule(self, batch: Batch) -> ScheduleResult:
        return self.inner.schedule(self._perturb(batch))
