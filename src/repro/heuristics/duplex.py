"""Duplex heuristic (Braun et al. baseline, extension).

Duplex runs Min-Min and Max-Min on the batch and keeps whichever
schedule has the smaller batch makespan — hedging between "short jobs
first" and "long jobs first" per batch at twice the cost of either.
"""

from __future__ import annotations

import numpy as np

from repro.core.fitness import assignment_makespan
from repro.grid.batch import Batch, ScheduleResult
from repro.grid.security import DEFAULT_LAMBDA, RiskMode
from repro.heuristics.base import SecurityDrivenScheduler
from repro.heuristics.maxmin import MaxMinScheduler
from repro.heuristics.minmin import MinMinScheduler

__all__ = ["DuplexScheduler"]


class DuplexScheduler(SecurityDrivenScheduler):
    """Best of Min-Min and Max-Min per batch, by batch makespan."""

    algorithm = "Duplex"

    def __init__(
        self,
        mode: RiskMode | str = RiskMode.SECURE,
        *,
        f: float = 0.5,
        lam: float = DEFAULT_LAMBDA,
    ) -> None:
        super().__init__(mode, f=f, lam=lam)
        self._members = (
            MinMinScheduler(mode, f=f, lam=lam),
            MaxMinScheduler(mode, f=f, lam=lam),
        )

    def schedule(self, batch: Batch) -> ScheduleResult:
        ready = np.maximum(batch.ready, batch.now)
        best: ScheduleResult | None = None
        best_ms = np.inf
        for member in self._members:
            result = member.schedule(batch)
            assignment = np.asarray(result.assignment)
            mask = assignment >= 0
            if not mask.any():
                if best is None:
                    best = result
                continue
            ms = assignment_makespan(
                assignment[mask], batch.etc[mask], ready
            )
            if ms < best_ms:
                best, best_ms = result, ms
        assert best is not None  # at least one member always returns
        return best
