"""Security-driven batch scheduling heuristics: the paper's Min-Min and
Sufferage under three risk modes, plus Braun-et-al. baselines (Max-Min,
MCT, MET, OLB) and a random mapper."""

from repro.heuristics.base import BatchScheduler, SecurityDrivenScheduler
from repro.heuristics.duplex import DuplexScheduler
from repro.heuristics.estimation import NoisyETCScheduler
from repro.heuristics.factory import (
    HEURISTIC_CLASSES,
    make_heuristic,
    paper_heuristics,
)
from repro.heuristics.maxmin import MaxMinScheduler
from repro.heuristics.mct import MCTScheduler
from repro.heuristics.met import METScheduler
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.olb import OLBScheduler
from repro.heuristics.random_sched import RandomScheduler
from repro.heuristics.sufferage import SufferageScheduler

__all__ = [
    "BatchScheduler",
    "SecurityDrivenScheduler",
    "MinMinScheduler",
    "DuplexScheduler",
    "NoisyETCScheduler",
    "MaxMinScheduler",
    "SufferageScheduler",
    "MCTScheduler",
    "METScheduler",
    "OLBScheduler",
    "RandomScheduler",
    "HEURISTIC_CLASSES",
    "make_heuristic",
    "paper_heuristics",
]
