"""Uniform-random mapper.

Assigns every job to an eligible site drawn uniformly at random.  Used
as the sanity-check lower bound in tests and benches (any sensible
heuristic must beat it) and to generate diverse seed chromosomes.
"""

from __future__ import annotations

import numpy as np

from repro.grid.batch import Batch, ScheduleResult
from repro.grid.security import DEFAULT_LAMBDA, RiskMode
from repro.heuristics.base import SecurityDrivenScheduler
from repro.util.rng import as_generator

__all__ = ["RandomScheduler"]


class RandomScheduler(SecurityDrivenScheduler):
    """Random eligible-site assignment under any risk mode."""

    algorithm = "Random"

    def __init__(
        self,
        mode: RiskMode | str = RiskMode.RISKY,
        *,
        f: float = 0.5,
        lam: float = DEFAULT_LAMBDA,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(mode, f=f, lam=lam)
        self.rng = as_generator(rng)

    def schedule(self, batch: Batch) -> ScheduleResult:
        elig = self.eligibility(batch)
        assignment = np.full(batch.n_jobs, -1, dtype=int)
        for j in range(batch.n_jobs):
            sites = np.flatnonzero(elig[j])
            if sites.size:
                assignment[j] = int(self.rng.choice(sites))
        return ScheduleResult.from_assignment(assignment)
