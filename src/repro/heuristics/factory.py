"""Construction helpers for the paper's scheduler line-up.

``paper_heuristics()`` returns the six security-driven heuristics of
Section 4 (Min-Min and Sufferage, each in secure / f-risky / risky
mode) in the paper's presentation order; the STGA is appended by the
experiment runner because it carries per-run state (the history
table).
"""

from __future__ import annotations

from repro.grid.security import DEFAULT_LAMBDA, RiskMode
from repro.heuristics.base import BatchScheduler
from repro.heuristics.duplex import DuplexScheduler
from repro.heuristics.maxmin import MaxMinScheduler
from repro.heuristics.mct import MCTScheduler
from repro.heuristics.met import METScheduler
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.olb import OLBScheduler
from repro.heuristics.random_sched import RandomScheduler
from repro.heuristics.sufferage import SufferageScheduler

__all__ = ["HEURISTIC_CLASSES", "make_heuristic", "paper_heuristics"]

HEURISTIC_CLASSES = {
    "min-min": MinMinScheduler,
    "max-min": MaxMinScheduler,
    "duplex": DuplexScheduler,
    "sufferage": SufferageScheduler,
    "mct": MCTScheduler,
    "met": METScheduler,
    "olb": OLBScheduler,
    "random": RandomScheduler,
}


def make_heuristic(
    algorithm: str,
    mode: RiskMode | str = RiskMode.SECURE,
    *,
    f: float = 0.5,
    lam: float = DEFAULT_LAMBDA,
    **kwargs,
) -> BatchScheduler:
    """Instantiate a heuristic by name, e.g. ``make_heuristic("min-min",
    "risky")``."""
    key = algorithm.lower()
    if key not in HEURISTIC_CLASSES:
        raise KeyError(
            f"unknown heuristic {algorithm!r}; "
            f"choose from {sorted(HEURISTIC_CLASSES)}"
        )
    return HEURISTIC_CLASSES[key](mode, f=f, lam=lam, **kwargs)


def paper_heuristics(
    *, f: float = 0.5, lam: float = DEFAULT_LAMBDA
) -> list[BatchScheduler]:
    """The six heuristics of the paper's Figures 8-9, in order:
    Min-Min {secure, f-risky, risky}, Sufferage {secure, f-risky, risky}."""
    out: list[BatchScheduler] = []
    for cls in (MinMinScheduler, SufferageScheduler):
        for mode in (RiskMode.SECURE, RiskMode.F_RISKY, RiskMode.RISKY):
            out.append(cls(mode, f=f, lam=lam))
    return out
