"""Construction helpers for the paper's scheduler line-up.

``paper_heuristics()`` returns the six security-driven heuristics of
Section 4 (Min-Min and Sufferage, each in secure / f-risky / risky
mode) in the paper's presentation order; the STGA joins the lineup
through the scheduler registry (see :mod:`repro.registry` and the
``"stga"`` entry in :mod:`repro.experiments.runner`).

Every (algorithm, risk mode) pair also registers as a scheduler-
registry entry named ``"<algorithm>-<mode>"`` (``"min-min-risky"``,
``"sufferage-f-risky"``, ...), with the bare algorithm name aliased to
its secure mode — the same default :func:`make_heuristic` uses.  Refs
accept an ``f`` parameter (``"min-min-f-risky?f=0.3"``) overriding the
defaults' f = 0.5.

The registry refs are the primary construction surface: prefer
``repro.registry.bind_scheduler("min-min-risky", settings)`` — which
also gives the unified ``ScheduleFn`` call protocol — over calling
:func:`make_heuristic` / :func:`paper_heuristics` directly.  Both
remain as thin shims for older drivers and tests.
"""

from __future__ import annotations

from repro.grid.security import DEFAULT_LAMBDA, RiskMode
from repro.heuristics.base import BatchScheduler
from repro.heuristics.duplex import DuplexScheduler
from repro.heuristics.maxmin import MaxMinScheduler
from repro.heuristics.mct import MCTScheduler
from repro.heuristics.met import METScheduler
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.olb import OLBScheduler
from repro.heuristics.random_sched import RandomScheduler
from repro.heuristics.sufferage import SufferageScheduler
from repro.registry import register_scheduler

__all__ = [
    "HEURISTIC_CLASSES",
    "HEURISTIC_MODES",
    "make_heuristic",
    "paper_heuristics",
]

HEURISTIC_CLASSES = {
    "min-min": MinMinScheduler,
    "max-min": MaxMinScheduler,
    "duplex": DuplexScheduler,
    "sufferage": SufferageScheduler,
    "mct": MCTScheduler,
    "met": METScheduler,
    "olb": OLBScheduler,
    "random": RandomScheduler,
}

#: registry-name suffix -> risk mode, in the paper's column order
HEURISTIC_MODES = {
    "secure": RiskMode.SECURE,
    "f-risky": RiskMode.F_RISKY,
    "risky": RiskMode.RISKY,
}


def _register_heuristics() -> None:
    """One registry entry per (algorithm, risk mode) pair."""
    for algo in HEURISTIC_CLASSES:
        for mode_key, mode in HEURISTIC_MODES.items():

            def _build(
                settings,
                rng,
                *,
                defaults=None,
                scenario=None,  # per-run context, unused by heuristics
                training=None,
                ga_config=None,
                f=None,
                _algo=algo,
                _mode=mode,
                **params,
            ):
                """Build one (algorithm, risk mode) heuristic scheduler."""
                if f is None:
                    f = defaults.f_risky if defaults is not None else 0.5
                if _algo == "random":
                    params.setdefault(
                        "rng", rng.stream("random-scheduler")
                    )
                return make_heuristic(
                    _algo, _mode, f=float(f), lam=settings.lam, **params
                )

            register_scheduler(
                f"{algo}-{mode_key}",
                description=(
                    f"{HEURISTIC_CLASSES[algo].algorithm} heuristic, "
                    f"{mode_key} mode"
                ),
                # the bare algorithm name means secure mode, matching
                # make_heuristic's default
                aliases=(algo,) if mode is RiskMode.SECURE else (),
            )(_build)


_register_heuristics()


def make_heuristic(
    algorithm: str,
    mode: RiskMode | str = RiskMode.SECURE,
    *,
    f: float = 0.5,
    lam: float = DEFAULT_LAMBDA,
    **kwargs,
) -> BatchScheduler:
    """Instantiate a heuristic by name, e.g. ``make_heuristic("min-min",
    "risky")``.

    Deprecation shim: new code should go through the scheduler
    registry — ``bind_scheduler("min-min-risky", settings)`` — which
    resolves the same classes plus ref parameters and the unified
    call protocol.  Kept because direct construction stays handy in
    unit tests and ablation scripts.
    """
    key = algorithm.lower()
    if key not in HEURISTIC_CLASSES:
        raise KeyError(
            f"unknown heuristic {algorithm!r}; "
            f"choose from {sorted(HEURISTIC_CLASSES)}"
        )
    return HEURISTIC_CLASSES[key](mode, f=f, lam=lam, **kwargs)


def paper_heuristics(
    *, f: float = 0.5, lam: float = DEFAULT_LAMBDA
) -> list[BatchScheduler]:
    """The six heuristics of the paper's Figures 8-9, in order:
    Min-Min {secure, f-risky, risky}, Sufferage {secure, f-risky, risky}.

    Deprecation shim: ``run_lineup`` now builds this lineup from
    registry refs (:data:`repro.experiments.runner.PAPER_LINEUP`);
    prefer passing ``lineup=`` refs over pre-built instances.
    """
    out: list[BatchScheduler] = []
    for cls in (MinMinScheduler, SufferageScheduler):
        for mode in (RiskMode.SECURE, RiskMode.F_RISKY, RiskMode.RISKY):
            out.append(cls(mode, f=f, lam=lam))
    return out
