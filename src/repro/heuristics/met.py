"""Minimum Execution Time (MET) heuristic (Braun et al. baseline).

Each job goes to the eligible site with the smallest raw execution
time, ignoring load entirely.  On a grid whose fastest site dominates,
MET piles everything there — it is the canonical "bad but fast"
baseline and a useful lower anchor in the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.grid.batch import Batch, ScheduleResult
from repro.heuristics.base import SecurityDrivenScheduler

__all__ = ["METScheduler"]


class METScheduler(SecurityDrivenScheduler):
    """MET under a secure / risky / f-risky mode."""

    algorithm = "MET"

    def schedule(self, batch: Batch) -> ScheduleResult:
        elig = self.eligibility(batch)
        etc = np.where(elig, batch.etc, np.inf)
        assignment = np.full(batch.n_jobs, -1, dtype=int)
        feasible = np.isfinite(etc).any(axis=1)
        assignment[feasible] = np.argmin(etc[feasible], axis=1)
        return ScheduleResult.from_assignment(assignment)
