"""The security-driven Min-Min heuristic (paper Section 2, item 1).

Classic Min-Min (Maheswaran et al.; Braun et al.): repeatedly

1. for every unscheduled job, find the site giving its earliest
   expected completion time (over *eligible* sites only),
2. pick the job whose earliest completion is smallest overall,
3. commit it to that site and advance the site's ready time.

Jobs with no eligible site under the active risk mode are deferred
(assignment ``-1``) for a later batch.
"""

from __future__ import annotations

import numpy as np

from repro.grid.batch import Batch, ScheduleResult
from repro.heuristics.base import SecurityDrivenScheduler

__all__ = ["MinMinScheduler"]


class MinMinScheduler(SecurityDrivenScheduler):
    """Min-Min under a secure / risky / f-risky mode."""

    algorithm = "Min-Min"

    def schedule(self, batch: Batch) -> ScheduleResult:
        comp = self.masked_completion(batch)
        return _greedy_by_completion(batch, comp, pick="min")


def _greedy_by_completion(
    batch: Batch, comp: np.ndarray, *, pick: str
) -> ScheduleResult:
    """Shared Min-Min / Max-Min core.

    ``comp`` is the masked completion matrix; ``pick`` selects whether
    the job with the smallest ("min", Min-Min) or largest ("max",
    Max-Min) earliest completion is committed each round.
    """
    n_jobs = batch.n_jobs
    comp = comp.copy()
    etc = batch.etc
    ready = np.maximum(batch.ready, batch.now).astype(float).copy()
    assignment = np.full(n_jobs, -1, dtype=int)
    order: list[int] = []
    left = np.ones(n_jobs, dtype=bool)
    # Jobs with no eligible site are deferred outright.
    feasible = np.isfinite(comp).any(axis=1)
    left &= feasible

    while left.any():
        best_site = np.argmin(comp, axis=1)
        best_val = comp[np.arange(n_jobs), best_site]
        candidates = np.where(left, best_val, np.inf if pick == "min" else -np.inf)
        j = int(np.argmin(candidates) if pick == "min" else np.argmax(candidates))
        s = int(best_site[j])
        assignment[j] = s
        order.append(j)
        left[j] = False
        ready[s] = best_val[j]
        # Only the chosen site's column changes.
        col = ready[s] + etc[:, s]
        col[np.isinf(comp[:, s])] = np.inf
        comp[:, s] = col

    return ScheduleResult(assignment=assignment, order=np.array(order, dtype=int))
