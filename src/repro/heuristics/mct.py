"""Minimum Completion Time (MCT) heuristic (Braun et al. baseline).

Jobs are taken in batch (arrival) order; each is immediately committed
to the eligible site with the earliest expected completion time.  One
pass, no reordering — the cheapest non-trivial online mapper, used as
an extension baseline.
"""

from __future__ import annotations

import numpy as np

from repro.grid.batch import Batch, ScheduleResult
from repro.heuristics.base import SecurityDrivenScheduler

__all__ = ["MCTScheduler"]


class MCTScheduler(SecurityDrivenScheduler):
    """MCT under a secure / risky / f-risky mode."""

    algorithm = "MCT"

    def schedule(self, batch: Batch) -> ScheduleResult:
        comp = self.masked_completion(batch)
        etc = batch.etc
        ready = np.maximum(batch.ready, batch.now).astype(float).copy()
        assignment = np.full(batch.n_jobs, -1, dtype=int)
        order: list[int] = []
        elig = np.isfinite(comp)

        for j in range(batch.n_jobs):
            row = np.where(elig[j], ready + etc[j], np.inf)
            if not np.isfinite(row).any():
                continue
            s = int(np.argmin(row))
            assignment[j] = s
            order.append(j)
            ready[s] = row[s]

        return ScheduleResult(
            assignment=assignment, order=np.array(order, dtype=int)
        )
