"""Opportunistic Load Balancing (OLB) heuristic (Braun et al. baseline).

Each job (in batch order) goes to the eligible site that becomes ready
soonest, regardless of how fast the site is.  Balances occupancy, not
completion times.
"""

from __future__ import annotations

import numpy as np

from repro.grid.batch import Batch, ScheduleResult
from repro.heuristics.base import SecurityDrivenScheduler

__all__ = ["OLBScheduler"]


class OLBScheduler(SecurityDrivenScheduler):
    """OLB under a secure / risky / f-risky mode."""

    algorithm = "OLB"

    def schedule(self, batch: Batch) -> ScheduleResult:
        elig = self.eligibility(batch)
        ready = np.maximum(batch.ready, batch.now).astype(float).copy()
        assignment = np.full(batch.n_jobs, -1, dtype=int)
        order: list[int] = []

        for j in range(batch.n_jobs):
            row = np.where(elig[j], ready, np.inf)
            if not np.isfinite(row).any():
                continue
            s = int(np.argmin(row))
            assignment[j] = s
            order.append(j)
            ready[s] = max(ready[s], batch.now) + batch.etc[j, s]

        return ScheduleResult(
            assignment=assignment, order=np.array(order, dtype=int)
        )
