"""The security-driven Sufferage heuristic (paper Section 2, item 2).

Sufferage (Maheswaran et al.) commits, each round, the job that would
"suffer" most if denied its best site: its *sufferage value* is the
difference between its second-earliest and earliest expected
completion times.  A job with exactly one eligible site suffers
unboundedly (it has no second choice), so it gets priority — we give
it an infinite sufferage value, with the completion time as a
deterministic tie-breaker.
"""

from __future__ import annotations

import numpy as np

from repro.grid.batch import Batch, ScheduleResult
from repro.heuristics.base import SecurityDrivenScheduler

__all__ = ["SufferageScheduler"]


class SufferageScheduler(SecurityDrivenScheduler):
    """Sufferage under a secure / risky / f-risky mode."""

    algorithm = "Sufferage"

    def schedule(self, batch: Batch) -> ScheduleResult:
        n_jobs = batch.n_jobs
        comp = self.masked_completion(batch)
        etc = batch.etc
        ready = np.maximum(batch.ready, batch.now).astype(float).copy()
        assignment = np.full(n_jobs, -1, dtype=int)
        order: list[int] = []
        left = np.isfinite(comp).any(axis=1)

        while left.any():
            best_site = np.argmin(comp, axis=1)
            best_val = comp[np.arange(n_jobs), best_site]
            # Second-best completion: mask out each job's best column.
            masked = comp.copy()
            masked[np.arange(n_jobs), best_site] = np.inf
            second_val = masked.min(axis=1)
            # inf when only one eligible site; infeasible rows (both
            # values inf) would give NaN, mask them to -inf instead.
            with np.errstate(invalid="ignore"):
                sufferage = np.where(
                    np.isfinite(best_val), second_val - best_val, -np.inf
                )

            # Choose the unassigned job with the largest sufferage;
            # break ties by earliest best completion, then job index.
            sv = np.where(left, sufferage, -np.inf)
            top = sv.max()
            tied = np.flatnonzero(sv == top)
            j = int(tied[np.argmin(best_val[tied])])
            s = int(best_site[j])
            assignment[j] = s
            order.append(j)
            left[j] = False
            ready[s] = best_val[j]
            col = ready[s] + etc[:, s]
            col[np.isinf(comp[:, s])] = np.inf
            comp[:, s] = col

        return ScheduleResult(
            assignment=assignment, order=np.array(order, dtype=int)
        )
