"""Security-driven Max-Min heuristic (Braun et al. baseline, extension).

Identical machinery to Min-Min except that each round commits the job
whose *earliest* completion time is *largest* — placing long jobs
first so short ones fill in around them.  Not part of the paper's
seven evaluated algorithms; included as an additional comparator for
the ablation benches.
"""

from __future__ import annotations

from repro.grid.batch import Batch, ScheduleResult
from repro.heuristics.base import SecurityDrivenScheduler
from repro.heuristics.minmin import _greedy_by_completion

__all__ = ["MaxMinScheduler"]


class MaxMinScheduler(SecurityDrivenScheduler):
    """Max-Min under a secure / risky / f-risky mode."""

    algorithm = "Max-Min"

    def schedule(self, batch: Batch) -> ScheduleResult:
        comp = self.masked_completion(batch)
        return _greedy_by_completion(batch, comp, pick="max")
