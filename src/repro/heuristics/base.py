"""Scheduler interfaces.

Two layers:

* :class:`BatchScheduler` — the minimal engine contract: a name and a
  pure ``schedule(Batch) -> ScheduleResult`` method.
* :class:`SecurityDrivenScheduler` — adds the paper's risk-mode
  machinery (secure / risky / f-risky eligibility, Figure 3) shared by
  every heuristic and by the GA schedulers.  Jobs flagged
  ``secure_only`` (previously failed) are always restricted to
  absolutely safe sites regardless of the scheduler's own mode.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.grid.batch import Batch, ScheduleResult
from repro.grid.security import (
    DEFAULT_LAMBDA,
    RiskMode,
    eligibility_matrix,
)
from repro.util.validation import check_positive, check_probability

__all__ = ["BatchScheduler", "SecurityDrivenScheduler"]


class BatchScheduler(abc.ABC):
    """Anything that can map a batch of jobs to grid sites."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable scheduler name used in reports."""

    @abc.abstractmethod
    def schedule(self, batch: Batch) -> ScheduleResult:
        """Map the batch to sites.  Must not mutate ``batch``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class SecurityDrivenScheduler(BatchScheduler):
    """Base class adding risk-mode eligibility to a scheduler.

    Parameters
    ----------
    mode:
        ``"secure"``, ``"risky"`` or ``"f-risky"`` (or a
        :class:`RiskMode`).
    f:
        Tolerated failure probability for f-risky mode (paper default
        0.5, justified by Figure 7(a)).
    lam:
        Eq. 1 failure-rate constant, used to convert ``f`` into a
        tolerable SD-SL gap.
    """

    #: short algorithm label, overridden by subclasses ("Min-Min", ...)
    algorithm: str = "?"

    def __init__(
        self,
        mode: RiskMode | str = RiskMode.SECURE,
        *,
        f: float = 0.5,
        lam: float = DEFAULT_LAMBDA,
    ) -> None:
        self.mode = RiskMode.parse(mode)
        self.f = check_probability("f", f)
        self.lam = check_positive("lam", lam)
        #: optional report-name override; registry refs set it via the
        #: reserved ``label`` parameter so two parameterizations of one
        #: algorithm can share a lineup without name collisions
        self.label: str | None = None

    @property
    def name(self) -> str:
        if self.label is not None:
            return self.label
        if self.mode is RiskMode.F_RISKY:
            return f"{self.algorithm} f-Risky(f={self.f:g})"
        return f"{self.algorithm} {self.mode.value.capitalize()}"

    def eligibility(self, batch: Batch) -> np.ndarray:
        """Boolean (B, S) matrix of allowed placements for ``batch``."""
        return eligibility_matrix(
            batch.security_demands,
            batch.site_security,
            mode=self.mode,
            f=self.f,
            lam=self.lam,
            secure_only=batch.secure_only,
        )

    def masked_completion(self, batch: Batch) -> np.ndarray:
        """Expected-completion matrix with ineligible entries at +inf."""
        comp = batch.completion()
        comp[~self.eligibility(batch)] = np.inf
        return comp
