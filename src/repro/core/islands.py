"""Island-model (coarse-grained parallel) GA — an HPC extension.

The paper cites Kwok & Ahmad's *parallel* genetic algorithm for
multiprocessor scheduling [19] as the GA lineage; this module supplies
the corresponding coarse-grained parallelisation of our batch GA: the
population is split into islands that evolve independently and
exchange their best chromosomes along a ring every few generations.

Islands here are simulated within one process (the per-generation
kernels are already vectorised, so Python-level parallelism would only
add overhead at these population sizes), but the semantics — isolated
demes, periodic elite migration, shared termination — are exactly
what an MPI deployment would distribute one-island-per-rank, and the
module is structured so that step/migrate are rank-local operations.

Migration is the classic ring: every ``migration_interval``
generations each island sends copies of its ``n_migrants`` best
chromosomes to its successor, replacing the successor's worst.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chromosome import (
    EligibleSites,
    random_population,
    repair_population,
)
from repro.core.fitness import FitnessWorkspace, population_fitness
from repro.core.ga import GAConfig, GAResult
from repro.core.operators import (
    apply_elitism,
    fast_crossover_inplace,
    fast_elitism_inplace,
    fast_mutate_inplace,
    fast_roulette_select_into,
    mutate,
    roulette_select,
    single_point_crossover,
)
from repro.core.stga import STGAScheduler
from repro.util.backend import FAST_BACKEND, resolve_backend
from repro.util.rng import spawn

__all__ = ["IslandConfig", "evolve_islands", "IslandSTGAScheduler"]


@dataclass(frozen=True)
class IslandConfig:
    """Topology parameters of the island model."""

    n_islands: int = 4
    migration_interval: int = 10  # generations between migrations
    n_migrants: int = 2  # elites copied to the ring successor

    def __post_init__(self) -> None:
        if self.n_islands < 1:
            raise ValueError(f"n_islands must be >= 1, got {self.n_islands}")
        if self.migration_interval < 1:
            raise ValueError(
                f"migration_interval must be >= 1, "
                f"got {self.migration_interval}"
            )
        if self.n_migrants < 0:
            raise ValueError(
                f"n_migrants must be >= 0, got {self.n_migrants}"
            )


def _island_sizes(total: int, n_islands: int) -> list[int]:
    """Split a population size into near-equal island sizes (>= 2)."""
    base = max(total // n_islands, 2)
    sizes = [base] * n_islands
    for i in range(max(total - base * n_islands, 0)):
        sizes[i % n_islands] += 1
    return sizes


def evolve_islands(
    etc: np.ndarray,
    ready: np.ndarray,
    eligibility: np.ndarray,
    rng: np.random.Generator,
    config: GAConfig = GAConfig(),
    islands: IslandConfig = IslandConfig(),
    *,
    initial: np.ndarray | None = None,
    track_history: bool = False,
    backend: str | None = None,
) -> GAResult:
    """Island-model counterpart of :func:`repro.core.ga.evolve`.

    The total population (``config.population_size``) is split across
    islands; seeds (if any) are scattered round-robin.  Returns the
    globally best assignment with the same :class:`GAResult` contract.

    On the ``"fast"`` backend all islands live as row slices of two
    big ``(sum(sizes), B)`` ping-pong buffers, and every generation
    makes **one** batched fitness call over all islands instead of one
    per island.  Each island still draws from its own spawned RNG in
    the reference order, and ``bincount`` accumulates per-(chromosome,
    site) bins independently of the row layout, so the results are
    bit-identical to the reference path.
    """
    backend = resolve_backend(backend)
    etc = np.asarray(etc, dtype=float)
    ready = np.asarray(ready, dtype=float)
    b = etc.shape[0]
    if b == 0:
        raise ValueError("cannot evolve an empty batch")
    sites = EligibleSites.from_mask(eligibility)
    if sites.n_jobs != b:
        raise ValueError(
            f"eligibility covers {sites.n_jobs} jobs but etc has {b}"
        )

    sizes = _island_sizes(config.population_size, islands.n_islands)
    rngs = spawn(rng, islands.n_islands)

    pops: list[np.ndarray] = []
    seed_pool = (
        np.atleast_2d(initial) if initial is not None and len(initial) else None
    )
    for i, (size, irng) in enumerate(zip(sizes, rngs)):
        pop = random_population(sites, size, irng)
        if seed_pool is not None:
            # Round-robin scatter: island i gets seeds i, i+n, i+2n, ...
            mine = seed_pool[i :: islands.n_islands][:size]
            if mine.size:
                if mine.shape[1] != b:
                    raise ValueError(
                        f"seed chromosomes have {mine.shape[1]} genes, "
                        f"expected {b}"
                    )
                pop[: mine.shape[0]] = repair_population(mine, sites, irng)
        pops.append(pop)

    fw = config.flow_weight
    n = islands.n_islands
    fast = backend == FAST_BACKEND
    if fast:
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        cur = np.ascontiguousarray(np.vstack(pops), dtype=np.int64)
        nxt = np.empty_like(cur)
        ws = FitnessWorkspace(etc, ready, flow_weight=fw)
        pops = [cur[bounds[i] : bounds[i + 1]] for i in range(n)]
        # One (I*P, B) evaluation; per-island fits are views into it.
        fit_all = population_fitness(cur, etc, ready, flow_weight=fw)
        fits = [fit_all[bounds[i] : bounds[i + 1]] for i in range(n)]
    else:
        fits = [population_fitness(p, etc, ready, flow_weight=fw) for p in pops]

    def global_best():
        idx = [int(np.argmin(f)) for f in fits]
        vals = [float(f[i]) for f, i in zip(fits, idx)]
        k = int(np.argmin(vals))
        return pops[k][idx[k]].copy(), vals[k]

    best, best_fit = global_best()
    initial_fit = best_fit
    history = [best_fit] if track_history else None

    gens_run = 0
    stall = 0
    for gen in range(1, config.generations + 1):
        gens_run += 1
        if fast:
            snapshots = []
            for i, irng in enumerate(rngs):
                pop, fit = pops[i], fits[i]
                n_elite = min(config.n_elite, len(pop) - 1)
                elite_idx = np.argsort(fit)[:n_elite]
                snapshots.append((pop[elite_idx].copy(), fit[elite_idx].copy()))
                out = nxt[bounds[i] : bounds[i + 1]]
                fast_roulette_select_into(pop, fit, irng, out=out)
                fast_crossover_inplace(out, config.crossover_prob, irng)
                fast_mutate_inplace(out, sites, config.mutation_prob, irng)
            cur, nxt = nxt, cur
            fit_all = ws.evaluate(cur)
            pops = [cur[bounds[i] : bounds[i + 1]] for i in range(n)]
            fits = [fit_all[bounds[i] : bounds[i + 1]] for i in range(n)]
            for i, (elites, elite_fit) in enumerate(snapshots):
                fast_elitism_inplace(pops[i], fits[i], elites, elite_fit)
        else:
            for i, irng in enumerate(rngs):
                pop, fit = pops[i], fits[i]
                n_elite = min(config.n_elite, len(pop) - 1)
                elite_idx = np.argsort(fit)[:n_elite]
                elites, elite_fit = pop[elite_idx].copy(), fit[elite_idx].copy()
                pop = roulette_select(pop, fit, irng)
                pop = single_point_crossover(pop, config.crossover_prob, irng)
                pop = mutate(pop, sites, config.mutation_prob, irng)
                fit = population_fitness(pop, etc, ready, flow_weight=fw)
                pops[i], fits[i] = apply_elitism(pop, fit, elites, elite_fit)

        if (
            islands.n_islands > 1
            and islands.n_migrants > 0
            and gen % islands.migration_interval == 0
        ):
            _migrate_ring(pops, fits, islands.n_migrants)

        cand, cand_fit = global_best()
        if cand_fit < best_fit:
            best, best_fit = cand, cand_fit
            stall = 0
        else:
            stall += 1
        if history is not None:
            history.append(best_fit)
        if (
            config.stall_generations is not None
            and stall >= config.stall_generations
        ):
            break

    return GAResult(
        best=best,
        best_fitness=best_fit,
        generations_run=gens_run,
        history=np.asarray(history if history is not None else [], dtype=float),
        initial_fitness=initial_fit,
    )


def _migrate_ring(pops, fits, n_migrants: int) -> None:
    """Copy each island's best into its ring successor's worst slots."""
    n = len(pops)
    # Snapshot the migrants first so the exchange is simultaneous.
    outbound = []
    for pop, fit in zip(pops, fits):
        k = min(n_migrants, len(pop))
        idx = np.argsort(fit)[:k]
        outbound.append((pop[idx].copy(), fit[idx].copy()))
    for i in range(n):
        dst = (i + 1) % n
        migrants, mig_fit = outbound[i]
        k = min(len(migrants), len(pops[dst]))
        if k == 0:
            continue
        worst = np.argsort(fits[dst])[-k:]
        pops[dst][worst] = migrants[:k]
        fits[dst][worst] = mig_fit[:k]


class IslandSTGAScheduler(STGAScheduler):
    """STGA whose optimiser is the island-model GA."""

    algorithm = "Island-STGA"

    def __init__(self, *args, islands: IslandConfig | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.islands = islands if islands is not None else IslandConfig()

    @property
    def name(self) -> str:
        return f"Island-STGA(x{self.islands.n_islands})"

    def _run_ga(self, etc, ready, eligibility, *, initial) -> GAResult:
        return evolve_islands(
            etc,
            ready,
            eligibility,
            self.rng,
            self.config,
            self.islands,
            initial=initial,
            track_history=self.track_history,
            backend=self.backend,
        )
