"""Genetic operators (paper Section 3).

* *Selection* — value-based roulette wheel: smaller makespan means a
  larger slice of the wheel.  Fitness values are mapped to weights
  ``(worst - f) + 0.05 * span`` so the worst chromosome keeps a small
  but non-zero survival probability (pure ``worst - f`` would zero it
  out and collapse diversity in near-converged populations).
* *Crossover* — single-point tail swap of chromosome pairs with
  probability ``crossover_prob`` (paper: 0.8).
* *Mutation* — each gene independently resamples a uniform eligible
  site with probability ``mutation_prob`` (paper: 0.01).
* *Elitism* — the best ``n_elite`` parents overwrite the worst
  children, guaranteeing monotone best-so-far fitness.

Everything is vectorised over the population.

Each operator ships in two forms: the reference implementation
(`roulette_select` / `single_point_crossover` / `mutate` /
`apply_elitism`) and a fused ``fast_*`` counterpart used by the
``"fast"`` backend (see :mod:`repro.util.backend`).  The fast kernels
write into caller-provided buffers or in place instead of copying the
population three times per generation, but they draw from the RNG in
**exactly the same order and sizes** as the reference — so at a fixed
seed the two paths produce bit-identical populations, generation by
generation.  ``tests/test_backend_parity.py`` enforces both the output
equality and the RNG-stream equivalence.
"""

from __future__ import annotations

import numpy as np

from repro.core.chromosome import EligibleSites, check_population

__all__ = [
    "selection_weights",
    "roulette_select",
    "single_point_crossover",
    "mutate",
    "apply_elitism",
    "fast_roulette_select_into",
    "fast_crossover_inplace",
    "fast_mutate_inplace",
    "fast_elitism_inplace",
]

#: floor weight as a fraction of the fitness span, keeps the wheel
#: non-degenerate when all chromosomes are nearly equal.
_WHEEL_FLOOR = 0.05


def selection_weights(fitness: np.ndarray) -> np.ndarray:
    """Roulette-wheel weights for *minimised* fitness values."""
    fit = np.asarray(fitness, dtype=float)
    if fit.ndim != 1 or fit.size == 0:
        raise ValueError(f"fitness must be a non-empty 1-D array, got {fit.shape}")
    if not np.isfinite(fit).all():
        raise ValueError("fitness values must be finite")
    worst = fit.max()
    span = worst - fit.min()
    if span == 0:
        return np.full(fit.shape, 1.0 / fit.size)
    w = (worst - fit) + _WHEEL_FLOOR * span
    return w / w.sum()


def roulette_select(
    population: np.ndarray, fitness: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample a new (P, B) population with replacement from the wheel."""
    pop = np.asarray(population)
    check_population(pop, context="roulette_select")
    probs = selection_weights(fitness)
    idx = rng.choice(pop.shape[0], size=pop.shape[0], p=probs)
    return pop[idx]


def single_point_crossover(
    population: np.ndarray, prob: float, rng: np.random.Generator
) -> np.ndarray:
    """Crossover adjacent pairs; odd trailing chromosome passes through.

    For each pair, with probability ``prob`` a cut point k in [1, B-1]
    is drawn and the two tails ``[k:]`` are exchanged.  Chromosomes of
    length 1 cannot cross and are returned unchanged.
    """
    pop = np.array(population, copy=True)
    check_population(pop, context="single_point_crossover")
    p, b = pop.shape
    if b < 2 or p < 2 or prob <= 0:
        return pop
    n_pairs = p // 2
    a = pop[0 : 2 * n_pairs : 2]
    c = pop[1 : 2 * n_pairs : 2]
    crossing = rng.random(n_pairs) < prob
    points = rng.integers(1, b, size=n_pairs)
    tail = (np.arange(b)[None, :] >= points[:, None]) & crossing[:, None]
    new_a = np.where(tail, c, a)
    new_c = np.where(tail, a, c)
    pop[0 : 2 * n_pairs : 2] = new_a
    pop[1 : 2 * n_pairs : 2] = new_c
    return pop


def mutate(
    population: np.ndarray,
    sites: EligibleSites,
    prob: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-gene mutation: resample an eligible site with prob ``prob``."""
    pop = np.array(population, copy=True)
    check_population(pop, context="mutate")
    if prob <= 0:
        return pop
    mask = rng.random(pop.shape) < prob
    if mask.any():
        fresh = sites.sample(rng, pop.shape)
        pop[mask] = fresh[mask]
    return pop


def apply_elitism(
    children: np.ndarray,
    child_fitness: np.ndarray,
    elites: np.ndarray,
    elite_fitness: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Overwrite the worst children with the elite parents.

    Returns the updated (population, fitness) pair; inputs are not
    modified.  Guarantees the best fitness never regresses between
    generations.
    """
    n_elite = elites.shape[0]
    if n_elite == 0:
        return children, child_fitness
    pop = np.array(children, copy=True)
    fit = np.array(child_fitness, dtype=float, copy=True)
    worst = np.argsort(fit)[-n_elite:]
    pop[worst] = elites
    fit[worst] = elite_fitness
    return pop, fit


# ----------------------------------------------------------------------
# Fast-backend kernels.  Each is the RNG-stream-equivalent twin of the
# reference operator above: identical draws (same calls, same sizes,
# same order), identical output values — only the allocation strategy
# differs (caller-provided buffers / in-place mutation instead of a
# fresh copy per operator).  The parity suite diffs them generation by
# generation; any divergence is a bug here, never "numerical noise".


def fast_roulette_select_into(
    population: np.ndarray,
    fitness: np.ndarray,
    rng: np.random.Generator,
    out: np.ndarray,
) -> np.ndarray:
    """Roulette selection writing the new population into ``out``.

    Replicates ``rng.choice(P, size=P, p=probs)`` without its per-call
    validation and allocation overhead: ``Generator.choice`` with
    probabilities draws ``rng.random(P)`` and inverts the CDF with a
    right-sided ``searchsorted`` — doing exactly that here keeps both
    the consumed stream and the selected indices bit-identical.
    ``out`` must not alias ``population``.
    """
    probs = selection_weights(fitness)
    cdf = np.cumsum(probs)
    cdf /= cdf[-1]
    idx = cdf.searchsorted(rng.random(population.shape[0]), side="right")
    np.take(population, idx, axis=0, out=out)
    return out


def fast_crossover_inplace(
    population: np.ndarray, prob: float, rng: np.random.Generator
) -> np.ndarray:
    """Single-point tail swap of adjacent pairs, in place.

    Same draws as :func:`single_point_crossover`; the tail exchange is
    an XOR swap on the integer genes (`a ^= d; c ^= d` with
    ``d = (a ^ c) * tail``), which is exact for integers and avoids
    the two full-population ``np.where`` temporaries.
    """
    p, b = population.shape
    if b < 2 or p < 2 or prob <= 0:
        return population
    n_pairs = p // 2
    a = population[0 : 2 * n_pairs : 2]
    c = population[1 : 2 * n_pairs : 2]
    crossing = rng.random(n_pairs) < prob
    points = rng.integers(1, b, size=n_pairs)
    tail = (np.arange(b)[None, :] >= points[:, None]) & crossing[:, None]
    diff = np.bitwise_xor(a, c)
    diff *= tail  # zero outside the swapped tails
    a ^= diff
    c ^= diff
    return population


def fast_mutate_inplace(
    population: np.ndarray,
    sites: EligibleSites,
    prob: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-gene mutation in place, resampling only the hit genes.

    Draws the same two full-shape uniforms as the reference (`mutate`
    then ``EligibleSites.sample``) but evaluates the site lookup only
    at the ~``prob * P * B`` mutated positions instead of all of them.
    """
    if prob <= 0:
        return population
    mask = rng.random(population.shape) < prob
    flat = np.flatnonzero(mask)
    if flat.size:
        u = rng.random(population.shape)
        cols = flat % population.shape[1]
        k = (u.take(flat) * sites.counts[cols]).astype(np.int64)
        np.put(population, flat, sites.lookup[cols, k])
    return population


def fast_elitism_inplace(
    population: np.ndarray,
    fitness: np.ndarray,
    elites: np.ndarray,
    elite_fitness: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`apply_elitism` without the defensive copies.

    ``population``/``fitness`` are mutated and returned; the caller
    owns them (the fast generation loop's ping-pong buffers).
    """
    n_elite = elites.shape[0]
    if n_elite:
        worst = np.argsort(fitness)[-n_elite:]
        population[worst] = elites
        fitness[worst] = elite_fitness
    return population, fitness
