"""The paper's primary contribution: the Space-Time Genetic Algorithm
(STGA) and its building blocks — chromosome encoding, vectorised
fitness, genetic operators, Eq. 2 similarity and the LRU history
lookup table — plus the conventional GA baseline."""

from repro.core.chromosome import (
    EligibleSites,
    random_population,
    repair_population,
)
from repro.core.fitness import (
    assignment_makespan,
    expected_etc,
    population_fitness,
    population_makespan,
)
from repro.core.ga import GAConfig, GAResult, evolve
from repro.core.history import HistoryEntry, HistoryTable
from repro.core.islands import (
    IslandConfig,
    IslandSTGAScheduler,
    evolve_islands,
)
from repro.core.operators import (
    apply_elitism,
    mutate,
    roulette_select,
    selection_weights,
    single_point_crossover,
)
from repro.core.similarity import (
    batch_similarity,
    population_similarity,
    vector_similarity,
)
from repro.core.stga import (
    RecordingScheduler,
    StandardGAScheduler,
    STGAScheduler,
    warmup_history,
)

__all__ = [
    "EligibleSites",
    "random_population",
    "repair_population",
    "population_makespan",
    "population_fitness",
    "assignment_makespan",
    "expected_etc",
    "GAConfig",
    "GAResult",
    "evolve",
    "IslandConfig",
    "evolve_islands",
    "IslandSTGAScheduler",
    "HistoryEntry",
    "HistoryTable",
    "selection_weights",
    "roulette_select",
    "single_point_crossover",
    "mutate",
    "apply_elitism",
    "batch_similarity",
    "population_similarity",
    "vector_similarity",
    "STGAScheduler",
    "StandardGAScheduler",
    "RecordingScheduler",
    "warmup_history",
]
