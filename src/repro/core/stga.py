"""GA-based batch schedulers: the conventional GA and the paper's STGA.

Both run the identical generational loop (:func:`repro.core.ga.evolve`);
they differ only in where the initial population comes from:

* :class:`StandardGAScheduler` starts every batch from scratch with a
  fully random population — the "conventional GA" of Figure 5;
* :class:`STGAScheduler` additionally seeds the population with the
  best schedules of *similar previous batches* retrieved from a
  :class:`~repro.core.history.HistoryTable`, and stores its own result
  back after every batch.  This is the paper's evolution "over time".

:class:`RecordingScheduler` wraps any scheduler (Min-Min, Sufferage,
...) so that its decisions populate a history table — the paper's
training phase ("we use the Min-Min and Sufferage heuristics [on] a
fixed number of training jobs to generate the initial lookup table
entries"); :func:`warmup_history` runs that phase end to end.
"""

from __future__ import annotations

import numpy as np

from repro.core.fitness import expected_etc
from repro.core.ga import GAConfig, GAResult, evolve
from repro.core.history import HistoryTable
from repro.grid.batch import Batch, ScheduleResult
from repro.grid.security import DEFAULT_LAMBDA, RiskMode
from repro.heuristics.base import BatchScheduler, SecurityDrivenScheduler
from repro.registry import register_scheduler
from repro.util.backend import resolve_backend
from repro.util.rng import as_generator
from repro.util.validation import check_non_negative

__all__ = [
    "StandardGAScheduler",
    "STGAScheduler",
    "RecordingScheduler",
    "warmup_history",
]


class _GASchedulerBase(SecurityDrivenScheduler):
    """Shared machinery of the two GA schedulers.

    Parameters
    ----------
    mode, f, lam:
        Risk mode restricting the per-gene site alphabet.  The paper's
        STGA behaves like a risky scheduler (it reports the highest
        N_risk), so ``"risky"`` is the default.
    config:
        GA hyper-parameters (paper defaults in :class:`GAConfig`).
    risk_penalty:
        If > 0, fitness uses risk-penalised execution times
        (:func:`repro.core.fitness.expected_etc`) — an ablation knob,
        0 reproduces the paper.
    rng:
        Seed or generator for all GA randomness.
    backend:
        GA execution backend — ``"reference"``, ``"fast"``, or None to
        defer to ``$REPRO_BACKEND`` at decision time (see
        :mod:`repro.util.backend`).  Bit-identical either way, so this
        is a pure performance knob; it also arrives via the registry
        ref grammar, e.g. ``"stga?backend=fast"``.
    """

    def __init__(
        self,
        mode: RiskMode | str = RiskMode.RISKY,
        *,
        f: float = 0.5,
        lam: float = DEFAULT_LAMBDA,
        config: GAConfig | None = None,
        risk_penalty: float = 0.0,
        rng: int | np.random.Generator | None = 0,
        backend: str | None = None,
    ) -> None:
        super().__init__(mode, f=f, lam=lam)
        if backend is not None:
            resolve_backend(backend)  # fail fast on typos
        self.backend = backend
        self.config = config if config is not None else GAConfig()
        self.risk_penalty = check_non_negative("risk_penalty", risk_penalty)
        self.rng = as_generator(rng)
        #: GAResult of the most recent batch (None before the first);
        #: used by the convergence experiments.
        self.last_result: GAResult | None = None
        #: best fitness of the *initial* population, one entry per
        #: batch — the Figure 5 "starting point" comparison data.
        self.initial_fitnesses: list[float] = []
        #: track per-generation best fitness in last_result.history
        self.track_history = False

    def _fitness_etc(self, batch: Batch, feasible: np.ndarray) -> np.ndarray:
        etc = batch.etc[feasible]
        if self.risk_penalty > 0:
            etc = expected_etc(
                etc,
                batch.security_demands[feasible],
                batch.site_security,
                lam=self.lam,
                penalty=self.risk_penalty,
            )
        return etc

    def _seeds(self, batch: Batch, feasible: np.ndarray) -> np.ndarray | None:
        """Initial chromosomes beyond the random fill (STGA hook)."""
        return None

    def _after(
        self, batch: Batch, feasible: np.ndarray, result: GAResult
    ) -> None:
        """Post-schedule hook (STGA stores history here)."""

    def _run_ga(self, etc, ready, eligibility, *, initial) -> GAResult:
        """Run the optimiser; overridable (e.g. the island-model GA)."""
        return evolve(
            etc,
            ready,
            eligibility,
            self.rng,
            self.config,
            initial=initial,
            track_history=self.track_history,
            backend=self.backend,
        )

    def schedule(self, batch: Batch) -> ScheduleResult:
        elig = self.eligibility(batch)
        feasible = elig.any(axis=1)
        assignment = np.full(batch.n_jobs, -1, dtype=int)
        if feasible.any():
            ready = np.maximum(batch.ready, batch.now)
            result = self._run_ga(
                self._fitness_etc(batch, feasible),
                ready,
                elig[feasible],
                initial=self._seeds(batch, feasible),
            )
            assignment[feasible] = result.best
            self.last_result = result
            self.initial_fitnesses.append(result.initial_fitness)
            self._after(batch, feasible, result)
        # Dispatch shortest-execution-first (SPT).  Per-site order does
        # not affect the batch makespan (site completion is the sum of
        # its jobs), but SPT minimises the mean completion time within
        # each site's queue — the same ordering Min-Min's greedy
        # commit sequence produces naturally.
        assigned = np.flatnonzero(assignment >= 0)
        exec_times = batch.etc[assigned, assignment[assigned]]
        order = assigned[np.argsort(exec_times, kind="stable")]
        return ScheduleResult(assignment=assignment, order=order)


class StandardGAScheduler(_GASchedulerBase):
    """Conventional (space-only) GA: random initial population."""

    algorithm = "GA"


@register_scheduler(
    "ga",
    description="conventional (space-only) GA — random initial "
    "population every batch, the Figure 5 baseline",
    aliases=("standard-ga",),
    stateful=True,  # carries its GA rng stream across batches
)
def _build_standard_ga(
    settings,
    rng,
    *,
    defaults=None,
    scenario=None,  # per-run context, unused: no history warm-up
    training=None,
    ga_config=None,
    mode: str = "f-risky",
    f=None,
    **params,
):
    """Registry factory matching the ablation's "conventional GA" setup
    (same gene alphabet as the STGA for a fair contrast)."""
    if f is None:
        f = defaults.f_risky if defaults is not None else 0.5
    return StandardGAScheduler(
        mode,
        f=float(f),
        lam=settings.lam,
        config=ga_config if ga_config is not None else settings.ga,
        rng=rng.stream("conventional-ga"),
        **params,
    )


class STGAScheduler(_GASchedulerBase):
    """The Space-Time Genetic Algorithm (paper Section 3).

    Additional parameters
    ---------------------
    history:
        A :class:`HistoryTable` to query and update; a fresh table
        with the paper's Table 1 settings (capacity 150, threshold
        0.8, LRU) is created when omitted.  Pass a pre-warmed table to
        reproduce the paper's training protocol (see
        :func:`warmup_history`).
    max_seed_fraction:
        Cap on the share of the initial population taken by history
        seeds; the remainder stays random "to guarantee enough
        diversity" (paper).  Default 0.5.
    heuristic_seeds:
        Also seed the population with the *current batch's* Min-Min
        and Sufferage solutions (under the STGA's own risk mode).
        Braun et al. [7] — the heuristic framework the paper builds
        on — seed their GA the same way; combined with elitism this
        makes the STGA's per-batch schedule no worse than the
        heuristics'.  Default True; disable to study the history
        table in isolation (see the ablation benches).
    """

    algorithm = "STGA"

    def __init__(
        self,
        mode: RiskMode | str = RiskMode.RISKY,
        *,
        f: float = 0.5,
        lam: float = DEFAULT_LAMBDA,
        config: GAConfig | None = None,
        risk_penalty: float = 0.0,
        rng: int | np.random.Generator | None = 0,
        backend: str | None = None,
        history: HistoryTable | None = None,
        max_seed_fraction: float = 0.5,
        heuristic_seeds: bool = True,
    ) -> None:
        super().__init__(
            mode,
            f=f,
            lam=lam,
            config=config,
            risk_penalty=risk_penalty,
            rng=rng,
            backend=backend,
        )
        if not (0.0 < max_seed_fraction <= 1.0):
            raise ValueError(
                f"max_seed_fraction must be in (0, 1], got {max_seed_fraction}"
            )
        self.history = history if history is not None else HistoryTable()
        self.max_seed_fraction = max_seed_fraction
        self.heuristic_seeds = heuristic_seeds

    @property
    def name(self) -> str:
        return self.label if self.label is not None else "STGA"

    def _sub_batch(self, batch: Batch, feasible: np.ndarray) -> Batch:
        """The feasible-job view of ``batch`` (what the GA solves)."""
        return Batch(
            now=batch.now,
            job_ids=batch.job_ids[feasible],
            workloads=batch.workloads[feasible],
            security_demands=batch.security_demands[feasible],
            secure_only=batch.secure_only[feasible],
            etc=batch.etc[feasible],
            ready=batch.ready,
            site_security=batch.site_security,
            speeds=batch.speeds,
        )

    def _heuristic_seeds(
        self, batch: Batch, feasible: np.ndarray
    ) -> list[np.ndarray]:
        from repro.heuristics.minmin import MinMinScheduler
        from repro.heuristics.sufferage import SufferageScheduler

        sub = self._sub_batch(batch, feasible)
        seeds = []
        for cls in (MinMinScheduler, SufferageScheduler):
            sched = cls(self.mode, f=self.f, lam=self.lam)
            assignment = np.asarray(sched.schedule(sub).assignment)
            if (assignment >= 0).all():  # feasible jobs are assignable
                seeds.append(assignment)
        return seeds

    def _seeds(self, batch: Batch, feasible: np.ndarray) -> np.ndarray | None:
        ready_rel = np.maximum(batch.ready, batch.now) - batch.now
        max_seeds = max(
            1, int(self.config.population_size * self.max_seed_fraction)
        )
        matches = self.history.query(
            ready_rel,
            batch.etc[feasible],
            batch.security_demands[feasible],
            max_results=max_seeds,
        )
        if self.heuristic_seeds:
            matches = self._heuristic_seeds(batch, feasible) + matches
        if not matches:
            return None
        return np.stack(matches[:max_seeds])

    def _after(
        self, batch: Batch, feasible: np.ndarray, result: GAResult
    ) -> None:
        ready_rel = np.maximum(batch.ready, batch.now) - batch.now
        self.history.insert(
            ready_rel,
            batch.etc[feasible],
            batch.security_demands[feasible],
            result.best,
        )


class RecordingScheduler(BatchScheduler):
    """Wrap a scheduler so its decisions populate a history table.

    Only the jobs it actually assigned are recorded (deferred jobs
    carry no schedule information).
    """

    def __init__(self, inner: BatchScheduler, history: HistoryTable) -> None:
        self.inner = inner
        self.history = history

    @property
    def name(self) -> str:
        return f"Recording({self.inner.name})"

    def schedule(self, batch: Batch) -> ScheduleResult:
        result = self.inner.schedule(batch)
        assigned = np.asarray(result.assignment) >= 0
        if assigned.any():
            ready_rel = np.maximum(batch.ready, batch.now) - batch.now
            self.history.insert(
                ready_rel,
                batch.etc[assigned],
                batch.security_demands[assigned],
                np.asarray(result.assignment)[assigned],
            )
        return result


def warmup_history(
    history: HistoryTable,
    grid,
    training_jobs,
    *,
    trainer: BatchScheduler | None = None,
    batch_interval: float = 100.0,
    lam: float = DEFAULT_LAMBDA,
    rng: int | np.random.Generator | None = 0,
) -> None:
    """Populate ``history`` by scheduling ``training_jobs`` (paper:
    500 jobs through Min-Min) on ``grid``.

    Runs a throwaway simulation with a :class:`RecordingScheduler`;
    the simulation result is discarded, only the table matters.
    """
    from repro.grid.engine import GridSimulator  # local: avoid cycle
    from repro.heuristics.minmin import MinMinScheduler

    if trainer is None:
        trainer = MinMinScheduler(RiskMode.RISKY, lam=lam)
    recorder = RecordingScheduler(trainer, history)
    sim = GridSimulator(
        grid,
        recorder,
        batch_interval=batch_interval,
        lam=lam,
        rng=rng,
    )
    sim.run(training_jobs)
