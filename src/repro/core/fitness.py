"""Vectorised fitness evaluation for the GA schedulers.

Fitness of a chromosome is the *batch makespan* it induces: with site
ready times ``r_s`` and execution-time matrix ``ETC``, the completion
of site s is ``r_s + sum of ETC[j, s] over jobs assigned to s`` and the
makespan is the maximum over sites that received at least one job.
(The sum is order-independent, so the GA optimises exactly what the
engine will realise regardless of dispatch order.)

The whole population is evaluated with a single ``bincount`` — no
Python-level loop over chromosomes — which is what makes 100
generations x 200 chromosomes per scheduling event affordable.

``expected_etc`` implements the optional *risk-penalised* fitness
(ablation): execution times are inflated by the expected rework cost
``P(fail) * penalty``, discouraging risky placements without banning
them.
"""

from __future__ import annotations

import numpy as np

from repro.grid.security import DEFAULT_LAMBDA, failure_probability

__all__ = [
    "population_makespan",
    "population_fitness",
    "assignment_makespan",
    "expected_etc",
]


def population_makespan(
    population: np.ndarray, etc: np.ndarray, ready: np.ndarray
) -> np.ndarray:
    """Makespan of every chromosome; shape (P,).

    Parameters
    ----------
    population:
        Integer (P, B) site assignments.
    etc:
        (B, S) execution times.
    ready:
        (S,) site ready times (already clipped to >= now).

    This delegates to :func:`population_fitness` with
    ``flow_weight=0`` — the two used to carry separate copies of the
    bincount/occupied/makespan block, and a fix landing in only one of
    them is exactly the bug class the delegation removes.
    """
    return population_fitness(population, etc, ready, flow_weight=0.0)


def population_fitness(
    population: np.ndarray,
    etc: np.ndarray,
    ready: np.ndarray,
    *,
    flow_weight: float = 0.0,
) -> np.ndarray:
    """Makespan plus an optional aggregate-flow penalty; shape (P,).

    With ``flow_weight = 0`` this is exactly
    :func:`population_makespan`.  A positive weight adds
    ``flow_weight * mean_j (ready[site_j] + etc[j, site_j])`` — each
    job's completion time were it dispatched directly after the site's
    current backlog (intra-batch queueing ignored).  This is the same
    per-job quantity Min-Min greedily minimises; as a secondary term
    it steers the GA away from parking jobs on backlogged or slow
    sites when that does not pay off in makespan, improving average
    response time.  It is an implementation knob: the paper's fitness
    wording ("the completion time of the schedule") does not pin the
    tie-breaking down, and 0 reproduces the literal makespan
    objective.
    """
    if flow_weight < 0:
        raise ValueError(f"flow_weight must be non-negative, got {flow_weight}")
    pop = np.asarray(population, dtype=np.int64)
    etc = np.asarray(etc, dtype=float)
    ready = np.asarray(ready, dtype=float)
    if pop.ndim != 2:
        raise ValueError(f"population must be (P, B), got shape {pop.shape}")
    p, b = pop.shape
    s = etc.shape[1]
    if etc.shape[0] != b or ready.shape != (s,):
        raise ValueError(
            f"incompatible shapes: pop {pop.shape}, etc {etc.shape}, "
            f"ready {ready.shape}"
        )
    if (pop < 0).any() or (pop >= s).any():
        raise ValueError("population contains site indices outside [0, S)")

    weights = etc[np.arange(b)[None, :], pop]
    flat = (pop + (np.arange(p)[:, None] * s)).ravel()
    loads = np.bincount(flat, weights=weights.ravel(), minlength=p * s)
    loads = loads.reshape(p, s)
    occupied = np.bincount(flat, minlength=p * s).reshape(p, s) > 0
    completion = ready[None, :] + loads
    makespan = np.where(occupied, completion, -np.inf).max(axis=1)
    if flow_weight == 0.0:
        return makespan
    per_job = ready[pop] + weights  # (P, B) backlog-relative completions
    return makespan + flow_weight * per_job.mean(axis=1)


def assignment_makespan(
    assignment: np.ndarray, etc: np.ndarray, ready: np.ndarray
) -> float:
    """Makespan of a single assignment vector (convenience wrapper)."""
    a = np.asarray(assignment, dtype=np.int64)
    return float(population_makespan(a[None, :], etc, ready)[0])


def expected_etc(
    etc: np.ndarray,
    security_demands: np.ndarray,
    security_levels: np.ndarray,
    *,
    lam: float = DEFAULT_LAMBDA,
    penalty: float = 1.0,
) -> np.ndarray:
    """Risk-penalised execution times.

    Each entry is inflated to ``etc * (1 + penalty * P(fail))``: with
    ``penalty = 1`` a placement that fails with probability p is
    charged p extra copies of its execution time — a first-order model
    of the fail-stop restart cost.
    """
    if penalty < 0:
        raise ValueError(f"penalty must be non-negative, got {penalty}")
    pfail = failure_probability(
        np.asarray(security_demands, dtype=float)[:, None],
        np.asarray(security_levels, dtype=float)[None, :],
        lam=lam,
    )
    return np.asarray(etc, dtype=float) * (1.0 + penalty * pfail)
