"""Vectorised fitness evaluation for the GA schedulers.

Fitness of a chromosome is the *batch makespan* it induces: with site
ready times ``r_s`` and execution-time matrix ``ETC``, the completion
of site s is ``r_s + sum of ETC[j, s] over jobs assigned to s`` and the
makespan is the maximum over sites that received at least one job.
(The sum is order-independent, so the GA optimises exactly what the
engine will realise regardless of dispatch order.)

The whole population is evaluated with a single ``bincount`` — no
Python-level loop over chromosomes — which is what makes 100
generations x 200 chromosomes per scheduling event affordable.

``expected_etc`` implements the optional *risk-penalised* fitness
(ablation): execution times are inflated by the expected rework cost
``P(fail) * penalty``, discouraging risky placements without banning
them.
"""

from __future__ import annotations

import numpy as np

from repro.core.chromosome import check_population
from repro.grid.security import DEFAULT_LAMBDA, failure_probability

__all__ = [
    "population_makespan",
    "population_fitness",
    "FitnessWorkspace",
    "assignment_makespan",
    "expected_etc",
]


def population_makespan(
    population: np.ndarray, etc: np.ndarray, ready: np.ndarray
) -> np.ndarray:
    """Makespan of every chromosome; shape (P,).

    Parameters
    ----------
    population:
        Integer (P, B) site assignments.
    etc:
        (B, S) execution times.
    ready:
        (S,) site ready times (already clipped to >= now).

    This delegates to :func:`population_fitness` with
    ``flow_weight=0`` — the two used to carry separate copies of the
    bincount/occupied/makespan block, and a fix landing in only one of
    them is exactly the bug class the delegation removes.
    """
    return population_fitness(population, etc, ready, flow_weight=0.0)


def population_fitness(
    population: np.ndarray,
    etc: np.ndarray,
    ready: np.ndarray,
    *,
    flow_weight: float = 0.0,
) -> np.ndarray:
    """Makespan plus an optional aggregate-flow penalty; shape (P,).

    With ``flow_weight = 0`` this is exactly
    :func:`population_makespan`.  A positive weight adds
    ``flow_weight * mean_j (ready[site_j] + etc[j, site_j])`` — each
    job's completion time were it dispatched directly after the site's
    current backlog (intra-batch queueing ignored).  This is the same
    per-job quantity Min-Min greedily minimises; as a secondary term
    it steers the GA away from parking jobs on backlogged or slow
    sites when that does not pay off in makespan, improving average
    response time.  It is an implementation knob: the paper's fitness
    wording ("the completion time of the schedule") does not pin the
    tie-breaking down, and 0 reproduces the literal makespan
    objective.
    """
    if flow_weight < 0:
        raise ValueError(f"flow_weight must be non-negative, got {flow_weight}")
    check_population(population, context="population_fitness")
    pop = np.asarray(population, dtype=np.int64)
    etc = np.asarray(etc, dtype=float)
    ready = np.asarray(ready, dtype=float)
    p, b = pop.shape
    s = etc.shape[1]
    if etc.shape[0] != b or ready.shape != (s,):
        raise ValueError(
            f"incompatible shapes: pop {pop.shape}, etc {etc.shape}, "
            f"ready {ready.shape}"
        )
    check_population(pop, s, context="population_fitness")

    weights = etc[np.arange(b)[None, :], pop]
    flat = (pop + (np.arange(p)[:, None] * s)).ravel()
    loads = np.bincount(flat, weights=weights.ravel(), minlength=p * s)
    loads = loads.reshape(p, s)
    occupied = np.bincount(flat, minlength=p * s).reshape(p, s) > 0
    completion = ready[None, :] + loads
    makespan = np.where(occupied, completion, -np.inf).max(axis=1)
    if flow_weight == 0.0:
        return makespan
    per_job = ready[pop] + weights  # (P, B) backlog-relative completions
    return makespan + flow_weight * per_job.mean(axis=1)


class FitnessWorkspace:
    """Preallocated, bit-identical fitness evaluator for hot loops.

    :func:`population_fitness` re-derives gather indices, re-validates,
    and runs a second *counting* ``bincount`` just to know which sites
    are occupied — fine for one call, wasteful for the thousands of
    generation steps a scheduling decision makes with the **same**
    ``etc``/``ready``/``flow_weight``.  The workspace hoists everything
    batch-constant out of the loop and reuses scratch buffers across
    calls, while performing the same floating-point operations in the
    same order, so ``evaluate(pop)`` returns the bit-exact value of
    ``population_fitness(pop, etc, ready, flow_weight=...)``.

    The occupancy shortcut: when every execution time is positive
    (checked once at construction), a site is occupied iff its summed
    load is positive, so the counting ``bincount`` can be replaced by
    ``loads > 0``.  With any zero entries in ``etc`` the workspace
    falls back to the counting ``bincount``.

    ``evaluate`` assumes a validated integer population with genes in
    ``[0, n_sites)`` — the GA loop guarantees this because every gene
    comes from an :class:`~repro.core.chromosome.EligibleSites` lookup;
    external entry points validate via :func:`population_fitness`.
    """

    def __init__(
        self,
        etc: np.ndarray,
        ready: np.ndarray,
        *,
        flow_weight: float = 0.0,
    ) -> None:
        if flow_weight < 0:
            raise ValueError(f"flow_weight must be non-negative, got {flow_weight}")
        self.etc = np.ascontiguousarray(etc, dtype=float)
        self.ready = np.asarray(ready, dtype=float)
        self.flow_weight = float(flow_weight)
        if self.etc.ndim != 2 or self.ready.shape != (self.etc.shape[1],):
            raise ValueError(
                f"incompatible shapes: etc {self.etc.shape}, "
                f"ready {self.ready.shape}"
            )
        self.n_jobs, self.n_sites = self.etc.shape
        self._etc_flat = self.etc.ravel()
        #: start of job j's row in the flattened etc
        self._job_offsets = np.arange(self.n_jobs, dtype=np.int64) * self.n_sites
        self._all_positive = bool((self.etc > 0).all())
        self._p = -1  # scratch buffers are sized on first evaluate

    def _ensure_buffers(self, p: int) -> None:
        if p == self._p:
            return
        self._p = p
        b = self.n_jobs
        self._idx = np.empty((p, b), dtype=np.int64)
        self._weights = np.empty((p, b), dtype=float)
        self._row_offsets = (np.arange(p, dtype=np.int64) * self.n_sites)[:, None]
        self._empty_sites = np.empty((p, self.n_sites), dtype=bool)
        self._per_job = np.empty((p, b), dtype=float) if self.flow_weight else None

    def evaluate(self, population: np.ndarray) -> np.ndarray:
        """Fitness of every chromosome; shape (P,).  Allocates only the
        returned array and the ``bincount`` result."""
        pop = population
        p, s = pop.shape[0], self.n_sites
        self._ensure_buffers(p)
        idx, weights = self._idx, self._weights
        # weights[i, j] = etc[j, pop[i, j]] — same gather as the fancy
        # index in population_fitness, via the flattened etc.
        np.add(pop, self._job_offsets, out=idx)
        np.take(self._etc_flat, idx, out=weights)
        # per-(chromosome, site) bin index, reusing the idx buffer
        np.add(pop, self._row_offsets, out=idx)
        flat = idx.ravel()
        loads = np.bincount(flat, weights=weights.ravel(), minlength=p * s)
        loads = loads.reshape(p, s)
        empty = self._empty_sites
        if self._all_positive:
            # all etc > 0 → a site's summed load is 0 iff no job hit it,
            # sparing the counting bincount the reference needs.
            np.less_equal(loads, 0.0, out=empty)
        else:
            counts = np.bincount(flat, minlength=p * s).reshape(p, s)
            np.equal(counts, 0, out=empty)
        loads += self.ready[None, :]  # loads is now the completion matrix
        np.copyto(loads, -np.inf, where=empty)
        makespan = loads.max(axis=1)
        if self.flow_weight == 0.0:
            return makespan
        per_job = self._per_job
        np.take(self.ready, pop, out=per_job)
        per_job += weights
        return makespan + self.flow_weight * per_job.mean(axis=1)


def assignment_makespan(
    assignment: np.ndarray, etc: np.ndarray, ready: np.ndarray
) -> float:
    """Makespan of a single assignment vector (convenience wrapper)."""
    a = np.asarray(assignment, dtype=np.int64)
    return float(population_makespan(a[None, :], etc, ready)[0])


def expected_etc(
    etc: np.ndarray,
    security_demands: np.ndarray,
    security_levels: np.ndarray,
    *,
    lam: float = DEFAULT_LAMBDA,
    penalty: float = 1.0,
) -> np.ndarray:
    """Risk-penalised execution times.

    Each entry is inflated to ``etc * (1 + penalty * P(fail))``: with
    ``penalty = 1`` a placement that fails with probability p is
    charged p extra copies of its execution time — a first-order model
    of the fail-stop restart cost.
    """
    if penalty < 0:
        raise ValueError(f"penalty must be non-negative, got {penalty}")
    pfail = failure_probability(
        np.asarray(security_demands, dtype=float)[:, None],
        np.asarray(security_levels, dtype=float)[None, :],
        lam=lam,
    )
    return np.asarray(etc, dtype=float) * (1.0 + penalty * pfail)
