"""Vector similarity for history-table matching (paper Eq. 2).

The paper defines, for two k-element vectors a and b::

    Similarity(a, b) = 1 - sum_i |a_i - b_i| / max{max_i a_i, max_i b_i}

Taken literally the numerator grows with k while the denominator does
not, so for k > 1 the value is typically far below 0 and a fixed 0.8
threshold would never match anything.  We therefore provide both:

* ``normalized=True`` (default): divide the summed deviation by k,
  i.e. ``1 - mean|a_i - b_i| / max{...}`` — the only reading under
  which Table 1's 0.8 threshold behaves as described;
* ``normalized=False``: the literal formula, for fidelity studies.

An entry's overall similarity to the incoming batch is the *average*
of the three per-parameter similarities — site ready times, flattened
ETC matrix, job security demands — exactly the three inputs the paper
stores per lookup-table entry.
"""

from __future__ import annotations

import numpy as np

__all__ = ["vector_similarity", "population_similarity", "batch_similarity"]


def vector_similarity(a, b, *, normalized: bool = True) -> float:
    """Eq. 2 similarity between equal-length non-negative vectors.

    Returns 1.0 for two identical vectors (including all-zero ones);
    values may be negative for very dissimilar vectors.
    """
    av = np.asarray(a, dtype=float).ravel()
    bv = np.asarray(b, dtype=float).ravel()
    if av.shape != bv.shape:
        raise ValueError(
            f"vectors must have equal length, got {av.size} and {bv.size}"
        )
    if av.size == 0:
        raise ValueError("similarity of empty vectors is undefined")
    denom = max(av.max(), bv.max())
    if denom <= 0:
        # Both vectors are entirely <= 0; identical-zero means similar.
        return 1.0 if np.array_equal(av, bv) else 0.0
    total = float(np.abs(av - bv).sum())
    if normalized:
        total /= av.size
    return 1.0 - total / denom


def population_similarity(stack, vec, *, normalized: bool = True) -> np.ndarray:
    """Eq. 2 similarity of every row of ``stack`` against ``vec``.

    ``stack`` is a (K, n) matrix of K stored vectors; the return value
    is a (K,) array where entry k equals
    ``vector_similarity(stack[k], vec)`` exactly (same operations in
    the same order, so the results are bit-identical).  This is the
    kernel behind the vectorised :meth:`HistoryTable.query
    <repro.core.history.HistoryTable.query>`: one numpy pass replaces
    K Python-level comparisons.
    """
    m = np.asarray(stack, dtype=float)
    v = np.asarray(vec, dtype=float).ravel()
    if m.ndim != 2:
        raise ValueError(f"stack must be 2-D (K, n), got shape {m.shape}")
    if m.shape[1] != v.size:
        raise ValueError(
            f"stack rows have length {m.shape[1]}, vector has {v.size}"
        )
    if v.size == 0:
        raise ValueError("similarity of empty vectors is undefined")
    if m.shape[0] == 0:
        return np.empty(0, dtype=float)
    denom = np.maximum(m.max(axis=1), v.max())
    totals = np.abs(m - v[None, :]).sum(axis=1)
    if normalized:
        totals = totals / v.size
    with np.errstate(divide="ignore", invalid="ignore"):
        sims = 1.0 - totals / denom
    degenerate = denom <= 0  # both rows entirely <= 0 (see above)
    if degenerate.any():
        sims[degenerate] = np.where(
            (m[degenerate] == v[None, :]).all(axis=1), 1.0, 0.0
        )
    return sims


def batch_similarity(
    ready_a,
    etc_a,
    sd_a,
    ready_b,
    etc_b,
    sd_b,
    *,
    normalized: bool = True,
) -> float:
    """Average Eq. 2 similarity over the three lookup parameters.

    The two batches must have identical shapes (same number of jobs
    and sites); shape-incompatible entries are filtered out before
    this is called.
    """
    etc_a = np.asarray(etc_a, dtype=float)
    etc_b = np.asarray(etc_b, dtype=float)
    if etc_a.shape != etc_b.shape:
        raise ValueError(
            f"ETC shapes differ: {etc_a.shape} vs {etc_b.shape}"
        )
    sims = (
        vector_similarity(ready_a, ready_b, normalized=normalized),
        vector_similarity(etc_a.ravel(), etc_b.ravel(), normalized=normalized),
        vector_similarity(sd_a, sd_b, normalized=normalized),
    )
    return float(np.mean(sims))
