"""The STGA history lookup table (paper Section 3, Figure 6).

Each entry stores the three batch parameters — site ready times, ETC
matrix, job security demands — together with the best schedule found
for that batch.  On a new batch the table is queried for entries whose
average Eq. 2 similarity exceeds the threshold (Table 1: 0.8, table
size 150) and their stored schedules seed the GA's initial population.
Entries are evicted LRU, where both insertion and a successful match
count as "use" — a recurring workload keeps its seeds alive, exactly
the temporal-locality argument the paper makes.

Ready times are compared *relative to the batch instant* (the stored
vector is ``ready - now``): two identical load patterns occurring on
different days should match, and absolute simulation timestamps would
otherwise dominate Eq. 2's denominator.

Queries are vectorised: same-shape entries are cached as stacked
arrays (one block per (B, S) shape) and all Eq. 2 similarities are
computed in a single numpy pass
(:func:`repro.core.similarity.population_similarity`), instead of a
Python-level loop over up to ``capacity`` entries per scheduling
event.  Neither an LRU refresh-on-match nor an evict+insert of
matching shape at capacity invalidates the stacks — the former only
reorders ``_entries`` and the latter overwrites the victim's row in
place — so the steady-state churn of a full table costs no rebuilds.
``benchmarks/test_history_query_speed.py`` pins both the speedup and
the stack stability under match-heavy churn.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.similarity import population_similarity
from repro.util.validation import check_positive

__all__ = ["HistoryEntry", "HistoryTable"]


@dataclass(frozen=True)
class HistoryEntry:
    """One remembered batch and its schedule."""

    ready: np.ndarray  # (S,) site ready times relative to the batch time
    etc: np.ndarray  # (B, S) execution-time matrix
    security_demands: np.ndarray  # (B,)
    assignment: np.ndarray  # (B,) the schedule that was committed

    @property
    def shape(self) -> tuple[int, int]:
        """(B, S) — only same-shape entries are comparable."""
        return self.etc.shape


class _ShapeBlock:
    """Same-shape entries stacked for one-pass Eq. 2 scoring.

    Stacks are rebuilt lazily: inserts and evictions append/remove a
    row and drop the cached stacks; the next query restacks once.  LRU
    reordering does not touch the block (row order is immaterial — the
    score sort is on (similarity, insertion id)), and an evict+insert
    of matching shape — the steady state of a full table under churn —
    overwrites the victim's row *in place* via :meth:`replace_row`
    instead of invalidating the stacks, so a match-heavy workload at
    capacity never pays the O(capacity) restack per scheduling event.
    """

    __slots__ = ("keys", "_ready", "_etc", "_sd", "_stacks")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self._ready: list[np.ndarray] = []
        self._etc: list[np.ndarray] = []
        self._sd: list[np.ndarray] = []
        self._stacks: tuple[np.ndarray, ...] | None = None

    def add(self, key: int, entry: HistoryEntry) -> None:
        self.keys.append(key)
        self._ready.append(entry.ready)
        self._etc.append(entry.etc.ravel())
        self._sd.append(entry.security_demands)
        self._stacks = None

    def remove(self, key: int) -> None:
        i = self.keys.index(key)
        for lst in (self.keys, self._ready, self._etc, self._sd):
            lst.pop(i)
        self._stacks = None

    def replace_row(self, old_key: int, new_key: int, entry: HistoryEntry) -> None:
        """Overwrite ``old_key``'s row with ``entry`` — stacks stay valid.

        The stacked arrays own copies of the entry data (``np.stack``
        copies), so writing the rows in place cannot alias the new
        entry's arrays.
        """
        i = self.keys.index(old_key)
        self.keys[i] = new_key
        self._ready[i] = entry.ready
        self._etc[i] = entry.etc.ravel()
        self._sd[i] = entry.security_demands
        if self._stacks is not None:
            ready_s, etc_s, sd_s = self._stacks
            ready_s[i] = entry.ready
            etc_s[i] = entry.etc.ravel()
            sd_s[i] = entry.security_demands

    def stacks(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._stacks is None:
            self._stacks = (
                np.stack(self._ready),
                np.stack(self._etc),
                np.stack(self._sd),
            )
        return self._stacks

    def __len__(self) -> int:
        return len(self.keys)


@dataclass
class HistoryTable:
    """Fixed-capacity LRU store of :class:`HistoryEntry` objects.

    Parameters
    ----------
    capacity:
        Maximum number of entries (Table 1: 150).
    threshold:
        Minimum average similarity for a match (Table 1: 0.8).
    normalized:
        Use the length-normalised Eq. 2 (see
        :mod:`repro.core.similarity`).
    eviction:
        ``"lru"`` (paper) or ``"fifo"`` (ablation baseline).
    """

    capacity: int = 150
    threshold: float = 0.8
    normalized: bool = True
    eviction: str = "lru"
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _ids: itertools.count = field(default_factory=itertools.count, repr=False)
    #: per-shape stacked views of ``_entries`` (vectorised scoring)
    _blocks: dict = field(default_factory=dict, repr=False)
    #: query statistics, exposed for the experiment reports
    queries: int = 0
    hits: int = 0

    def __post_init__(self) -> None:
        check_positive("capacity", self.capacity)
        if not (0.0 <= self.threshold <= 1.0):
            raise ValueError(f"threshold must be in [0,1], got {self.threshold}")
        if self.eviction not in ("lru", "fifo"):
            raise ValueError(
                f"eviction must be 'lru' or 'fifo', got {self.eviction!r}"
            )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of queries that returned at least one seed."""
        return self.hits / self.queries if self.queries else 0.0

    def insert(self, ready, etc, security_demands, assignment) -> None:
        """Store a batch and its committed schedule, evicting if full."""
        etc = np.array(etc, dtype=float, copy=True)
        stored = np.array(assignment, dtype=np.int64, copy=True)
        # Queries hand this array out directly (no per-match copy), so
        # freeze it — a caller mutating a result cannot corrupt the
        # table, it gets a ValueError instead.
        stored.setflags(write=False)
        entry = HistoryEntry(
            ready=np.array(ready, dtype=float, copy=True),
            etc=etc,
            security_demands=np.array(security_demands, dtype=float, copy=True),
            assignment=stored,
        )
        if entry.assignment.shape[0] != etc.shape[0]:
            raise ValueError(
                f"assignment length {entry.assignment.shape[0]} does not "
                f"match {etc.shape[0]} jobs"
            )
        if entry.ready.shape[0] != etc.shape[1]:
            raise ValueError(
                f"ready length {entry.ready.shape[0]} does not match "
                f"{etc.shape[1]} sites"
            )
        evicted: list[tuple[int, HistoryEntry]] = []
        while len(self._entries) >= self.capacity:
            # least recently used / oldest
            evicted.append(self._entries.popitem(last=False))
        key = next(self._ids)
        self._entries[key] = entry
        if (
            len(evicted) == 1
            and evicted[0][1].shape == entry.shape
            and entry.shape in self._blocks
        ):
            # steady state of a full table: swap the victim's row in
            # place, keeping the block's cached stacks valid
            self._blocks[entry.shape].replace_row(evicted[0][0], key, entry)
            return
        for old_key, old_entry in evicted:
            self._drop_from_block(old_key, old_entry)
        block = self._blocks.get(entry.shape)
        if block is None:
            block = self._blocks[entry.shape] = _ShapeBlock()
        block.add(key, entry)

    def query(
        self, ready, etc, security_demands, *, max_results: int | None = None
    ) -> list[np.ndarray]:
        """Schedules of matching entries, best-similarity first.

        A match refreshes the entry's LRU position (unless eviction is
        FIFO).  Returns the stored arrays themselves, marked read-only
        — copy before mutating.  (The per-match ``.copy()`` this
        replaces was the last allocation scaling with the hit count on
        the scheduling hot path; see
        ``benchmarks/test_history_query_speed.py``.)
        """
        etc = np.asarray(etc, dtype=float)
        ready = np.asarray(ready, dtype=float)
        sds = np.asarray(security_demands, dtype=float)
        self.queries += 1

        scored: list[tuple[float, int]] = []
        block = self._blocks.get(etc.shape)
        if block is not None and len(block):
            ready_s, etc_s, sd_s = block.stacks()
            # Eq. 2 per parameter across all K same-shape entries in
            # one numpy pass, then the three-way average — the exact
            # computation batch_similarity performs entry by entry.
            sims = (
                population_similarity(ready_s, ready, normalized=self.normalized)
                + population_similarity(
                    etc_s, etc.ravel(), normalized=self.normalized
                )
                + population_similarity(sd_s, sds, normalized=self.normalized)
            ) / 3.0
            for i in np.flatnonzero(sims >= self.threshold):
                scored.append((float(sims[i]), block.keys[i]))

        scored.sort(key=lambda t: (-t[0], t[1]))
        if max_results is not None:
            scored = scored[:max_results]
        if scored:
            self.hits += 1
        results = []
        for _, key in scored:
            if self.eviction == "lru":
                self._entries.move_to_end(key)
            results.append(self._entries[key].assignment)
        return results

    def _drop_from_block(self, key: int, entry: HistoryEntry) -> None:
        block = self._blocks[entry.shape]
        block.remove(key)
        if not len(block):
            del self._blocks[entry.shape]

    def clear(self) -> None:
        """Drop every entry and reset statistics."""
        self._entries.clear()
        self._blocks.clear()
        self.queries = 0
        self.hits = 0
