"""The STGA history lookup table (paper Section 3, Figure 6).

Each entry stores the three batch parameters — site ready times, ETC
matrix, job security demands — together with the best schedule found
for that batch.  On a new batch the table is queried for entries whose
average Eq. 2 similarity exceeds the threshold (Table 1: 0.8, table
size 150) and their stored schedules seed the GA's initial population.
Entries are evicted LRU, where both insertion and a successful match
count as "use" — a recurring workload keeps its seeds alive, exactly
the temporal-locality argument the paper makes.

Ready times are compared *relative to the batch instant* (the stored
vector is ``ready - now``): two identical load patterns occurring on
different days should match, and absolute simulation timestamps would
otherwise dominate Eq. 2's denominator.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.similarity import batch_similarity
from repro.util.validation import check_positive

__all__ = ["HistoryEntry", "HistoryTable"]


@dataclass(frozen=True)
class HistoryEntry:
    """One remembered batch and its schedule."""

    ready: np.ndarray  # (S,) site ready times relative to the batch time
    etc: np.ndarray  # (B, S) execution-time matrix
    security_demands: np.ndarray  # (B,)
    assignment: np.ndarray  # (B,) the schedule that was committed

    @property
    def shape(self) -> tuple[int, int]:
        """(B, S) — only same-shape entries are comparable."""
        return self.etc.shape


@dataclass
class HistoryTable:
    """Fixed-capacity LRU store of :class:`HistoryEntry` objects.

    Parameters
    ----------
    capacity:
        Maximum number of entries (Table 1: 150).
    threshold:
        Minimum average similarity for a match (Table 1: 0.8).
    normalized:
        Use the length-normalised Eq. 2 (see
        :mod:`repro.core.similarity`).
    eviction:
        ``"lru"`` (paper) or ``"fifo"`` (ablation baseline).
    """

    capacity: int = 150
    threshold: float = 0.8
    normalized: bool = True
    eviction: str = "lru"
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _ids: itertools.count = field(default_factory=itertools.count, repr=False)
    #: query statistics, exposed for the experiment reports
    queries: int = 0
    hits: int = 0

    def __post_init__(self) -> None:
        check_positive("capacity", self.capacity)
        if not (0.0 <= self.threshold <= 1.0):
            raise ValueError(f"threshold must be in [0,1], got {self.threshold}")
        if self.eviction not in ("lru", "fifo"):
            raise ValueError(
                f"eviction must be 'lru' or 'fifo', got {self.eviction!r}"
            )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of queries that returned at least one seed."""
        return self.hits / self.queries if self.queries else 0.0

    def insert(self, ready, etc, security_demands, assignment) -> None:
        """Store a batch and its committed schedule, evicting if full."""
        etc = np.array(etc, dtype=float, copy=True)
        entry = HistoryEntry(
            ready=np.array(ready, dtype=float, copy=True),
            etc=etc,
            security_demands=np.array(security_demands, dtype=float, copy=True),
            assignment=np.array(assignment, dtype=np.int64, copy=True),
        )
        if entry.assignment.shape[0] != etc.shape[0]:
            raise ValueError(
                f"assignment length {entry.assignment.shape[0]} does not "
                f"match {etc.shape[0]} jobs"
            )
        if entry.ready.shape[0] != etc.shape[1]:
            raise ValueError(
                f"ready length {entry.ready.shape[0]} does not match "
                f"{etc.shape[1]} sites"
            )
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)  # least recently used / oldest
        self._entries[next(self._ids)] = entry

    def query(
        self, ready, etc, security_demands, *, max_results: int | None = None
    ) -> list[np.ndarray]:
        """Schedules of matching entries, best-similarity first.

        A match refreshes the entry's LRU position (unless eviction is
        FIFO).  Returns copies — callers may mutate freely.
        """
        etc = np.asarray(etc, dtype=float)
        ready = np.asarray(ready, dtype=float)
        sds = np.asarray(security_demands, dtype=float)
        self.queries += 1

        scored: list[tuple[float, int]] = []
        for key, entry in self._entries.items():
            if entry.shape != etc.shape:
                continue
            sim = batch_similarity(
                entry.ready,
                entry.etc,
                entry.security_demands,
                ready,
                etc,
                sds,
                normalized=self.normalized,
            )
            if sim >= self.threshold:
                scored.append((sim, key))

        scored.sort(key=lambda t: (-t[0], t[1]))
        if max_results is not None:
            scored = scored[:max_results]
        if scored:
            self.hits += 1
        results = []
        for _, key in scored:
            if self.eviction == "lru":
                self._entries.move_to_end(key)
            results.append(self._entries[key].assignment.copy())
        return results

    def clear(self) -> None:
        """Drop every entry and reset statistics."""
        self._entries.clear()
        self.queries = 0
        self.hits = 0
