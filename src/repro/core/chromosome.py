"""Chromosome encoding and population initialisation (paper Figure 4).

A chromosome is an integer vector of length B (batch size): position j
holds the site assigned to job j.  All operators must keep every gene
inside the job's *eligible site set* (determined by the active risk
mode), so eligibility is compiled once per batch into an
:class:`EligibleSites` lookup that supports vectorised uniform
resampling — the primitive behind random initialisation and mutation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EligibleSites",
    "check_population",
    "random_population",
    "repair_population",
]


def check_population(
    population: np.ndarray,
    n_sites: int | None = None,
    *,
    context: str = "population",
) -> np.ndarray:
    """Validate a population array up front, with a readable error.

    Checks that ``population`` is a 2-D integer array and — when
    ``n_sites`` is given — that every gene is a site index in
    ``[0, n_sites)``.  Without this, a float or out-of-range population
    either gets silently truncated by an ``astype`` or blows up deep
    inside ``bincount`` with an opaque numpy message.  ``context``
    names the caller in the error.  Returns ``population`` unchanged.
    """
    pop = np.asarray(population)
    if pop.ndim != 2:
        raise ValueError(f"{context}: population must be (P, B), got shape {pop.shape}")
    if not np.issubdtype(pop.dtype, np.integer):
        raise TypeError(
            f"{context}: population dtype must be an integer type "
            f"(site indices), got {pop.dtype}"
        )
    if n_sites is not None and pop.size:
        lo, hi = int(pop.min()), int(pop.max())
        if lo < 0 or hi >= n_sites:
            raise ValueError(
                f"{context}: population contains site indices outside "
                f"[0, {n_sites}): min={lo}, max={hi}"
            )
    return population


@dataclass(frozen=True)
class EligibleSites:
    """Per-job eligible site sets in a padded-lookup form.

    ``lookup[j, k]`` for ``k < counts[j]`` enumerates job j's eligible
    sites; sampling a uniform eligible site for many (chromosome, gene)
    pairs at once is then one integer draw plus one fancy index.
    """

    lookup: np.ndarray  # (B, max_count) int, padded with first site
    counts: np.ndarray  # (B,) int, >= 1

    @classmethod
    def from_mask(cls, eligibility: np.ndarray) -> "EligibleSites":
        """Compile a boolean (B, S) eligibility mask.

        Every row must have at least one eligible site — infeasible
        jobs are the caller's problem (the STGA defers them before the
        GA ever runs).
        """
        elig = np.asarray(eligibility, dtype=bool)
        if elig.ndim != 2:
            raise ValueError(f"eligibility must be 2-D, got shape {elig.shape}")
        counts = elig.sum(axis=1)
        if (counts == 0).any():
            bad = np.flatnonzero(counts == 0).tolist()
            raise ValueError(f"jobs {bad} have no eligible site")
        b, s = elig.shape
        maxc = int(counts.max())
        lookup = np.zeros((b, maxc), dtype=np.int64)
        for j in range(b):
            sites = np.flatnonzero(elig[j])
            lookup[j, : sites.size] = sites
            lookup[j, sites.size :] = sites[0]  # padding, never sampled
        return cls(lookup=lookup, counts=counts.astype(np.int64))

    @property
    def n_jobs(self) -> int:
        """Number of genes per chromosome."""
        return self.lookup.shape[0]

    def sample(self, rng: np.random.Generator, shape: tuple) -> np.ndarray:
        """Draw uniform eligible sites; trailing axis must be n_jobs.

        Returns an integer array of ``shape`` whose ``[..., j]`` entries
        are uniform over job j's eligible sites.
        """
        if shape[-1] != self.n_jobs:
            raise ValueError(
                f"trailing axis {shape[-1]} must equal n_jobs {self.n_jobs}"
            )
        u = rng.random(shape)
        k = (u * self.counts).astype(np.int64)  # in [0, counts[j])
        jidx = np.broadcast_to(np.arange(self.n_jobs), shape)
        return self.lookup[jidx, k]

    def allowed(self, population: np.ndarray) -> np.ndarray:
        """Boolean mask: which genes already respect eligibility?"""
        pop = np.asarray(population)
        jidx = np.broadcast_to(np.arange(self.n_jobs), pop.shape)
        # Gene is allowed iff it appears in the job's lookup row.
        hits = self.lookup[jidx] == pop[..., None]
        valid_slots = np.arange(self.lookup.shape[1]) < self.counts[jidx][..., None]
        return (hits & valid_slots).any(axis=-1)


def random_population(
    sites: EligibleSites, size: int, rng: np.random.Generator
) -> np.ndarray:
    """A (size, B) population of uniform eligible assignments."""
    if size < 1:
        raise ValueError(f"population size must be >= 1, got {size}")
    return sites.sample(rng, (size, sites.n_jobs))


def repair_population(
    population: np.ndarray, sites: EligibleSites, rng: np.random.Generator
) -> np.ndarray:
    """Resample any gene that violates eligibility.

    Used when history-table seeds produced under one risk context are
    replayed under another (e.g. a job is now secure-only).
    """
    pop = np.array(population, dtype=np.int64, copy=True)
    bad = ~sites.allowed(pop)
    if bad.any():
        fresh = sites.sample(rng, pop.shape)
        pop[bad] = fresh[bad]
    return pop
