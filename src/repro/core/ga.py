"""The genetic-algorithm core shared by the conventional GA and the STGA.

:func:`evolve` is a pure array-in / array-out optimiser: given the
batch's ETC matrix, site ready times and per-job eligibility, it runs
the generational loop of Section 3 (roulette selection, single-point
crossover, per-gene mutation, elitism) and returns the best assignment
found.  The STGA differs from the conventional GA *only* in the
``initial`` population it passes in — that is the paper's entire
"time" dimension — so both schedulers share this module.

The generation step runs on one of two backends (see
:mod:`repro.util.backend`): ``"reference"`` chains the four copying
operators, ``"fast"`` ping-pongs two preallocated buffers through the
fused in-place kernels and a :class:`~repro.core.fitness.FitnessWorkspace`.
Both consume the RNG identically and return bit-identical results at a
fixed seed; everything outside the step (seeding, elitism snapshots,
best tracking, stall logic) is shared code.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.chromosome import (
    EligibleSites,
    random_population,
    repair_population,
)
from repro.core.fitness import FitnessWorkspace, population_fitness
from repro.core.operators import (
    apply_elitism,
    fast_crossover_inplace,
    fast_elitism_inplace,
    fast_mutate_inplace,
    fast_roulette_select_into,
    mutate,
    roulette_select,
    single_point_crossover,
)
from repro.util.backend import FAST_BACKEND, resolve_backend
from repro.util.validation import check_probability

__all__ = ["GAConfig", "GAResult", "evolve"]


@dataclass(frozen=True)
class GAConfig:
    """GA hyper-parameters; defaults are the paper's Table 1 values."""

    population_size: int = 200
    generations: int = 100
    crossover_prob: float = 0.8
    mutation_prob: float = 0.01
    n_elite: int = 2
    #: stop early if the best fitness has not improved for this many
    #: generations (None = run all generations, the paper's setting).
    stall_generations: int | None = None
    #: weight of the aggregate-flow tie-breaker in the fitness (see
    #: :func:`repro.core.fitness.population_fitness`); 0 = pure
    #: makespan, the paper's literal objective.
    flow_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if self.generations < 0:
            raise ValueError(f"generations must be >= 0, got {self.generations}")
        check_probability("crossover_prob", self.crossover_prob)
        check_probability("mutation_prob", self.mutation_prob)
        if not (0 <= self.n_elite < self.population_size):
            raise ValueError(
                f"n_elite must be in [0, population_size), got {self.n_elite}"
            )
        if self.stall_generations is not None and self.stall_generations < 1:
            raise ValueError(
                f"stall_generations must be >= 1 or None, "
                f"got {self.stall_generations}"
            )
        if self.flow_weight < 0:
            raise ValueError(
                f"flow_weight must be non-negative, got {self.flow_weight}"
            )


@dataclass
class GAResult:
    """Outcome of one :func:`evolve` call."""

    best: np.ndarray  # (B,) best assignment found
    best_fitness: float
    generations_run: int
    #: best-so-far fitness after generation g (index 0 = initial pop);
    #: the Figure 7(b) convergence curve is built from this.
    history: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: fitness of the best *initial* chromosome — the "starting point
    #: on the evolution path" contrasted in Figure 5.
    initial_fitness: float = np.nan


def evolve(
    etc: np.ndarray,
    ready: np.ndarray,
    eligibility: np.ndarray,
    rng: np.random.Generator,
    config: GAConfig = GAConfig(),
    *,
    initial: np.ndarray | None = None,
    track_history: bool = False,
    strict_seeds: bool = False,
    backend: str | None = None,
) -> GAResult:
    """Run the generational GA and return the best assignment.

    Parameters
    ----------
    etc:
        (B, S) execution times (possibly risk-penalised, see
        :func:`repro.core.fitness.expected_etc`).
    ready:
        (S,) site ready times.
    eligibility:
        Boolean (B, S); every job needs at least one eligible site.
    rng:
        Random generator driving all stochastic operators.
    config:
        Hyper-parameters.
    initial:
        Optional (K, B) seed chromosomes (the STGA's history seeds).
        They are eligibility-repaired, then topped up with random
        chromosomes to the configured population size; surplus seeds
        beyond ``population_size`` are truncated with a
        :class:`RuntimeWarning` (the dropped seeds silently losing
        their schedules is almost never intended).
    track_history:
        Record the best-so-far fitness per generation (costs one float
        per generation).
    strict_seeds:
        Raise :class:`ValueError` instead of warning when ``initial``
        holds more chromosomes than the population can take.
    backend:
        ``"reference"`` / ``"fast"`` / None (= ``$REPRO_BACKEND`` or
        reference).  Bit-identical results either way; see
        :mod:`repro.util.backend`.
    """
    backend = resolve_backend(backend)
    etc = np.asarray(etc, dtype=float)
    ready = np.asarray(ready, dtype=float)
    b = etc.shape[0]
    if b == 0:
        raise ValueError("cannot evolve an empty batch")
    sites = EligibleSites.from_mask(eligibility)
    if sites.n_jobs != b:
        raise ValueError(
            f"eligibility covers {sites.n_jobs} jobs but etc has {b}"
        )

    p = config.population_size
    if initial is not None and len(initial) > 0:
        seeds = np.atleast_2d(initial)
        if seeds.shape[0] > p:
            msg = (
                f"{seeds.shape[0]} seed chromosomes exceed "
                f"population_size {p}; surplus seeds are dropped"
            )
            if strict_seeds:
                raise ValueError(msg)
            warnings.warn(msg, RuntimeWarning, stacklevel=2)
        seeds = seeds[:p]
        if seeds.shape[1] != b:
            raise ValueError(
                f"seed chromosomes have {seeds.shape[1]} genes, expected {b}"
            )
        seeds = repair_population(seeds, sites, rng)
        fill = p - seeds.shape[0]
        if fill > 0:
            pop = np.vstack([seeds, random_population(sites, fill, rng)])
        else:
            pop = seeds
    else:
        pop = random_population(sites, p, rng)

    fit = population_fitness(pop, etc, ready, flow_weight=config.flow_weight)
    best_idx = int(np.argmin(fit))
    best = pop[best_idx].copy()
    best_fit = float(fit[best_idx])
    initial_fit = best_fit
    history = [best_fit] if track_history else None

    fast = backend == FAST_BACKEND
    if fast and config.generations > 0:
        ws = FitnessWorkspace(etc, ready, flow_weight=config.flow_weight)
        pop = np.ascontiguousarray(pop, dtype=np.int64)
        buf = np.empty_like(pop)

    stall = 0
    gens_run = 0
    for _ in range(config.generations):
        gens_run += 1
        elite_idx = np.argsort(fit)[: config.n_elite]
        elites = pop[elite_idx].copy()
        elite_fit = fit[elite_idx].copy()

        if fast:
            fast_roulette_select_into(pop, fit, rng, out=buf)
            pop, buf = buf, pop  # ping-pong: buf now holds the old pop
            fast_crossover_inplace(pop, config.crossover_prob, rng)
            fast_mutate_inplace(pop, sites, config.mutation_prob, rng)
            fit = ws.evaluate(pop)
            pop, fit = fast_elitism_inplace(pop, fit, elites, elite_fit)
        else:
            pop = roulette_select(pop, fit, rng)
            pop = single_point_crossover(pop, config.crossover_prob, rng)
            pop = mutate(pop, sites, config.mutation_prob, rng)
            fit = population_fitness(
                pop, etc, ready, flow_weight=config.flow_weight
            )
            pop, fit = apply_elitism(pop, fit, elites, elite_fit)

        gen_best = int(np.argmin(fit))
        if fit[gen_best] < best_fit:
            best_fit = float(fit[gen_best])
            best = pop[gen_best].copy()
            stall = 0
        else:
            stall += 1
        if history is not None:
            history.append(best_fit)
        if (
            config.stall_generations is not None
            and stall >= config.stall_generations
        ):
            break

    return GAResult(
        best=best,
        best_fitness=best_fit,
        generations_run=gens_run,
        history=np.asarray(history if history is not None else [], dtype=float),
        initial_fitness=initial_fit,
    )
