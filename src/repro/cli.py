"""Command-line entry point: regenerate any paper table or figure,
run declarative experiment specs, and manage stored runs.

Examples
--------
::

    repro-grid fig7a --scale 0.1
    repro-grid fig8  --scale 0.05 --seed 7
    repro-grid table2 --scale 0.05
    repro-grid fig10 --scale 0.02
    repro-grid ablation --scale 0.05
    repro-grid sweep --scale 0.01 --sweep-seeds 5 --sweep-jobs 1000,2000
    repro-grid sweep --out runs/baseline
    repro-grid sweep --sweep-workload "psa?dynamics=poisson&online=true" \\
        --record-traces traces/ --out runs/dynamic
    repro-grid replay traces/ --out runs/replayed
    repro-grid emit-spec fig8 --scale 0.05 --out fig8.json
    repro-grid run fig8.json --out runs/fig8
    repro-grid shard fig8.json --shards 4 --out-dir shards/
    repro-grid run fig8.json --shard-index 1 --num-shards 4 --out runs/p1
    repro-grid merge runs/p0 runs/p1 --spec fig8.json --out runs/fig8
    repro-grid merge runs/p0 --spec fig8.json --out runs/partial --allow-partial
    repro-grid status shards/manifest.json
    repro-grid resume shards/manifest.json --out runs/fig8
    repro-grid registry
    repro-grid compare-runs runs/baseline runs/tuned
    repro-grid compare-runs baselines/ci runs/new --fail-on-regression
    repro-grid sweep --scale 0.01 --store sqlite:runs.db
    repro-grid runs list --store sqlite:runs.db
    repro-grid runs show 3 --store sqlite:runs.db
    repro-grid runs import runs/20260728T093102Z-baseline --store sqlite:runs.db
    repro-grid runs export 3 out/baseline --store sqlite:runs.db
    repro-grid serve --store sqlite:runs.db --port 8750
    repro-grid submit fig8.json --wait
    repro-grid jobs
    repro-grid cancel 3

``--scale 1.0`` runs the paper-size experiments (minutes of CPU time);
the default is a fast scaled-down run with identical distributions.
``emit-spec`` writes a figure driver's declarative
:class:`~repro.experiments.spec.ExperimentSpec` as JSON and ``run``
executes any spec file — the shippable unit for distributing
replications across hosts.  ``shard`` partitions a spec's
(variant, seed) grid into sub-spec files (plus a ``manifest.json``
tracking per-shard dispatch state), ``run --shard-index I
--num-shards N`` executes one partition of a spec in place (every host
derives the same deterministic partition), and ``merge`` recombines
the partial run records into one record that is bit-identical to a
single-host run — ``merge --allow-partial`` accepts a still-incomplete
set and reports completion percentage + missing cells instead of
refusing.  ``status MANIFEST`` shows a sharded run's per-shard states
and ``resume MANIFEST`` re-dispatches only the shards that never
finished, then merges — the crash-recovery loop (see
:mod:`repro.experiments.dispatch`, :mod:`repro.experiments.manifest`
and ``docs/CLI.md``).  ``compare-runs A B`` diffs two stored runs
per (variant, scheduler, metric) cell; with ``--fail-on-regression``
it exits 1 when run B is statistically worse than baseline A by more
than ``--threshold`` percent (the CI regression gate).

Dynamic scenarios travel inside workload refs: ``--sweep-workload
"psa?dynamics=poisson&breakdown=0.01&online=true"`` layers arrival
redraw, breakdowns and online rescheduling onto the generator (see
``docs/SCENARIOS.md``).  ``sweep --record-traces DIR`` records every
(variant, seed, scheduler) cell as a replayable grid trace, and
``replay`` re-executes traces, verifying the re-run is bit-identical to
the recording; with ``--out`` the replayed cells persist as a run
record, so ``compare-runs --fail-on-regression --threshold 0`` can gate
on replay fidelity.

Run records live in pluggable *stores* (see ``docs/STORE.md``):
``--store URI`` on ``sweep``, ``run``, ``merge``, ``resume`` and
``compare-runs`` names one (``fs:runs`` — the default directory
registry — or ``sqlite:runs.db``), and the ``runs`` subcommand family
(``list`` / ``show`` / ``import`` / ``export``) manages a store's
contents directly, defaulting to the ``REPRO_STORE`` environment
variable and then ``fs:runs``.

``serve`` runs the long-lived experiment service (HTTP API +
background dispatcher) over a SQLite store; ``submit`` / ``jobs`` /
``cancel`` talk to it through :mod:`repro.service.client` (see
``docs/SERVICE.md``).

Each subcommand owns its options: write ``repro-grid fig8 --scale
0.1``, not ``repro-grid --scale 0.1 fig8``.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from pathlib import Path

from repro.experiments.ablation import stga_vs_conventional
from repro.experiments.config import RunSettings
from repro.experiments.fig7 import (
    frisky_makespan_sweep,
    frisky_sweep_spec,
    stga_iteration_spec,
    stga_iteration_sweep,
)
from repro.experiments.fig8 import nas_experiment, nas_spec
from repro.experiments.fig9 import utilization_panels
from repro.experiments.fig10 import psa_scaling_experiment, psa_scaling_spec
from repro.experiments.dispatch import (
    SHARD_STRATEGIES,
    ShardError,
    grid_completion,
    merge_runs,
    resume_manifest,
    resume_todo,
    shard_file_name,
    shard_spec,
)
from repro.experiments.manifest import (
    MANIFEST_JSON,
    create_manifest,
    load_manifest,
    save_manifest,
)
from repro.experiments.spec import (
    ExperimentSpec,
    SpecError,
    load_spec,
    parse_spec_text,
    run_spec,
    save_spec,
)
from repro.lint.cli import add_lint_parser, cmd_lint
from repro.experiments.store import (
    STORE_ENV,
    RunStore,
    as_result,
    compare_runs,
    find_regressions,
    load_run,
    open_store,
    parse_store_uri,
    save_run,
)
from repro.service.client import SERVICE_URL_ENV
from repro.service.server import DEFAULT_HOST, DEFAULT_PORT
from repro.experiments.replay import record_sweep, replay_result, replay_trace
from repro.experiments.sweep import (
    job_scaling_variants,
    run_sweep,
    seed_list,
)
from repro.experiments.table2 import render_table2, table2_spec
from repro.metrics.compare import (
    compare_ensemble,
    render_ensemble_comparison,
    render_run_diff,
)
from repro.registry import (
    available_schedulers,
    available_workloads,
    scheduler_spec,
    workload_spec,
)
from repro.util.backend import resolve_backend
from repro.util.tables import render_table

__all__ = ["main", "build_parser"]

#: experiment name -> spec builder, for ``emit-spec``
SPEC_BUILDERS = {
    "fig7a": frisky_sweep_spec,
    "fig7b": stga_iteration_spec,
    "fig8": nas_spec,
    "fig9": nas_spec,  # Figure 9 reuses the Figure 8 runs
    "fig10": psa_scaling_spec,
    "table2": table2_spec,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    """Engine options shared by every experiment subcommand."""
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="workload scale factor, 1.0 = paper size (default 0.05)",
    )
    parser.add_argument("--seed", type=int, default=2005, help="root seed")
    parser.add_argument(
        "--batch-interval",
        type=float,
        default=1000.0,
        help="seconds between scheduling events (default 1000)",
    )
    parser.add_argument(
        "--lam",
        type=float,
        default=3.0,
        help="Eq.1 failure-rate constant lambda (default 3.0)",
    )


def _add_store(parser: argparse.ArgumentParser, help_: str) -> None:
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="URI",
        help=f"{help_} (fs:DIR or sqlite:FILE; see docs/STORE.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The repro-grid argument parser (one subparser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro-grid",
        description=(
            "Reproduce the tables and figures of Song/Kwok/Hwang, "
            "'Security-Driven Heuristics and A Fast Genetic Algorithm "
            "for Trusted Grid Job Scheduling' (IPDPS 2005)."
        ),
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    for name, help_ in (
        ("fig7a", "makespan vs risk level f (PSA)"),
        ("fig7b", "STGA makespan vs iteration budget (PSA)"),
        ("fig8", "the seven-algorithm NAS comparison"),
        ("fig9", "per-site utilization panels (NAS)"),
        ("fig10", "scaling the PSA workload size N"),
        ("table2", "alpha/beta ranking vs the STGA (NAS)"),
        ("ablation", "STGA vs conventional GA (Figure 5 concept)"),
    ):
        p = sub.add_parser(name, help=help_)
        _add_common(p)

    sweep = sub.add_parser(
        "sweep", help="replication sweep: N seeds x M scenario variants"
    )
    _add_common(sweep)
    sweep.add_argument(
        "--sweep-seeds",
        type=int,
        default=3,
        help="number of replication seeds (default 3)",
    )
    sweep.add_argument(
        "--sweep-workload",
        type=str,
        default="psa",
        metavar="REF",
        help=(
            "workload ref for the sweep variants: a registered "
            "generator name, optionally parameterized — e.g. "
            '"psa?dynamics=poisson&breakdown=0.01&online=true" layers '
            "dynamic-scenario processes on top (default psa; see "
            "docs/SCENARIOS.md)"
        ),
    )
    sweep.add_argument(
        "--sweep-jobs",
        type=str,
        default="1000,2000",
        help="comma-separated job counts, one variant each",
    )
    sweep.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="process-pool size (default: one per CPU; 1 = sequential)",
    )
    sweep.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "persist the sweep as a run record at DIR "
            "(run.json + grid.csv; overwrites an existing record)"
        ),
    )
    _add_store(
        sweep, "persist the sweep into this run store instead of --out"
    )
    sweep.add_argument(
        "--record-traces",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "record every (variant, seed, scheduler) cell as a replayable "
            "grid trace under DIR (forces sequential execution; see "
            "'replay')"
        ),
    )

    rpl = sub.add_parser(
        "replay",
        help=(
            "re-execute recorded grid traces and verify bit-identical "
            "replay"
        ),
    )
    rpl.add_argument(
        "traces",
        nargs="+",
        metavar="TRACE",
        help=(
            "trace files (.jsonl) or directories of traces recorded by "
            "'sweep --record-traces'"
        ),
    )
    rpl.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "persist the replayed cells as a run record at DIR "
            "(comparable with the original via compare-runs)"
        ),
    )
    _add_store(
        rpl, "persist the replayed run into this run store instead of --out"
    )

    run = sub.add_parser(
        "run", help="execute a declarative experiment spec (JSON)"
    )
    run.add_argument("spec", metavar="SPEC.json", help="experiment spec file")
    run.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="process-pool size (default: one per CPU; 1 = sequential)",
    )
    run.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="DIR",
        help="persist the result as a run record at DIR",
    )
    _add_store(
        run, "persist the result into this run store instead of --out"
    )
    run.add_argument(
        "--shard-index",
        type=int,
        default=None,
        metavar="I",
        help=(
            "execute only shard I (0-based) of the deterministic "
            "--num-shards partition of the spec's (variant, seed) grid"
        ),
    )
    run.add_argument(
        "--num-shards",
        type=int,
        default=None,
        metavar="N",
        help="total shards in the partition (required with --shard-index)",
    )
    run.add_argument(
        "--shard-strategy",
        choices=SHARD_STRATEGIES,
        default=None,
        help=(
            "grid axis to split when sharding: seeds, variants, or "
            "auto (default auto: whichever axis can fill N shards); "
            "requires --shard-index/--num-shards"
        ),
    )

    shard = sub.add_parser(
        "shard",
        help="partition an experiment spec into self-contained sub-specs",
    )
    shard.add_argument(
        "spec", metavar="SPEC.json", help="experiment spec file to partition"
    )
    shard.add_argument(
        "--shards",
        type=int,
        required=True,
        metavar="N",
        help="number of sub-specs to write (capped at the split axis length)",
    )
    shard.add_argument(
        "--strategy",
        choices=SHARD_STRATEGIES,
        default="auto",
        help="grid axis to split (default auto)",
    )
    shard.add_argument(
        "--out-dir",
        type=str,
        required=True,
        metavar="DIR",
        help=(
            "directory for the shard-<i>-of-<N>.json files and the "
            "all-pending manifest.json"
        ),
    )

    status = sub.add_parser(
        "status",
        help="show the per-shard dispatch state of a run manifest",
    )
    status.add_argument(
        "manifest",
        metavar="MANIFEST",
        help="manifest.json of a sharded run",
    )

    res = sub.add_parser(
        "resume",
        help=(
            "re-dispatch the unfinished shards of a run manifest, "
            "then merge"
        ),
    )
    res.add_argument(
        "manifest",
        metavar="MANIFEST",
        help="manifest.json of a sharded run",
    )
    res.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "directory for the merged run record "
            "(default: <manifest dir>/merged)"
        ),
    )
    _add_store(
        res, "save the merged run into this run store instead of --out"
    )
    res.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="process-pool size (default: one per CPU; 1 = sequential)",
    )
    res.add_argument(
        "--max-retries",
        type=int,
        default=1,
        metavar="K",
        help=(
            "extra dispatch attempts per failing shard before giving "
            "up (default 1)"
        ),
    )

    mrg = sub.add_parser(
        "merge",
        help="merge partial (sharded) run records into one run record",
    )
    mrg.add_argument(
        "run_dirs",
        nargs="+",
        metavar="RUN_DIR",
        help="partial run records to merge (any order)",
    )
    mrg.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "directory for the merged run record (exactly one of "
            "--out and --store is required)"
        ),
    )
    _add_store(
        mrg, "save the merged run into this run store instead of --out"
    )
    mrg.add_argument(
        "--name",
        type=str,
        default=None,
        help=(
            "merged record name (default: the spec's name with --spec — "
            "matching the record a single-host run would save — else "
            "DIR's base name)"
        ),
    )
    mrg.add_argument(
        "--spec",
        type=str,
        default=None,
        metavar="SPEC.json",
        help=(
            "original unsharded spec; pins the merged seed/variant order "
            "to the spec's layout for bit-identical reassembly"
        ),
    )
    mrg.add_argument(
        "--allow-partial",
        action="store_true",
        help=(
            "merge the maximal complete sub-grid when shards are still "
            "missing, reporting completion percentage and missing "
            "cells instead of refusing"
        ),
    )

    emit = sub.add_parser(
        "emit-spec",
        help="write a paper experiment as a declarative spec (JSON)",
    )
    emit.add_argument(
        "builder",
        choices=sorted(SPEC_BUILDERS),
        help="which paper experiment to express as a spec",
    )
    _add_common(emit)
    emit.add_argument(
        "--spec-seeds",
        type=int,
        default=None,
        metavar="N",
        help="replication seeds to put in the spec (default: 1, the root seed)",
    )
    emit.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="FILE",
        help="spec file to write (default: stdout)",
    )

    sub.add_parser(
        "registry", help="list registered schedulers and workloads"
    )

    cmp_ = sub.add_parser(
        "compare-runs", help="diff two stored runs cell by cell"
    )
    cmp_.add_argument("run_a", metavar="RUN_A", help="baseline run directory")
    cmp_.add_argument("run_b", metavar="RUN_B", help="candidate run directory")
    cmp_.add_argument(
        "--fail-on-regression",
        action="store_true",
        help=(
            "exit 1 when a (variant, scheduler, metric) cell of RUN_B is "
            "worse than RUN_A past --threshold with non-overlapping CIs"
        ),
    )
    cmp_.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        metavar="PCT",
        help="regression gate: tolerated mean increase in percent "
        "(default 5.0)",
    )
    _add_store(
        cmp_,
        "resolve RUN_A/RUN_B as refs in this run store "
        "(falling back to record paths)",
    )

    runs = sub.add_parser(
        "runs",
        help="manage a run store (list / show / import / export)",
    )
    runs_sub = runs.add_subparsers(dest="runs_cmd", required=True)
    store_help = (
        "the run store to operate on (default: the REPRO_STORE "
        "environment variable, then fs:runs)"
    )

    rls = runs_sub.add_parser(
        "list", help="list a store's runs, oldest first"
    )
    for flag, help_ in (
        ("--name", "only runs with this record name"),
        ("--git-sha", "only runs saved at this commit"),
        ("--variant", "only runs whose grid contains this variant"),
        ("--scheduler", "only runs whose grid contains this scheduler"),
    ):
        rls.add_argument(flag, type=str, default=None, help=help_)
    _add_store(rls, store_help)

    rsh = runs_sub.add_parser(
        "show", help="show one stored run's provenance and metrics"
    )
    rsh.add_argument(
        "ref", metavar="REF", help="store ref (or unique run name)"
    )
    _add_store(rsh, store_help)

    rim = runs_sub.add_parser(
        "import",
        help="import filesystem run records into a store (verbatim)",
    )
    rim.add_argument(
        "run_dirs",
        nargs="+",
        metavar="RUN_DIR",
        help="run-record directories to import",
    )
    _add_store(rim, store_help)

    rex = runs_sub.add_parser(
        "export",
        help="export one stored run as a filesystem run record",
    )
    rex.add_argument(
        "ref", metavar="REF", help="store ref (or unique run name)"
    )
    rex.add_argument(
        "dest", metavar="DEST_DIR", help="directory to write the record at"
    )
    _add_store(rex, store_help)

    srv = sub.add_parser(
        "serve",
        help=(
            "run the experiment service: HTTP API + background job "
            "dispatcher (see docs/SERVICE.md)"
        ),
    )
    _add_store(
        srv,
        "the service database: queue + run store in one sqlite file "
        "(must be sqlite:FILE; default: the REPRO_STORE environment "
        "variable, then sqlite:runs.db)",
    )
    srv.add_argument(
        "--host",
        type=str,
        default=DEFAULT_HOST,
        help=f"address to bind (default {DEFAULT_HOST})",
    )
    srv.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"port to bind; 0 = ephemeral (default {DEFAULT_PORT})",
    )
    srv.add_argument(
        "--max-workers",
        type=int,
        default=1,
        help=(
            "process-pool size for each job's shard dispatch "
            "(default 1 = sequential)"
        ),
    )

    url_help = (
        "service base URL (default: the REPRO_SERVICE_URL environment "
        f"variable, then http://{DEFAULT_HOST}:{DEFAULT_PORT})"
    )

    sbm = sub.add_parser(
        "submit",
        help="submit an experiment spec to a running service",
    )
    sbm.add_argument(
        "spec", metavar="SPEC.json", help="experiment spec file to submit"
    )
    sbm.add_argument("--url", type=str, default=None, help=url_help)
    sbm.add_argument(
        "--wait",
        action="store_true",
        help=(
            "poll until the job reaches a terminal state; exit 0 only "
            "on 'done'"
        ),
    )
    sbm.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="--wait deadline in seconds (default 600)",
    )

    jbs = sub.add_parser(
        "jobs", help="list a running service's job queue"
    )
    jbs.add_argument("--url", type=str, default=None, help=url_help)

    cnc = sub.add_parser(
        "cancel", help="cancel a pending job on a running service"
    )
    cnc.add_argument(
        "job_id", type=int, metavar="JOB_ID", help="job id to cancel"
    )
    cnc.add_argument("--url", type=str, default=None, help=url_help)

    add_lint_parser(sub)
    return parser


def _settings(args: argparse.Namespace) -> RunSettings:
    return RunSettings(
        batch_interval=args.batch_interval, lam=args.lam, seed=args.seed
    )


def _check_scale(args: argparse.Namespace) -> bool:
    if not (0 < args.scale <= 1.0):
        print(f"--scale must be in (0, 1], got {args.scale}", file=sys.stderr)
        return False
    return True


def _check_path_args(*pairs: tuple[str, str]) -> bool:
    """Up-front existence check for path arguments.

    Diagnoses every missing path by its argument name — the
    compare-runs ``RUN_A (<path>): ...`` style — so the user learns
    *which* argument is wrong, not just which file some inner loader
    failed to open.  The caller exits 2 on ``False``.
    """
    ok = True
    for label, value in pairs:
        if not Path(value).exists():
            print(
                f"{label} ({value}): no such file or directory",
                file=sys.stderr,
            )
            ok = False
    return ok


def _load_spec_arg(
    path: str, *, validate: bool = True
) -> ExperimentSpec | None:
    """Load a ``SPEC.json`` argument, diagnosing every malformed input
    uniformly as ``<path>: invalid spec: <reason>`` on stderr (the
    caller exits 2 on ``None``) — the CLI half of the shared
    validation seam (:func:`repro.experiments.spec.parse_spec_text`;
    the HTTP service's half is a 422 with the same message).

    ``validate=True`` additionally resolves scheduler refs against the
    registry (the run path); partition-only commands (shard, merge)
    skip it so a spec can be partitioned without its plugin modules.
    """
    try:
        spec = load_spec(path)
        if validate:
            spec.validate()
        return spec
    except SpecError as exc:
        print(str(exc), file=sys.stderr)
        return None
    except KeyError as exc:  # validate(): unknown scheduler ref
        print(f"{path}: invalid spec: {exc.args[0]}", file=sys.stderr)
        return None
    except (OSError, ValueError) as exc:
        print(f"{path}: invalid spec: {exc}", file=sys.stderr)
        return None


def _open_store_arg(uri: str) -> RunStore | None:
    """Open a ``--store`` URI, reporting bad URIs / refused databases
    on stderr (the caller exits 2 on ``None``)."""
    try:
        return open_store(uri)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return None


def _cmd_compare_runs(args: argparse.Namespace) -> int:
    if args.threshold < 0:
        print(
            f"--threshold must be >= 0, got {args.threshold}", file=sys.stderr
        )
        return 2
    store = None
    if args.store:
        store = _open_store_arg(args.store)
        if store is None:
            return 2
    # load each side separately so a bad record names the offending
    # argument instead of leaving the user to guess which of the two
    # refs broke
    sides = []
    try:
        for label, ref in (("RUN_A", args.run_a), ("RUN_B", args.run_b)):
            try:
                sides.append(as_result(ref, store=store))
            except (OSError, ValueError) as exc:
                print(f"{label} ({ref}): {exc}", file=sys.stderr)
                return 2
            except KeyError as exc:
                # a parseable run.json missing expected record keys
                print(
                    f"{label} ({ref}): malformed run record: missing {exc}",
                    file=sys.stderr,
                )
                return 2
    finally:
        if store is not None:
            store.close()
    try:
        rows = compare_runs(sides[0], sides[1])
    except ValueError as exc:  # e.g. no shared (variant, scheduler) cell
        print(str(exc), file=sys.stderr)
        return 2
    print(render_run_diff(
        rows, title=f"Run diff: {args.run_a} vs {args.run_b}"
    ))
    diverged = sum(r.verdict == "diverged" for r in rows)
    unchanged = sum(r.verdict == "same" for r in rows)
    print(
        f"\n{len(rows)} cells: {unchanged} same, "
        f"{len(rows) - unchanged - diverged} within CI overlap, "
        f"{diverged} diverged"
    )
    if not args.fail_on_regression:
        return 0
    regressions = find_regressions(rows, threshold_pct=args.threshold)
    if not regressions:
        print(
            f"regression gate: clean (threshold {args.threshold:g}%)"
        )
        return 0
    print(
        f"\nregression gate: {len(regressions)} cell(s) regressed past "
        f"{args.threshold:g}% with non-overlapping CIs:",
        file=sys.stderr,
    )
    for r in regressions:
        # shift_pct is NaN for a zero baseline (the always-flagged
        # class); show the absolute rise there instead
        shift = (
            f"{r.shift_pct:+.3g}%"
            if math.isfinite(r.shift_pct)
            else f"+{r.mean_shift:.6g} from zero"
        )
        print(
            f"  {r.variant} / {r.scheduler} / {r.metric}: "
            f"{r.mean_a:.6g} -> {r.mean_b:.6g} ({shift})",
            file=sys.stderr,
        )
    return 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    if not _check_scale(args):
        return 2
    if args.out and args.store:
        print("--out and --store are mutually exclusive", file=sys.stderr)
        return 2
    try:
        n_values = [int(x) for x in args.sweep_jobs.split(",") if x.strip()]
    except ValueError:
        print(f"bad --sweep-jobs value {args.sweep_jobs!r}", file=sys.stderr)
        return 2
    n_values = list(dict.fromkeys(n_values))  # dedupe, keep order
    if not n_values or args.sweep_seeds < 1:
        print("need >= 1 job count and >= 1 seed", file=sys.stderr)
        return 2
    if any(n < 1 for n in n_values):
        print(
            f"--sweep-jobs counts must be >= 1, got {args.sweep_jobs!r}",
            file=sys.stderr,
        )
        return 2
    if args.max_workers is not None and args.max_workers < 1:
        print(
            f"--max-workers must be >= 1, got {args.max_workers}",
            file=sys.stderr,
        )
        return 2
    try:
        # a workload ref validates at variant construction: unknown
        # generator names and malformed dynamics knobs both land here
        variants = job_scaling_variants(
            n_values, workload=args.sweep_workload
        )
    except ValueError as exc:
        print(f"--sweep-workload: {exc}", file=sys.stderr)
        return 2
    seeds = seed_list(args.sweep_seeds, base_seed=args.seed)
    if args.record_traces:
        if args.max_workers not in (None, 1):
            print(
                "note: --record-traces runs sequentially; "
                "--max-workers ignored"
            )
        res, trace_paths = record_sweep(
            variants,
            seeds,
            args.record_traces,
            settings=_settings(args),
            scale=args.scale,
        )
        print(
            f"recorded {len(trace_paths)} trace(s) under "
            f"{args.record_traces}\n"
        )
    else:
        res = run_sweep(
            variants,
            seeds,
            settings=_settings(args),
            scale=args.scale,
            max_workers=args.max_workers,
        )
    for metric in ("makespan", "avg_response_time", "slowdown_ratio",
                   "n_fail"):
        print(res.render(metric))
        print()
    last = res.variants[-1].name
    rows = compare_ensemble(res.per_seed_lineups(last))
    print(render_ensemble_comparison(
        rows, title=f"Table 2 over the sweep ensemble ({last})"
    ))
    if args.out:
        run_dir = save_run(res, args.out, overwrite=True)
        print(f"\nsaved run record to {run_dir}")
    elif args.store:
        store = _open_store_arg(args.store)
        if store is None:
            return 2
        with store:
            stored = store.save(res, name="sweep")
        print(f"\nsaved run record {stored.ref} to {store.uri}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.out and args.store:
        print("--out and --store are mutually exclusive", file=sys.stderr)
        return 2
    paths: list[Path] = []
    for arg in args.traces:
        p = Path(arg)
        if p.is_dir():
            found = sorted(p.glob("*.jsonl"))
            if not found:
                print(
                    f"TRACE ({arg}): directory holds no *.jsonl trace files",
                    file=sys.stderr,
                )
                return 2
            paths.extend(found)
        elif p.is_file():
            paths.append(p)
        else:
            print(
                f"TRACE ({arg}): no such file or directory", file=sys.stderr
            )
            return 2

    outcomes = []
    for p in paths:
        try:
            outcome = replay_trace(p)
        except (OSError, ValueError) as exc:
            print(f"{p}: {exc}", file=sys.stderr)
            return 2
        verdict = (
            "bit-identical"
            if outcome.ok
            else "MISMATCH: " + "; ".join(outcome.mismatches)
        )
        print(
            f"{p.name}: {outcome.variant.name} / seed {outcome.seed} / "
            f"{outcome.ref}: {verdict}"
        )
        outcomes.append(outcome)
    failed = [o for o in outcomes if not o.ok]
    print(
        f"\nreplayed {len(outcomes)} trace(s): "
        f"{len(outcomes) - len(failed)} bit-identical, "
        f"{len(failed)} mismatched"
    )

    if args.out or args.store:
        try:
            res = replay_result(outcomes)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.out:
            run_dir = save_run(res, args.out, name="replay", overwrite=True)
            print(f"saved replayed run record to {run_dir}")
        else:
            store = _open_store_arg(args.store)
            if store is None:
                return 2
            with store:
                stored = store.save(res, name="replay")
            print(f"saved replayed run record {stored.ref} to {store.uri}")
    return 1 if failed else 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.out and args.store:
        print("--out and --store are mutually exclusive", file=sys.stderr)
        return 2
    if args.max_workers is not None and args.max_workers < 1:
        print(
            f"--max-workers must be >= 1, got {args.max_workers}",
            file=sys.stderr,
        )
        return 2
    if (args.shard_index is None) != (args.num_shards is None):
        print(
            "--shard-index and --num-shards must be given together",
            file=sys.stderr,
        )
        return 2
    if args.shard_strategy is not None and args.shard_index is None:
        print(
            "--shard-strategy is only meaningful together with "
            "--shard-index/--num-shards (it would otherwise be "
            "silently ignored)",
            file=sys.stderr,
        )
        return 2
    if not _check_path_args(("SPEC.json", args.spec)):
        return 2
    spec = _load_spec_arg(args.spec)
    if spec is None:
        return 2
    if args.shard_index is not None:
        if args.num_shards < 1:
            print(
                f"--num-shards must be >= 1, got {args.num_shards}",
                file=sys.stderr,
            )
            return 2
        try:
            shards = shard_spec(
                spec,
                args.num_shards,
                strategy=args.shard_strategy or "auto",
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if not (0 <= args.shard_index < len(shards)):
            print(
                f"--shard-index {args.shard_index} out of range: spec "
                f"{spec.name!r} partitions into {len(shards)} shard(s) "
                f"(indices 0..{len(shards) - 1})",
                file=sys.stderr,
            )
            return 2
        spec = shards[args.shard_index]
    print(
        f"spec {spec.name!r}: {len(spec.schedulers)} scheduler(s) x "
        f"{len(spec.variants)} variant(s) x {len(spec.seeds)} seed(s) "
        f"at scale {spec.scale:g}"
    )
    try:
        res = run_spec(spec, max_workers=args.max_workers)
    except (ValueError, KeyError, TypeError) as exc:
        # e.g. two refs resolving to one report name, or a ref param
        # colliding with a factory-fixed keyword
        print(f"spec {spec.name!r} failed: {exc}", file=sys.stderr)
        return 2
    for metric in spec.metrics:
        print(res.render(metric))
        print()
    if args.out:
        run_dir = save_run(res, args.out, name=spec.name, overwrite=True)
        print(f"saved run record to {run_dir}")
    elif args.store:
        store = _open_store_arg(args.store)
        if store is None:
            return 2
        with store:
            stored = store.save(res, name=spec.name)
        print(f"saved run record {stored.ref} to {store.uri}")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if not _check_path_args(("SPEC.json", args.spec)):
        return 2
    spec = _load_spec_arg(args.spec, validate=False)
    if spec is None:
        return 2
    try:
        shards = shard_spec(spec, args.shards, strategy=args.strategy)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(shards) < args.shards:
        print(
            f"note: {spec.name!r} only partitions into {len(shards)} "
            f"shard(s) along the split axis"
        )
    for i, shard in enumerate(shards):
        path = save_spec(
            shard, f"{args.out_dir}/{shard_file_name(i, len(shards))}"
        )
        grid = len(shard.variants) * len(shard.seeds)
        print(
            f"wrote {path} ({len(shard.variants)} variant(s) x "
            f"{len(shard.seeds)} seed(s) = {grid} grid cell(s))"
        )
    manifest = create_manifest(spec, shards, strategy=args.strategy)
    manifest_path = save_manifest(
        manifest, Path(args.out_dir) / MANIFEST_JSON
    )
    print(f"wrote {manifest_path} ({len(shards)} shard(s), all pending)")
    print(
        f"\ndispatch (or crash-recover) the whole run with: repro-grid "
        f"resume {manifest_path} --out <merged-dir>; or run each shard "
        f"anywhere with: repro-grid run <shard.json> --out <dir>, then "
        f"recombine with: repro-grid merge <dir>... --spec {args.spec} "
        f"--out <merged-dir>"
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    if not _check_path_args(("MANIFEST", args.manifest)):
        return 2
    try:
        manifest = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(manifest.render())
    if manifest.all_done:
        print(
            f"\nall shards done — merge with: repro-grid resume "
            f"{args.manifest}"
        )
        return 0
    incomplete = manifest.incomplete_indices()
    print(
        f"\n{len(incomplete)} shard(s) not done "
        f"(indices {list(incomplete)}) — finish with: repro-grid resume "
        f"{args.manifest}"
    )
    return 1


def _cmd_resume(args: argparse.Namespace) -> int:
    if args.out and args.store:
        print("--out and --store are mutually exclusive", file=sys.stderr)
        return 2
    if args.max_workers is not None and args.max_workers < 1:
        print(
            f"--max-workers must be >= 1, got {args.max_workers}",
            file=sys.stderr,
        )
        return 2
    if args.max_retries < 0:
        print(
            f"--max-retries must be >= 0, got {args.max_retries}",
            file=sys.stderr,
        )
        return 2
    if not _check_path_args(("MANIFEST", args.manifest)):
        return 2
    try:
        before = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    todo = resume_todo(before, args.manifest)
    if todo:
        print(
            f"resuming {before.spec.name!r}: dispatching shard(s) "
            f"{list(todo)} of {before.n_shards}"
        )
    else:
        print(
            f"resuming {before.spec.name!r}: all {before.n_shards} "
            f"shard(s) already done, merging only"
        )
    try:
        manifest, merged = resume_manifest(
            args.manifest,
            max_workers=args.max_workers,
            max_retries=args.max_retries,
        )
    except ShardError as exc:
        print(str(exc), file=sys.stderr)
        print(
            f"the manifest records the failure; fix the cause and "
            f"resume again (repro-grid status {args.manifest} shows "
            f"the surviving shards)",
            file=sys.stderr,
        )
        return 1
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"malformed run record: missing {exc}", file=sys.stderr)
        return 2
    part_dirs = [
        str(manifest.shard_run_dir(args.manifest, i))
        for i in range(manifest.n_shards)
    ]
    provenance = {
        "path": str(args.manifest),
        "spec_sha256": manifest.spec_hash,
    }
    if args.store:
        store = _open_store_arg(args.store)
        if store is None:
            return 2
        with store:
            stored = store.save(
                merged,
                name=manifest.spec.name,
                merged_from=part_dirs,
                manifest=provenance,
            )
        destination = f"{stored.ref} in {store.uri}"
    else:
        out = (
            args.out
            if args.out
            else str(Path(args.manifest).parent / "merged")
        )
        destination = str(save_run(
            merged,
            out,
            name=manifest.spec.name,
            overwrite=True,
            merged_from=part_dirs,
            manifest=provenance,
        ))
    print(
        f"merged {manifest.n_shards} shard record(s): "
        f"{len(merged.variants)} variant(s) x {len(merged.seeds)} seed(s) "
        f"x {len(merged.schedulers())} scheduler(s)"
    )
    print(f"saved merged run record to {destination}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    if (args.out is None) == (args.store is None):
        print(
            "exactly one of --out and --store is required",
            file=sys.stderr,
        )
        return 2
    # validate --spec before touching the run dirs so a broken spec
    # file is blamed as the spec, never as a malformed run record
    spec = None
    if args.spec:
        if not _check_path_args(("--spec", args.spec)):
            return 2
        spec = _load_spec_arg(args.spec, validate=False)
        if spec is None:
            return 2
    if not _check_path_args(*(("RUN_DIR", d) for d in args.run_dirs)):
        return 2
    try:
        runs = [load_run(d) for d in args.run_dirs]
        merged = merge_runs(
            runs, spec=spec, allow_partial=args.allow_partial
        )
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"malformed run record: missing {exc}", file=sys.stderr)
        return 2
    if args.allow_partial:
        completion = grid_completion(runs, spec=spec)
        print(completion.render())
        if not completion.complete:
            print(
                "partial merge: the record below holds the maximal "
                "complete sub-grid"
            )
    name = args.name if args.name else (spec.name if spec else None)
    merged_from = [str(r.path) for r in runs]
    if args.store:
        store = _open_store_arg(args.store)
        if store is None:
            return 2
        with store:
            stored = store.save(
                merged,
                name=name if name else "merged",
                merged_from=merged_from,
            )
        destination = f"{stored.ref} in {store.uri}"
    else:
        destination = str(save_run(
            merged,
            args.out,
            name=name,
            overwrite=True,
            merged_from=merged_from,
        ))
    print(
        f"merged {len(runs)} partial record(s): "
        f"{len(merged.variants)} variant(s) x {len(merged.seeds)} seed(s) "
        f"x {len(merged.schedulers())} scheduler(s)"
    )
    print(f"saved merged run record to {destination}")
    return 0


def _cmd_emit_spec(args: argparse.Namespace) -> int:
    if not _check_scale(args):
        return 2
    if args.spec_seeds is not None and args.spec_seeds < 1:
        print(
            f"--spec-seeds must be >= 1, got {args.spec_seeds}",
            file=sys.stderr,
        )
        return 2
    settings = _settings(args)
    seeds = (
        seed_list(args.spec_seeds, base_seed=args.seed)
        if args.spec_seeds is not None
        else None
    )
    spec = SPEC_BUILDERS[args.builder](
        seeds=seeds, scale=args.scale, settings=settings
    )
    if args.out:
        save_spec(spec, args.out)
        print(f"wrote {spec.name!r} spec to {args.out}")
    else:
        print(spec.to_json(), end="")
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    rows = [
        [name, scheduler_spec(name).description]
        for name in available_schedulers()
    ]
    print(render_table(
        ["scheduler", "description"], rows, title="Registered schedulers"
    ))
    print()
    rows = [
        [name, workload_spec(name).description]
        for name in available_workloads()
    ]
    print(render_table(
        ["workload", "description"], rows, title="Registered workloads"
    ))
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    uri = args.store or os.environ.get(STORE_ENV) or "fs:runs"
    store = _open_store_arg(uri)
    if store is None:
        return 2
    with store:
        if args.runs_cmd == "list":
            return _cmd_runs_list(args, store)
        if args.runs_cmd == "show":
            return _cmd_runs_show(args, store)
        if args.runs_cmd == "import":
            return _cmd_runs_import(args, store)
        return _cmd_runs_export(args, store)


def _cmd_runs_list(args: argparse.Namespace, store: RunStore) -> int:
    summaries = store.find(
        name=args.name,
        git_sha=args.git_sha,
        variant=args.variant,
        scheduler=args.scheduler,
    )
    for summary in summaries:
        print(summary)
    if not summaries:
        print(f"no runs in {store.uri}")
    # the fs backend skips (never dies on) unreadable records; say so
    for path, reason in getattr(store, "skipped", []):
        print(f"warning: skipped {path}: {reason}", file=sys.stderr)
    return 0


def _cmd_runs_show(args: argparse.Namespace, store: RunStore) -> int:
    try:
        stored = store.load(args.ref)
    except (KeyError, OSError, ValueError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) else str(exc)
        print(message, file=sys.stderr)
        return 2
    print(stored)
    print(f"name: {stored.name}")
    print(f"git_sha: {stored.git_sha or '(none)'}")
    if stored.merged_from is not None:
        print(f"merged_from: {', '.join(stored.merged_from)}")
    if stored.manifest is not None:
        print(f"manifest: {stored.manifest['path']}")
    print(f"schedulers: {', '.join(stored.result.schedulers())}")
    print()
    print(stored.result.render("makespan"))
    return 0


def _cmd_runs_import(args: argparse.Namespace, store: RunStore) -> int:
    if not _check_path_args(
        *(("RUN_DIR", d) for d in args.run_dirs)
    ):
        return 2
    for run_dir in args.run_dirs:
        try:
            stored = store.import_fs(run_dir)
        except (OSError, ValueError, KeyError) as exc:
            print(f"{run_dir}: {exc}", file=sys.stderr)
            return 2
        print(f"imported {run_dir} as run {stored.ref} in {store.uri}")
    return 0


def _cmd_runs_export(args: argparse.Namespace, store: RunStore) -> int:
    try:
        run_dir = store.export_fs(args.ref, args.dest)
    except (KeyError, OSError, ValueError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) else str(exc)
        print(message, file=sys.stderr)
        return 2
    print(f"exported run {args.ref} to {run_dir}")
    return 0


def _service_url(args: argparse.Namespace) -> str:
    return (
        args.url
        or os.environ.get(SERVICE_URL_ENV)
        or f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"
    )


def _service_client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(_service_url(args))


def _cmd_serve(args: argparse.Namespace) -> int:
    uri = args.store or os.environ.get(STORE_ENV) or "sqlite:runs.db"
    try:
        backend, db_path = parse_store_uri(uri)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if backend != "sqlite":
        print(
            f"serve needs a sqlite store (the job queue lives inside "
            f"the database), got {uri!r} — use --store sqlite:FILE",
            file=sys.stderr,
        )
        return 2
    if not (0 <= args.port <= 65535):
        print(
            f"--port must be in 0..65535, got {args.port}", file=sys.stderr
        )
        return 2
    if args.max_workers < 1:
        print(
            f"--max-workers must be >= 1, got {args.max_workers}",
            file=sys.stderr,
        )
        return 2
    from repro.service.server import serve

    return serve(
        db_path,
        host=args.host,
        port=args.port,
        max_workers=args.max_workers,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    import urllib.error

    from repro.service.client import ServiceError

    if args.timeout <= 0:
        print(
            f"--timeout must be > 0, got {args.timeout}", file=sys.stderr
        )
        return 2
    if not _check_path_args(("SPEC.json", args.spec)):
        return 2
    # validate locally first: a malformed spec earns its exit 2 before
    # any network traffic (the server re-validates with the same
    # helper — same diagnostic either way)
    text = Path(args.spec).read_text(encoding="utf-8")
    try:
        parse_spec_text(text).validate()
    except SpecError as exc:
        print(f"{args.spec}: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"{args.spec}: invalid spec: {exc.args[0]}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"{args.spec}: invalid spec: {exc}", file=sys.stderr)
        return 2
    client = _service_client(args)
    try:
        job = client.submit_text(text)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 2 if exc.status == 422 else 1
    except urllib.error.URLError as exc:
        print(
            f"cannot reach the service at {client.base_url}: "
            f"{exc.reason}",
            file=sys.stderr,
        )
        return 1
    print(
        f"submitted job {job['id']} ({job['name']!r}, "
        f"state {job['state']}) to {client.base_url}"
    )
    if not args.wait:
        return 0
    try:
        job = client.wait(job["id"], timeout=args.timeout)
    except TimeoutError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except urllib.error.URLError as exc:
        print(
            f"lost the service at {client.base_url}: {exc.reason}",
            file=sys.stderr,
        )
        return 1
    if job["state"] == "done":
        print(f"job {job['id']} done: run {job['run_ref']} in the store")
        return 0
    print(
        f"job {job['id']} ended {job['state']!r}"
        + (f": {job['error']}" if job.get("error") else ""),
        file=sys.stderr,
    )
    return 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    import urllib.error

    client = _service_client(args)
    try:
        jobs = client.jobs()
    except urllib.error.URLError as exc:
        print(
            f"cannot reach the service at {client.base_url}: "
            f"{exc.reason}",
            file=sys.stderr,
        )
        return 1
    if not jobs:
        print(f"no jobs at {client.base_url}")
        return 0
    print(render_table(
        ["job", "name", "state", "created", "run ref", "error"],
        [
            [
                j["id"],
                j["name"],
                j["state"],
                j["created_at"],
                j["run_ref"] or "",
                j["error"] or "",
            ]
            for j in jobs
        ],
        title=f"Jobs at {client.base_url}",
    ))
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    import urllib.error

    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        job = client.cancel(args.job_id)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        # 404 = the argument names no job (usage error); 409 = the job
        # exists but is past cancelling (a state conflict, not usage)
        return 2 if exc.status == 404 else 1
    except urllib.error.URLError as exc:
        print(
            f"cannot reach the service at {client.base_url}: "
            f"{exc.reason}",
            file=sys.stderr,
        )
        return 1
    print(f"job {job['id']} cancelled")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if not _check_scale(args):
        return 2
    settings = _settings(args)
    if args.experiment == "fig7a":
        res = frisky_makespan_sweep(scale=args.scale, settings=settings)
        print(res.render())
        print(f"\nbest f (Min-Min): {res.best_f('minmin'):.2f}   "
              f"best f (Sufferage): {res.best_f('sufferage'):.2f}")
    elif args.experiment == "fig7b":
        res = stga_iteration_sweep(scale=args.scale, settings=settings)
        print(res.render())
        print(f"\nconverged after ~{res.converged_after()} generations")
    elif args.experiment in ("fig8", "fig9", "table2"):
        nas = nas_experiment(scale=args.scale, settings=settings)
        if args.experiment == "fig8":
            print(nas.render())
        elif args.experiment == "fig9":
            for panel in utilization_panels(nas):
                print(panel.render())
                print()
        else:
            print(render_table2(nas))
    elif args.experiment == "fig10":
        res = psa_scaling_experiment(scale=args.scale, settings=settings)
        for metric in ("makespan", "avg_response", "slowdown", "n_fail"):
            print(res.render(metric))
            print()
    else:  # ablation
        cmp_ = stga_vs_conventional(scale=args.scale, settings=settings)
        print(
            render_table(
                ["GA variant", "makespan", "avg_response", "initial fitness"],
                [
                    [
                        "STGA",
                        cmp_.stga.makespan,
                        cmp_.stga.avg_response_time,
                        cmp_.stga_initial_mean,
                    ],
                    [
                        "conventional GA",
                        cmp_.conventional.makespan,
                        cmp_.conventional.avg_response_time,
                        cmp_.conventional_initial_mean,
                    ],
                ],
                title="STGA vs conventional GA (Figure 5 concept)",
            )
        )
        print(f"\nSTGA history hit rate: {cmp_.stga_history_hit_rate:.1%}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Usage errors — including stray positionals like a RUN_DIR after a
    non-compare-runs experiment — surface as argparse errors (exit 2),
    never as silently ignored arguments.
    """
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse error (2) or --help (0)
        code = exc.code
        return code if isinstance(code, int) else (0 if code is None else 2)
    try:
        # A bad REPRO_BACKEND would otherwise surface as a traceback
        # from deep inside the first simulation it reaches.
        resolve_backend()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.experiment == "compare-runs":
        return _cmd_compare_runs(args)
    if args.experiment == "sweep":
        return _cmd_sweep(args)
    if args.experiment == "replay":
        return _cmd_replay(args)
    if args.experiment == "run":
        return _cmd_run(args)
    if args.experiment == "shard":
        return _cmd_shard(args)
    if args.experiment == "status":
        return _cmd_status(args)
    if args.experiment == "resume":
        return _cmd_resume(args)
    if args.experiment == "merge":
        return _cmd_merge(args)
    if args.experiment == "emit-spec":
        return _cmd_emit_spec(args)
    if args.experiment == "registry":
        return _cmd_registry(args)
    if args.experiment == "runs":
        return _cmd_runs(args)
    if args.experiment == "serve":
        return _cmd_serve(args)
    if args.experiment == "submit":
        return _cmd_submit(args)
    if args.experiment == "jobs":
        return _cmd_jobs(args)
    if args.experiment == "cancel":
        return _cmd_cancel(args)
    if args.experiment == "lint":
        return cmd_lint(args)
    return _cmd_figure(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
