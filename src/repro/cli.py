"""Command-line entry point: regenerate any paper table or figure.

Examples
--------
::

    repro-grid fig7a --scale 0.1
    repro-grid fig8  --scale 0.05 --seed 7
    repro-grid table2 --scale 0.05
    repro-grid fig10 --scale 0.02
    repro-grid ablation --scale 0.05
    repro-grid sweep --scale 0.01 --sweep-seeds 5 --sweep-jobs 1000,2000
    repro-grid sweep --out runs/baseline
    repro-grid compare-runs runs/baseline runs/tuned

``--scale 1.0`` runs the paper-size experiments (minutes of CPU time);
the default is a fast scaled-down run with identical distributions.
``sweep --out DIR`` persists the run (see
:mod:`repro.experiments.store`); ``compare-runs A B`` diffs two stored
runs per (variant, scheduler, metric) cell.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.ablation import stga_vs_conventional
from repro.experiments.config import RunSettings
from repro.experiments.fig7 import frisky_makespan_sweep, stga_iteration_sweep
from repro.experiments.fig8 import nas_experiment
from repro.experiments.fig9 import utilization_panels
from repro.experiments.fig10 import psa_scaling_experiment
from repro.experiments.store import compare_runs, save_run
from repro.experiments.sweep import (
    job_scaling_variants,
    run_sweep,
    seed_list,
)
from repro.experiments.table2 import render_table2
from repro.metrics.compare import (
    compare_ensemble,
    render_ensemble_comparison,
    render_run_diff,
)
from repro.util.tables import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-grid argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-grid",
        description=(
            "Reproduce the tables and figures of Song/Kwok/Hwang, "
            "'Security-Driven Heuristics and A Fast Genetic Algorithm "
            "for Trusted Grid Job Scheduling' (IPDPS 2005)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig7a",
            "fig7b",
            "fig8",
            "fig9",
            "fig10",
            "table2",
            "ablation",
            "sweep",
            "compare-runs",
        ],
        help="which paper artifact to regenerate (or compare stored runs)",
    )
    parser.add_argument(
        "runs",
        nargs="*",
        metavar="RUN_DIR",
        help="compare-runs only: exactly two stored run directories",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="workload scale factor, 1.0 = paper size (default 0.05)",
    )
    parser.add_argument("--seed", type=int, default=2005, help="root seed")
    parser.add_argument(
        "--batch-interval",
        type=float,
        default=1000.0,
        help="seconds between scheduling events (default 1000)",
    )
    parser.add_argument(
        "--lam",
        type=float,
        default=3.0,
        help="Eq.1 failure-rate constant lambda (default 3.0)",
    )
    sweep = parser.add_argument_group("sweep options")
    sweep.add_argument(
        "--sweep-seeds",
        type=int,
        default=3,
        help="number of replication seeds (default 3)",
    )
    sweep.add_argument(
        "--sweep-workload",
        choices=["psa", "nas"],
        default="psa",
        help="workload generator for the sweep variants (default psa)",
    )
    sweep.add_argument(
        "--sweep-jobs",
        type=str,
        default="1000,2000",
        help="comma-separated job counts, one variant each",
    )
    sweep.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="process-pool size (default: one per CPU; 1 = sequential)",
    )
    sweep.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "persist the sweep as a run record at DIR "
            "(run.json + grid.csv; overwrites an existing record)"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "compare-runs":
        if len(args.runs) != 2:
            print(
                "compare-runs needs exactly two run directories, got "
                f"{len(args.runs)}",
                file=sys.stderr,
            )
            return 2
        try:
            rows = compare_runs(args.runs[0], args.runs[1])
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        except KeyError as exc:
            # a parseable run.json missing expected record keys
            print(f"malformed run record: missing {exc}", file=sys.stderr)
            return 2
        print(render_run_diff(
            rows, title=f"Run diff: {args.runs[0]} vs {args.runs[1]}"
        ))
        diverged = sum(r.verdict == "diverged" for r in rows)
        unchanged = sum(r.verdict == "same" for r in rows)
        print(
            f"\n{len(rows)} cells: {unchanged} same, "
            f"{len(rows) - unchanged - diverged} within CI overlap, "
            f"{diverged} diverged"
        )
        return 0
    if args.runs:
        print(
            "positional run directories only apply to compare-runs",
            file=sys.stderr,
        )
        return 2
    if args.out is not None and args.experiment != "sweep":
        print("--out only applies to the sweep experiment", file=sys.stderr)
        return 2
    if not (0 < args.scale <= 1.0):
        print(f"--scale must be in (0, 1], got {args.scale}", file=sys.stderr)
        return 2
    settings = RunSettings(
        batch_interval=args.batch_interval, lam=args.lam, seed=args.seed
    )

    if args.experiment == "fig7a":
        res = frisky_makespan_sweep(scale=args.scale, settings=settings)
        print(res.render())
        print(f"\nbest f (Min-Min): {res.best_f('minmin'):.2f}   "
              f"best f (Sufferage): {res.best_f('sufferage'):.2f}")
    elif args.experiment == "fig7b":
        res = stga_iteration_sweep(scale=args.scale, settings=settings)
        print(res.render())
        print(f"\nconverged after ~{res.converged_after()} generations")
    elif args.experiment in ("fig8", "fig9", "table2"):
        nas = nas_experiment(scale=args.scale, settings=settings)
        if args.experiment == "fig8":
            print(nas.render())
        elif args.experiment == "fig9":
            for panel in utilization_panels(nas):
                print(panel.render())
                print()
        else:
            print(render_table2(nas))
    elif args.experiment == "sweep":
        try:
            n_values = [int(x) for x in args.sweep_jobs.split(",") if x.strip()]
        except ValueError:
            print(f"bad --sweep-jobs value {args.sweep_jobs!r}", file=sys.stderr)
            return 2
        n_values = list(dict.fromkeys(n_values))  # dedupe, keep order
        if not n_values or args.sweep_seeds < 1:
            print("need >= 1 job count and >= 1 seed", file=sys.stderr)
            return 2
        if any(n < 1 for n in n_values):
            print(
                f"--sweep-jobs counts must be >= 1, got {args.sweep_jobs!r}",
                file=sys.stderr,
            )
            return 2
        if args.max_workers is not None and args.max_workers < 1:
            print(
                f"--max-workers must be >= 1, got {args.max_workers}",
                file=sys.stderr,
            )
            return 2
        res = run_sweep(
            job_scaling_variants(n_values, workload=args.sweep_workload),
            seed_list(args.sweep_seeds, base_seed=args.seed),
            settings=settings,
            scale=args.scale,
            max_workers=args.max_workers,
        )
        for metric in ("makespan", "avg_response_time", "slowdown_ratio",
                       "n_fail"):
            print(res.render(metric))
            print()
        last = res.variants[-1].name
        rows = compare_ensemble(res.per_seed_lineups(last))
        print(render_ensemble_comparison(
            rows, title=f"Table 2 over the sweep ensemble ({last})"
        ))
        if args.out:
            run_dir = save_run(res, args.out, overwrite=True)
            print(f"\nsaved run record to {run_dir}")
    elif args.experiment == "fig10":
        res = psa_scaling_experiment(scale=args.scale, settings=settings)
        for metric in ("makespan", "avg_response", "slowdown", "n_fail"):
            print(res.render(metric))
            print()
    else:  # ablation
        cmp_ = stga_vs_conventional(scale=args.scale, settings=settings)
        print(
            render_table(
                ["GA variant", "makespan", "avg_response", "initial fitness"],
                [
                    [
                        "STGA",
                        cmp_.stga.makespan,
                        cmp_.stga.avg_response_time,
                        cmp_.stga_initial_mean,
                    ],
                    [
                        "conventional GA",
                        cmp_.conventional.makespan,
                        cmp_.conventional.avg_response_time,
                        cmp_.conventional_initial_mean,
                    ],
                ],
                title="STGA vs conventional GA (Figure 5 concept)",
            )
        )
        print(f"\nSTGA history hit rate: {cmp_.stga_history_hit_rate:.1%}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
