"""Sensitivity studies of the parameters the paper leaves open.

* :func:`batch_interval_sweep` — the scheduling period of Figure 1's
  online model is never stated; this sweep shows how makespan and
  response trade off as batches grow (longer accumulation = better
  packing but higher queueing delay);
* :func:`estimation_error_sweep` — the paper's §5 future-work
  question: how fast do the ETC-driven schedulers degrade when job
  durations are only known up to log-normal estimation error?
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.config import PaperDefaults, RunSettings
from repro.experiments.runner import run_scheduler, scale_jobs
from repro.heuristics.estimation import NoisyETCScheduler
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.olb import OLBScheduler
from repro.heuristics.sufferage import SufferageScheduler
from repro.metrics.report import PerformanceReport
from repro.util.rng import RngFactory
from repro.workloads.psa import PSAConfig, psa_scenario

__all__ = ["batch_interval_sweep", "estimation_error_sweep"]


def batch_interval_sweep(
    intervals=(250.0, 1000.0, 4000.0, 16000.0),
    *,
    n_jobs: int = 1000,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
) -> dict[float, PerformanceReport]:
    """Min-Min f-risky under different scheduling periods."""
    n = scale_jobs(n_jobs, scale)
    scenario = psa_scenario(PSAConfig(n_jobs=n), rng=settings.seed)
    out: dict[float, PerformanceReport] = {}
    for interval in intervals:
        s = replace(settings, batch_interval=float(interval))
        out[float(interval)] = run_scheduler(
            scenario, MinMinScheduler("f-risky", lam=settings.lam), s
        )
    return out


def estimation_error_sweep(
    sigmas=(0.0, 0.25, 0.5, 1.0, 2.0),
    *,
    n_jobs: int = 1000,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
) -> dict[float, dict[str, PerformanceReport]]:
    """ETC-driven schedulers vs OLB under runtime-estimate noise.

    Returns ``{sigma: {scheduler: report}}``.  OLB ignores execution
    times, so its row is the noise-immune control.
    """
    n = scale_jobs(n_jobs, scale)
    scenario = psa_scenario(PSAConfig(n_jobs=n), rng=settings.seed)
    rngs = RngFactory(settings.seed)
    out: dict[float, dict[str, PerformanceReport]] = {}
    for sigma in sigmas:
        row: dict[str, PerformanceReport] = {}
        for base in (
            MinMinScheduler("f-risky", f=defaults.f_risky, lam=settings.lam),
            SufferageScheduler(
                "f-risky", f=defaults.f_risky, lam=settings.lam
            ),
        ):
            noisy = NoisyETCScheduler(
                base,
                sigma=float(sigma),
                rng=rngs.fresh(f"noise-{base.name}-{sigma}"),
            )
            row[base.name] = run_scheduler(scenario, noisy, settings)
        olb = OLBScheduler("f-risky", f=defaults.f_risky, lam=settings.lam)
        row[olb.name] = run_scheduler(scenario, olb, settings)
        out[float(sigma)] = row
    return out
