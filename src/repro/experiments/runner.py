"""Shared experiment execution: build schedulers, run simulations,
collect :class:`PerformanceReport` objects.

The paper evaluates seven algorithms on identical event streams:
Min-Min and Sufferage in secure / f-risky / risky mode, plus the STGA
(trained on 500 warmup jobs scheduled by Min-Min).  ``run_lineup``
reproduces exactly that protocol; individual pieces are exposed for
the figure-specific drivers.

The lineup itself is *data*: :data:`PAPER_LINEUP` names seven
scheduler-registry refs (see :mod:`repro.registry`), and
``run_lineup(lineup=...)`` runs any list of refs — the STGA, with its
history warm-up, builds through its registry entry like every other
algorithm, so the runner carries no scheduler-specific branching.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.ga import GAConfig
from repro.core.history import HistoryTable
from repro.core.stga import STGAScheduler, warmup_history
from repro.experiments.config import PaperDefaults, RunSettings
from repro.grid.engine import GridSimulator, SimulationResult
from repro.grid.security import RiskMode
from repro.heuristics.base import BatchScheduler
from repro.metrics.report import PerformanceReport, evaluate
from repro.registry import bind_scheduler, register_scheduler
from repro.util.rng import RngFactory
from repro.workloads.base import Scenario, scale_jobs

__all__ = [
    "PAPER_LINEUP",
    "simulate_scheduler",
    "run_scheduler",
    "make_trained_stga",
    "run_lineup",
    "scale_jobs",
    "reports_by_name",
    "utilization_matrix",
]

#: the paper's seven-algorithm lineup (Figures 8-9, Table 2) as
#: scheduler-registry refs, in presentation order
PAPER_LINEUP = (
    "min-min-secure",
    "min-min-f-risky",
    "min-min-risky",
    "sufferage-secure",
    "sufferage-f-risky",
    "sufferage-risky",
    "stga",
)


def simulate_scheduler(
    scenario: Scenario,
    scheduler: BatchScheduler,
    settings: RunSettings = RunSettings(),
    *,
    engine_seed: int | None = None,
    record_attempts: bool = False,
) -> SimulationResult:
    """Simulate ``scenario`` under ``scheduler``, returning the raw result.

    Threads the scenario's dynamic timeline (if it carries one — see
    :class:`~repro.workloads.dynamics.DynamicScenario`) into the
    engine, so dynamic and static scenarios run through one code path.
    ``record_attempts=True`` attaches a full
    :class:`~repro.grid.trace.AttemptLog` for trace recording.
    """
    seed = settings.seed if engine_seed is None else engine_seed
    sim = GridSimulator(
        scenario.grid,
        scheduler,
        batch_interval=settings.batch_interval,
        lam=settings.lam,
        failure_point=settings.failure_point,
        fallback=settings.fallback,
        rng=RngFactory(seed).stream("engine-failures"),
        record_attempts=record_attempts,
    )
    return sim.run(
        scenario.jobs, timeline=getattr(scenario, "timeline", None)
    )


def run_scheduler(
    scenario: Scenario,
    scheduler: BatchScheduler,
    settings: RunSettings = RunSettings(),
    *,
    engine_seed: int | None = None,
) -> PerformanceReport:
    """Simulate ``scenario`` under ``scheduler`` and evaluate it."""
    result = simulate_scheduler(
        scenario, scheduler, settings, engine_seed=engine_seed
    )
    return evaluate(result, scheduler.name)


def make_trained_stga(
    scenario: Scenario,
    training: Scenario | None,
    settings: RunSettings = RunSettings(),
    *,
    defaults: PaperDefaults = PaperDefaults(),
    ga_config: GAConfig | None = None,
    mode: RiskMode | str = RiskMode.F_RISKY,
    history: HistoryTable | None = None,
    **stga_kwargs,
) -> STGAScheduler:
    """Build an STGA with a history table warmed on ``training`` jobs.

    ``training=None`` skips the warm-up (the table then fills only
    from the STGA's own batches, the paper's "built from the
    beginning" alternative).  ``history`` overrides the default table
    (Table 1's capacity 150 / threshold 0.8) for ablations; extra
    keyword arguments pass through to :class:`STGAScheduler`
    (``risk_penalty``, ``heuristic_seeds``, ...).

    The default gene alphabet is *f-risky* (f = 0.5): under our
    λ = 3.0 failure law, unconstrained risky placements carry higher
    rework cost than in the paper's setup, and the f-risky alphabet is
    what reproduces the paper's "STGA wins" ordering (DESIGN.md §4).
    The STGA still takes abundant risk — N_risk stays comparable to
    the risky heuristics — matching the paper's observation.
    """
    rngs = RngFactory(settings.seed)
    if history is None:
        history = HistoryTable(
            capacity=defaults.lookup_table_size,
            threshold=defaults.similarity_threshold,
        )
    if training is not None:
        warmup_history(
            history,
            scenario.grid,
            training.jobs,
            batch_interval=settings.batch_interval,
            lam=settings.lam,
            rng=rngs.stream("warmup-failures"),
        )
    return STGAScheduler(
        mode,
        f=defaults.f_risky,
        lam=settings.lam,
        config=ga_config if ga_config is not None else settings.ga,
        rng=rngs.stream("stga"),
        history=history,
        **stga_kwargs,
    )


@register_scheduler(
    "stga",
    description="Space-Time GA with its history lookup table, warmed "
    "on the training stream (the paper's contribution)",
    stateful=True,
)
def _build_stga(
    settings,
    rng,
    *,
    scenario=None,
    training=None,
    defaults: PaperDefaults | None = None,
    ga_config=None,
    mode: RiskMode | str = RiskMode.F_RISKY,
    capacity: int | None = None,
    threshold: float | None = None,
    eviction: str | None = None,
    **stga_kwargs,
):
    """Registry factory wrapping the full warm-up protocol.

    Ref parameters override the history table (``capacity``,
    ``threshold``, ``eviction``) and any :class:`STGAScheduler`
    keyword (``risk_penalty``, ``heuristic_seeds``, ...); without
    parameters this is bit-identical to :func:`make_trained_stga`.
    """
    if scenario is None:
        raise ValueError(
            "the 'stga' scheduler needs the run's scenario in its "
            "build context (run_lineup provides it)"
        )
    if defaults is None:
        defaults = PaperDefaults()
    history = None
    if capacity is not None or threshold is not None or eviction is not None:
        history = HistoryTable(
            capacity=capacity if capacity is not None
            else defaults.lookup_table_size,
            threshold=threshold if threshold is not None
            else defaults.similarity_threshold,
            eviction=eviction if eviction is not None else "lru",
        )
    return make_trained_stga(
        scenario,
        training,
        settings,
        defaults=defaults,
        ga_config=ga_config,
        mode=mode,
        history=history,
        **stga_kwargs,
    )


def run_lineup(
    scenario: Scenario,
    training: Scenario | None = None,
    settings: RunSettings = RunSettings(),
    *,
    defaults: PaperDefaults = PaperDefaults(),
    ga_config: GAConfig | None = None,
    schedulers: Sequence[BatchScheduler] | None = None,
    include_stga: bool = True,
    lineup: Sequence[str] | None = None,
) -> list[PerformanceReport]:
    """Run a scheduler lineup on one scenario.

    ``lineup`` is a sequence of scheduler-registry refs (default: the
    paper's seven-algorithm :data:`PAPER_LINEUP`, or its six
    heuristics when ``include_stga=False``); every ref binds through
    :func:`repro.registry.bind_scheduler` with the run's context
    (scenario, training stream, paper defaults), so stateful entries
    like the STGA need no special treatment here and every built
    scheduler exposes the unified ``ScheduleFn`` call surface.
    ``schedulers`` instead supplies pre-built instances — a
    deprecation shim kept for older drivers; prefer lineup refs
    (``include_stga`` then appends the registry-built ``"stga"``).

    Every scheduler sees the same scenario and the same engine failure
    stream seed, so differences are purely scheduling decisions.
    Returns reports in lineup order.
    """
    if lineup is not None and schedulers is not None:
        raise ValueError("pass either lineup refs or scheduler instances")
    context = dict(
        scenario=scenario,
        training=training,
        defaults=defaults,
        ga_config=ga_config,
    )
    if schedulers is not None:
        built = list(schedulers)
        refs: tuple[str, ...] = ("stga",) if include_stga else ()
    else:
        refs = (
            tuple(lineup)
            if lineup is not None
            else (PAPER_LINEUP if include_stga else PAPER_LINEUP[:-1])
        )
        built = []
    built.extend(
        bind_scheduler(ref, settings, RngFactory(settings.seed), **context)
        for ref in refs
    )
    return [run_scheduler(scenario, sched, settings) for sched in built]


def reports_by_name(
    reports: Iterable[PerformanceReport],
) -> dict[str, PerformanceReport]:
    """Index reports by scheduler name."""
    out: dict[str, PerformanceReport] = {}
    for rep in reports:
        if rep.scheduler in out:
            raise ValueError(f"duplicate scheduler name {rep.scheduler!r}")
        out[rep.scheduler] = rep
    return out


def utilization_matrix(reports: Sequence[PerformanceReport]) -> np.ndarray:
    """Stack per-site utilizations into an (A, S) matrix (Figure 9)."""
    return np.vstack([r.site_utilization for r in reports])
