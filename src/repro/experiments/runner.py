"""Shared experiment execution: build schedulers, run simulations,
collect :class:`PerformanceReport` objects.

The paper evaluates seven algorithms on identical event streams:
Min-Min and Sufferage in secure / f-risky / risky mode, plus the STGA
(trained on 500 warmup jobs scheduled by Min-Min).  ``run_lineup``
reproduces exactly that protocol; individual pieces are exposed for
the figure-specific drivers.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.ga import GAConfig
from repro.core.history import HistoryTable
from repro.core.stga import STGAScheduler, warmup_history
from repro.experiments.config import PaperDefaults, RunSettings
from repro.grid.engine import GridSimulator
from repro.grid.security import RiskMode
from repro.heuristics.base import BatchScheduler
from repro.heuristics.factory import paper_heuristics
from repro.metrics.report import PerformanceReport, evaluate
from repro.util.rng import RngFactory
from repro.workloads.base import Scenario

__all__ = [
    "run_scheduler",
    "make_trained_stga",
    "run_lineup",
    "scale_jobs",
    "reports_by_name",
    "utilization_matrix",
]


def scale_jobs(n_jobs: int, scale: float) -> int:
    """Scaled job count, at least 20 so metrics stay meaningful."""
    if not (0 < scale <= 1.0):
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    return max(20, int(round(n_jobs * scale)))


def run_scheduler(
    scenario: Scenario,
    scheduler: BatchScheduler,
    settings: RunSettings = RunSettings(),
    *,
    engine_seed: int | None = None,
) -> PerformanceReport:
    """Simulate ``scenario`` under ``scheduler`` and evaluate it."""
    seed = settings.seed if engine_seed is None else engine_seed
    sim = GridSimulator(
        scenario.grid,
        scheduler,
        batch_interval=settings.batch_interval,
        lam=settings.lam,
        failure_point=settings.failure_point,
        fallback=settings.fallback,
        rng=RngFactory(seed).stream("engine-failures"),
    )
    result = sim.run(scenario.jobs)
    return evaluate(result, scheduler.name)


def make_trained_stga(
    scenario: Scenario,
    training: Scenario | None,
    settings: RunSettings = RunSettings(),
    *,
    defaults: PaperDefaults = PaperDefaults(),
    ga_config: GAConfig | None = None,
    mode: RiskMode | str = RiskMode.F_RISKY,
) -> STGAScheduler:
    """Build an STGA with a history table warmed on ``training`` jobs.

    ``training=None`` skips the warm-up (the table then fills only
    from the STGA's own batches, the paper's "built from the
    beginning" alternative).

    The default gene alphabet is *f-risky* (f = 0.5): under our
    λ = 3.0 failure law, unconstrained risky placements carry higher
    rework cost than in the paper's setup, and the f-risky alphabet is
    what reproduces the paper's "STGA wins" ordering (DESIGN.md §4).
    The STGA still takes abundant risk — N_risk stays comparable to
    the risky heuristics — matching the paper's observation.
    """
    rngs = RngFactory(settings.seed)
    history = HistoryTable(
        capacity=defaults.lookup_table_size,
        threshold=defaults.similarity_threshold,
    )
    if training is not None:
        warmup_history(
            history,
            scenario.grid,
            training.jobs,
            batch_interval=settings.batch_interval,
            lam=settings.lam,
            rng=rngs.stream("warmup-failures"),
        )
    return STGAScheduler(
        mode,
        f=defaults.f_risky,
        lam=settings.lam,
        config=ga_config if ga_config is not None else settings.ga,
        rng=rngs.stream("stga"),
        history=history,
    )


def run_lineup(
    scenario: Scenario,
    training: Scenario | None = None,
    settings: RunSettings = RunSettings(),
    *,
    defaults: PaperDefaults = PaperDefaults(),
    ga_config: GAConfig | None = None,
    schedulers: Sequence[BatchScheduler] | None = None,
    include_stga: bool = True,
) -> list[PerformanceReport]:
    """Run the paper's seven-algorithm line-up on one scenario.

    Every scheduler sees the same scenario and the same engine failure
    stream seed, so differences are purely scheduling decisions.
    Returns reports in the paper's presentation order.
    """
    lineup: list[BatchScheduler] = (
        list(schedulers)
        if schedulers is not None
        else paper_heuristics(f=defaults.f_risky, lam=settings.lam)
    )
    if include_stga:
        lineup.append(
            make_trained_stga(
                scenario,
                training,
                settings,
                defaults=defaults,
                ga_config=ga_config,
            )
        )
    return [run_scheduler(scenario, sched, settings) for sched in lineup]


def reports_by_name(
    reports: Iterable[PerformanceReport],
) -> dict[str, PerformanceReport]:
    """Index reports by scheduler name."""
    out: dict[str, PerformanceReport] = {}
    for rep in reports:
        if rep.scheduler in out:
            raise ValueError(f"duplicate scheduler name {rep.scheduler!r}")
        out[rep.scheduler] = rep
    return out


def utilization_matrix(reports: Sequence[PerformanceReport]) -> np.ndarray:
    """Stack per-site utilizations into an (A, S) matrix (Figure 9)."""
    return np.vstack([r.site_utilization for r in reports])
