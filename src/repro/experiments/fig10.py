"""Figure 10 — scaling the PSA workload size N.

The paper varies N over {1000, 2000, 5000, 10000} and tracks the three
best performers (Min-Min f-risky, Sufferage f-risky, STGA) on four
panels: (a) makespan, (b) N_fail and N_risk, (c) slowdown ratio,
(d) average response time.  All metrics grow monotonically with N;
the STGA wins throughout (≈6 % on makespan, ≈40 % on slowdown and
response in the paper).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.ga import GAConfig
from repro.experiments.config import PaperDefaults, RunSettings
from repro.experiments.runner import (
    PAPER_LINEUP,
    make_trained_stga,
    run_scheduler,
    scale_jobs,
)
from repro.experiments.spec import ExperimentSpec, run_spec
from repro.experiments.sweep import (
    SweepResult,
    job_scaling_variants,
)
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.sufferage import SufferageScheduler
from repro.metrics.report import PerformanceReport
from repro.util.tables import render_table
from repro.workloads.psa import PSAConfig, psa_scenario

__all__ = [
    "PSAScalingResult",
    "psa_scaling_experiment",
    "psa_scaling_ensemble",
    "psa_scaling_spec",
    "DEFAULT_N_GRID",
]

DEFAULT_N_GRID = (1000, 2000, 5000, 10000)


@dataclass(frozen=True)
class PSAScalingResult:
    """Reports indexed by (scheduler, N)."""

    n_values: tuple[int, ...]
    reports: dict[str, tuple[PerformanceReport, ...]]

    def series(self, scheduler: str, metric: str) -> np.ndarray:
        """One panel line, e.g. ``series("STGA", "makespan")``."""
        reps = self.reports[scheduler]
        return np.array([getattr(r, metric) for r in reps], dtype=float)

    def monotone_increasing(self, scheduler: str, metric: str) -> bool:
        """The paper's 'monotonic increasing trend' check."""
        s = self.series(scheduler, metric)
        return bool((np.diff(s) >= 0).all())

    def render(self, metric: str = "makespan") -> str:
        """One panel as a table: rows = N, columns = schedulers."""
        names = list(self.reports)
        rows = []
        for i, n in enumerate(self.n_values):
            rows.append([n] + [self.reports[nm][i].row()[1:][_metric_col(metric)]
                               for nm in names])
        return render_table(
            ["N"] + names, rows, title=f"Figure 10: {metric} vs N (PSA)"
        )


def _metric_col(metric: str) -> int:
    cols = {"makespan": 0, "avg_response": 1, "slowdown": 2, "n_risk": 3,
            "n_fail": 4}
    if metric not in cols:
        raise KeyError(f"unknown panel metric {metric!r}")
    return cols[metric]


def psa_scaling_experiment(
    *,
    n_values=DEFAULT_N_GRID,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
    ga_config: GAConfig | None = None,
) -> PSAScalingResult:
    """Run Figure 10: three schedulers at each workload size."""
    ns = tuple(int(n) for n in n_values)
    reports: dict[str, list[PerformanceReport]] = {
        "Min-Min f-Risky(f=0.5)": [],
        "Sufferage f-Risky(f=0.5)": [],
        "STGA": [],
    }
    for n in ns:
        n_eff = scale_jobs(n, scale)
        scenario = psa_scenario(PSAConfig(n_jobs=n_eff), rng=settings.seed)
        training = psa_scenario(
            PSAConfig(n_jobs=scale_jobs(defaults.n_training_jobs, scale)),
            rng=settings.seed + 7919,
        )
        mm = MinMinScheduler("f-risky", f=defaults.f_risky, lam=settings.lam)
        sf = SufferageScheduler("f-risky", f=defaults.f_risky, lam=settings.lam)
        stga = make_trained_stga(
            scenario, training, settings, defaults=defaults, ga_config=ga_config
        )
        for sched in (mm, sf, stga):
            reports[sched.name].append(run_scheduler(scenario, sched, settings))
    return PSAScalingResult(
        n_values=ns,
        reports={k: tuple(v) for k, v in reports.items()},
    )


def psa_scaling_spec(
    *,
    n_values=DEFAULT_N_GRID,
    seeds: Sequence[int] | None = None,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
) -> ExperimentSpec:
    """Figure 10 as a declarative spec: one PSA variant per workload
    size N, the paper's full lineup (a superset of the figure's three
    schedulers), ``seeds`` defaulting to the single ``settings.seed``.
    """
    return ExperimentSpec(
        name="fig10-psa-scaling",
        schedulers=PAPER_LINEUP,
        variants=job_scaling_variants(
            n_values, n_training_jobs=defaults.n_training_jobs
        ),
        seeds=tuple(seeds) if seeds is not None else (settings.seed,),
        scale=scale,
        settings=settings,
    )


def psa_scaling_ensemble(
    seeds: Sequence[int],
    *,
    n_values=DEFAULT_N_GRID,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
    max_workers: int | None = None,
) -> SweepResult:
    """Figure 10 with error bars: the N-grid replicated over seeds.

    Fans the (N, seed) grid out over a process pool and returns a
    :class:`~repro.experiments.sweep.SweepResult` whose
    ``render(metric)`` prints each panel as mean ± std series (the
    full lineup, a superset of the figure's three schedulers).  Thin
    wrapper: builds :func:`psa_scaling_spec` and executes it.
    """
    return run_spec(
        psa_scaling_spec(
            n_values=n_values, seeds=seeds, scale=scale, settings=settings,
            defaults=defaults,
        ),
        defaults=defaults,
        max_workers=max_workers,
    )
