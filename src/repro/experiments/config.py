"""Experiment configuration (paper Table 1 + engine settings).

:class:`PaperDefaults` pins every Table 1 value in one place; the
benchmark that "reproduces Table 1" asserts that the library defaults
agree with it.  :class:`RunSettings` carries the engine parameters the
paper leaves unspecified (batch interval, failure-rate constant λ,
seeds) with our documented choices (DESIGN.md §3-4).

Because the full paper-scale runs (16 000 NAS jobs x 7 schedulers,
100-generation GA per batch) take minutes, every experiment function
accepts a ``scale`` factor: job counts are multiplied by it while all
distributional parameters stay fixed.  ``scale=1.0`` is the paper;
benches default to the value of the ``REPRO_SCALE`` environment
variable (or a small built-in) so CI stays fast.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, replace

from repro.core.ga import GAConfig
from repro.grid.security import DEFAULT_LAMBDA

__all__ = ["PaperDefaults", "RunSettings", "bench_scale"]


@dataclass(frozen=True)
class PaperDefaults:
    """Table 1 of the paper, verbatim."""

    nas_n_jobs: int = 16_000
    psa_n_jobs: int = 5_000
    nas_n_sites: int = 12
    psa_n_sites: int = 20
    psa_arrival_rate: float = 0.008
    psa_workload_levels: int = 20
    #: Table 1's printed value — see the calibration note in
    #: :mod:`repro.workloads.psa`: the paper's own makespans imply the
    #: calibrated value below, which the generator defaults to.
    psa_max_workload_printed: float = 300_000.0
    psa_max_workload: float = 30_000.0
    nas_site_nodes: tuple[int, ...] = (16, 16, 16, 16, 8, 8, 8, 8, 8, 8, 8, 8)
    psa_speed_levels: int = 10
    site_security_range: tuple[float, float] = (0.4, 1.0)
    job_security_range: tuple[float, float] = (0.6, 0.9)
    generations: int = 100
    population_size: int = 200
    crossover_prob: float = 0.8
    mutation_prob: float = 0.01
    lookup_table_size: int = 150
    n_training_jobs: int = 500
    similarity_threshold: float = 0.8
    f_risky: float = 0.5

    def ga_config(self, **overrides) -> GAConfig:
        """Table 1's GA hyper-parameters as a :class:`GAConfig`."""
        kwargs = dict(
            population_size=self.population_size,
            generations=self.generations,
            crossover_prob=self.crossover_prob,
            mutation_prob=self.mutation_prob,
        )
        kwargs.update(overrides)
        return GAConfig(**kwargs)


@dataclass(frozen=True)
class RunSettings:
    """Engine parameters not fixed by the paper (see DESIGN.md §4).

    ``ga`` defaults to Table 1's hyper-parameters plus
    ``flow_weight=1.0`` — the flow tie-breaker in the GA fitness that
    our calibration selected (DESIGN.md §4); set ``flow_weight=0`` for
    the literal makespan-only objective.
    """

    batch_interval: float = 1000.0
    lam: float = DEFAULT_LAMBDA
    failure_point: str = "uniform"
    fallback: str = "force_max_sl"
    seed: int = 2005  # the venue year; any value works
    ga: GAConfig = field(
        default_factory=lambda: PaperDefaults().ga_config(flow_weight=1.0)
    )

    def with_overrides(self, **overrides) -> "RunSettings":
        """Copy with some fields replaced; ``None`` values are ignored.

        The sweep harness uses this to layer per-variant engine
        overrides (λ, batch interval) and the per-replication seed on
        top of shared base settings.  The special ``ga_overrides``
        key takes a dict of :class:`~repro.core.ga.GAConfig` field
        overrides applied on top of the (possibly also overridden)
        ``ga`` config, so a variant can tweak e.g. ``generations``
        without restating the whole GA configuration.
        """
        kwargs = {k: v for k, v in overrides.items() if v is not None}
        ga_overrides = kwargs.pop("ga_overrides", None)
        if ga_overrides:
            # None-valued entries mean "keep the base value", matching
            # the outer overrides' contract
            ga_kwargs = {
                k: v for k, v in dict(ga_overrides).items() if v is not None
            }
            if ga_kwargs:
                kwargs["ga"] = replace(kwargs.get("ga", self.ga), **ga_kwargs)
        return replace(self, **kwargs) if kwargs else self

    def to_dict(self) -> dict:
        """JSON-ready dict (``ga`` nested); round-trips bit-identically
        through :meth:`from_dict` — floats serialize with ``repr``
        fidelity, the ``json`` module's default."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSettings":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(data)
        kwargs["ga"] = GAConfig(**kwargs["ga"])
        return cls(**kwargs)


def bench_scale(default: float = 0.05) -> float:
    """Benchmark scale factor from ``REPRO_SCALE`` (1.0 = paper size)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    value = float(raw)
    if not (0 < value <= 1.0):
        raise ValueError(f"REPRO_SCALE must be in (0, 1], got {raw!r}")
    return value
