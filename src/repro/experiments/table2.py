"""Table 2 — the global α/β comparison on the NAS workload.

α is each heuristic's makespan divided by the STGA's, β the same for
average response time.  The paper reports (NAS trace): secure ≈
(1.31, 2.0x), f-risky ≈ (1.16-1.18, 1.44-1.56), risky ≈ (1.09-1.10,
1.26-1.28), with ranking STGA > risky > f-risky > secure.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.fig8 import NASExperimentResult, nas_spec
from repro.experiments.spec import ExperimentSpec
from repro.metrics.compare import (
    ComparisonRow,
    compare_to_reference,
    render_comparison,
)

__all__ = ["table2_rows", "table2_spec", "render_table2", "PAPER_TABLE2"]

#: the paper's published values, for side-by-side printing
PAPER_TABLE2 = {
    "Min-Min Secure": (1.314, 2.035, "4th"),
    "Min-Min f-Risky(f=0.5)": (1.157, 1.441, "3rd"),
    "Min-Min Risky": (1.094, 1.262, "2nd"),
    "Sufferage Secure": (1.307, 2.011, "4th"),
    "Sufferage f-Risky(f=0.5)": (1.181, 1.555, "3rd"),
    "Sufferage Risky": (1.102, 1.275, "2nd"),
    "STGA": (1.000, 1.000, "1st"),
}


def table2_rows(result: NASExperimentResult) -> list[ComparisonRow]:
    """Compute the measured Table 2 from a NAS experiment."""
    return compare_to_reference(list(result.reports), reference="STGA")


def table2_spec(**kwargs) -> ExperimentSpec:
    """Table 2 as a declarative spec — the same runs as Figure 8
    (:func:`~repro.experiments.fig8.nas_spec`) under its own name."""
    return replace(nas_spec(**kwargs), name="table2-nas")


def render_table2(result: NASExperimentResult) -> str:
    """Measured table plus the paper's values for comparison."""
    rows = table2_rows(result)
    measured = render_comparison(
        rows, title="Table 2 (measured): alpha/beta vs STGA, NAS workload"
    )
    paper_lines = ["", "Table 2 (paper):"]
    for name, (a, b, rank) in PAPER_TABLE2.items():
        paper_lines.append(f"  {name:<28} alpha={a:<6} beta={b:<6} {rank}")
    return measured + "\n" + "\n".join(paper_lines)
