"""Figure 7 — the paper's two parameter-selection studies on PSA
workloads with N = 1000 jobs.

(a) Makespan of Min-Min f-risky and Sufferage f-risky as f sweeps from
    0 (secure) to 1 (risky).  The paper observes concave curves with
    minima around f = 0.5-0.6, justifying f = 0.5 everywhere else.
(b) Makespan of the STGA as a function of the GA generation budget.
    The paper sees fluctuation up to ~25 iterations, convergence
    around 40-50, and a flat curve beyond — justifying 100 iterations
    as a safe default.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from repro.experiments.config import PaperDefaults, RunSettings
from repro.experiments.runner import make_trained_stga, run_scheduler, scale_jobs
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import ScenarioVariant, parallel_map
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.sufferage import SufferageScheduler
from repro.util.tables import render_table
from repro.workloads.psa import PSAConfig, psa_scenario

__all__ = [
    "FriskySweepResult",
    "frisky_makespan_sweep",
    "frisky_sweep_spec",
    "StgaIterationSweepResult",
    "stga_iteration_sweep",
    "stga_iteration_spec",
    "DEFAULT_F_GRID",
    "DEFAULT_ITERATION_GRID",
]

DEFAULT_F_GRID = tuple(np.round(np.linspace(0.0, 1.0, 11), 2))
DEFAULT_ITERATION_GRID = (0, 5, 10, 25, 40, 50, 75, 100, 150, 200)


def _psa(n_jobs: int, seed: int) -> PSAConfig:
    return PSAConfig(n_jobs=n_jobs)


@dataclass(frozen=True)
class FriskySweepResult:
    """Series for Figure 7(a).

    When the sweep was replicated over several seeds the makespan
    arrays hold the per-f *means* and the ``*_std`` fields the
    per-f sample standard deviations (error bars); single-seed runs
    leave the std fields ``None``.
    """

    f_values: np.ndarray
    minmin_makespan: np.ndarray
    sufferage_makespan: np.ndarray
    minmin_std: np.ndarray | None = None
    sufferage_std: np.ndarray | None = None
    n_seeds: int = 1

    def best_f(self, which: str = "minmin") -> float:
        """f value attaining the minimum makespan."""
        series = (
            self.minmin_makespan if which == "minmin" else self.sufferage_makespan
        )
        return float(self.f_values[int(np.argmin(series))])

    def render(self) -> str:
        """Paper-style series table (mean ± std under replication)."""
        if self.minmin_std is None:
            rows = [
                [f, mm, sf]
                for f, mm, sf in zip(
                    self.f_values, self.minmin_makespan, self.sufferage_makespan
                )
            ]
        else:
            rows = [
                [f, f"{mm:.6g} ± {ms:.3g}", f"{sf:.6g} ± {ss:.3g}"]
                for f, mm, ms, sf, ss in zip(
                    self.f_values,
                    self.minmin_makespan,
                    self.minmin_std,
                    self.sufferage_makespan,
                    self.sufferage_std,
                )
            ]
        title = "Figure 7(a): makespan vs risk level f (PSA)"
        if self.n_seeds > 1:
            title += f", {self.n_seeds} seeds"
        return render_table(
            ["f", "Min-Min f-Risky makespan", "Sufferage f-Risky makespan"],
            rows,
            title=title,
        )


def _frisky_one_seed(task) -> tuple[np.ndarray, np.ndarray]:
    """One replication of the Figure 7(a) sweep (picklable worker)."""
    seed, n_jobs, scale, f_values, settings = task
    res = frisky_makespan_sweep(
        n_jobs=n_jobs,
        scale=scale,
        f_values=f_values,
        settings=replace(settings, seed=seed),
    )
    return res.minmin_makespan, res.sufferage_makespan


def frisky_makespan_sweep(
    *,
    n_jobs: int = 1000,
    scale: float = 1.0,
    f_values=DEFAULT_F_GRID,
    settings: RunSettings = RunSettings(),
    seeds: Sequence[int] | None = None,
    max_workers: int | None = None,
) -> FriskySweepResult:
    """Run Figure 7(a): one simulation per (heuristic, f) pair.

    ``seeds`` replicates the whole sweep once per seed (fanned out
    over a process pool, see
    :func:`repro.experiments.sweep.parallel_map`) and returns per-f
    mean ± std series — the error-bar version of the figure.
    """
    if seeds is not None:
        tasks = [
            (int(s), n_jobs, scale, tuple(f_values), settings) for s in seeds
        ]
        if not tasks:
            raise ValueError("seeds must be non-empty when given")
        results = parallel_map(
            _frisky_one_seed, tasks, max_workers=max_workers
        )
        mm = np.stack([r[0] for r in results])  # (n_seeds, n_f)
        sf = np.stack([r[1] for r in results])
        ddof = 1 if len(tasks) > 1 else 0
        return FriskySweepResult(
            f_values=np.asarray(f_values, dtype=float),
            minmin_makespan=mm.mean(axis=0),
            sufferage_makespan=sf.mean(axis=0),
            minmin_std=mm.std(axis=0, ddof=ddof),
            sufferage_std=sf.std(axis=0, ddof=ddof),
            n_seeds=len(tasks),
        )
    n = scale_jobs(n_jobs, scale)
    scenario = psa_scenario(_psa(n, settings.seed), rng=settings.seed)
    fs = np.asarray(f_values, dtype=float)
    mm = np.empty(fs.size)
    sf = np.empty(fs.size)
    for i, f in enumerate(fs):
        mm[i] = run_scheduler(
            scenario, MinMinScheduler("f-risky", f=float(f), lam=settings.lam),
            settings,
        ).makespan
        sf[i] = run_scheduler(
            scenario,
            SufferageScheduler("f-risky", f=float(f), lam=settings.lam),
            settings,
        ).makespan
    return FriskySweepResult(
        f_values=fs, minmin_makespan=mm, sufferage_makespan=sf
    )


def frisky_sweep_spec(
    *,
    n_jobs: int = 1000,
    f_values=DEFAULT_F_GRID,
    seeds: Sequence[int] | None = None,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
) -> ExperimentSpec:
    """Figure 7(a) as a declarative spec.

    The f-axis maps onto parameterized scheduler refs — one
    ``"...-f-risky?f=X"`` entry per grid point and heuristic (the
    report names stay distinct because f appears in them), on a single
    PSA variant with no STGA warm-up stream.
    """
    return ExperimentSpec(
        name="fig7a-frisky-sweep",
        schedulers=tuple(
            f"{algo}-f-risky?f={float(f):g}"
            for algo in ("min-min", "sufferage")
            for f in f_values
        ),
        variants=(
            ScenarioVariant(
                name=f"PSA N={n_jobs}",
                workload="psa",
                n_jobs=n_jobs,
                n_training_jobs=0,
            ),
        ),
        seeds=tuple(seeds) if seeds is not None else (settings.seed,),
        metrics=("makespan",),
        scale=scale,
        settings=settings,
    )


def stga_iteration_spec(
    *,
    n_jobs: int = 1000,
    generations=DEFAULT_ITERATION_GRID,
    seeds: Sequence[int] | None = None,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
) -> ExperimentSpec:
    """Figure 7(b) as a declarative spec.

    The generation-budget axis maps onto scenario variants carrying
    per-variant ``ga_overrides`` — same PSA workload, same warm-up,
    only the STGA's iteration budget changes.
    """
    gens = sorted(set(int(g) for g in generations))
    if any(g < 0 for g in gens):
        raise ValueError("generation budgets must be non-negative")
    return ExperimentSpec(
        name="fig7b-stga-iterations",
        schedulers=("stga",),
        variants=tuple(
            ScenarioVariant(
                name=f"generations={g}",
                workload="psa",
                n_jobs=n_jobs,
                n_training_jobs=defaults.n_training_jobs,
                ga_overrides={"generations": g},
            )
            for g in gens
        ),
        seeds=tuple(seeds) if seeds is not None else (settings.seed,),
        metrics=("makespan",),
        scale=scale,
        settings=settings,
    )


@dataclass(frozen=True)
class StgaIterationSweepResult:
    """Series for Figure 7(b)."""

    generations: np.ndarray
    makespan: np.ndarray

    def converged_after(self, *, rel_tol: float = 0.01) -> int:
        """First generation budget whose makespan is within ``rel_tol``
        of the best over the grid (the paper's "converges at ~50")."""
        best = self.makespan.min()
        ok = self.makespan <= best * (1 + rel_tol)
        return int(self.generations[int(np.argmax(ok))])

    def render(self) -> str:
        """Paper-style series table."""
        return render_table(
            ["generations", "STGA makespan"],
            list(zip(self.generations, self.makespan)),
            title="Figure 7(b): STGA makespan vs iteration budget (PSA)",
        )


def stga_iteration_sweep(
    *,
    n_jobs: int = 1000,
    scale: float = 1.0,
    generations=DEFAULT_ITERATION_GRID,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
) -> StgaIterationSweepResult:
    """Run Figure 7(b): one full simulation per generation budget."""
    n = scale_jobs(n_jobs, scale)
    scenario = psa_scenario(_psa(n, settings.seed), rng=settings.seed)
    n_train = scale_jobs(defaults.n_training_jobs, scale)
    training = psa_scenario(
        PSAConfig(n_jobs=n_train), rng=settings.seed + 7919
    )
    gens = np.asarray(sorted(set(int(g) for g in generations)), dtype=int)
    if (gens < 0).any():
        raise ValueError("generation budgets must be non-negative")
    spans = np.empty(gens.size)
    for i, g in enumerate(gens):
        stga = make_trained_stga(
            scenario,
            training,
            settings,
            defaults=defaults,
            ga_config=defaults.ga_config(generations=int(g)),
        )
        spans[i] = run_scheduler(scenario, stga, settings).makespan
    return StgaIterationSweepResult(generations=gens, makespan=spans)
