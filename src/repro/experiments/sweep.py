"""Replication sweeps: N seeds x M scenario variants, in parallel.

Every headline number of the paper reproduction was originally a
single-seed run.  This module turns any lineup experiment into a
statistically grounded sweep: it fans the (variant, seed) grid out
over a :class:`concurrent.futures.ProcessPoolExecutor`, collects the
per-run :class:`~repro.metrics.report.PerformanceReport` objects, and
aggregates them into mean / std / 95 %-CI summaries per
(variant, scheduler, metric) cell.

Determinism contract
--------------------
A sweep run is *per-seed identical* to sequential
:func:`~repro.experiments.runner.run_lineup` calls with the same
:class:`~repro.util.rng.RngFactory` streams: each worker rebuilds its
scenario from ``(variant, seed)`` exactly the way the figure drivers
do (workload rng = seed, training rng = seed + 7919, engine/GA
streams from ``RunSettings.seed = seed``), so the executor fan-out
changes wall-clock time and nothing else.
``benchmarks/test_sweep_throughput.py`` asserts this.

CLI
---
The sweep is wired into the ``repro-grid`` CLI as the ``sweep``
experiment::

    repro-grid sweep --scale 0.01 --sweep-seeds 5 --sweep-workload psa \\
        --sweep-jobs 1000,2000 --max-workers 4

which prints one mean ± std table per paper metric.  ``--max-workers
1`` forces the sequential in-process fallback (used by the tier-1
tests so CI never forks).  See ``examples/replication_sweep.py`` for
the library-level entry points.
"""

from __future__ import annotations

import math
import os
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields, replace

import numpy as np

from repro.core.ga import GAConfig
from repro.experiments.config import PaperDefaults, RunSettings
from repro.experiments.runner import reports_by_name, run_lineup
from repro.metrics.report import PerformanceReport
from repro.registry import (
    build_workload,
    parse_workload_ref,
    validate_variant,
    workload_spec,
)
from repro.util.stats import t_critical
from repro.util.tables import render_table
from repro.workloads.base import Scenario

__all__ = [
    "ScenarioVariant",
    "MetricSummary",
    "SweepResult",
    "run_sweep",
    "job_scaling_variants",
    "lambda_variants",
    "seed_list",
    "SWEEP_METRICS",
    "parallel_map",
]

#: PerformanceReport attributes aggregated per sweep cell — the four
#: Figure 8/10 panel metrics plus N_risk.
SWEEP_METRICS = (
    "makespan",
    "avg_response_time",
    "slowdown_ratio",
    "n_risk",
    "n_fail",
)


@dataclass(frozen=True)
class ScenarioVariant:
    """One scenario configuration of the sweep grid.

    A variant pins the workload side (generator, job count, grid
    size, arrival intensity) and any engine overrides (λ, batch
    interval, GA hyper-parameters); the replication seed stays free —
    the sweep crosses every variant with every seed.  ``workload`` is
    a workload *ref* — a registry entry name (built-ins: ``"psa"``,
    ``"nas"``, ``"replay"``; see :mod:`repro.registry` for registering
    more), optionally parameterized like
    ``"psa?dynamics=poisson&breakdown=0.01&online=true"`` to layer
    dynamic-scenario processes (:mod:`repro.workloads.dynamics`) on
    top of the generator.  The entry both validates the variant's
    knobs and builds its scenarios.

    ``n_sites`` sizes the grid for either workload: the PSA generator
    directly, NAS via :func:`~repro.workloads.nas.nas_site_plan`
    (which keeps the paper's 1:2 big:small site ratio, so ``n_sites=12``
    is the paper's 4x16 + 8x8 plan).  ``arrival_rate`` applies to the
    PSA generator only (NAS arrivals follow the trace's daily-cycle
    profile); ``None`` keeps the workload default.  ``n_training_jobs``
    sizes the STGA warm-up stream (paper: 500); ``0`` skips the
    warm-up.  ``ga_overrides`` is an optional mapping of
    :class:`~repro.core.ga.GAConfig` field overrides (e.g.
    ``{"generations": 50}``) layered onto the base settings' GA config
    for this variant only; it is normalized to a sorted tuple of
    ``(field, value)`` pairs so the variant stays hashable and truly
    immutable (pass a dict or any pair iterable).
    """

    name: str
    workload: str = "psa"  # a workload ref: "psa", "nas", "psa?online=true", …
    n_jobs: int = 1000
    n_sites: int | None = None
    arrival_rate: float | None = None
    lam: float | None = None
    batch_interval: float | None = None
    n_training_jobs: int = 500
    ga_overrides: dict | tuple | None = None

    def __post_init__(self) -> None:
        try:
            # ``workload`` is a ref — a bare name or "name?key=value&…"
            # (e.g. "psa?dynamics=poisson&online=true"); unknown names
            # raise, listing the registered generators.
            workload_spec(parse_workload_ref(self.workload)[0])
        except KeyError as exc:
            raise ValueError(exc.args[0]) from None
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.n_training_jobs < 0:
            raise ValueError(
                f"n_training_jobs must be >= 0, got {self.n_training_jobs}"
            )
        if self.n_sites is not None and self.n_sites < 1:
            raise ValueError(f"n_sites must be >= 1, got {self.n_sites}")
        # workload-specific knob policy lives with the generator
        # (e.g. NAS rejects arrival_rate)
        validate_variant(self)
        if self.ga_overrides is not None:
            overrides = dict(self.ga_overrides)
            valid = {f.name for f in fields(GAConfig)}
            unknown = sorted(set(overrides) - valid)
            if unknown:
                raise ValueError(
                    f"unknown GAConfig fields in ga_overrides: {unknown}"
                )
            object.__setattr__(
                self, "ga_overrides", tuple(sorted(overrides.items()))
            )

    def settings_for(self, settings: RunSettings, seed: int) -> RunSettings:
        """Base settings plus this variant's engine overrides and seed."""
        return settings.with_overrides(
            seed=seed,
            lam=self.lam,
            batch_interval=self.batch_interval,
            ga_overrides=dict(self.ga_overrides) if self.ga_overrides else None,
        )

    def build_scenarios(
        self, seed: int, scale: float
    ) -> tuple[Scenario, Scenario | None]:
        """(scenario, training) for one replication.

        Delegates to the variant's workload-registry entry, which
        mirrors the figure drivers exactly: workload rng = ``seed``,
        training rng = ``seed +
        :data:`~repro.workloads.base.TRAINING_SEED_OFFSET`\\ ``, job
        counts through :func:`~repro.workloads.base.scale_jobs`.
        """
        return build_workload(self, seed, scale)


@dataclass(frozen=True)
class _SweepTask:
    """Picklable unit of work: one (variant, seed) replication."""

    variant: ScenarioVariant
    seed: int
    scale: float
    settings: RunSettings
    defaults: PaperDefaults
    include_stga: bool
    lineup: tuple[str, ...] | None = None


def _run_task(task: _SweepTask) -> list[PerformanceReport]:
    """Worker entry point (module-level for ProcessPoolExecutor)."""
    settings = task.variant.settings_for(task.settings, task.seed)
    scenario, training = task.variant.build_scenarios(task.seed, task.scale)
    return run_lineup(
        scenario,
        training,
        settings,
        defaults=task.defaults,
        include_stga=task.include_stga,
        lineup=task.lineup,
    )


def parallel_map(fn, items, *, max_workers: int | None = None) -> list:
    """Order-preserving map over a process pool.

    ``max_workers=None`` sizes the pool to ``min(len(items),
    cpu_count)``; ``max_workers=1`` (or a single item) runs
    sequentially in-process — no fork, same results, the tier-1 test
    fallback.
    """
    items = list(items)
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if max_workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if max_workers is None:
        max_workers = min(len(items), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items))


@dataclass(frozen=True)
class MetricSummary:
    """Mean / std / 95 %-CI of one metric across replications.

    Both fields default so either keyword spelling works
    (``MetricSummary(values=...)`` or the fully explicit form); an
    empty replication set is still rejected.
    """

    metric: str = ""
    values: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("cannot summarize an empty replication set")

    @property
    def n(self) -> int:
        """Number of replications."""
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); 0 for a single seed."""
        if self.n < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def ci95(self) -> float:
        """Half-width of the two-sided Student-t 95 % interval.

        Uses the t critical value at ``n - 1`` degrees of freedom
        (e.g. 2.776 at the default 5-seed ensembles, not the 1.96
        normal limit, which understates the interval by ~40 % there);
        0.0 for a single replication, where the interval is undefined.
        """
        if self.n < 2:
            return 0.0
        return t_critical(self.n - 1) * self.std / math.sqrt(self.n)

    def __str__(self) -> str:
        return f"{self.mean:.6g} ± {self.std:.3g}"


def _merged_order(kind: str, noun: str, ordered: tuple, have: set) -> tuple:
    """Validate an explicit :meth:`SweepResult.merge` ordering.

    ``ordered`` must be a permutation of the merged element set
    ``have``.  Elements the order requires but no part supplied get
    the multi-host diagnostic (a shard's record never arrived) rather
    than a blame-the-argument permutation error.
    """
    absent = set(ordered) - have
    if absent and have <= set(ordered) and len(set(ordered)) == len(ordered):
        raise ValueError(
            f"merged runs are missing {noun}(s) {sorted(absent)} "
            f"required by {kind} — is a shard's run record absent?"
        )
    if set(ordered) != have or len(ordered) != len(have):
        raise ValueError(
            f"{kind} {ordered} is not a permutation of the merged "
            f"{noun} set {tuple(sorted(have))}"
        )
    return ordered


@dataclass(frozen=True)
class SweepResult:
    """All replications of one sweep, plus their aggregation.

    ``reports[variant_name][scheduler_name]`` holds one
    :class:`PerformanceReport` per seed, in ``seeds`` order — the raw
    material for any downstream statistic; :meth:`summary` and
    :meth:`render` cover the common mean ± std uses.

    ``settings``, ``scale`` and ``elapsed_seconds`` record provenance
    for the run store (:mod:`repro.experiments.store`): the shared
    base settings the variants layered their overrides on, the
    workload scale factor, and the sweep's wall-clock time.
    """

    variants: tuple[ScenarioVariant, ...]
    seeds: tuple[int, ...]
    reports: dict[str, dict[str, tuple[PerformanceReport, ...]]]
    settings: RunSettings | None = None
    scale: float = 1.0
    elapsed_seconds: float | None = None

    def schedulers(self) -> tuple[str, ...]:
        """Scheduler names, in lineup order."""
        first = self.reports[self.variants[0].name]
        return tuple(first)

    def cell(
        self, variant: str, scheduler: str
    ) -> tuple[PerformanceReport, ...]:
        """Per-seed reports of one (variant, scheduler) cell."""
        return self.reports[variant][scheduler]

    def per_seed_lineups(self, variant: str) -> list[list[PerformanceReport]]:
        """One report list per seed, in lineup order — the shape
        :func:`repro.metrics.compare.compare_ensemble` consumes."""
        return [list(reps) for reps in zip(*self.reports[variant].values())]

    def summary(
        self, variant: str, scheduler: str, metric: str
    ) -> MetricSummary:
        """Aggregate one metric of one cell across seeds."""
        reps = self.cell(variant, scheduler)
        return MetricSummary(
            metric=metric,
            values=tuple(float(getattr(r, metric)) for r in reps),
        )

    def summary_grid(
        self, metric: str
    ) -> dict[str, dict[str, MetricSummary]]:
        """``{variant: {scheduler: MetricSummary}}`` for one metric."""
        return {
            v.name: {
                s: self.summary(v.name, s, metric) for s in self.schedulers()
            }
            for v in self.variants
        }

    @classmethod
    def merge(
        cls,
        results: Sequence["SweepResult"],
        *,
        seeds_order: Sequence[int] | None = None,
        variants_order: Sequence[str] | None = None,
        allow_partial: bool = False,
    ) -> "SweepResult":
        """Union of partial sweep results into one complete grid.

        The inverse of sharding
        (:func:`repro.experiments.dispatch.shard_spec`): partial
        results over disjoint seed or variant subsets combine into one
        :class:`SweepResult` whose summaries are recomputed from the
        *pooled* per-seed raw values — ``merged.summary(...)`` is
        exactly ``MetricSummary`` over the concatenated replications,
        so mean/std/Student-t CIs tighten as shards pool.

        Rules
        -----
        * All parts must share ``scale``, base ``settings`` (``None``
          acts as a wildcard) and the same scheduler tuple.
        * A variant name appearing in several parts must denote the
          same :class:`ScenarioVariant`.
        * Overlapping (variant, seed) cells must be identical on every
          deterministic :class:`PerformanceReport` field
          (``scheduler_seconds`` is wall-clock and ignored); a
          conflict raises ``ValueError`` — two shards disagreeing on
          one replication means they did not run the same code or
          spec, and averaging the disagreement away would hide that.
        * The merged (variant, seed) grid must be complete: every
          variant needs a report at every merged seed, or the parts
          "do not tile" and merging raises — unless
          ``allow_partial=True``, which instead keeps the largest
          complete sub-grid it can form: every candidate seed-set
          (each variant's fully covered seeds, plus their common
          intersection) pairs with all variants covering it, and the
          candidate with the most cells wins (first in variant order
          on ties).  For the axis-aligned coverage a dead shard leaves
          behind this is the maximal complete sub-grid.  That is the
          ``repro-grid merge --allow-partial`` path for runs whose
          shards are still missing; merging raises only when no
          complete sub-grid exists at all.

        ``seeds_order`` / ``variants_order`` pin the output ordering
        (they must be permutations of the merged sets) so a merge can
        reproduce the original spec's layout bit for bit; by default
        seeds sort ascending and variants keep first-appearance order.
        With ``allow_partial`` they act as layout *filters* instead —
        elements outside the kept sub-grid are silently dropped, so the
        original spec's orderings stay usable when shards are absent.
        ``elapsed_seconds`` sums the parts' recorded times (the total
        compute spent, not the dispatch wall-clock).
        """
        results = list(results)
        if not results:
            raise ValueError("need at least one sweep result to merge")
        scales = {r.scale for r in results}
        if len(scales) > 1:
            raise ValueError(
                f"cannot merge runs with different scales: {sorted(scales)}"
            )
        known_settings = [r.settings for r in results if r.settings is not None]
        for s in known_settings[1:]:
            if s != known_settings[0]:
                raise ValueError(
                    "cannot merge runs with different base settings"
                )
        scheds = results[0].schedulers()
        for r in results[1:]:
            if r.schedulers() != scheds:
                raise ValueError(
                    f"cannot merge runs with different scheduler lineups: "
                    f"{scheds} vs {r.schedulers()}"
                )

        variants_by_name: dict[str, ScenarioVariant] = {}
        variant_names: list[str] = []
        # cells[(variant, scheduler, seed)] -> PerformanceReport
        cells: dict[tuple[str, str, int], PerformanceReport] = {}
        seed_set: set[int] = set()
        for r in results:
            for v in r.variants:
                seen = variants_by_name.get(v.name)
                if seen is None:
                    variants_by_name[v.name] = v
                    variant_names.append(v.name)
                elif seen != v:
                    raise ValueError(
                        f"variant {v.name!r} has conflicting definitions "
                        "across the merged runs"
                    )
            seed_set.update(r.seeds)
            for vname, per_sched in r.reports.items():
                for sched, reps in per_sched.items():
                    if len(reps) != len(r.seeds):
                        raise ValueError(
                            f"malformed partial run: cell ({vname!r}, "
                            f"{sched!r}) has {len(reps)} report(s) for "
                            f"{len(r.seeds)} seed(s)"
                        )
                    for seed, rep in zip(r.seeds, reps):
                        key = (vname, sched, seed)
                        prior = cells.get(key)
                        if prior is None:
                            cells[key] = rep
                        elif replace(prior, scheduler_seconds=0.0) != replace(
                            rep, scheduler_seconds=0.0
                        ):
                            raise ValueError(
                                f"cell ({vname!r}, {sched!r}, seed {seed}) "
                                "appears in several runs with conflicting "
                                "reports; overlapping cells must be "
                                "bit-identical"
                            )

        if allow_partial:
            # the largest complete sub-grid: every candidate seed-set
            # (each variant's fully covered seeds, plus their common
            # intersection) pairs with the variants covering it; keep
            # the candidate with the most cells (ties go to the first
            # candidate in variant order, so the choice is
            # deterministic).  For axis-sharded partial runs — the
            # shapes a dead shard actually leaves behind — this is the
            # maximal complete sub-grid.
            covered = {
                vname: frozenset(
                    s
                    for s in seed_set
                    if all(
                        (vname, sched, s) in cells for sched in scheds
                    )
                )
                for vname in variant_names
            }
            nonempty = [c for c in covered.values() if c]
            candidates: list[frozenset] = []
            for cand in [
                *(covered[v] for v in variant_names),
                frozenset.intersection(*nonempty) if nonempty else None,
            ]:
                if cand and cand not in candidates:
                    candidates.append(cand)
            if not candidates:
                raise ValueError(
                    "partial runs share no complete (variant, seed) "
                    "sub-grid; nothing mergeable even with allow_partial"
                )
            scored = [
                (
                    cand,
                    [v for v in variant_names if covered[v] >= cand],
                )
                for cand in candidates
            ]
            kept_seeds, kept_names = max(
                scored, key=lambda c: len(c[0]) * len(c[1])
            )
            # the orderings act as layout filters here, but duplicates
            # are still rejected — repeating a seed would silently
            # double-count its replication in every pooled summary
            if seeds_order is not None:
                ordered = tuple(int(s) for s in seeds_order)
                if len(set(ordered)) != len(ordered):
                    raise ValueError(
                        f"seeds_order {ordered} contains duplicates"
                    )
                seeds = tuple(s for s in ordered if s in kept_seeds)
            else:
                seeds = tuple(sorted(kept_seeds))
            if variants_order is not None:
                ordered_v = tuple(variants_order)
                if len(set(ordered_v)) != len(ordered_v):
                    raise ValueError(
                        f"variants_order {ordered_v} contains duplicates"
                    )
                kept = set(kept_names)
                vnames = tuple(v for v in ordered_v if v in kept)
            else:
                vnames = tuple(kept_names)
            if not seeds or not vnames:
                raise ValueError(
                    "the requested ordering excludes every complete "
                    "cell of the partial merge"
                )
        else:
            if seeds_order is not None:
                seeds = _merged_order(
                    "seeds_order",
                    "seed",
                    tuple(int(s) for s in seeds_order),
                    seed_set,
                )
            else:
                seeds = tuple(sorted(seed_set))
            if variants_order is not None:
                vnames = _merged_order(
                    "variants_order",
                    "variant",
                    tuple(variants_order),
                    set(variant_names),
                )
            else:
                vnames = tuple(variant_names)

        missing = [
            (vname, sched, seed)
            for vname in vnames
            for sched in scheds
            for seed in seeds
            if (vname, sched, seed) not in cells
        ]
        if missing:
            raise ValueError(
                f"merged runs do not tile the (variant, seed) grid; "
                f"{len(missing)} missing cell(s), first: {missing[0]}"
            )
        reports = {
            vname: {
                sched: tuple(cells[vname, sched, seed] for seed in seeds)
                for sched in scheds
            }
            for vname in vnames
        }
        elapsed = [
            r.elapsed_seconds
            for r in results
            if r.elapsed_seconds is not None
        ]
        return cls(
            variants=tuple(variants_by_name[n] for n in vnames),
            seeds=seeds,
            reports=reports,
            settings=known_settings[0] if known_settings else None,
            scale=results[0].scale,
            elapsed_seconds=sum(elapsed) if elapsed else None,
        )

    def render(self, metric: str = "makespan") -> str:
        """Mean ± std table: rows = variants, columns = schedulers."""
        names = self.schedulers()
        rows = [
            [v.name]
            + [str(self.summary(v.name, s, metric)) for s in names]
            for v in self.variants
        ]
        return render_table(
            ["scenario"] + list(names),
            rows,
            title=(
                f"Sweep: {metric} over {len(self.seeds)} seed(s) "
                f"{tuple(self.seeds)}"
            ),
        )


def seed_list(n_seeds: int, *, base_seed: int = 2005) -> tuple[int, ...]:
    """``n_seeds`` distinct replication seeds starting at ``base_seed``."""
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
    return tuple(base_seed + i for i in range(n_seeds))


def job_scaling_variants(
    n_values: Sequence[int],
    *,
    workload: str = "psa",
    n_training_jobs: int | None = None,
    **overrides,
) -> tuple[ScenarioVariant, ...]:
    """One variant per workload size N (the Figure 10 axis).

    ``workload`` may be a parameterized ref; variant names use only
    the base generator name (``"psa?online=true"`` → ``"PSA N=…"``).
    """
    if n_training_jobs is None:
        n_training_jobs = PaperDefaults().n_training_jobs
    base = parse_workload_ref(workload)[0]
    return tuple(
        ScenarioVariant(
            name=f"{base.upper()} N={int(n)}",
            workload=workload,
            n_jobs=int(n),
            n_training_jobs=n_training_jobs,
            **overrides,
        )
        for n in n_values
    )


def lambda_variants(
    lams: Sequence[float],
    *,
    workload: str = "psa",
    n_jobs: int = 1000,
    n_training_jobs: int | None = None,
    **overrides,
) -> tuple[ScenarioVariant, ...]:
    """One variant per Eq. 1 failure-rate constant λ.

    ``n_training_jobs`` is forwarded like :func:`job_scaling_variants`
    does (``None`` = Table 1's 500-job warm-up stream).
    """
    if n_training_jobs is None:
        n_training_jobs = PaperDefaults().n_training_jobs
    base = parse_workload_ref(workload)[0]
    return tuple(
        ScenarioVariant(
            name=f"{base.upper()} lam={float(lam):g}",
            workload=workload,
            n_jobs=n_jobs,
            lam=float(lam),
            n_training_jobs=n_training_jobs,
            **overrides,
        )
        for lam in lams
    )


def run_sweep(
    variants: Sequence[ScenarioVariant],
    seeds: Sequence[int],
    *,
    settings: RunSettings = RunSettings(),
    scale: float = 1.0,
    defaults: PaperDefaults = PaperDefaults(),
    include_stga: bool = True,
    lineup: Sequence[str] | None = None,
    max_workers: int | None = None,
) -> SweepResult:
    """Run the full (variant x seed) grid and aggregate the reports.

    Each grid point is one :func:`run_lineup` call — by default the
    paper's lineup (optionally without the STGA), or any list of
    scheduler-registry refs via ``lineup`` — on one freshly generated
    scenario.  Grid points are independent, so they fan out over a
    process pool; ``max_workers=1`` runs them sequentially in-process
    with identical results.
    """
    variants = tuple(variants)
    seeds = tuple(int(s) for s in seeds)
    lineup = tuple(lineup) if lineup is not None else None
    if not variants:
        raise ValueError("need at least one scenario variant")
    if not seeds:
        raise ValueError("need at least one replication seed")
    if len(set(seeds)) != len(seeds):
        raise ValueError(f"replication seeds must be distinct, got {seeds}")
    names = [v.name for v in variants]
    if len(set(names)) != len(names):
        raise ValueError(f"variant names must be distinct, got {names}")

    tasks = [
        _SweepTask(
            variant=v,
            seed=s,
            scale=scale,
            settings=settings,
            defaults=defaults,
            include_stga=include_stga,
            lineup=lineup,
        )
        for v in variants
        for s in seeds
    ]
    started = time.perf_counter()
    outputs = parallel_map(_run_task, tasks, max_workers=max_workers)
    elapsed = time.perf_counter() - started

    reports: dict[str, dict[str, list[PerformanceReport]]] = {}
    for task, lineup_reports in zip(tasks, outputs):
        per_sched = reports.setdefault(task.variant.name, {})
        for sched_name, rep in reports_by_name(lineup_reports).items():
            per_sched.setdefault(sched_name, []).append(rep)
    frozen = {
        vname: {s: tuple(reps) for s, reps in per_sched.items()}
        for vname, per_sched in reports.items()
    }
    for vname, per_sched in frozen.items():
        for sched_name, reps in per_sched.items():
            if len(reps) != len(seeds):  # pragma: no cover - invariant
                raise RuntimeError(
                    f"cell ({vname!r}, {sched_name!r}) collected "
                    f"{len(reps)} reports for {len(seeds)} seeds"
                )
    return SweepResult(
        variants=variants,
        seeds=seeds,
        reports=frozen,
        settings=settings,
        scale=scale,
        elapsed_seconds=elapsed,
    )
