"""Figure 8 — the seven-algorithm comparison on the NAS trace workload.

Four panels over one set of runs: (a) makespan, (b) N_fail / N_risk,
(c) slowdown ratio, (d) average response time, for Min-Min and
Sufferage in secure / f-risky / risky mode plus the STGA.  Figure 9
and Table 2 reuse the same reports, so :func:`nas_experiment` is the
single entry point for the NAS study.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.core.ga import GAConfig
from repro.experiments.config import PaperDefaults, RunSettings
from repro.experiments.runner import PAPER_LINEUP, run_lineup, scale_jobs
from repro.experiments.spec import ExperimentSpec, run_spec
from repro.experiments.sweep import ScenarioVariant, SweepResult
from repro.metrics.report import PerformanceReport
from repro.util.tables import render_table
from repro.workloads.nas import NASConfig, nas_scenario

__all__ = [
    "NASExperimentResult",
    "nas_experiment",
    "nas_ensemble",
    "nas_spec",
]


@dataclass(frozen=True)
class NASExperimentResult:
    """Reports for the seven algorithms, in presentation order."""

    reports: tuple[PerformanceReport, ...]

    def by_name(self) -> dict[str, PerformanceReport]:
        """Index the reports by scheduler name."""
        return {r.scheduler: r for r in self.reports}

    @property
    def stga(self) -> PerformanceReport:
        """The STGA row."""
        return self.by_name()["STGA"]

    def render(self) -> str:
        """All four panels as one metrics table."""
        return render_table(
            list(PerformanceReport.ROW_HEADERS),
            [r.row() for r in self.reports],
            title="Figure 8: NAS trace workload, all Section 4.1 metrics",
        )


def nas_experiment(
    *,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
    ga_config: GAConfig | None = None,
    nas_config: NASConfig | None = None,
) -> NASExperimentResult:
    """Run the Figure 8 / Figure 9 / Table 2 experiment.

    ``scale`` shrinks the job counts (trace *and* training set) while
    keeping the squeezed 46-day horizon and all distributions; the
    trace-day count is shrunk proportionally so arrival pressure per
    day is preserved.
    """
    base = nas_config if nas_config is not None else NASConfig()
    n = scale_jobs(base.n_jobs, scale)
    days = max(2, int(round(base.trace_days * scale)))
    cfg = replace(base, n_jobs=n, trace_days=days)
    scenario = nas_scenario(cfg, rng=settings.seed)

    n_train = scale_jobs(defaults.n_training_jobs, scale)
    train_days = max(1, int(round(days * n_train / max(n, 1))))
    training = nas_scenario(
        replace(base, n_jobs=n_train, trace_days=train_days),
        rng=settings.seed + 7919,
    )

    reports = run_lineup(
        scenario,
        training,
        settings,
        defaults=defaults,
        ga_config=ga_config,
    )
    return NASExperimentResult(reports=tuple(reports))


def nas_spec(
    *,
    seeds: Sequence[int] | None = None,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
) -> ExperimentSpec:
    """The Figure 8 / Figure 9 / Table 2 experiment as a declarative
    spec: the paper's seven-ref lineup on one NAS variant.

    ``seeds`` defaults to the single ``settings.seed``, in which case
    :func:`~repro.experiments.spec.run_spec` reproduces
    :func:`nas_experiment` bit for bit; more seeds give the error-bar
    ensemble.
    """
    return ExperimentSpec(
        name="fig8-nas",
        schedulers=PAPER_LINEUP,
        variants=(
            ScenarioVariant(
                name=f"NAS N={NASConfig().n_jobs}",
                workload="nas",
                n_jobs=NASConfig().n_jobs,
                n_training_jobs=defaults.n_training_jobs,
            ),
        ),
        seeds=tuple(seeds) if seeds is not None else (settings.seed,),
        scale=scale,
        settings=settings,
    )


def nas_ensemble(
    seeds: Sequence[int],
    *,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
    max_workers: int | None = None,
) -> SweepResult:
    """Figure 8 / Table 2 with error bars: one NAS run per seed.

    Each replication reproduces :func:`nas_experiment` for that seed
    (identical scenario construction and RNG streams); the returned
    :class:`~repro.experiments.sweep.SweepResult` carries per-metric
    mean ± std summaries across the ensemble.  Thin wrapper: builds
    the :func:`nas_spec` and executes it.
    """
    return run_spec(
        nas_spec(seeds=seeds, scale=scale, settings=settings,
                 defaults=defaults),
        defaults=defaults,
        max_workers=max_workers,
    )
