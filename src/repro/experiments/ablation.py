"""Ablation studies of the STGA's design choices (DESIGN.md §5).

These go beyond the paper's figures and probe the knobs the paper
fixes by fiat:

* :func:`stga_vs_conventional` — the Figure 5 concept made
  quantitative: identical GA, with and without history seeding;
* :func:`lookup_capacity_sweep` — Table 1's table size (150);
* :func:`threshold_sweep` — Table 1's similarity threshold (0.8);
* :func:`eviction_comparison` — LRU (paper) vs FIFO;
* :func:`lambda_sensitivity` — the unspecified failure constant λ;
* :func:`failure_point_comparison` — where the fail-stop bites;
* :func:`risk_penalty_sweep` — risk-penalised fitness (extension).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.ga import GAConfig
from repro.core.history import HistoryTable
from repro.core.stga import StandardGAScheduler, STGAScheduler
from repro.experiments.config import PaperDefaults, RunSettings
from repro.experiments.runner import (
    make_trained_stga,
    run_scheduler,
    scale_jobs,
)
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import ScenarioVariant
from repro.heuristics.minmin import MinMinScheduler
from repro.metrics.report import PerformanceReport
from repro.util.rng import RngFactory
from repro.workloads.psa import PSAConfig, psa_scenario

__all__ = [
    "GAComparisonResult",
    "stga_vs_conventional",
    "stga_ablation_spec",
    "lookup_capacity_sweep",
    "threshold_sweep",
    "eviction_comparison",
    "lambda_sensitivity",
    "failure_point_comparison",
    "risk_penalty_sweep",
]


def _psa_pair(n_jobs: int, scale: float, settings: RunSettings, defaults):
    n = scale_jobs(n_jobs, scale)
    scenario = psa_scenario(PSAConfig(n_jobs=n), rng=settings.seed)
    training = psa_scenario(
        PSAConfig(n_jobs=scale_jobs(defaults.n_training_jobs, scale)),
        rng=settings.seed + 7919,
    )
    return scenario, training


@dataclass(frozen=True)
class GAComparisonResult:
    """STGA vs conventional GA under an identical generation budget."""

    stga: PerformanceReport
    conventional: PerformanceReport
    #: mean best-fitness of the *initial* population per batch — the
    #: paper's Figure 5 claim is stga_initial < conventional_initial.
    stga_initial_mean: float
    conventional_initial_mean: float
    stga_history_hit_rate: float


def stga_vs_conventional(
    *,
    n_jobs: int = 1000,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
    ga_config: GAConfig | None = None,
) -> GAComparisonResult:
    """Quantify the value of the history table (Figure 5 concept)."""
    scenario, training = _psa_pair(n_jobs, scale, settings, defaults)
    cfg = ga_config if ga_config is not None else settings.ga

    stga = make_trained_stga(
        scenario, training, settings, defaults=defaults, ga_config=cfg
    )
    stga_report = run_scheduler(scenario, stga, settings)

    conventional = StandardGAScheduler(
        "f-risky",  # same gene alphabet as the STGA for a fair contrast
        f=defaults.f_risky,
        lam=settings.lam,
        config=cfg,
        rng=RngFactory(settings.seed).stream("conventional-ga"),
    )
    conv_report = run_scheduler(scenario, conventional, settings)

    return GAComparisonResult(
        stga=stga_report,
        conventional=conv_report,
        stga_initial_mean=float(np.mean(stga.initial_fitnesses)),
        conventional_initial_mean=float(np.mean(conventional.initial_fitnesses)),
        stga_history_hit_rate=stga.history.hit_rate,
    )


def stga_ablation_spec(
    *,
    n_jobs: int = 1000,
    seeds=None,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
) -> ExperimentSpec:
    """The STGA design-choice ablation as a declarative spec.

    One PSA variant, four parameterized ``stga`` refs plus the
    conventional GA: the paper's LRU table, FIFO eviction, a
    history-only STGA (no per-batch heuristic seeds) and the
    no-history baseline — labels keep the report names distinct.
    """
    return ExperimentSpec(
        name="stga-ablation",
        schedulers=(
            "stga",
            "stga?eviction=fifo&label=STGA-FIFO",
            "stga?heuristic_seeds=false&label=STGA-history-only",
            "ga?label=conventional-GA",
        ),
        variants=(
            ScenarioVariant(
                name=f"PSA N={n_jobs}",
                workload="psa",
                n_jobs=n_jobs,
                n_training_jobs=defaults.n_training_jobs,
            ),
        ),
        seeds=tuple(seeds) if seeds is not None else (settings.seed,),
        scale=scale,
        settings=settings,
    )


def _trained_stga_with_table(
    scenario, training, settings, defaults, table: HistoryTable, ga_config=None
) -> STGAScheduler:
    return make_trained_stga(
        scenario,
        training,
        settings,
        defaults=defaults,
        ga_config=ga_config,
        history=table,
    )


def lookup_capacity_sweep(
    capacities=(10, 50, 150, 400),
    *,
    n_jobs: int = 1000,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
    ga_config: GAConfig | None = None,
) -> dict[int, PerformanceReport]:
    """Makespan sensitivity to the history-table capacity."""
    scenario, training = _psa_pair(n_jobs, scale, settings, defaults)
    out: dict[int, PerformanceReport] = {}
    for cap in capacities:
        table = HistoryTable(
            capacity=int(cap), threshold=defaults.similarity_threshold
        )
        stga = _trained_stga_with_table(
            scenario, training, settings, defaults, table, ga_config
        )
        out[int(cap)] = run_scheduler(scenario, stga, settings)
    return out


def threshold_sweep(
    thresholds=(0.5, 0.7, 0.8, 0.9, 0.99),
    *,
    n_jobs: int = 1000,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
    ga_config: GAConfig | None = None,
) -> dict[float, tuple[PerformanceReport, float]]:
    """(report, history hit rate) per similarity threshold."""
    scenario, training = _psa_pair(n_jobs, scale, settings, defaults)
    out: dict[float, tuple[PerformanceReport, float]] = {}
    for th in thresholds:
        table = HistoryTable(
            capacity=defaults.lookup_table_size, threshold=float(th)
        )
        stga = _trained_stga_with_table(
            scenario, training, settings, defaults, table, ga_config
        )
        rep = run_scheduler(scenario, stga, settings)
        out[float(th)] = (rep, table.hit_rate)
    return out


def eviction_comparison(
    *,
    n_jobs: int = 1000,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
    ga_config: GAConfig | None = None,
) -> dict[str, PerformanceReport]:
    """LRU (paper) vs FIFO eviction for the lookup table."""
    scenario, training = _psa_pair(n_jobs, scale, settings, defaults)
    out: dict[str, PerformanceReport] = {}
    for policy in ("lru", "fifo"):
        table = HistoryTable(
            capacity=defaults.lookup_table_size,
            threshold=defaults.similarity_threshold,
            eviction=policy,
        )
        stga = _trained_stga_with_table(
            scenario, training, settings, defaults, table, ga_config
        )
        out[policy] = run_scheduler(scenario, stga, settings)
    return out


def lambda_sensitivity(
    lams=(1.0, 3.0, 6.0, 12.0),
    *,
    n_jobs: int = 1000,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
) -> dict[float, dict[str, PerformanceReport]]:
    """Risky vs secure Min-Min across failure-law steepness λ.

    As λ grows, risky placements fail more often and the risky mode's
    advantage shrinks — this sweep quantifies how much our default
    λ = 3.0 matters.
    """
    n = scale_jobs(n_jobs, scale)
    scenario = psa_scenario(PSAConfig(n_jobs=n), rng=settings.seed)
    out: dict[float, dict[str, PerformanceReport]] = {}
    for lam in lams:
        s = replace(settings, lam=float(lam))
        out[float(lam)] = {
            "risky": run_scheduler(
                scenario, MinMinScheduler("risky", lam=float(lam)), s
            ),
            "secure": run_scheduler(
                scenario, MinMinScheduler("secure", lam=float(lam)), s
            ),
        }
    return out


def failure_point_comparison(
    *,
    n_jobs: int = 1000,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
) -> dict[str, PerformanceReport]:
    """'uniform' vs 'end' fail-stop point under risky Min-Min."""
    n = scale_jobs(n_jobs, scale)
    scenario = psa_scenario(PSAConfig(n_jobs=n), rng=settings.seed)
    out: dict[str, PerformanceReport] = {}
    for point in ("uniform", "end"):
        s = replace(settings, failure_point=point)
        out[point] = run_scheduler(
            scenario, MinMinScheduler("risky", lam=settings.lam), s
        )
    return out


def risk_penalty_sweep(
    penalties=(0.0, 0.5, 1.0, 2.0),
    *,
    n_jobs: int = 1000,
    scale: float = 1.0,
    settings: RunSettings = RunSettings(),
    defaults: PaperDefaults = PaperDefaults(),
    ga_config: GAConfig | None = None,
) -> dict[float, PerformanceReport]:
    """Risk-penalised GA fitness (extension): trade N_fail vs makespan."""
    scenario, training = _psa_pair(n_jobs, scale, settings, defaults)
    out: dict[float, PerformanceReport] = {}
    for pen in penalties:
        stga = make_trained_stga(
            scenario,
            training,
            settings,
            defaults=defaults,
            ga_config=ga_config,
            risk_penalty=float(pen),
        )
        out[float(pen)] = run_scheduler(scenario, stga, settings)
    return out
