"""Run manifests: the durable state of a sharded, resumable dispatch.

PR 4's shard/merge protocol distributes an
:class:`~repro.experiments.spec.ExperimentSpec` across hosts, but a
shard that dies leaves a hole the merge refuses — and nothing on disk
says *which* shard died, how often it was tried, or where the
surviving run records live.  This module adds that record of truth: a
``manifest.json`` written next to a sharded run that tracks every
shard of the partition from ``pending`` through ``running`` to
``done`` or ``failed``, with attempt counts, timestamps, the captured
error, and the run-record directory each shard reports into.

The manifest embeds the full spec (plus its SHA-256, recomputed and
verified on every load), so it is self-contained: ``repro-grid resume
MANIFEST`` can re-derive the exact deterministic partition, re-dispatch
only the shards that never finished, and merge — no other file needed.
A manifest whose embedded spec no longer matches its recorded hash is
rejected outright; silently resuming a *different* experiment would
poison the merged record.

State machine
-------------
::

    pending ──► running ──► done        (terminal; reporting done twice
       ▲           │                     is an error, not a no-op)
       │           ▼
       └──────  failed ──► running      (retry / resume re-dispatch)

``running -> running`` is also legal: a host that crashed mid-shard
never wrote a terminal state, and a resume re-dispatches it (bumping
``attempts``).  ``done`` accepts no transition except the explicit
``pending`` reset (used when a shard's run record vanished from disk
and the work genuinely has to be redone).

manifest.json schema (``schema_version`` 1)
-------------------------------------------
::

    {
      "schema_version": 1,
      "kind":        "run-manifest",
      "spec":        {<ExperimentSpec.to_dict()>},   # self-contained
      "spec_sha256": str,   # canonical-JSON hash, verified on load
      "n_shards":    int,
      "strategy":    "auto" | "seeds" | "variants",
      "created_at":  str,   # ISO-8601 UTC
      "updated_at":  str,
      "shards": [
        {"index": int, "name": str,           # "<spec>#shard-i-of-k"
         "n_variants": int, "n_seeds": int,
         "run_dir": str,                      # relative to the manifest
         "state": "pending"|"running"|"done"|"failed",
         "attempts": int,
         "error": str | null,                 # last failure, with shard
         "started_at": str | null,            # context (never a bare
         "finished_at": str | null}, ...      # pool traceback)
      ]
    }

Dispatch itself lives in :mod:`repro.experiments.dispatch`
(:func:`~repro.experiments.dispatch.run_sharded` writes a manifest when
asked, :func:`~repro.experiments.dispatch.resume_manifest` picks one
up); the CLI surface is ``repro-grid status`` / ``resume`` (see
``docs/CLI.md``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from datetime import datetime, timezone
from pathlib import Path

from repro.experiments.spec import ExperimentSpec
from repro.util.atomic import atomic_write_text
from repro.util.clock import utc_now_iso
from repro.util.tables import render_table

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "MANIFEST_JSON",
    "SHARD_STATES",
    "STALE_RUNNING_SECONDS",
    "ShardEntry",
    "RunManifest",
    "spec_sha256",
    "create_manifest",
    "save_manifest",
    "load_manifest",
]

MANIFEST_SCHEMA_VERSION = 1

#: a ``running`` shard older than this many seconds is flagged as
#: likely stale by ``repro-grid status`` and the service's progress
#: endpoint — a dispatcher killed mid-shard never writes a terminal
#: state, so age is the only signal that "in flight" is actually
#: "dead".  Deliberately generous: a slow shard is merely late, a
#: stale flag is a prompt to investigate (and ``resume``), not an
#: automatic reset.
STALE_RUNNING_SECONDS = 30 * 60

#: canonical manifest file name inside a sharded-run directory
MANIFEST_JSON = "manifest.json"

#: the shard life cycle, in order of progress
SHARD_STATES = ("pending", "running", "done", "failed")

#: legal transitions: new state -> states it may be entered from.
#: ``pending`` doubles as the explicit reset (any state, including a
#: ``done`` shard whose run record vanished); ``done`` -> ``done`` is
#: deliberately absent — a shard reporting done twice means two
#: dispatchers raced on one manifest, which must surface, not no-op.
_ALLOWED_FROM = {
    "pending": ("pending", "running", "failed", "done"),
    "running": ("pending", "running", "failed"),
    "done": ("running",),
    "failed": ("running",),
}


def _utc_now() -> str:
    return utc_now_iso()


def _parse_iso(stamp: str) -> datetime:
    """Parse a :func:`~repro.util.clock.utc_now_iso` stamp (naive
    stamps from foreign tools are assumed UTC)."""
    parsed = datetime.fromisoformat(stamp)
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed


def spec_sha256(spec: ExperimentSpec | dict) -> str:
    """SHA-256 of a spec's canonical JSON form.

    Accepts the spec object or its :meth:`~ExperimentSpec.to_dict`
    payload (the load path hashes the raw embedded dict *before*
    constructing the spec, so tampering is caught even when the
    payload still parses).  Canonical form: sorted keys, compact
    separators — whitespace and key order cannot change the hash.
    """
    payload = spec.to_dict() if isinstance(spec, ExperimentSpec) else spec
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ShardEntry:
    """One shard's durable dispatch state.

    ``run_dir`` is recorded relative to the manifest's directory so a
    sharded-run directory can be moved (or mounted elsewhere) as a
    unit; resolve it with :meth:`RunManifest.shard_run_dir`.
    """

    index: int
    name: str
    n_variants: int
    n_seeds: int
    run_dir: str
    state: str = "pending"
    attempts: int = 0
    error: str | None = None
    started_at: str | None = None
    finished_at: str | None = None

    def __post_init__(self) -> None:
        if self.state not in SHARD_STATES:
            raise ValueError(
                f"unknown shard state {self.state!r}; "
                f"choose from {SHARD_STATES}"
            )
        if self.index < 0:
            raise ValueError(f"shard index must be >= 0, got {self.index}")
        if self.attempts < 0:
            raise ValueError(
                f"attempts must be >= 0, got {self.attempts}"
            )

    def running_age_seconds(self, now: str | None = None) -> float | None:
        """How long this shard has been ``running``, in seconds.

        ``None`` unless the shard is in state ``running`` with a
        recorded ``started_at``.  ``now`` is an ISO-8601 stamp (as
        from :func:`repro.util.clock.utc_now_iso`); omitted, the
        current wall clock is used.  Clock skew between hosts can make
        a just-started shard's age slightly negative; it is clamped
        to 0.
        """
        if self.state != "running" or self.started_at is None:
            return None
        started = _parse_iso(self.started_at)
        current = (
            _parse_iso(now)
            if now is not None
            else datetime.now(timezone.utc)
        )
        return max(0.0, (current - started).total_seconds())

    def is_stale(
        self,
        now: str | None = None,
        *,
        threshold: float = STALE_RUNNING_SECONDS,
    ) -> bool:
        """True when this shard has been ``running`` longer than
        ``threshold`` seconds — likely a dispatcher that died without
        writing a terminal state."""
        age = self.running_age_seconds(now)
        return age is not None and age > threshold


@dataclass(frozen=True)
class RunManifest:
    """The manifest of one sharded run: spec, partition, shard states.

    Immutable like every result object in the package; state changes
    go through :meth:`with_shard`, which returns a new manifest (the
    dispatcher persists each transition with :func:`save_manifest`, so
    the on-disk file is always a consistent snapshot).
    """

    spec: ExperimentSpec
    spec_hash: str
    n_shards: int
    strategy: str
    created_at: str
    updated_at: str
    shards: tuple[ShardEntry, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "shards", tuple(self.shards))
        indices = [s.index for s in self.shards]
        if indices != list(range(len(self.shards))):
            raise ValueError(
                f"shard entries must be indexed 0..{len(self.shards) - 1} "
                f"in order, got {indices}"
            )
        if self.n_shards != len(self.shards):
            raise ValueError(
                f"n_shards is {self.n_shards} but the manifest lists "
                f"{len(self.shards)} shard entr(ies)"
            )

    # -- queries ------------------------------------------------------

    def shard(self, index: int) -> ShardEntry:
        """The entry for shard ``index`` (raises on a bad index)."""
        if not (0 <= index < len(self.shards)):
            raise ValueError(
                f"no shard {index}: manifest has shards "
                f"0..{len(self.shards) - 1}"
            )
        return self.shards[index]

    def counts(self) -> dict[str, int]:
        """``{state: count}`` over all shards (every state present)."""
        out = {state: 0 for state in SHARD_STATES}
        for entry in self.shards:
            out[entry.state] += 1
        return out

    @property
    def completion(self) -> float:
        """Fraction of shards in state ``done`` (1.0 = resumable merge)."""
        return self.counts()["done"] / len(self.shards)

    @property
    def all_done(self) -> bool:
        return all(entry.state == "done" for entry in self.shards)

    def incomplete_indices(self) -> tuple[int, ...]:
        """Indices a resume must (re-)dispatch: everything not done."""
        return tuple(
            entry.index for entry in self.shards if entry.state != "done"
        )

    def stale_indices(
        self,
        now: str | None = None,
        *,
        threshold: float = STALE_RUNNING_SECONDS,
    ) -> tuple[int, ...]:
        """Indices of ``running`` shards older than ``threshold``
        seconds (see :meth:`ShardEntry.is_stale`) — in flight on
        paper, probably dead in practice."""
        return tuple(
            entry.index
            for entry in self.shards
            if entry.is_stale(now, threshold=threshold)
        )

    def shard_run_dir(self, manifest_path: str | Path, index: int) -> Path:
        """Shard ``index``'s run-record directory, resolved against the
        manifest file's location."""
        return Path(manifest_path).parent / self.shard(index).run_dir

    # -- transitions --------------------------------------------------

    def with_shard(
        self, index: int, state: str, *, error: str | None = None
    ) -> "RunManifest":
        """A new manifest with shard ``index`` moved to ``state``.

        Enforces the module's state machine; in particular a ``done``
        shard reporting ``done`` again raises (two dispatchers raced),
        and only the explicit ``pending`` reset may leave ``done``.
        Entering ``running`` bumps ``attempts`` and stamps
        ``started_at``; terminal states stamp ``finished_at``;
        ``error`` is recorded on ``failed`` and cleared otherwise.
        """
        if state not in SHARD_STATES:
            raise ValueError(
                f"unknown shard state {state!r}; choose from {SHARD_STATES}"
            )
        entry = self.shard(index)
        if entry.state not in _ALLOWED_FROM[state]:
            detail = (
                "a shard cannot report done twice — two dispatchers "
                "raced on this manifest?"
                if entry.state == "done" and state == "done"
                else f"legal predecessors: {_ALLOWED_FROM[state]}"
            )
            raise ValueError(
                f"shard {index} ({entry.name!r}): illegal transition "
                f"{entry.state!r} -> {state!r} ({detail})"
            )
        now = _utc_now()
        if state == "running":
            started = now
        elif state == "pending":  # full reset: the work is owed again
            started = None
        else:
            started = entry.started_at
        updated = replace(
            entry,
            state=state,
            attempts=entry.attempts + (1 if state == "running" else 0),
            error=error if state == "failed" else None,
            started_at=started,
            finished_at=now if state in ("done", "failed") else None,
        )
        shards = list(self.shards)
        shards[index] = updated
        return replace(
            self, shards=tuple(shards), updated_at=now
        )

    # -- serialization ------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready payload (see the module docstring's schema)."""
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "kind": "run-manifest",
            "spec": self.spec.to_dict(),
            "spec_sha256": self.spec_hash,
            "n_shards": self.n_shards,
            "strategy": self.strategy,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "shards": [
                {
                    "index": entry.index,
                    "name": entry.name,
                    "n_variants": entry.n_variants,
                    "n_seeds": entry.n_seeds,
                    "run_dir": entry.run_dir,
                    "state": entry.state,
                    "attempts": entry.attempts,
                    "error": entry.error,
                    "started_at": entry.started_at,
                    "finished_at": entry.finished_at,
                }
                for entry in self.shards
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Inverse of :meth:`to_dict`, with integrity checks.

        Rejects unsupported schema versions, a ``spec_sha256`` that
        does not match the embedded spec (the payload was edited or
        corrupted — resuming it could execute a different experiment),
        and malformed shard tables (bad states, wrong indexing).
        """
        version = data.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported manifest schema_version {version!r} "
                f"(this reader supports {MANIFEST_SCHEMA_VERSION})"
            )
        recorded = data["spec_sha256"]
        actual = spec_sha256(data["spec"])
        if recorded != actual:
            raise ValueError(
                "spec-hash mismatch: manifest records spec_sha256 "
                f"{recorded[:12]}… but the embedded spec hashes to "
                f"{actual[:12]}… — the manifest was edited or corrupted; "
                "refusing to resume a different experiment"
            )
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            spec_hash=recorded,
            n_shards=data["n_shards"],
            strategy=data["strategy"],
            created_at=data["created_at"],
            updated_at=data["updated_at"],
            shards=tuple(
                ShardEntry(
                    index=entry["index"],
                    name=entry["name"],
                    n_variants=entry["n_variants"],
                    n_seeds=entry["n_seeds"],
                    run_dir=entry["run_dir"],
                    state=entry["state"],
                    attempts=entry["attempts"],
                    error=entry.get("error"),
                    started_at=entry.get("started_at"),
                    finished_at=entry.get("finished_at"),
                )
                for entry in data["shards"]
            ),
        )

    def render(self, now: str | None = None) -> str:
        """Human-readable status table (``repro-grid status``).

        ``running`` shards show their age, and those older than
        :data:`STALE_RUNNING_SECONDS` are marked ``stale?`` — a shard
        whose dispatcher died never reports a terminal state, so
        without the age column it would count as in-flight forever.
        ``now`` pins the clock for tests.
        """
        rows = []
        for entry in self.shards:
            state = entry.state
            age = entry.running_age_seconds(now)
            if age is not None:
                label = _age_label(age)
                state = (
                    f"running ({label}, stale?)"
                    if entry.is_stale(now)
                    else f"running ({label})"
                )
            rows.append([
                entry.index,
                state,
                entry.attempts,
                f"{entry.n_variants}x{entry.n_seeds}",
                entry.run_dir,
                entry.error or "",
            ])
        counts = self.counts()
        tally = ", ".join(
            f"{counts[s]} {s}" for s in SHARD_STATES if counts[s]
        )
        stale = self.stale_indices(now)
        warning = (
            "\nwarning: shard(s) "
            + ", ".join(str(i) for i in stale)
            + " have been running for over "
            + f"{STALE_RUNNING_SECONDS // 60} min — the dispatcher "
            "may have died; `repro-grid resume` re-dispatches them"
            if stale
            else ""
        )
        table = render_table(
            ["shard", "state", "attempts", "grid", "run record", "error"],
            rows,
            title=(
                f"Manifest: {self.spec.name!r} "
                f"({self.n_shards} shard(s), strategy {self.strategy})"
            ),
        )
        return (
            f"{table}\n\n{self.completion:.0%} complete ({tally}); "
            f"spec sha256 {self.spec_hash[:12]}…{warning}"
        )


def _age_label(seconds: float) -> str:
    """A compact human age: ``42s``, ``7m``, ``3h``."""
    if seconds < 60:
        return f"{int(seconds)}s"
    if seconds < 3600:
        return f"{int(seconds // 60)}m"
    return f"{int(seconds // 3600)}h"


def create_manifest(
    spec: ExperimentSpec,
    shards: tuple[ExperimentSpec, ...],
    *,
    strategy: str = "auto",
) -> RunManifest:
    """A fresh all-pending manifest for one sharded run.

    ``shards`` is the partition
    :func:`repro.experiments.dispatch.shard_spec` produced from
    ``spec`` (passed in rather than recomputed here so the manifest
    layer stays free of dispatch imports); shard ``i`` reports into
    ``part-<i>/`` next to the manifest file.
    """
    now = _utc_now()
    return RunManifest(
        spec=spec,
        spec_hash=spec_sha256(spec),
        n_shards=len(shards),
        strategy=strategy,
        created_at=now,
        updated_at=now,
        shards=tuple(
            ShardEntry(
                index=i,
                name=shard.name,
                n_variants=len(shard.variants),
                n_seeds=len(shard.seeds),
                run_dir=f"part-{i}",
            )
            for i, shard in enumerate(shards)
        ),
    )


def save_manifest(manifest: RunManifest, path: str | Path) -> Path:
    """Write ``manifest`` as JSON at ``path`` (parents created).

    The write goes through
    :func:`~repro.util.atomic.atomic_write_text` (same-directory temp
    file + atomic rename), so a dispatcher killed mid-save leaves the
    previous consistent snapshot, never a truncated file.
    """
    text = json.dumps(manifest.to_dict(), indent=1) + "\n"
    return atomic_write_text(Path(path), text)


def load_manifest(path: str | Path) -> RunManifest:
    """Read a manifest written by :func:`save_manifest`.

    A missing file raises ``FileNotFoundError``; anything that is not
    a well-formed, hash-consistent manifest — truncated JSON, a
    non-manifest document, a tampered spec payload, a malformed shard
    table — raises ``ValueError`` with the file named, so ``resume``
    can turn it into a clean exit-2 diagnostic.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no run manifest at {path}")
    text = path.read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}: corrupted or truncated manifest (not valid JSON: "
            f"{exc})"
        ) from None
    if not isinstance(data, dict):
        raise ValueError(
            f"{path}: not a run manifest (top level is "
            f"{type(data).__name__}, expected an object)"
        )
    try:
        return RunManifest.from_dict(data)
    except (KeyError, TypeError) as exc:
        raise ValueError(
            f"{path}: malformed manifest (missing or mistyped field: "
            f"{exc})"
        ) from None
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
