"""Experiment harness: one driver per paper table/figure plus the
ablation studies (see DESIGN.md §5 for the experiment index)."""

from repro.experiments.ablation import (
    GAComparisonResult,
    eviction_comparison,
    failure_point_comparison,
    lambda_sensitivity,
    lookup_capacity_sweep,
    risk_penalty_sweep,
    stga_vs_conventional,
    threshold_sweep,
)
from repro.experiments.config import PaperDefaults, RunSettings, bench_scale
from repro.experiments.fig7 import (
    DEFAULT_F_GRID,
    DEFAULT_ITERATION_GRID,
    FriskySweepResult,
    StgaIterationSweepResult,
    frisky_makespan_sweep,
    stga_iteration_sweep,
)
from repro.experiments.fig8 import (
    NASExperimentResult,
    nas_ensemble,
    nas_experiment,
)
from repro.experiments.fig9 import UtilizationPanel, utilization_panels
from repro.experiments.fig10 import (
    DEFAULT_N_GRID,
    PSAScalingResult,
    psa_scaling_ensemble,
    psa_scaling_experiment,
)
from repro.experiments.sweep import (
    SWEEP_METRICS,
    MetricSummary,
    ScenarioVariant,
    SweepResult,
    job_scaling_variants,
    lambda_variants,
    run_sweep,
    seed_list,
)
from repro.experiments.report import generate_report
from repro.experiments.store import (
    StoredRun,
    compare_runs,
    list_runs,
    load_run,
    new_run_dir,
    save_run,
    save_run_to_registry,
)
from repro.experiments.sensitivity import (
    batch_interval_sweep,
    estimation_error_sweep,
)
from repro.experiments.runner import (
    make_trained_stga,
    run_lineup,
    run_scheduler,
    scale_jobs,
)
from repro.experiments.table2 import PAPER_TABLE2, render_table2, table2_rows

__all__ = [
    "PaperDefaults",
    "RunSettings",
    "bench_scale",
    "FriskySweepResult",
    "StgaIterationSweepResult",
    "frisky_makespan_sweep",
    "stga_iteration_sweep",
    "DEFAULT_F_GRID",
    "DEFAULT_ITERATION_GRID",
    "NASExperimentResult",
    "nas_experiment",
    "nas_ensemble",
    "UtilizationPanel",
    "utilization_panels",
    "PSAScalingResult",
    "psa_scaling_experiment",
    "psa_scaling_ensemble",
    "DEFAULT_N_GRID",
    "ScenarioVariant",
    "MetricSummary",
    "SweepResult",
    "run_sweep",
    "job_scaling_variants",
    "lambda_variants",
    "seed_list",
    "SWEEP_METRICS",
    "table2_rows",
    "render_table2",
    "PAPER_TABLE2",
    "run_scheduler",
    "run_lineup",
    "make_trained_stga",
    "scale_jobs",
    "GAComparisonResult",
    "stga_vs_conventional",
    "lookup_capacity_sweep",
    "threshold_sweep",
    "eviction_comparison",
    "lambda_sensitivity",
    "failure_point_comparison",
    "risk_penalty_sweep",
    "generate_report",
    "batch_interval_sweep",
    "estimation_error_sweep",
    "StoredRun",
    "save_run",
    "save_run_to_registry",
    "load_run",
    "list_runs",
    "compare_runs",
    "new_run_dir",
]
