"""Sharded spec execution: partition a spec, run the pieces anywhere,
merge the partial run records back into one — and survive dead shards.

The replication grid of an :class:`~repro.experiments.spec.ExperimentSpec`
— (variant, seed) cells, each an independent
:func:`~repro.experiments.runner.run_lineup` call — is embarrassingly
parallel, so a spec need not execute on a single host.  This module
closes the ROADMAP's "distribute replications across hosts" loop and
its fault-tolerance follow-up:

1. :func:`shard_spec` deterministically partitions a spec's
   (variant, seed) grid along one axis into self-contained sub-specs.
   Every shard is itself a plain :class:`ExperimentSpec` that JSON
   round-trips bit-identically, so the existing transport
   (``repro-grid run SPEC.json --out DIR``) ships it to any host
   unchanged.
2. Each shard executes wherever — the local process pool of
   :func:`run_sharded`, a ``repro-grid run`` on another machine, a CI
   matrix job — and persists an ordinary run record via
   :mod:`repro.experiments.store`.
3. :func:`merge_runs` (a thin coercing wrapper around
   :meth:`~repro.experiments.sweep.SweepResult.merge`) takes the union
   of the partial records and recomputes every
   :class:`~repro.experiments.sweep.MetricSummary` from the pooled
   per-seed raw values.

Fault tolerance
---------------
A shard is a process on a machine, and machines die.  Three layers
keep a dead shard from costing the whole run:

* **Retries.**  :func:`run_sharded` re-dispatches a failed shard up to
  ``max_retries`` times; a shard that still fails surfaces as
  :class:`ShardError` naming the shard index and sub-spec (never a raw
  pool traceback from deep inside the worker).
* **Manifests.**  With ``manifest_dir=``, every shard's
  pending/running/done/failed state — attempt counts, timestamps,
  captured errors, run-record locations — is persisted to a
  ``manifest.json`` (:mod:`repro.experiments.manifest`) after each
  transition, and each finished shard's run record is saved
  immediately.  Killing the dispatcher at any point leaves a
  consistent snapshot of exactly what completed.
* **Resume.**  :func:`resume_manifest` (CLI: ``repro-grid resume``)
  re-derives the deterministic partition from the manifest's embedded
  spec, re-dispatches only the shards that never reached ``done``, and
  merges — so kill → resume → merge equals an uninterrupted
  single-host :func:`~repro.experiments.spec.run_spec` bit for bit.

:func:`merge_runs` additionally accepts ``allow_partial=True``: when
whole shards are still missing, it merges the maximal complete
sub-grid instead of refusing, and :func:`grid_completion` reports the
completion percentage and the missing (variant, seed) cells.

The key invariant (enforced by ``tests/test_experiments_dispatch.py``,
``tests/test_experiments_manifest.py`` and the CI shard/merge and
crash-resume smoke jobs): shard → run → merge — interrupted and
resumed or not — is *bit-identical* to a single-host
:func:`~repro.experiments.spec.run_spec` at the same seeds — same
per-cell reports, same ``run.json`` / ``grid.csv`` payloads modulo
provenance fields (record name, timestamps, git SHA,
``elapsed_seconds``, ``merged_from``, ``manifest``, and the wall-clock
``scheduler_seconds`` report field).

CLI
---
::

    repro-grid shard fig8.json --shards 4 --out-dir work/
    # fault-tolerant local dispatch (retries + manifest + merge):
    repro-grid resume work/manifest.json --out runs/fig8
    # …or ship shards to hosts by hand:
    repro-grid run fig8.json --shard-index i --num-shards 4 --out runs/part-i
    repro-grid merge runs/part-* --spec fig8.json --out runs/fig8
    # after a crash, see what survived and finish the rest:
    repro-grid status work/manifest.json
    repro-grid resume work/manifest.json --out runs/fig8
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, replace
from pathlib import Path

from repro.experiments.config import PaperDefaults
from repro.experiments.manifest import (
    MANIFEST_JSON,
    RunManifest,
    create_manifest,
    load_manifest,
    save_manifest,
)
from repro.experiments.spec import ExperimentSpec, run_spec
from repro.experiments.store import FsRunStore, RunStore, as_result
from repro.experiments.sweep import SweepResult

__all__ = [
    "SHARD_STRATEGIES",
    "FAULT_ENV",
    "ShardError",
    "GridCompletion",
    "shard_spec",
    "shard_file_name",
    "run_sharded",
    "resume_manifest",
    "resume_todo",
    "merge_runs",
    "grid_completion",
]

#: shard_spec partition strategies: which grid axis is split.
SHARD_STRATEGIES = ("auto", "seeds", "variants")

#: fault-injection hook for crash-resume tests: a comma-separated list
#: of shard indices that raise instead of executing (e.g.
#: ``REPRO_FAULT_SHARDS=0`` kills shard 0 on every attempt while set).
#: An index suffixed ``!`` (``"0!"``) hard-exits the worker process
#: instead of raising — the SIGKILL/OOM simulation that breaks a whole
#: process pool (in sequential dispatch it kills the dispatcher
#: itself).  Read inside the worker, so it reaches pool subprocesses
#: through the inherited environment.  Test/CI plumbing only — never
#: set it in a real run.
FAULT_ENV = "REPRO_FAULT_SHARDS"


class ShardError(RuntimeError):
    """A shard exhausted its dispatch attempts.

    Wraps the worker's exception with the context a multi-host
    operator needs — which shard of which spec died, after how many
    attempts — instead of the bare pool traceback
    ``ProcessPoolExecutor`` would propagate.  The underlying exception
    stays available as :attr:`cause` (and ``__cause__``).
    """

    def __init__(
        self, index: int, shard_name: str, attempts: int, cause: BaseException
    ):
        self.index = index
        self.shard_name = shard_name
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"shard {index} ({shard_name!r}) failed after {attempts} "
            f"attempt(s): {type(cause).__name__}: {cause}"
        )


def _chunks(items: tuple, n: int) -> list[tuple]:
    """Balanced contiguous chunks, sizes differing by at most one.

    Order-preserving and deterministic: the first ``len(items) % n``
    chunks carry the extra element, so concatenating the chunks in
    shard order reproduces ``items`` exactly.
    """
    n = min(n, len(items))
    base, extra = divmod(len(items), n)
    out, start = [], 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out


def _pick_axis(spec: ExperimentSpec, n_shards: int) -> str:
    """The ``"auto"`` strategy: prefer the axis that can fill
    ``n_shards``; otherwise the longer one (ties go to seeds)."""
    n_seeds, n_variants = len(spec.seeds), len(spec.variants)
    if n_seeds >= n_shards:
        return "seeds"
    if n_variants >= n_shards:
        return "variants"
    return "seeds" if n_seeds >= n_variants else "variants"


def shard_spec(
    spec: ExperimentSpec,
    n_shards: int,
    *,
    strategy: str = "auto",
) -> tuple[ExperimentSpec, ...]:
    """Partition a spec's (variant, seed) grid into sub-specs.

    Each shard is a self-contained :class:`ExperimentSpec` — same
    schedulers, metrics, scale and settings, a contiguous slice of one
    grid axis — whose name records its position
    (``"<name>#shard-<i>-of-<k>"``).  The union of the shards is
    exactly the original grid with no cell duplicated, and the
    partition is a pure function of ``(spec, n_shards, strategy)``, so
    independent hosts agree on it without coordination (that is what
    makes ``repro-grid run --shard-index i --num-shards N`` safe, and
    what lets :func:`resume_manifest` re-derive a manifest's partition
    from its embedded spec alone).

    ``strategy`` picks the split axis: ``"seeds"`` gives every shard
    all variants and a seed subset, ``"variants"`` the reverse,
    ``"auto"`` (default) prefers whichever axis has at least
    ``n_shards`` elements (seeds first).  Because a shard is a full
    cross-product spec, arbitrary cell-level partitions are not
    expressible — one axis is always kept whole.

    Asking for more shards than the split axis has elements returns
    one shard per element (never an empty shard — a spec cannot have
    zero seeds or variants); callers should use ``len()`` of the
    result, not ``n_shards``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; "
            f"choose from {SHARD_STRATEGIES}"
        )
    axis = _pick_axis(spec, n_shards) if strategy == "auto" else strategy
    if axis == "seeds":
        parts = _chunks(spec.seeds, n_shards)
        shards = [replace(spec, seeds=part) for part in parts]
    else:
        parts = _chunks(spec.variants, n_shards)
        shards = [replace(spec, variants=part) for part in parts]
    k = len(shards)
    return tuple(
        replace(shard, name=f"{spec.name}#shard-{i}-of-{k}")
        for i, shard in enumerate(shards)
    )


def shard_file_name(index: int, n_shards: int) -> str:
    """Canonical shard spec file name, zero-padded so a lexical sort
    lists shards in index order (``shard-03-of-12.json``)."""
    width = len(str(n_shards - 1)) if n_shards > 1 else 1
    return f"shard-{index:0{width}d}-of-{n_shards}.json"


@dataclass(frozen=True)
class _ShardTask:
    """Picklable unit of work: one shard, run sequentially in-process
    (the outer pool supplies the parallelism)."""

    index: int
    shard: ExperimentSpec
    defaults: PaperDefaults


def _injected_fault(index: int) -> None:
    """Raise (or hard-exit, for ``!`` entries) if the :data:`FAULT_ENV`
    hook names this shard."""
    hook = os.environ.get(FAULT_ENV, "")
    entries = [x.strip() for x in hook.split(",") if x.strip()]
    if str(index) + "!" in entries:
        os._exit(13)  # simulate SIGKILL/OOM: no exception, no cleanup
    if str(index) in entries:
        raise RuntimeError(
            f"fault injection: {FAULT_ENV}={hook!r} killed shard {index}"
        )


def _run_shard(task: _ShardTask) -> SweepResult:
    """Worker entry point (module-level for ProcessPoolExecutor)."""
    _injected_fault(task.index)
    return run_spec(task.shard, defaults=task.defaults, max_workers=1)


class _ManifestTracker:
    """Persists one dispatch's shard transitions as they happen.

    Owns the current :class:`~repro.experiments.manifest.RunManifest`
    snapshot and its file; every :meth:`mark` saves atomically, and
    :meth:`record_done` writes the shard's run record *before* the
    ``done`` state, so "done" on disk always implies a loadable record.

    Shard records go through a
    :class:`~repro.experiments.store.RunStore` rooted at the manifest's
    directory (each entry's relative ``run_dir`` is the store ref), so
    dispatch speaks the same persistence interface as every other
    layer — the manifest's portable relative-path layout is just the fs
    backend's ref scheme.
    """

    def __init__(self, manifest: RunManifest, path: str | Path):
        self.manifest = manifest
        self.path = Path(path)
        self.store: RunStore = FsRunStore(self.path.parent)

    def mark(self, index: int, state: str, *, error: str | None = None):
        self.manifest = self.manifest.with_shard(index, state, error=error)
        save_manifest(self.manifest, self.path)

    def record_done(self, index: int, result: SweepResult) -> None:
        self.store.save(
            result,
            ref=self.manifest.shard(index).run_dir,
            name=self.manifest.shard(index).name,
            overwrite=True,
        )
        self.mark(index, "done")


def _dispatch_shards(
    tasks: list[_ShardTask],
    *,
    max_workers: int | None = None,
    max_retries: int = 0,
    tracker: _ManifestTracker | None = None,
) -> tuple[dict[int, SweepResult], dict[int, ShardError]]:
    """Run shard tasks with per-shard retries; never raises for a
    worker failure.

    Returns ``(results, failures)`` keyed by shard index: every task
    lands in exactly one of the two, a failure only after
    ``max_retries + 1`` attempts.  One shard dying does not stop the
    others — the surviving results are what a later resume builds on.
    That holds even for a worker dying *abruptly* (SIGKILL, OOM),
    which breaks the whole process pool: the pool is rebuilt, every
    in-flight shard is charged one attempt, and the ``BrokenExecutor``
    becomes that shard's captured cause — never an escaping raw
    exception.  ``tracker`` (if any) persists every transition.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    results: dict[int, SweepResult] = {}
    failures: dict[int, ShardError] = {}

    def completed(task: _ShardTask, result: SweepResult) -> None:
        if tracker is not None:
            tracker.record_done(task.index, result)
        results[task.index] = result

    def failed(task: _ShardTask, attempts: int, exc: BaseException) -> None:
        err = ShardError(task.index, task.shard.name, attempts, exc)
        if tracker is not None:
            tracker.mark(task.index, "failed", error=str(err))
        failures[task.index] = err

    if max_workers == 1 or len(tasks) <= 1:
        for task in tasks:
            for attempt in range(1, max_retries + 2):
                if tracker is not None:
                    tracker.mark(task.index, "running")
                try:
                    result = _run_shard(task)
                except Exception as exc:  # noqa: BLE001 — shard isolation
                    if attempt == max_retries + 1:
                        failed(task, attempt, exc)
                else:
                    completed(task, result)
                    break
        return results, failures

    if max_workers is None:
        max_workers = min(len(tasks), os.cpu_count() or 1)
    attempts = {task.index: 0 for task in tasks}
    queue = deque(tasks)
    while queue:
        # one pool per round: a worker dying abruptly (SIGKILL, OOM)
        # breaks the whole ProcessPoolExecutor, so on BrokenExecutor
        # the round ends, every in-flight shard is charged one attempt
        # and requeued (or failed), and the next round gets a fresh
        # pool — a hard-killed worker must surface as ShardError and
        # cost only the shards it took down, never the whole dispatch
        pending: dict = {}
        in_hand: _ShardTask | None = None  # popped but submit blew up
        broken: BrokenExecutor | None = None
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            try:
                while queue or pending:
                    # keep at most max_workers shards in flight, so a
                    # shard marked "running" (attempts bumped,
                    # started_at stamped) has a free worker picking it
                    # up now — a merely queued shard stays "pending"
                    # in the manifest
                    while queue and len(pending) < max_workers:
                        in_hand = queue.popleft()
                        attempts[in_hand.index] += 1
                        if tracker is not None:
                            tracker.mark(in_hand.index, "running")
                        pending[pool.submit(_run_shard, in_hand)] = in_hand
                        in_hand = None
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        task = pending.pop(future)
                        exc = future.exception()
                        if exc is None:
                            completed(task, future.result())
                        elif attempts[task.index] <= max_retries:
                            queue.append(task)  # retry when a slot frees
                        else:
                            failed(task, attempts[task.index], exc)
            except BrokenExecutor as exc:
                broken = exc
        if broken is not None:
            victims = list(pending.values())
            if in_hand is not None:
                victims.append(in_hand)
            for task in victims:
                if attempts[task.index] <= max_retries:
                    queue.append(task)
                else:
                    failed(task, attempts[task.index], broken)
    return results, failures


def _merge_ordered(
    results: dict[int, SweepResult], spec: ExperimentSpec, n_shards: int
) -> SweepResult:
    """Merge per-shard results in the spec's own grid layout."""
    return SweepResult.merge(
        [results[i] for i in range(n_shards)],
        seeds_order=spec.seeds,
        variants_order=[v.name for v in spec.variants],
    )


def _raise_first(failures: dict[int, ShardError]) -> None:
    err = failures[min(failures)]
    raise err from err.cause


def run_sharded(
    spec: ExperimentSpec,
    n_shards: int,
    *,
    strategy: str = "auto",
    defaults: PaperDefaults = PaperDefaults(),
    max_workers: int | None = None,
    max_retries: int = 0,
    manifest_dir: str | Path | None = None,
) -> SweepResult:
    """Shard → run → merge on one machine: the local dispatcher.

    Partitions ``spec`` with :func:`shard_spec`, runs one shard per
    pool process (each shard executes its own grid sequentially
    in-process, so parallelism is one level deep), and merges the
    partial results in the spec's own seed/variant order.  The result
    equals ``run_spec(spec)`` on every deterministic field — this is
    the in-process rehearsal of the multi-host shard/merge protocol,
    and the CI smoke jobs' subject.

    A failing shard is retried up to ``max_retries`` times (attempts =
    ``max_retries + 1``); one shard's death never cancels the others.
    If any shard still fails, the call raises :class:`ShardError` with
    the shard index and sub-spec name — with ``manifest_dir`` set, the
    failure (and every completed shard's run record) is already on
    disk at that point, so ``repro-grid resume
    <manifest_dir>/manifest.json`` finishes the run without redoing
    the survivors.

    ``manifest_dir`` enables the durable mode: a fresh ``manifest.json``
    plus per-shard ``part-<i>/`` run records are written there, every
    state transition saved as it happens.  Without it the dispatch is
    purely in-memory, as before.

    ``max_workers=1`` runs the shards sequentially (the tier-1 test
    path — no fork); ``None`` sizes the pool to
    ``min(n_shards, cpu_count)``.
    """
    spec.validate()
    shards = shard_spec(spec, n_shards, strategy=strategy)
    tasks = [
        _ShardTask(index=i, shard=shard, defaults=defaults)
        for i, shard in enumerate(shards)
    ]
    tracker = None
    if manifest_dir is not None:
        manifest = create_manifest(spec, shards, strategy=strategy)
        tracker = _ManifestTracker(
            manifest, Path(manifest_dir) / MANIFEST_JSON
        )
        save_manifest(manifest, tracker.path)
    results, failures = _dispatch_shards(
        tasks,
        max_workers=max_workers,
        max_retries=max_retries,
        tracker=tracker,
    )
    if failures:
        _raise_first(failures)
    return _merge_ordered(results, spec, len(shards))


def _usable_done_results(
    manifest: RunManifest, manifest_path: str | Path
) -> tuple[dict[int, SweepResult], list[int]]:
    """Split a manifest's ``done`` shards into loadable results and
    stale indices.

    A ``done`` shard whose run record is missing *or unreadable* (a
    truncated ``run.json`` from a crashed save, a tampered payload) is
    stale: its work is owed again — trusting the state over the
    evidence would make the manifest unrecoverable by resume.
    """
    results: dict[int, SweepResult] = {}
    stale: list[int] = []
    store = FsRunStore(Path(manifest_path).parent)
    for entry in manifest.shards:
        if entry.state != "done":
            continue
        try:
            results[entry.index] = store.load(entry.run_dir).result
        except (FileNotFoundError, ValueError, KeyError, TypeError):
            stale.append(entry.index)
    return results, stale


def resume_todo(
    manifest: RunManifest, manifest_path: str | Path
) -> tuple[int, ...]:
    """The dispatch plan a :func:`resume_manifest` of this manifest
    would follow: every shard not ``done``, plus ``done`` shards whose
    run record is missing or unreadable (redone rather than trusted).
    This is what ``repro-grid resume`` prints before dispatching, so
    the announcement and the actual behaviour cannot diverge.
    """
    _, stale = _usable_done_results(manifest, manifest_path)
    return tuple(sorted(set(manifest.incomplete_indices()) | set(stale)))


def resume_manifest(
    manifest_path: str | Path,
    *,
    defaults: PaperDefaults = PaperDefaults(),
    max_workers: int | None = None,
    max_retries: int = 1,
) -> tuple[RunManifest, SweepResult]:
    """Finish a manifest-tracked sharded run and merge it.

    Loads the manifest (rejecting corruption and spec-hash mismatches
    — see :func:`~repro.experiments.manifest.load_manifest`),
    re-derives the deterministic partition from the embedded spec, and
    re-dispatches only the shards that never reached ``done`` —
    ``pending`` ones (a run that never started, e.g. a manifest fresh
    from ``repro-grid shard``), ``running`` ones (a dispatcher that
    died mid-shard without writing a terminal state), and ``failed``
    ones.  A ``done`` shard whose run record has vanished from disk —
    or no longer loads, e.g. a ``run.json`` truncated by a crash — is
    reset to ``pending`` and redone rather than trusted.  When all
    shards are already ``done`` the dispatch step is a no-op and the
    call just merges.

    Returns ``(manifest, merged)`` — the final manifest snapshot and
    the merged :class:`SweepResult`, bit-identical to an uninterrupted
    single-host ``run_spec`` of the embedded spec.  Raises
    :class:`ShardError` if any shard still fails after its retries
    (the manifest on disk records the failure; resume again once the
    cause is fixed).
    """
    manifest_path = Path(manifest_path)
    manifest = load_manifest(manifest_path)
    spec = manifest.spec
    spec.validate()
    shards = shard_spec(spec, manifest.n_shards, strategy=manifest.strategy)
    derived = [s.name for s in shards]
    recorded = [e.name for e in manifest.shards]
    if derived != recorded:
        raise ValueError(
            f"{manifest_path}: shard table {recorded} does not match the "
            f"partition {derived} derived from the embedded spec — the "
            "manifest was not produced by this spec/strategy"
        )
    tracker = _ManifestTracker(manifest, manifest_path)
    results, stale = _usable_done_results(manifest, manifest_path)
    for index in stale:
        # the state says done but the evidence is gone: redo it
        tracker.mark(index, "pending")
    tasks = [
        _ShardTask(index=i, shard=shards[i], defaults=defaults)
        for i in tracker.manifest.incomplete_indices()
    ]
    ran, failures = _dispatch_shards(
        tasks,
        max_workers=max_workers,
        max_retries=max_retries,
        tracker=tracker,
    )
    results.update(ran)
    if failures:
        _raise_first(failures)
    return tracker.manifest, _merge_ordered(results, spec, len(shards))


@dataclass(frozen=True)
class GridCompletion:
    """Coverage of a (variant, seed) grid by a set of partial runs.

    ``total`` counts the target grid's (variant, seed) cells (the
    original spec's grid when one is given, else the union grid of the
    parts), ``present`` how many at least one part reports, and
    ``missing`` the absent cells in grid order — the report
    ``repro-grid merge --allow-partial`` prints instead of refusing.
    """

    total: int
    present: int
    missing: tuple[tuple[str, int], ...]

    @property
    def fraction(self) -> float:
        """Completed fraction in [0, 1] (1.0 for an empty grid)."""
        return self.present / self.total if self.total else 1.0

    @property
    def complete(self) -> bool:
        return not self.missing

    def render(self, *, limit: int = 20) -> str:
        """One-line summary plus (capped) missing-cell listing."""
        lines = [
            f"completion: {self.present}/{self.total} "
            f"(variant, seed) cell(s) = {self.fraction:.1%}"
        ]
        shown = self.missing[:limit]
        for vname, seed in shown:
            lines.append(f"  missing: ({vname!r}, seed {seed})")
        if len(self.missing) > len(shown):
            lines.append(
                f"  … and {len(self.missing) - len(shown)} more missing "
                "cell(s)"
            )
        return "\n".join(lines)


def grid_completion(
    runs: Sequence, *, spec: ExperimentSpec | None = None
) -> GridCompletion:
    """How much of the grid the partial runs cover.

    ``runs`` takes the same mixed argument forms as :func:`merge_runs`.
    With ``spec`` the denominator is the original unsharded grid —
    including shards that never reported at all; without it, the union
    grid of the parts (which can still have holes when the parts do
    not tile).
    """
    results = [as_result(run) for run in runs]
    if not results:
        raise ValueError("need at least one run to measure completion")
    if spec is not None:
        vnames = [v.name for v in spec.variants]
        seeds = list(spec.seeds)
    else:
        vnames = []
        seen_seeds: set[int] = set()
        for r in results:
            for v in r.variants:
                if v.name not in vnames:
                    vnames.append(v.name)
            seen_seeds.update(r.seeds)
        seeds = sorted(seen_seeds)
    present = {
        (vname, seed)
        for r in results
        for vname in r.reports
        for seed in r.seeds
    }
    missing = tuple(
        (vname, seed)
        for vname in vnames
        for seed in seeds
        if (vname, seed) not in present
    )
    total = len(vnames) * len(seeds)
    return GridCompletion(
        total=total, present=total - len(missing), missing=missing
    )


def merge_runs(
    runs: Sequence,
    *,
    spec: ExperimentSpec | None = None,
    seeds_order: Sequence[int] | None = None,
    variants_order: Sequence[str] | None = None,
    allow_partial: bool = False,
) -> SweepResult:
    """Merge partial run records into one complete :class:`SweepResult`.

    ``runs`` may mix run-record paths,
    :class:`~repro.experiments.store.StoredRun` and in-memory
    :class:`SweepResult` objects (the same coercion
    ``compare_runs`` applies).  Passing the original unsharded
    ``spec`` pins the merged seed/variant order to the spec's layout —
    the bit-identical reassembly path used by ``repro-grid merge
    --spec``; explicit ``seeds_order`` / ``variants_order`` take
    precedence over the spec's.  See
    :meth:`~repro.experiments.sweep.SweepResult.merge` for the union
    semantics (disjoint sets combine, overlapping cells must agree,
    the merged grid must be complete).

    ``allow_partial=True`` relaxes the completeness rule for runs with
    shards still missing: the merge keeps the largest complete
    sub-grid it can form instead of raising (see
    :meth:`SweepResult.merge` for the selection rule), and the
    requested orderings act as layout filters.  Pair it with
    :func:`grid_completion` to report what is absent.
    """
    if spec is not None:
        if seeds_order is None:
            seeds_order = spec.seeds
        if variants_order is None:
            variants_order = [v.name for v in spec.variants]
    return SweepResult.merge(
        [as_result(run) for run in runs],
        seeds_order=seeds_order,
        variants_order=variants_order,
        allow_partial=allow_partial,
    )
