"""Sharded spec execution: partition a spec, run the pieces anywhere,
merge the partial run records back into one.

The replication grid of an :class:`~repro.experiments.spec.ExperimentSpec`
— (variant, seed) cells, each an independent
:func:`~repro.experiments.runner.run_lineup` call — is embarrassingly
parallel, so a spec need not execute on a single host.  This module
closes the ROADMAP's "distribute replications across hosts" loop:

1. :func:`shard_spec` deterministically partitions a spec's
   (variant, seed) grid along one axis into self-contained sub-specs.
   Every shard is itself a plain :class:`ExperimentSpec` that JSON
   round-trips bit-identically, so the existing transport
   (``repro-grid run SPEC.json --out DIR``) ships it to any host
   unchanged.
2. Each shard executes wherever — the local process pool of
   :func:`run_sharded`, a ``repro-grid run`` on another machine, a CI
   matrix job — and persists an ordinary run record via
   :mod:`repro.experiments.store`.
3. :func:`merge_runs` (a thin coercing wrapper around
   :meth:`~repro.experiments.sweep.SweepResult.merge`) takes the union
   of the partial records and recomputes every
   :class:`~repro.experiments.sweep.MetricSummary` from the pooled
   per-seed raw values.

The key invariant (enforced by ``tests/test_experiments_dispatch.py``
and the CI shard/merge smoke job): shard → run → merge is
*bit-identical* to a single-host :func:`~repro.experiments.spec.run_spec`
at the same seeds — same per-cell reports, same ``run.json`` /
``grid.csv`` payloads modulo provenance fields (record name,
timestamps, git SHA, ``elapsed_seconds``, ``merged_from``, and the
wall-clock ``scheduler_seconds`` report field).

CLI
---
::

    repro-grid shard fig8.json --shards 4 --out-dir shards/
    # on each host i (or: repro-grid run shards/shard-<i>-of-4.json):
    repro-grid run fig8.json --shard-index i --num-shards 4 --out runs/part-i
    # back on one host:
    repro-grid merge runs/part-* --spec fig8.json --out runs/fig8
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.experiments.config import PaperDefaults
from repro.experiments.spec import ExperimentSpec, run_spec
from repro.experiments.store import as_result
from repro.experiments.sweep import SweepResult, parallel_map

__all__ = [
    "SHARD_STRATEGIES",
    "shard_spec",
    "shard_file_name",
    "run_sharded",
    "merge_runs",
]

#: shard_spec partition strategies: which grid axis is split.
SHARD_STRATEGIES = ("auto", "seeds", "variants")


def _chunks(items: tuple, n: int) -> list[tuple]:
    """Balanced contiguous chunks, sizes differing by at most one.

    Order-preserving and deterministic: the first ``len(items) % n``
    chunks carry the extra element, so concatenating the chunks in
    shard order reproduces ``items`` exactly.
    """
    n = min(n, len(items))
    base, extra = divmod(len(items), n)
    out, start = [], 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out


def _pick_axis(spec: ExperimentSpec, n_shards: int) -> str:
    """The ``"auto"`` strategy: prefer the axis that can fill
    ``n_shards``; otherwise the longer one (ties go to seeds)."""
    n_seeds, n_variants = len(spec.seeds), len(spec.variants)
    if n_seeds >= n_shards:
        return "seeds"
    if n_variants >= n_shards:
        return "variants"
    return "seeds" if n_seeds >= n_variants else "variants"


def shard_spec(
    spec: ExperimentSpec,
    n_shards: int,
    *,
    strategy: str = "auto",
) -> tuple[ExperimentSpec, ...]:
    """Partition a spec's (variant, seed) grid into sub-specs.

    Each shard is a self-contained :class:`ExperimentSpec` — same
    schedulers, metrics, scale and settings, a contiguous slice of one
    grid axis — whose name records its position
    (``"<name>#shard-<i>-of-<k>"``).  The union of the shards is
    exactly the original grid with no cell duplicated, and the
    partition is a pure function of ``(spec, n_shards, strategy)``, so
    independent hosts agree on it without coordination (that is what
    makes ``repro-grid run --shard-index i --num-shards N`` safe).

    ``strategy`` picks the split axis: ``"seeds"`` gives every shard
    all variants and a seed subset, ``"variants"`` the reverse,
    ``"auto"`` (default) prefers whichever axis has at least
    ``n_shards`` elements (seeds first).  Because a shard is a full
    cross-product spec, arbitrary cell-level partitions are not
    expressible — one axis is always kept whole.

    Asking for more shards than the split axis has elements returns
    one shard per element (never an empty shard — a spec cannot have
    zero seeds or variants); callers should use ``len()`` of the
    result, not ``n_shards``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; "
            f"choose from {SHARD_STRATEGIES}"
        )
    axis = _pick_axis(spec, n_shards) if strategy == "auto" else strategy
    if axis == "seeds":
        parts = _chunks(spec.seeds, n_shards)
        shards = [replace(spec, seeds=part) for part in parts]
    else:
        parts = _chunks(spec.variants, n_shards)
        shards = [replace(spec, variants=part) for part in parts]
    k = len(shards)
    return tuple(
        replace(shard, name=f"{spec.name}#shard-{i}-of-{k}")
        for i, shard in enumerate(shards)
    )


def shard_file_name(index: int, n_shards: int) -> str:
    """Canonical shard spec file name, zero-padded so a lexical sort
    lists shards in index order (``shard-03-of-12.json``)."""
    width = len(str(n_shards - 1)) if n_shards > 1 else 1
    return f"shard-{index:0{width}d}-of-{n_shards}.json"


@dataclass(frozen=True)
class _ShardTask:
    """Picklable unit of work: one shard, run sequentially in-process
    (the outer pool supplies the parallelism)."""

    shard: ExperimentSpec
    defaults: PaperDefaults


def _run_shard(task: _ShardTask) -> SweepResult:
    """Worker entry point (module-level for ProcessPoolExecutor)."""
    return run_spec(task.shard, defaults=task.defaults, max_workers=1)


def run_sharded(
    spec: ExperimentSpec,
    n_shards: int,
    *,
    strategy: str = "auto",
    defaults: PaperDefaults = PaperDefaults(),
    max_workers: int | None = None,
) -> SweepResult:
    """Shard → run → merge on one machine: the local dispatcher.

    Partitions ``spec`` with :func:`shard_spec`, runs one shard per
    pool process (each shard executes its own grid sequentially
    in-process, so parallelism is one level deep), and merges the
    partial results in the spec's own seed/variant order.  The result
    equals ``run_spec(spec)`` on every deterministic field — this is
    the in-process rehearsal of the multi-host shard/merge protocol,
    and the CI smoke job's subject.

    ``max_workers=1`` runs the shards sequentially (the tier-1 test
    path — no fork); ``None`` sizes the pool to
    ``min(n_shards, cpu_count)``.
    """
    spec.validate()
    shards = shard_spec(spec, n_shards, strategy=strategy)
    partials = parallel_map(
        _run_shard,
        [_ShardTask(shard=s, defaults=defaults) for s in shards],
        max_workers=max_workers,
    )
    return SweepResult.merge(
        partials,
        seeds_order=spec.seeds,
        variants_order=[v.name for v in spec.variants],
    )


def merge_runs(
    runs: Sequence,
    *,
    spec: ExperimentSpec | None = None,
    seeds_order: Sequence[int] | None = None,
    variants_order: Sequence[str] | None = None,
) -> SweepResult:
    """Merge partial run records into one complete :class:`SweepResult`.

    ``runs`` may mix run-record paths,
    :class:`~repro.experiments.store.StoredRun` and in-memory
    :class:`SweepResult` objects (the same coercion
    ``compare_runs`` applies).  Passing the original unsharded
    ``spec`` pins the merged seed/variant order to the spec's layout —
    the bit-identical reassembly path used by ``repro-grid merge
    --spec``; explicit ``seeds_order`` / ``variants_order`` take
    precedence over the spec's.  See
    :meth:`~repro.experiments.sweep.SweepResult.merge` for the union
    semantics (disjoint sets combine, overlapping cells must agree,
    the merged grid must be complete).
    """
    if spec is not None:
        if seeds_order is None:
            seeds_order = spec.seeds
        if variants_order is None:
            variants_order = [v.name for v in spec.variants]
    return SweepResult.merge(
        [as_result(run) for run in runs],
        seeds_order=seeds_order,
        variants_order=variants_order,
    )
