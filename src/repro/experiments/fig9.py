"""Figure 9 — per-site utilization on the NAS workload.

Three panels: (a) Min-Min under the three modes, (b) Sufferage under
the three modes, (c) the two risky heuristics vs the STGA.  The
paper's qualitative findings: secure mode leaves the least-secure
sites completely idle; f-risky uses more of them; risky and the STGA
leave no site idle, with the STGA the most balanced.

This module only reshapes the Figure 8 reports — no new simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.fig8 import NASExperimentResult
from repro.metrics.report import PerformanceReport
from repro.util.tables import render_table

__all__ = ["UtilizationPanel", "utilization_panels"]


@dataclass(frozen=True)
class UtilizationPanel:
    """One Figure 9 panel: some schedulers' per-site utilization."""

    title: str
    schedulers: tuple[str, ...]
    utilization: np.ndarray  # (A, S) percentages

    def idle_sites(self, scheduler: str) -> int:
        """Sites a scheduler left (essentially) unused."""
        i = self.schedulers.index(scheduler)
        return int((self.utilization[i] < 0.1).sum())

    def balance(self, scheduler: str) -> float:
        """Utilization imbalance: std dev across sites (lower = more
        balanced, the paper's 'much better balanced' claim)."""
        i = self.schedulers.index(scheduler)
        return float(self.utilization[i].std())

    def render(self) -> str:
        """Sites as columns, schedulers as rows."""
        n_sites = self.utilization.shape[1]
        headers = ["scheduler"] + [f"S{i + 1}" for i in range(n_sites)]
        rows = [
            [name] + [float(u) for u in self.utilization[i]]
            for i, name in enumerate(self.schedulers)
        ]
        return render_table(headers, rows, title=self.title, digits=3)


def _panel(
    title: str, picks: list[PerformanceReport]
) -> UtilizationPanel:
    return UtilizationPanel(
        title=title,
        schedulers=tuple(r.scheduler for r in picks),
        utilization=np.vstack([r.site_utilization for r in picks]),
    )


def utilization_panels(
    result: NASExperimentResult,
) -> tuple[UtilizationPanel, UtilizationPanel, UtilizationPanel]:
    """Build the three Figure 9 panels from a NAS experiment."""
    by = result.by_name()

    def pick(*fragments: str) -> list[PerformanceReport]:
        out = []
        for frag in fragments:
            matches = [r for name, r in by.items() if frag in name]
            if len(matches) != 1:
                raise KeyError(
                    f"fragment {frag!r} matches {len(matches)} schedulers"
                )
            out.append(matches[0])
        return out

    a = _panel(
        "Figure 9(a): Min-Min site utilization (%)",
        pick("Min-Min Secure", "Min-Min f-Risky", "Min-Min Risky"),
    )
    b = _panel(
        "Figure 9(b): Sufferage site utilization (%)",
        pick("Sufferage Secure", "Sufferage f-Risky", "Sufferage Risky"),
    )
    c = _panel(
        "Figure 9(c): risky heuristics vs STGA site utilization (%)",
        pick("Min-Min Risky", "Sufferage Risky", "STGA"),
    )
    return a, b, c
