"""Declarative experiment specs: scheduler refs x variants x seeds.

An :class:`ExperimentSpec` is the serializable unit of experimental
work — the FuzzBench experiment-config shape, where a config names
fuzzers x benchmarks x trials and any worker can execute a shard.
Here a spec names scheduler-registry refs x scenario variants x
replication seeds (plus the metrics to report and the shared engine
settings), JSON round-trips bit-identically, and runs anywhere via
:func:`run_spec` or ``repro-grid run SPEC.json`` — the shippable unit
for distributing replications across hosts.  Distribution itself is
:mod:`repro.experiments.dispatch`: ``shard_spec`` partitions a spec's
(variant, seed) grid into sub-specs (each again a plain spec file),
and ``merge_runs`` recombines the partial run records bit-identically.

The paper-figure drivers emit specs instead of hard-coding their
lineups: :func:`repro.experiments.fig8.nas_spec`,
:func:`repro.experiments.fig10.psa_scaling_spec`,
:func:`repro.experiments.fig7.frisky_sweep_spec` /
:func:`~repro.experiments.fig7.stga_iteration_spec`, and
:func:`repro.experiments.ablation.stga_ablation_spec`; ``repro-grid
emit-spec fig8`` writes them from the CLI.  Running the fig8 spec at a
seed reproduces the legacy ``repro-grid fig8`` reports bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.experiments.config import PaperDefaults, RunSettings
from repro.experiments.sweep import (
    SWEEP_METRICS,
    ScenarioVariant,
    SweepResult,
    run_sweep,
)
from repro.metrics.report import PerformanceReport
from repro.registry import parse_scheduler_ref, scheduler_spec

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "SpecError",
    "ExperimentSpec",
    "parse_spec_text",
    "run_spec",
    "save_spec",
    "load_spec",
]

SPEC_SCHEMA_VERSION = 1


class SpecError(ValueError):
    """A document that is not a valid :class:`ExperimentSpec`.

    Every malformed-spec failure mode — invalid JSON, a non-object top
    level, missing or mistyped fields, constraint violations — funnels
    into this one type with a ``"invalid spec: <reason>"`` message, so
    the CLI (exit 2) and the HTTP service (422) can diagnose a bad
    spec uniformly instead of leaking raw tracebacks.
    """

#: PerformanceReport fields a spec may list as metrics
_REPORT_METRICS = frozenset(
    f for f in PerformanceReport.__dataclass_fields__
    if f not in ("scheduler", "site_utilization")
) | {"mean_utilization"}


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment as data: what to run, on what, how often.

    ``schedulers`` holds scheduler-registry refs (optionally
    parameterized, e.g. ``"stga?eviction=fifo"``); ``variants`` the
    scenario grid; ``seeds`` the replications; ``metrics`` the
    :class:`~repro.metrics.report.PerformanceReport` fields to
    aggregate and render.  ``settings`` and ``scale`` are the shared
    engine parameters and workload scale every grid point starts from
    (variants layer their overrides on top).

    Specs are *structurally* validated at construction (non-empty,
    distinct names/seeds, known metrics, scale in (0, 1]); scheduler
    refs resolve against the registry at :meth:`validate` / run time,
    so a spec can be authored and shipped without the plugin modules
    that define its entries.  Scheduler refs follow the
    ``"name?key=value"`` grammar documented in :mod:`repro.registry`
    (JSON-scalar parameter values, reserved ``label`` key); refs are
    compared as strings, so ``schedulers`` must be distinct as written.

    The (variant, seed) grid a spec describes is embarrassingly
    parallel — :func:`repro.experiments.dispatch.shard_spec` partitions
    it into self-contained sub-specs for multi-host execution.
    """

    name: str
    schedulers: tuple[str, ...]
    variants: tuple[ScenarioVariant, ...]
    seeds: tuple[int, ...]
    metrics: tuple[str, ...] = SWEEP_METRICS
    scale: float = 1.0
    settings: RunSettings = field(default_factory=RunSettings)

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedulers", tuple(self.schedulers))
        object.__setattr__(self, "variants", tuple(self.variants))
        object.__setattr__(
            self, "seeds", tuple(int(s) for s in self.seeds)
        )
        object.__setattr__(self, "metrics", tuple(self.metrics))
        if not self.name:
            raise ValueError("a spec needs a name")
        if not self.schedulers:
            raise ValueError("a spec needs at least one scheduler ref")
        if not self.variants:
            raise ValueError("a spec needs at least one scenario variant")
        if not self.seeds:
            raise ValueError("a spec needs at least one replication seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(
                f"replication seeds must be distinct, got {self.seeds}"
            )
        names = [v.name for v in self.variants]
        if len(set(names)) != len(names):
            raise ValueError(f"variant names must be distinct, got {names}")
        if len(set(self.schedulers)) != len(self.schedulers):
            raise ValueError(
                f"scheduler refs must be distinct, got {self.schedulers}"
            )
        unknown = sorted(set(self.metrics) - _REPORT_METRICS)
        if unknown:
            raise ValueError(
                f"unknown metrics {unknown}; choose from "
                f"{sorted(_REPORT_METRICS)}"
            )
        if not (0 < self.scale <= 1.0):
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")

    def validate(self) -> None:
        """Resolve every scheduler ref against the registry.

        Raises ``KeyError`` (listing the available entries) for
        unknown names and ``ValueError`` for malformed refs.
        """
        for ref in self.schedulers:
            scheduler_spec(parse_scheduler_ref(ref)[0])

    def to_dict(self) -> dict:
        """JSON-ready dict; :meth:`from_dict` round-trips it
        bit-identically (floats keep ``repr`` fidelity)."""
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "kind": "experiment-spec",
            "name": self.name,
            "schedulers": list(self.schedulers),
            "variants": [asdict(v) for v in self.variants],
            "seeds": list(self.seeds),
            "metrics": list(self.metrics),
            "scale": self.scale,
            "settings": self.settings.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`."""
        version = data.get("schema_version")
        if version != SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported spec schema_version {version!r} "
                f"(this reader supports {SPEC_SCHEMA_VERSION})"
            )
        return cls(
            name=data["name"],
            schedulers=tuple(data["schedulers"]),
            variants=tuple(
                ScenarioVariant(**v) for v in data["variants"]
            ),
            seeds=tuple(data["seeds"]),
            metrics=tuple(data["metrics"]),
            scale=data["scale"],
            settings=RunSettings.from_dict(data["settings"]),
        )

    def to_json(self, *, indent: int = 1) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from its JSON document."""
        return cls.from_dict(json.loads(text))


def parse_spec_text(text: str) -> ExperimentSpec:
    """Parse serialized spec JSON, diagnosing every malformed input.

    The one validation seam the CLI's ``SPEC.json`` paths and the
    service's ``POST /v1/experiments`` body share: anything that is
    not a valid spec document raises :class:`SpecError` with a
    ``"invalid spec: <reason>"`` message — never a raw
    ``JSONDecodeError``/``TypeError``/``AttributeError`` traceback
    from deep inside :meth:`ExperimentSpec.from_dict`.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"invalid spec: not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise SpecError(
            f"invalid spec: top level is {type(data).__name__}, "
            "expected an object"
        )
    try:
        return ExperimentSpec.from_dict(data)
    except SpecError:
        raise
    except KeyError as exc:
        raise SpecError(f"invalid spec: missing field {exc}") from None
    except (ValueError, TypeError, AttributeError) as exc:
        raise SpecError(f"invalid spec: {exc}") from None


def save_spec(spec: ExperimentSpec, path: str | Path) -> Path:
    """Write ``spec`` as JSON at ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(spec.to_json(), encoding="utf-8")
    return path


def load_spec(path: str | Path) -> ExperimentSpec:
    """Read a spec written by :func:`save_spec`.

    A missing file raises ``FileNotFoundError``; any malformed content
    raises :class:`SpecError` naming the file
    (``"<path>: invalid spec: <reason>"``) via :func:`parse_spec_text`.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no experiment spec at {path}")
    try:
        return parse_spec_text(path.read_text(encoding="utf-8"))
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from None


def run_spec(
    spec: ExperimentSpec,
    *,
    defaults: PaperDefaults = PaperDefaults(),
    max_workers: int | None = None,
) -> SweepResult:
    """Execute a spec: the full (variant x seed) grid over its lineup.

    One :func:`~repro.experiments.runner.run_lineup` call per grid
    point, fanned out over a process pool exactly like
    :func:`~repro.experiments.sweep.run_sweep` (``max_workers=1``
    forces the sequential in-process fallback).
    """
    spec.validate()
    return run_sweep(
        spec.variants,
        spec.seeds,
        settings=spec.settings,
        scale=spec.scale,
        defaults=defaults,
        lineup=spec.schedulers,
        max_workers=max_workers,
    )
