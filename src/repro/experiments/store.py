"""Run store: persist sweep results for cross-run comparison.

Every :class:`~repro.experiments.sweep.SweepResult` used to die at
process exit, so perf/quality regressions between code revisions were
invisible.  This module serializes a sweep to a versioned on-disk run
record, reloads it losslessly, and diffs two stored runs per
(variant, scheduler, metric) cell with mean-shift and CI-overlap
verdicts — the same experiment-store + report-generator loop benchmark
harnesses like FuzzBench close.

Registry layout
---------------
A *registry* is any directory of run records; :func:`new_run_dir`
names records ``<root>/<UTC timestamp>-<name>/`` so a plain ``ls``
sorts chronologically::

    runs/
      20260728T093102Z-baseline/
        run.json     # the authoritative record (schema below)
        grid.csv     # flat per-seed export for pandas/spreadsheets
      20260728T110542Z-tuned-ga/
        ...

``repro-grid sweep --out DIR`` writes a record at exactly ``DIR``;
``repro-grid compare-runs A B`` diffs two records.  Run records are
also the transport of the shard/merge protocol
(:mod:`repro.experiments.dispatch`): each shard of a spec persists an
ordinary record on its host, and ``repro-grid merge`` unions them into
one record whose ``merged_from`` key names the parts.

run.json schema (``schema_version`` 1)
--------------------------------------
::

    {
      "schema_version": 1,
      "name":            str,          # record label
      "created_at":      str,          # ISO-8601 UTC wall-clock
      "git_sha":         str | null,   # HEAD at save time, if a repo
      "elapsed_seconds": float | null, # sweep wall-clock time
      "scale":           float,        # workload scale factor
      "seeds":           [int, ...],   # replication seeds, in order
      "settings": {                    # shared base RunSettings | null
        "batch_interval": float, "lam": float, "failure_point": str,
        "fallback": str, "seed": int,
        "ga": {<GAConfig fields>}
      },
      "variants": [                    # ScenarioVariant provenance
        {"name": str, "workload": "psa"|"nas", "n_jobs": int,
         "n_sites": int|null, "arrival_rate": float|null,
         "lam": float|null, "batch_interval": float|null,
         "n_training_jobs": int,
         "ga_overrides": [[<GAConfig field>, value], ...] | null}, ...
      ],
      "reports": {                     # grid of per-seed raw values
        <variant name>: {
          <scheduler name>: [<PerformanceReport.to_dict()>, ...]
          #                  one entry per seed, in ``seeds`` order
        }, ...
      },
      "merged_from": [str, ...],       # OPTIONAL: the partial records
      #  a merged run was assembled from (repro-grid merge); absent —
      #  not null — on directly-saved runs, so their payloads are
      #  unchanged.  Readers treat a missing key as "not a merge".
      "manifest": {                    # OPTIONAL: dispatch provenance
        "path": str,                   #  the manifest.json a resumed
        "spec_sha256": str             #  run was merged from, plus its
      }                                #  spec hash (repro-grid resume);
      #  absent on runs not produced through a manifest.
    }

Floats are serialized with ``repr`` round-tripping (the ``json``
module's default), so a reloaded run's summaries are *bit-identical*
to the in-memory ones.  ``grid.csv`` is a denormalized convenience
export (one row per variant x scheduler x seed, scalar report fields
only); ``run.json`` is the record of truth and the only file
:func:`load_run` reads.
"""

from __future__ import annotations

import csv
import json
import subprocess
from collections.abc import Sequence
from dataclasses import asdict, dataclass, fields
from datetime import datetime, timezone
from pathlib import Path

from repro.experiments.config import RunSettings
from repro.experiments.sweep import (
    SWEEP_METRICS,
    ScenarioVariant,
    SweepResult,
)
from repro.metrics.compare import RunDiffRow
from repro.metrics.report import PerformanceReport

__all__ = [
    "SCHEMA_VERSION",
    "RUN_JSON",
    "GATE_METRICS",
    "StoredRun",
    "new_run_dir",
    "save_run",
    "save_run_to_registry",
    "load_run",
    "list_runs",
    "as_result",
    "compare_runs",
    "find_regressions",
]

SCHEMA_VERSION = 1

#: file names inside one run record
RUN_JSON = "run.json"
GRID_CSV = "grid.csv"

#: scalar PerformanceReport fields exported to grid.csv, in order
#: (scheduler is already a key column; the utilization array stays
#: JSON-only, its grid-wide mean is exported instead)
_CSV_REPORT_FIELDS = tuple(
    f.name
    for f in fields(PerformanceReport)
    if f.name not in ("scheduler", "site_utilization")
)


@dataclass(frozen=True)
class StoredRun:
    """One reloaded run record: metadata plus the sweep itself."""

    path: Path
    name: str
    created_at: str
    git_sha: str | None
    schema_version: int
    result: SweepResult
    #: source records of a ``repro-grid merge`` product; None when the
    #: run was saved directly from a sweep
    merged_from: tuple[str, ...] | None = None
    #: dispatch provenance of a manifest-tracked run (``repro-grid
    #: resume``): ``{"path": ..., "spec_sha256": ...}`` naming the
    #: manifest the record was merged from; None otherwise
    manifest: dict | None = None

    def __str__(self) -> str:
        return (
            f"{self.path.name}: {len(self.result.variants)} variant(s) x "
            f"{len(self.result.seeds)} seed(s), saved {self.created_at}"
        )


def _git_sha() -> str | None:
    """HEAD commit of the working directory's repo, or None."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _settings_to_dict(settings: RunSettings | None) -> dict | None:
    return None if settings is None else settings.to_dict()


def _settings_from_dict(data: dict | None) -> RunSettings | None:
    return None if data is None else RunSettings.from_dict(data)


def new_run_dir(root: str | Path, name: str = "sweep") -> Path:
    """Fresh registry path ``<root>/<UTC timestamp>-<name>`` (not created)."""
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    return Path(root) / f"{stamp}-{name}"


def save_run(
    result: SweepResult,
    run_dir: str | Path,
    *,
    name: str | None = None,
    overwrite: bool = False,
    merged_from: Sequence[str] | None = None,
    manifest: dict | None = None,
) -> Path:
    """Write one run record (``run.json`` + ``grid.csv``) at ``run_dir``.

    The directory is created (parents included).  An existing record
    is only replaced with ``overwrite=True``; ``name`` defaults to the
    directory's base name.  ``merged_from`` records the partial-run
    paths a :func:`repro.experiments.dispatch.merge_runs` product was
    assembled from; ``manifest`` the ``{"path", "spec_sha256"}`` of the
    run manifest a ``repro-grid resume`` merged through (both
    provenance only; omitted from the payload when ``None``).  Returns
    the record path.
    """
    run_dir = Path(run_dir)
    record = run_dir / RUN_JSON
    if record.exists() and not overwrite:
        raise FileExistsError(
            f"{record} already holds a run record (pass overwrite=True)"
        )
    run_dir.mkdir(parents=True, exist_ok=True)

    payload = {
        "schema_version": SCHEMA_VERSION,
        "name": name if name is not None else run_dir.name,
        "created_at": datetime.now(timezone.utc).isoformat(),
        "git_sha": _git_sha(),
        "elapsed_seconds": result.elapsed_seconds,
        "scale": result.scale,
        "seeds": list(result.seeds),
        "settings": _settings_to_dict(result.settings),
        "variants": [asdict(v) for v in result.variants],
        "reports": {
            vname: {
                sched: [rep.to_dict() for rep in reps]
                for sched, reps in per_sched.items()
            }
            for vname, per_sched in result.reports.items()
        },
    }
    if merged_from is not None:
        payload["merged_from"] = [str(p) for p in merged_from]
    if manifest is not None:
        unknown = sorted(set(manifest) - {"path", "spec_sha256"})
        if unknown:
            raise ValueError(
                f"manifest provenance allows keys path/spec_sha256, "
                f"got extra {unknown}"
            )
        payload["manifest"] = {k: str(v) for k, v in manifest.items()}
    # temp file + atomic rename: a crash mid-save must never leave a
    # truncated run.json behind a shard marked "done" (resume treats
    # an unreadable record as work owed, but a clean snapshot is
    # better than a redo)
    tmp = record.with_name(record.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    tmp.replace(record)
    _write_grid_csv(result, run_dir / GRID_CSV)
    return run_dir


def _write_grid_csv(result: SweepResult, path: Path) -> None:
    """Flat per-seed export: one row per (variant, scheduler, seed)."""
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ("variant", "scheduler", "seed")
            + _CSV_REPORT_FIELDS
            + ("mean_utilization",)
        )
        for variant in result.variants:
            for sched in result.schedulers():
                for seed, rep in zip(
                    result.seeds, result.cell(variant.name, sched)
                ):
                    writer.writerow(
                        [variant.name, sched, seed]
                        + [getattr(rep, f) for f in _CSV_REPORT_FIELDS]
                        + [rep.mean_utilization]
                    )


def save_run_to_registry(
    result: SweepResult, root: str | Path = "runs", name: str = "sweep"
) -> Path:
    """Save under a fresh timestamped directory in registry ``root``.

    The timestamp has seconds resolution, so back-to-back saves of the
    same name can land on the same path; a numeric suffix keeps each
    record distinct instead of tripping save_run's overwrite guard.
    """
    run_dir = new_run_dir(root, name)
    candidate = run_dir
    counter = 2
    while (candidate / RUN_JSON).exists():
        candidate = run_dir.with_name(f"{run_dir.name}-{counter}")
        counter += 1
    return save_run(result, candidate, name=name)


def load_run(run_dir: str | Path) -> StoredRun:
    """Reload a run record; the sweep round-trips bit-identically.

    Only ``run.json`` is read (``grid.csv`` is a convenience export,
    never parsed back).  Unsupported ``schema_version`` values raise
    ``ValueError``; a missing record raises ``FileNotFoundError``.
    Merge provenance (the optional ``merged_from`` and ``manifest``
    keys) surfaces as :attr:`StoredRun.merged_from` /
    :attr:`StoredRun.manifest`, ``None`` for directly-saved runs.
    """
    run_dir = Path(run_dir)
    record = run_dir / RUN_JSON
    if not record.is_file():
        raise FileNotFoundError(f"no run record at {record}")
    with record.open("r", encoding="utf-8") as fh:
        payload = json.load(fh)
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{record}: unsupported schema_version {version!r} "
            f"(this reader supports {SCHEMA_VERSION})"
        )
    result = SweepResult(
        variants=tuple(
            ScenarioVariant(**v) for v in payload["variants"]
        ),
        seeds=tuple(int(s) for s in payload["seeds"]),
        reports={
            vname: {
                sched: tuple(
                    PerformanceReport.from_dict(d) for d in reps
                )
                for sched, reps in per_sched.items()
            }
            for vname, per_sched in payload["reports"].items()
        },
        settings=_settings_from_dict(payload.get("settings")),
        scale=payload.get("scale", 1.0),
        elapsed_seconds=payload.get("elapsed_seconds"),
    )
    merged_from = payload.get("merged_from")
    return StoredRun(
        path=run_dir,
        name=payload["name"],
        created_at=payload["created_at"],
        git_sha=payload.get("git_sha"),
        schema_version=version,
        result=result,
        merged_from=tuple(merged_from) if merged_from is not None else None,
        manifest=payload.get("manifest"),
    )


def list_runs(root: str | Path = "runs") -> list[StoredRun]:
    """All run records directly under ``root``, oldest first.

    Sorted by recorded ``created_at`` (directory names from
    :func:`new_run_dir` agree with that order).  A missing registry
    directory is an empty registry, not an error.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    runs = [
        load_run(child)
        for child in sorted(root.iterdir())
        if (child / RUN_JSON).is_file()
    ]
    return sorted(runs, key=lambda run: run.created_at)


def as_result(run) -> SweepResult:
    """Coerce a run argument to its :class:`SweepResult`.

    Accepts an in-memory :class:`SweepResult` (returned as-is), a
    :class:`StoredRun`, or a run-record path (loaded via
    :func:`load_run`) — the argument contract shared by
    :func:`compare_runs` and
    :func:`repro.experiments.dispatch.merge_runs`.
    """
    if isinstance(run, SweepResult):
        return run
    if isinstance(run, StoredRun):
        return run.result
    return load_run(run).result


def compare_runs(
    run_a,
    run_b,
    *,
    metrics: tuple[str, ...] = SWEEP_METRICS,
) -> list[RunDiffRow]:
    """Diff two runs per (variant, scheduler, metric) cell.

    ``run_a`` / ``run_b`` may be record paths, :class:`StoredRun` or
    in-memory :class:`SweepResult` objects.  Cells present in both
    runs are compared (in run A's order): each side is summarised to
    mean ± Student-t 95 %-CI across its seeds, and the verdict is

    * ``"same"``      — identical per-seed values;
    * ``"overlap"``   — the two CIs overlap (shift within noise);
    * ``"diverged"``  — disjoint CIs, a statistically visible shift.

    Raises if the runs share no (variant, scheduler) cell at all.
    """
    a = as_result(run_a)
    b = as_result(run_b)
    rows: list[RunDiffRow] = []
    for variant in a.variants:
        if variant.name not in b.reports:
            continue
        for sched in a.schedulers():
            if sched not in b.reports[variant.name]:
                continue
            for metric in metrics:
                sa = a.summary(variant.name, sched, metric)
                sb = b.summary(variant.name, sched, metric)
                if sa.values == sb.values:
                    verdict = "same"
                elif abs(sb.mean - sa.mean) <= sa.ci95 + sb.ci95:
                    verdict = "overlap"
                else:
                    verdict = "diverged"
                rows.append(
                    RunDiffRow(
                        variant=variant.name,
                        scheduler=sched,
                        metric=metric,
                        mean_a=sa.mean,
                        ci_a=sa.ci95,
                        n_a=sa.n,
                        mean_b=sb.mean,
                        ci_b=sb.ci95,
                        n_b=sb.n,
                        verdict=verdict,
                    )
                )
    if not rows:
        raise ValueError(
            "the two runs share no (variant, scheduler) cell to compare"
        )
    return rows


#: metrics the regression gate judges — every sweep metric where a
#: larger value is unambiguously worse.  N_risk is deliberately
#: excluded: more risk-taking is the paper's *expected* behaviour for
#: the risky modes, not a quality regression.
GATE_METRICS = ("makespan", "avg_response_time", "slowdown_ratio", "n_fail")


def find_regressions(
    rows,
    *,
    threshold_pct: float = 5.0,
    metrics: tuple[str, ...] = GATE_METRICS,
) -> list[RunDiffRow]:
    """Cells where run B is statistically, materially worse than A.

    A cell regresses when all three hold: the metric is one the gate
    judges (larger = worse), the CIs are disjoint (verdict
    ``"diverged"`` — the shift is outside replication noise), and the
    mean rose by more than ``threshold_pct`` percent of the baseline
    (any rise counts when the baseline mean is 0, e.g. N_fail going
    0 -> 5).  Used by ``repro-grid compare-runs --fail-on-regression``.
    """
    if threshold_pct < 0:
        raise ValueError(
            f"threshold_pct must be >= 0, got {threshold_pct}"
        )
    out = []
    for r in rows:
        if r.metric not in metrics or r.verdict != "diverged":
            continue
        if r.mean_b <= r.mean_a:
            continue  # improved or unchanged
        if r.mean_a == 0 or r.shift_pct > threshold_pct:
            out.append(r)
    return out
