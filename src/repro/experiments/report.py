"""EXPERIMENTS.md generator.

Runs every table/figure experiment (at a configurable scale) and
renders a markdown report recording *paper claim vs measured result*
for each — the repository's EXPERIMENTS.md is produced by::

    python -m repro.experiments.report --scale 0.05 -o EXPERIMENTS.md

Each section names the paper artifact, states the paper's quantitative
claim, shows the regenerated numbers, and verdicts the *shape* (our
substrate is a simulator, not the 2005 testbed; absolute numbers are
not comparable — see DESIGN.md §3-4).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

import numpy as np

from repro.experiments.ablation import stga_vs_conventional
from repro.experiments.config import PaperDefaults, RunSettings
from repro.experiments.fig7 import frisky_makespan_sweep, stga_iteration_sweep
from repro.experiments.fig8 import NASExperimentResult, nas_experiment
from repro.experiments.fig9 import utilization_panels
from repro.experiments.fig10 import psa_scaling_experiment
from repro.experiments.table2 import PAPER_TABLE2, table2_rows

__all__ = ["generate_report", "main"]

_SEEDS = (1, 7, 2005)


def _code(text: str) -> str:
    return f"```\n{text}\n```"


def _verdict(ok: bool, note: str) -> str:
    return f"**{'REPRODUCED' if ok else 'DEVIATION'}** — {note}"


def _section_fig7a(settings: RunSettings, scale: float) -> str:
    fs = (0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0)
    mm = np.zeros(len(fs))
    sf = np.zeros(len(fs))
    for seed in _SEEDS:
        res = frisky_makespan_sweep(
            scale=scale, f_values=fs, settings=replace(settings, seed=seed)
        )
        mm += res.minmin_makespan / len(_SEEDS)
        sf += res.sufferage_makespan / len(_SEEDS)
    lines = ["| f | Min-Min f-Risky | Sufferage f-Risky |", "|---|---|---|"]
    for f, a, b in zip(fs, mm, sf):
        lines.append(f"| {f} | {a:.4g} | {b:.4g} |")
    best_mm = fs[int(np.argmin(mm))]
    best_sf = fs[int(np.argmin(sf))]
    interior_ok = (
        mm[1:-1].min() < mm[0] and sf[1:-1].min() < sf[0]
        and best_mm > 0 and best_sf > 0
    )
    return "\n".join([
        "## Figure 7(a) — makespan vs risk level f (PSA, N=1000)",
        "",
        "*Paper:* concave curves; minima at f = 0.5 (Min-Min) / 0.6 "
        "(Sufferage); optimum in 0.5-0.6.",
        "",
        *lines,
        "",
        f"Measured best f: Min-Min {best_mm}, Sufferage {best_sf} "
        f"(ensemble mean over seeds {_SEEDS}).",
        "",
        _verdict(
            interior_ok,
            "an intermediate risk level beats the secure endpoint for "
            "both heuristics and the optimum is interior, matching the "
            "paper's concave shape; the exact minimiser varies with "
            "the failure constant λ (unspecified in the paper).",
        ),
    ])


def _section_fig7b(settings: RunSettings, scale: float) -> str:
    cfg = replace(settings, ga=replace(settings.ga, stall_generations=None))
    res = stga_iteration_sweep(
        scale=scale, generations=(0, 10, 25, 50, 100, 150), settings=cfg
    )
    lines = ["| generations | STGA makespan |", "|---|---|"]
    for g, m in zip(res.generations, res.makespan):
        lines.append(f"| {g} | {m:.4g} |")
    by = dict(zip(res.generations.tolist(), res.makespan.tolist()))
    ok = by[50] <= res.makespan.min() * 1.05
    return "\n".join([
        "## Figure 7(b) — STGA makespan vs iteration budget (PSA, N=1000)",
        "",
        "*Paper:* fluctuates below ~25 iterations, converges by ~50, "
        "flat beyond; 100 chosen as the safe budget.",
        "",
        *lines,
        "",
        f"Measured: converged (1% tolerance) after "
        f"~{res.converged_after()} generations.",
        "",
        _verdict(ok, "the budget-50 makespan is within 5% of the grid "
                     "optimum and larger budgets buy nothing — the "
                     "paper's convergence point holds."),
    ])


def _nas_ensemble(settings: RunSettings, scale: float):
    return [
        nas_experiment(scale=scale, settings=replace(settings, seed=s))
        for s in _SEEDS
    ]


def _mean(results: list[NASExperimentResult], name: str, metric: str):
    return float(
        np.mean([getattr(r.by_name()[name], metric) for r in results])
    )


def _section_fig8(results) -> str:
    names = [r.scheduler for r in results[0].reports]
    lines = [
        "| scheduler | makespan | avg response | slowdown | N_risk | N_fail |",
        "|---|---|---|---|---|---|",
    ]
    for n in names:
        lines.append(
            f"| {n} | {_mean(results, n, 'makespan'):.4g} "
            f"| {_mean(results, n, 'avg_response_time'):.4g} "
            f"| {_mean(results, n, 'slowdown_ratio'):.3g} "
            f"| {_mean(results, n, 'n_risk'):.0f} "
            f"| {_mean(results, n, 'n_fail'):.0f} |"
        )
    stga_ms = _mean(results, "STGA", "makespan")
    secure_ms = np.mean([
        _mean(results, "Min-Min Secure", "makespan"),
        _mean(results, "Sufferage Secure", "makespan"),
    ])
    risky_ms = np.mean([
        _mean(results, "Min-Min Risky", "makespan"),
        _mean(results, "Sufferage Risky", "makespan"),
    ])
    frisky_ms = np.mean([
        _mean(results, "Min-Min f-Risky(f=0.5)", "makespan"),
        _mean(results, "Sufferage f-Risky(f=0.5)", "makespan"),
    ])
    imp_secure = (1 - stga_ms / secure_ms) * 100
    imp_risky = (1 - stga_ms / risky_ms) * 100
    imp_frisky = (1 - stga_ms / frisky_ms) * 100
    best_ms = min(_mean(results, n, "makespan") for n in names if n != "STGA")
    ok = stga_ms <= best_ms * 1.02 and imp_secure > 10
    return "\n".join([
        "## Figure 8 — seven algorithms on the NAS trace",
        "",
        "*Paper:* STGA best on makespan (~10% vs risky, ~15% vs f-risky, "
        "~30% vs secure), best response (~20/30/50%), minimum slowdown; "
        "secure modes never fail; N_fail ≤ N_risk.",
        "",
        f"Ensemble means over seeds {_SEEDS}:",
        "",
        *lines,
        "",
        f"Measured STGA makespan improvement: {imp_risky:+.1f}% vs risky, "
        f"{imp_frisky:+.1f}% vs f-risky, {imp_secure:+.1f}% vs secure "
        "(paper: ~10/15/30%).",
        "",
        _verdict(
            ok,
            "STGA wins makespan with a clear margin over secure and "
            "leads/ties the risk-taking heuristics; secure modes have "
            "zero failures; response-time ordering (risk-takers ≪ "
            "secure) matches, though the STGA's response edge over the "
            "*risky* heuristics is within noise rather than the "
            "paper's ~20% (see DESIGN.md §4 on λ).",
        ),
    ])


def _section_fig9(results) -> str:
    panels = utilization_panels(results[0])
    out = ["## Figure 9 — per-site utilization (NAS)",
           "",
           "*Paper:* secure leaves 3/12 sites idle; f-risky 2/12; risky "
           "and STGA none, with STGA the most balanced.",
           ""]
    for panel in panels:
        out.append(_code(panel.render()))
        out.append("")
    idle_secure = np.mean([
        p.idle_sites(n)
        for r in results
        for p, pref in zip(utilization_panels(r)[:2], ("Min-Min", "Sufferage"))
        for n in (f"{pref} Secure",)
    ])
    idle_stga = np.mean([
        utilization_panels(r)[2].idle_sites("STGA") for r in results
    ])
    ok = idle_secure >= 1.0 and idle_stga < 0.5
    out.append(
        f"Ensemble: secure idles {idle_secure:.1f} sites on average, "
        f"STGA {idle_stga:.1f}."
    )
    out.append("")
    out.append(_verdict(ok, "secure strands the low-SL sites, STGA uses "
                            "every site and is the most balanced."))
    return "\n".join(out)


def _section_table2(results) -> str:
    names = [r.scheduler for r in results[0].reports]
    alpha = {n: [] for n in names}
    beta = {n: [] for n in names}
    for r in results:
        for row in table2_rows(r):
            alpha[row.scheduler].append(row.alpha)
            beta[row.scheduler].append(row.beta)
    lines = [
        "| Heuristics | α measured | β measured | α paper | β paper "
        "| paper rank |",
        "|---|---|---|---|---|---|",
    ]
    for n in names:
        pa, pb, pr = PAPER_TABLE2[n]
        lines.append(
            f"| {n} | {np.mean(alpha[n]):.3f} | {np.mean(beta[n]):.3f} "
            f"| {pa} | {pb} | {pr} |"
        )
    score = {n: np.mean(alpha[n]) + np.mean(beta[n]) for n in names}
    ok = score["STGA"] <= min(score.values()) + 1e-9
    secure_beta = np.mean([np.mean(beta[n]) for n in names if "Secure" in n])
    return "\n".join([
        "## Table 2 — α/β global comparison (NAS)",
        "",
        "*Paper:* STGA 1st; risky 2nd (α≈1.10, β≈1.27); f-risky 3rd "
        "(α≈1.17, β≈1.50); secure 4th (α≈1.31, β≈2.02).",
        "",
        *lines,
        "",
        f"Secure-mode β ≈ {secure_beta:.2f} (paper ≈ 2.0).",
        "",
        _verdict(ok, "STGA ranks first on the combined α+β score and "
                     "every heuristic's α, β ≥ 1; the secure modes "
                     "carry ~2x response ratios exactly as the paper "
                     "reports. Our f-risky modes edge out risky on α "
                     "(the paper has them reversed) — an artifact of "
                     "the unspecified λ, documented in DESIGN.md §4."),
    ])


def _section_fig10(settings: RunSettings, scale: float) -> str:
    results = [
        psa_scaling_experiment(
            n_values=(1000, 2000, 5000, 10000),
            scale=scale,
            settings=replace(settings, seed=s),
        )
        for s in _SEEDS
    ]
    names = list(results[0].reports)

    def mean_series(name, metric):
        return np.mean([r.series(name, metric) for r in results], axis=0)

    out = ["## Figure 10 — PSA scaling (N = 1000...10000)",
           "",
           "*Paper:* all metrics grow monotonically with N; STGA leads "
           "(~6% makespan; ~40% slowdown/response vs the f-risky "
           "heuristics); the two f-risky heuristics within ~1%.",
           ""]
    for metric, label in (
        ("makespan", "makespan"),
        ("avg_response_time", "avg response"),
        ("slowdown_ratio", "slowdown"),
        ("n_fail", "N_fail"),
    ):
        out.append(f"**{label}** (ensemble means)")
        out.append("")
        out.append("| N | " + " | ".join(names) + " |")
        out.append("|---|" + "---|" * len(names))
        for i, n in enumerate(results[0].n_values):
            cells = " | ".join(
                f"{mean_series(name, metric)[i]:.4g}" for name in names
            )
            out.append(f"| {n} | {cells} |")
        out.append("")
    ratios = mean_series("STGA", "makespan") / np.minimum(
        mean_series(names[0], "makespan"), mean_series(names[1], "makespan")
    )
    gmean = float(np.exp(np.log(ratios).mean()))
    mono = all(
        (np.diff(mean_series(n, "makespan")) > 0).all() for n in names
    )
    ok = mono and gmean <= 1.03
    out.append(
        f"STGA / best-heuristic makespan ratio per N: "
        f"{np.round(ratios, 3).tolist()} (geometric mean {gmean:.3f})."
    )
    out.append("")
    out.append(_verdict(
        ok,
        "monotone growth holds for every scheduler and the STGA "
        "leads or ties throughout; our margins (~1-3%) are smaller "
        "than the paper's ~6% — with the calibrated PSA load the "
        "instance is easy enough that Min-Min is near-optimal.",
    ))
    return "\n".join(out)


def _section_fig5(settings: RunSettings, scale: float) -> str:
    results = [
        stga_vs_conventional(
            scale=scale, settings=replace(settings, seed=s)
        )
        for s in _SEEDS
    ]
    stga_init = np.mean([r.stga_initial_mean for r in results])
    conv_init = np.mean([r.conventional_initial_mean for r in results])
    hit = np.mean([r.stga_history_hit_rate for r in results])
    ok = stga_init < conv_init and hit > 0
    return "\n".join([
        "## Figure 5 (concept) — STGA vs conventional GA",
        "",
        "*Paper:* the history-seeded STGA starts its evolution near "
        "the convergence point instead of from random chromosomes.",
        "",
        f"* mean initial-population fitness: STGA {stga_init:.4g} vs "
        f"conventional GA {conv_init:.4g}",
        f"* history-table hit rate: {hit:.1%}",
        f"* end-to-end makespan: STGA "
        f"{np.mean([r.stga.makespan for r in results]):.4g} vs "
        f"{np.mean([r.conventional.makespan for r in results]):.4g}",
        "",
        _verdict(ok, "seeding measurably improves the starting fitness "
                     "and the lookup table hits on the recurring "
                     "workload — the mechanism behind the 'time' "
                     "dimension works as described."),
    ])


def generate_report(
    *,
    scale: float = 0.05,
    settings: RunSettings | None = None,
) -> str:
    """Run every experiment and return the EXPERIMENTS.md content."""
    settings = settings if settings is not None else RunSettings(
        batch_interval=2000.0
    )
    defaults = PaperDefaults()
    nas = _nas_ensemble(settings, scale)
    header = "\n".join([
        "# EXPERIMENTS — paper vs measured",
        "",
        "Auto-generated by `python -m repro.experiments.report "
        f"--scale {scale}`.",
        "",
        f"Workload scale: **{scale}** of paper size "
        f"(NAS {int(defaults.nas_n_jobs * scale)} jobs, PSA base "
        f"{int(1000 * scale)}-{int(10000 * scale)} jobs); seeds "
        f"{_SEEDS}; engine settings: batch interval "
        f"{settings.batch_interval:g} s, λ = {settings.lam:g}, GA "
        f"{settings.ga.population_size}x{settings.ga.generations} "
        f"(flow_weight {settings.ga.flow_weight:g}). "
        "Absolute numbers are not comparable to the paper (different "
        "substrate, λ, and scale); the *shape* verdicts below are "
        "what the reproduction claims. See DESIGN.md §3-4 for every "
        "substitution and calibration.",
        "",
        "Set `REPRO_SCALE=1` (or `--scale 1.0`) for full paper-size "
        "runs.",
    ])
    sections = [
        header,
        _section_fig7a(settings, scale),
        _section_fig7b(settings, scale),
        _section_fig8(nas),
        _section_fig9(nas),
        _section_table2(nas),
        _section_fig10(settings, scale),
        _section_fig5(settings, scale),
    ]
    return "\n\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    """CLI: write the report to a file or stdout."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.report",
        description="Regenerate EXPERIMENTS.md (paper vs measured).",
    )
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("-o", "--output", default="-")
    parser.add_argument("--seed", type=int, default=2005)
    args = parser.parse_args(argv)
    if not (0 < args.scale <= 1.0):
        print("--scale must be in (0, 1]", file=sys.stderr)
        return 2
    settings = RunSettings(batch_interval=2000.0, seed=args.seed)
    text = generate_report(scale=args.scale, settings=settings)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
