"""The pluggable ``RunStore`` interface and the store-URI grammar.

A *run store* is anywhere run records live.  Two backends implement
this interface (see ``docs/STORE.md`` for the backend matrix):

* :class:`~repro.experiments.store.fs.FsRunStore` — the original
  ``runs/<timestamp>-<name>/`` directory registry.  Behaviour- and
  byte-preserving: records it writes are exactly what
  :func:`~repro.experiments.store.record.save_run` writes.
* :class:`~repro.experiments.store.sqlite.SqliteRunStore` — a
  schema-versioned, WAL-mode SQLite database with indexed metadata
  columns, so :meth:`RunStore.list` / :meth:`RunStore.find` are SQL
  queries instead of O(N) full-JSON directory scans.

Both speak the same wire format: the canonical ``run.json`` payload
text of :mod:`repro.experiments.store.record`.  The filesystem layout
doubles as the *interchange codec* — :meth:`RunStore.import_fs` /
:meth:`RunStore.export_fs` move records between any backend and a
plain directory, and the round trip reproduces ``run.json``
byte-for-byte (payload text is carried verbatim, never re-serialized;
``grid.csv`` is regenerated, it is a derived export).

Store URIs
----------
``open_store`` names a backend with a compact URI::

    fs:runs            # directory registry rooted at ./runs
    fs:/data/runs      # absolute roots work too
    sqlite:runs.db     # SQLite database file
    runs               # no scheme: fs, for compatibility

The CLI surfaces this as ``--store URI`` (``repro-grid runs list
--store sqlite:runs.db``; the ``runs`` subcommands default to the
``REPRO_STORE`` environment variable, then ``fs:runs``).

References
----------
Every saved run has a backend-assigned *ref* string
(:attr:`RunSummary.ref` / ``StoredRun.ref``): the record-directory
name for fs, the numeric row id for sqlite.  ``load``, ``delete`` and
``export_fs`` take a ref; for convenience both backends also resolve
a unique run *name* as a ref.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.store.record import StoredRun
from repro.experiments.sweep import SweepResult

__all__ = [
    "STORE_ENV",
    "RunSummary",
    "RunStore",
    "parse_store_uri",
    "open_store",
]

#: environment variable naming the default store URI for the CLI's
#: ``runs`` subcommands (e.g. ``REPRO_STORE=sqlite:runs.db``)
STORE_ENV = "REPRO_STORE"


@dataclass(frozen=True)
class RunSummary:
    """One run's indexed metadata — what ``list``/``find`` return.

    Deliberately payload-free: a summary answers "what runs exist"
    without deserializing each run's full report grid (the whole point
    of the SQL backend); follow up with :meth:`RunStore.load` for the
    reports themselves.
    """

    ref: str
    name: str
    created_at: str
    git_sha: str | None
    schema_version: int
    n_variants: int
    n_seeds: int
    n_schedulers: int

    def __str__(self) -> str:
        return (
            f"{self.ref}: {self.name!r} "
            f"({self.n_variants} variant(s) x {self.n_seeds} seed(s) x "
            f"{self.n_schedulers} scheduler(s)), saved {self.created_at}"
        )


class RunStore(ABC):
    """Abstract run persistence: save/load/list/find/delete plus the
    fs interchange codec.

    Implementations must uphold two contracts.  *Format*: a record is
    the canonical payload text of
    :mod:`repro.experiments.store.record`, carried verbatim —
    ``import_fs`` followed by ``export_fs`` reproduces ``run.json``
    byte-for-byte.  *Ordering*: ``list``/``find`` return summaries
    sorted oldest-first by ``created_at`` (ties broken by ref), so
    every backend lists the same registry in the same order.

    Stores are context managers; backends with real handles (sqlite)
    release them in :meth:`close`, the fs backend's is a no-op.
    """

    #: the URI this store was opened from (``fs:…`` / ``sqlite:…``)
    uri: str

    # -- persistence --------------------------------------------------

    @abstractmethod
    def save(
        self,
        result: SweepResult,
        *,
        name: str | None = None,
        ref: str | None = None,
        overwrite: bool = False,
        merged_from: Sequence[str] | None = None,
        manifest: dict | None = None,
    ) -> StoredRun:
        """Persist one sweep as a new run record; returns it reloaded
        (so ``.ref`` names the stored record).

        ``name`` labels the record (default: backend-chosen from the
        ref or ``"sweep"``).  ``ref`` pins the backend reference —
        e.g. a shard's fixed ``part-<i>`` directory — instead of a
        backend-assigned one; re-saving a pinned ref requires
        ``overwrite=True`` (backends that assign refs themselves never
        collide).  ``merged_from`` / ``manifest`` are the provenance
        keys of :func:`~repro.experiments.store.record.build_payload`.
        """

    @abstractmethod
    def load(self, ref: str) -> StoredRun:
        """The full record for ``ref`` (or a unique run name).

        Raises ``KeyError`` for an unknown ref, ``ValueError`` for an
        ambiguous name or an unreadable record.
        """

    @abstractmethod
    def payload(self, ref: str) -> str:
        """The verbatim canonical ``run.json`` payload text for
        ``ref`` — the bytes ``export_fs`` would write, without a
        filesystem round trip.  The service's result endpoint serves
        this directly so HTTP responses are byte-identical to
        ``repro-grid run`` records.  Raises like :meth:`load`.
        """

    @abstractmethod
    def delete(self, ref: str) -> None:
        """Remove one record permanently (``KeyError`` if absent)."""

    # -- queries ------------------------------------------------------

    @abstractmethod
    def list(self) -> list[RunSummary]:
        """Every run's summary, oldest first (see the ordering
        contract above)."""

    @abstractmethod
    def find(
        self,
        *,
        name: str | None = None,
        git_sha: str | None = None,
        variant: str | None = None,
        scheduler: str | None = None,
    ) -> list[RunSummary]:
        """Summaries matching every given filter, oldest first.

        ``name``/``git_sha`` match the run's metadata exactly;
        ``variant``/``scheduler`` select runs whose report grid
        contains that axis value.  No filters = :meth:`list`.
        """

    # -- the fs interchange codec -------------------------------------

    @abstractmethod
    def import_fs(self, run_dir: str | Path) -> StoredRun:
        """Ingest a filesystem run record (a ``run.json`` directory)
        into this store, payload text verbatim; returns the stored
        run with its new ref."""

    @abstractmethod
    def export_fs(self, ref: str, dest_dir: str | Path) -> Path:
        """Materialize one record as a filesystem run directory at
        ``dest_dir`` (``run.json`` byte-identical to what was
        imported/saved, ``grid.csv`` regenerated); returns the
        directory."""

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Release backend handles (no-op where there are none)."""

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parse_store_uri(uri: str) -> tuple[str, str]:
    """Split a store URI into ``(backend, path)``.

    ``fs:PATH`` and ``sqlite:PATH`` name the two backends; a bare path
    (no scheme) is the fs backend, keeping every pre-URI call site
    valid.  Unknown schemes raise ``ValueError`` — except single
    letters followed by a path separator, which are treated as paths
    so nothing resembling a Windows drive is misparsed.
    """
    scheme, sep, rest = uri.partition(":")
    if sep and scheme in ("fs", "sqlite"):
        if not rest:
            raise ValueError(
                f"store URI {uri!r} has no path after the scheme "
                f"(expected e.g. {scheme}:runs)"
            )
        return scheme, rest
    if sep and len(scheme) > 1:
        raise ValueError(
            f"unknown store backend {scheme!r} in {uri!r} "
            "(supported: fs:PATH, sqlite:PATH, or a bare fs path)"
        )
    if not uri:
        raise ValueError("empty store URI")
    return "fs", uri


def open_store(uri: str) -> RunStore:
    """Open the backend a store URI names (see :func:`parse_store_uri`).

    ``fs:`` roots may not exist yet (an empty registry); ``sqlite:``
    databases are created at schema head — and migrated forward when
    older — on open.
    """
    backend, path = parse_store_uri(uri)
    if backend == "fs":
        from repro.experiments.store.fs import FsRunStore

        return FsRunStore(path)
    from repro.experiments.store.sqlite import SqliteRunStore

    return SqliteRunStore(path)
