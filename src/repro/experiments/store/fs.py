"""``FsRunStore``: the directory registry behind the ``RunStore``
interface.

This is the original PR 1–5 on-disk format, unchanged byte for byte —
``runs/<timestamp>-<name>/`` directories holding ``run.json`` +
``grid.csv``, written by the codec functions of
:mod:`repro.experiments.store.record`.  The class adds nothing to the
format; it only adapts it to the interface so every call site (CLI,
dispatch, compare) can treat "a directory of runs" and "a SQLite
database of runs" interchangeably.  Refs are record-directory names
relative to the root (``20260728T093102Z-baseline``), and existing
registries written before the interface existed load as-is.
"""

from __future__ import annotations

import shutil
from collections.abc import Sequence
from pathlib import Path

from repro.experiments.store.base import RunStore, RunSummary
from repro.experiments.store.record import (
    RUN_JSON,
    StoredRun,
    load_run,
    new_run_dir,
    parse_payload,
    result_from_payload,
    save_run,
    write_record_text,
)
from repro.experiments.sweep import SweepResult
from repro.util.atomic import atomic_write_text

__all__ = ["FsRunStore"]


class FsRunStore(RunStore):
    """Run store over a plain directory of run records.

    The root need not exist (that is an empty registry, as with
    :func:`~repro.experiments.store.record.list_runs`); it is created
    on first save.  ``list``/``find`` are O(N full-JSON-parses)
    directory scans by construction — the SQL backend exists because
    of exactly that — and share ``list_runs``'s skip-and-report
    policy: a corrupt child record is skipped (collected in
    :attr:`skipped`, refreshed per scan), never fatal.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.uri = f"fs:{self.root}"
        #: ``(path, reason)`` casualties of the most recent scan
        self.skipped: list[tuple[Path, str]] = []

    def __repr__(self) -> str:
        return f"FsRunStore({str(self.root)!r})"

    # -- ref resolution -----------------------------------------------

    def _run_dir(self, ref: str) -> Path:
        """The record directory a ref names.

        A ref is a directory name under the root; a unique run *name*
        is accepted too (resolved by scanning), and a path that is
        itself a record directory passes through, so store-addressed
        and path-addressed call sites can share refs.
        """
        direct = self.root / ref
        if (direct / RUN_JSON).is_file():
            return direct
        as_path = Path(ref)
        # only a ref that *looks* like a path (has directory parts)
        # may resolve outside the root — a bare ref such as "part-1"
        # must never silently pick up a same-named CWD directory
        if as_path.parent != Path(".") and (as_path / RUN_JSON).is_file():
            return as_path
        matches = [s for s in self.list() if s.name == ref]
        if len(matches) > 1:
            raise ValueError(
                f"run name {ref!r} is ambiguous in {self.uri}: "
                f"{[m.ref for m in matches]} all carry it; use a ref"
            )
        if matches:
            return self.root / matches[0].ref
        raise KeyError(f"no run {ref!r} in {self.uri}")

    # -- persistence --------------------------------------------------

    def save(
        self,
        result: SweepResult,
        *,
        name: str | None = None,
        ref: str | None = None,
        overwrite: bool = False,
        merged_from: Sequence[str] | None = None,
        manifest: dict | None = None,
    ) -> StoredRun:
        if ref is not None:
            run_dir = self.root / ref
        else:
            # timestamped dir, uniquified: seconds resolution means
            # back-to-back saves of one name can land on one path
            run_dir = new_run_dir(self.root, name or "sweep")
            candidate, counter = run_dir, 2
            while (candidate / RUN_JSON).exists():
                candidate = run_dir.with_name(f"{run_dir.name}-{counter}")
                counter += 1
            run_dir = candidate
        save_run(
            result,
            run_dir,
            name=name,
            overwrite=overwrite or ref is None,
            merged_from=merged_from,
            manifest=manifest,
        )
        return self.load(run_dir.name)

    def load(self, ref: str) -> StoredRun:
        run_dir = self._run_dir(ref)
        stored = load_run(run_dir)
        return StoredRun(
            **{**stored.__dict__, "ref": run_dir.name}
        )

    def payload(self, ref: str) -> str:
        record = self._run_dir(ref) / RUN_JSON
        return record.read_text(encoding="utf-8")

    def delete(self, ref: str) -> None:
        run_dir = self._run_dir(ref)
        # _run_dir only resolves directories holding a run.json, so
        # this can never rmtree an arbitrary directory
        shutil.rmtree(run_dir)

    # -- queries ------------------------------------------------------

    def list(self) -> list[RunSummary]:
        self.skipped = []
        if not self.root.is_dir():
            return []
        out = []
        for child in sorted(self.root.iterdir()):
            record = child / RUN_JSON
            if not record.is_file():
                continue
            try:
                payload = parse_payload(
                    record.read_text(encoding="utf-8"), source=str(record)
                )
                out.append(_summary(child.name, payload))
            except (OSError, ValueError, KeyError, TypeError) as exc:
                self.skipped.append((child, str(exc)))
        return sorted(out, key=lambda s: (s.created_at, s.ref))

    def find(
        self,
        *,
        name: str | None = None,
        git_sha: str | None = None,
        variant: str | None = None,
        scheduler: str | None = None,
    ) -> list[RunSummary]:
        out = []
        for summary in self.list():
            if name is not None and summary.name != name:
                continue
            if git_sha is not None and summary.git_sha != git_sha:
                continue
            if variant is not None or scheduler is not None:
                # axis filters need the payload's report grid — the
                # full-parse cost the SQL backend's cell index avoids
                record = self.root / summary.ref / RUN_JSON
                payload = parse_payload(
                    record.read_text(encoding="utf-8"), source=str(record)
                )
                reports = payload["reports"]
                if variant is not None and variant not in reports:
                    continue
                if scheduler is not None and not any(
                    scheduler in per_sched for per_sched in reports.values()
                ):
                    continue
            out.append(summary)
        return out

    # -- the fs interchange codec -------------------------------------

    def import_fs(self, run_dir: str | Path) -> StoredRun:
        run_dir = Path(run_dir)
        record = run_dir / RUN_JSON
        if not record.is_file():
            raise FileNotFoundError(f"no run record at {record}")
        text = record.read_text(encoding="utf-8")
        parse_payload(text, source=str(record))  # validate before copying
        dest = self.root / run_dir.name
        counter = 2
        while (dest / RUN_JSON).exists():
            dest = self.root / f"{run_dir.name}-{counter}"
            counter += 1
        atomic_write_text(dest / RUN_JSON, text)
        grid = run_dir / "grid.csv"
        if grid.is_file():
            shutil.copyfile(grid, dest / "grid.csv")
        return self.load(dest.name)

    def export_fs(self, ref: str, dest_dir: str | Path) -> Path:
        record = self._run_dir(ref) / RUN_JSON
        text = record.read_text(encoding="utf-8")
        payload = parse_payload(text, source=str(record))
        return write_record_text(
            text, result_from_payload(payload), dest_dir
        )


def _summary(ref: str, payload: dict) -> RunSummary:
    reports = payload["reports"]
    first = next(iter(reports.values()), {})
    return RunSummary(
        ref=ref,
        name=payload["name"],
        created_at=payload["created_at"],
        git_sha=payload.get("git_sha"),
        schema_version=payload["schema_version"],
        n_variants=len(payload["variants"]),
        n_seeds=len(payload["seeds"]),
        n_schedulers=len(first),
    )
