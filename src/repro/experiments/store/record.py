"""The run-record codec: one run as a versioned ``run.json`` directory.

This module owns the *format* — how a
:class:`~repro.experiments.sweep.SweepResult` becomes a ``run.json``
payload and comes back bit-identically — and the plain-directory
registry functions built directly on it (:func:`save_run`,
:func:`load_run`, :func:`list_runs`).  Backends build on the same
codec: :class:`~repro.experiments.store.fs.FsRunStore` wraps these
functions, and :class:`~repro.experiments.store.sqlite.SqliteRunStore`
stores the exact payload text this module produces, so every backend
speaks one format (see :mod:`repro.experiments.store.base`).

Registry layout
---------------
A *registry* is any directory of run records; :func:`new_run_dir`
names records ``<root>/<UTC timestamp>-<name>/`` so a plain ``ls``
sorts chronologically::

    runs/
      20260728T093102Z-baseline/
        run.json     # the authoritative record (schema below)
        grid.csv     # flat per-seed export for pandas/spreadsheets
      20260728T110542Z-tuned-ga/
        ...

``repro-grid sweep --out DIR`` writes a record at exactly ``DIR``;
``repro-grid compare-runs A B`` diffs two records.  Run records are
also the transport of the shard/merge protocol
(:mod:`repro.experiments.dispatch`): each shard of a spec persists an
ordinary record on its host, and ``repro-grid merge`` unions them into
one record whose ``merged_from`` key names the parts.

run.json schema (``schema_version`` 1)
--------------------------------------
::

    {
      "schema_version": 1,
      "name":            str,          # record label
      "created_at":      str,          # ISO-8601 UTC wall-clock
      "git_sha":         str | null,   # HEAD at save time, if a repo
      "elapsed_seconds": float | null, # sweep wall-clock time
      "scale":           float,        # workload scale factor
      "seeds":           [int, ...],   # replication seeds, in order
      "settings": {                    # shared base RunSettings | null
        "batch_interval": float, "lam": float, "failure_point": str,
        "fallback": str, "seed": int,
        "ga": {<GAConfig fields>}
      },
      "variants": [                    # ScenarioVariant provenance
        {"name": str, "workload": "psa"|"nas", "n_jobs": int,
         "n_sites": int|null, "arrival_rate": float|null,
         "lam": float|null, "batch_interval": float|null,
         "n_training_jobs": int,
         "ga_overrides": [[<GAConfig field>, value], ...] | null}, ...
      ],
      "reports": {                     # grid of per-seed raw values
        <variant name>: {
          <scheduler name>: [<PerformanceReport.to_dict()>, ...]
          #                  one entry per seed, in ``seeds`` order
        }, ...
      },
      "merged_from": [str, ...],       # OPTIONAL: the partial records
      #  a merged run was assembled from (repro-grid merge); absent —
      #  not null — on directly-saved runs, so their payloads are
      #  unchanged.  Readers treat a missing key as "not a merge".
      "manifest": {                    # OPTIONAL: dispatch provenance
        "path": str,                   #  the manifest.json a resumed
        "spec_sha256": str             #  run was merged from, plus its
      }                                #  spec hash (repro-grid resume);
      #  absent on runs not produced through a manifest.
    }

Floats are serialized with ``repr`` round-tripping (the ``json``
module's default), so a reloaded run's summaries are *bit-identical*
to the in-memory ones.  ``grid.csv`` is a denormalized convenience
export (one row per variant x scheduler x seed, scalar report fields
only); ``run.json`` is the record of truth and the only file
:func:`load_run` reads.
"""

from __future__ import annotations

import csv
import io
import json
import subprocess
from collections.abc import Sequence
from dataclasses import asdict, dataclass, fields
from pathlib import Path

from repro.experiments.config import RunSettings
from repro.experiments.sweep import (
    ScenarioVariant,
    SweepResult,
)
from repro.metrics.report import PerformanceReport
from repro.util.atomic import atomic_write_text
from repro.util.clock import utc_now_iso, utc_timestamp

__all__ = [
    "SCHEMA_VERSION",
    "RUN_JSON",
    "GRID_CSV",
    "StoredRun",
    "build_payload",
    "payload_text",
    "parse_payload",
    "result_from_payload",
    "stored_run_from_payload",
    "write_record_text",
    "write_grid_csv",
    "new_run_dir",
    "save_run",
    "save_run_to_registry",
    "load_run",
    "list_runs",
]

SCHEMA_VERSION = 1

#: file names inside one run record
RUN_JSON = "run.json"
GRID_CSV = "grid.csv"

#: scalar PerformanceReport fields exported to grid.csv, in order
#: (scheduler is already a key column; the utilization array stays
#: JSON-only, its grid-wide mean is exported instead)
_CSV_REPORT_FIELDS = tuple(
    f.name
    for f in fields(PerformanceReport)
    if f.name not in ("scheduler", "site_utilization")
)


@dataclass(frozen=True)
class StoredRun:
    """One reloaded run record: metadata plus the sweep itself."""

    path: Path
    name: str
    created_at: str
    git_sha: str | None
    schema_version: int
    result: SweepResult
    #: source records of a ``repro-grid merge`` product; None when the
    #: run was saved directly from a sweep
    merged_from: tuple[str, ...] | None = None
    #: dispatch provenance of a manifest-tracked run (``repro-grid
    #: resume``): ``{"path": ..., "spec_sha256": ...}`` naming the
    #: manifest the record was merged from; None otherwise
    manifest: dict | None = None
    #: the reference a :class:`~repro.experiments.store.base.RunStore`
    #: resolves this run by (a record-directory name for the fs
    #: backend, a numeric row id for sqlite); None when the run was
    #: loaded directly from a path rather than through a store
    ref: str | None = None

    def __str__(self) -> str:
        label = self.ref if self.ref is not None else self.path.name
        return (
            f"{label}: {len(self.result.variants)} variant(s) x "
            f"{len(self.result.seeds)} seed(s), saved {self.created_at}"
        )


def _git_sha() -> str | None:
    """HEAD commit of the working directory's repo, or None."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _settings_to_dict(settings: RunSettings | None) -> dict | None:
    return None if settings is None else settings.to_dict()


def _settings_from_dict(data: dict | None) -> RunSettings | None:
    return None if data is None else RunSettings.from_dict(data)


def new_run_dir(root: str | Path, name: str = "sweep") -> Path:
    """Fresh registry path ``<root>/<UTC timestamp>-<name>`` (not created)."""
    return Path(root) / f"{utc_timestamp()}-{name}"


def build_payload(
    result: SweepResult,
    *,
    name: str,
    merged_from: Sequence[str] | None = None,
    manifest: dict | None = None,
) -> dict:
    """The ``run.json`` payload for one sweep (see the schema above).

    Stamps ``created_at`` and ``git_sha`` at call time; the optional
    provenance keys are added only when given, so directly-saved
    payloads stay byte-compatible with pre-provenance records.  Every
    backend funnels through here — this function *is* the write half
    of the format.
    """
    payload = {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "created_at": utc_now_iso(),
        "git_sha": _git_sha(),
        "elapsed_seconds": result.elapsed_seconds,
        "scale": result.scale,
        "seeds": list(result.seeds),
        "settings": _settings_to_dict(result.settings),
        "variants": [asdict(v) for v in result.variants],
        "reports": {
            vname: {
                sched: [rep.to_dict() for rep in reps]
                for sched, reps in per_sched.items()
            }
            for vname, per_sched in result.reports.items()
        },
    }
    if merged_from is not None:
        payload["merged_from"] = [str(p) for p in merged_from]
    if manifest is not None:
        unknown = sorted(set(manifest) - {"path", "spec_sha256"})
        if unknown:
            raise ValueError(
                f"manifest provenance allows keys path/spec_sha256, "
                f"got extra {unknown}"
            )
        payload["manifest"] = {k: str(v) for k, v in manifest.items()}
    return payload


def payload_text(payload: dict) -> str:
    """The canonical serialized form of a ``run.json`` payload.

    One fixed rendering (``indent=1`` + trailing newline) shared by
    every writer, so a record produced by any backend is byte-identical
    to one produced by :func:`save_run` from the same payload.
    """
    return json.dumps(payload, indent=1) + "\n"


def parse_payload(text: str, *, source: str = "run record") -> dict:
    """Parse and version-check serialized ``run.json`` text.

    Raises ``ValueError`` for anything that is not a supported-schema
    run payload: invalid JSON, a non-object document, an unsupported
    ``schema_version``.  Key order is preserved, so re-serializing the
    returned dict with :func:`payload_text` round-trips the bytes of
    any record this codec wrote.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{source}: corrupted or truncated run record "
            f"(not valid JSON: {exc})"
        ) from None
    if not isinstance(payload, dict):
        raise ValueError(
            f"{source}: not a run record (top level is "
            f"{type(payload).__name__}, expected an object)"
        )
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{source}: unsupported schema_version {version!r} "
            f"(this reader supports {SCHEMA_VERSION})"
        )
    return payload


def result_from_payload(payload: dict) -> SweepResult:
    """Rebuild the :class:`SweepResult` a payload records (the read
    half of the format; bit-identical to the sweep that was saved)."""
    return SweepResult(
        variants=tuple(
            ScenarioVariant(**v) for v in payload["variants"]
        ),
        seeds=tuple(int(s) for s in payload["seeds"]),
        reports={
            vname: {
                sched: tuple(
                    PerformanceReport.from_dict(d) for d in reps
                )
                for sched, reps in per_sched.items()
            }
            for vname, per_sched in payload["reports"].items()
        },
        settings=_settings_from_dict(payload.get("settings")),
        scale=payload.get("scale", 1.0),
        elapsed_seconds=payload.get("elapsed_seconds"),
    )


def stored_run_from_payload(
    payload: dict, *, path: Path, ref: str | None = None
) -> StoredRun:
    """Wrap a parsed payload as a :class:`StoredRun` (provenance
    fields surfaced, ``None`` where the optional keys are absent)."""
    merged_from = payload.get("merged_from")
    return StoredRun(
        path=path,
        name=payload["name"],
        created_at=payload["created_at"],
        git_sha=payload.get("git_sha"),
        schema_version=payload["schema_version"],
        result=result_from_payload(payload),
        merged_from=tuple(merged_from) if merged_from is not None else None,
        manifest=payload.get("manifest"),
        ref=ref,
    )


def save_run(
    result: SweepResult,
    run_dir: str | Path,
    *,
    name: str | None = None,
    overwrite: bool = False,
    merged_from: Sequence[str] | None = None,
    manifest: dict | None = None,
) -> Path:
    """Write one run record (``run.json`` + ``grid.csv``) at ``run_dir``.

    The directory is created (parents included).  An existing record
    is only replaced with ``overwrite=True``; ``name`` defaults to the
    directory's base name.  ``merged_from`` records the partial-run
    paths a :func:`repro.experiments.dispatch.merge_runs` product was
    assembled from; ``manifest`` the ``{"path", "spec_sha256"}`` of the
    run manifest a ``repro-grid resume`` merged through (both
    provenance only; omitted from the payload when ``None``).  Returns
    the record path.
    """
    run_dir = Path(run_dir)
    record = run_dir / RUN_JSON
    if record.exists() and not overwrite:
        raise FileExistsError(
            f"{record} already holds a run record (pass overwrite=True)"
        )
    payload = build_payload(
        result,
        name=name if name is not None else run_dir.name,
        merged_from=merged_from,
        manifest=manifest,
    )
    write_record_text(payload_text(payload), result, run_dir)
    return run_dir


def write_record_text(
    text: str, result: SweepResult, run_dir: str | Path
) -> Path:
    """Write serialized ``run.json`` text (verbatim) plus a fresh
    ``grid.csv`` at ``run_dir`` — the export half every backend shares.

    The text lands byte-for-byte as given; ``grid.csv`` is regenerated
    from ``result`` (it is a derived convenience export, never parsed
    back).  The directory is created, and both writes go through
    :func:`~repro.util.atomic.atomic_write_text` (temp file + atomic
    rename): a crash mid-save must never leave a truncated
    ``run.json`` behind a shard marked "done" (resume treats an
    unreadable record as work owed, but a clean snapshot is better
    than a redo).
    """
    run_dir = Path(run_dir)
    atomic_write_text(run_dir / RUN_JSON, text)
    write_grid_csv(result, run_dir / GRID_CSV)
    return run_dir


def write_grid_csv(result: SweepResult, path: Path) -> None:
    """Flat per-seed export: one row per (variant, scheduler, seed).

    Serialized in memory, then written atomically; ``newline=""``
    preserves the csv module's own ``\\r\\n`` terminators byte for
    byte.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ("variant", "scheduler", "seed")
        + _CSV_REPORT_FIELDS
        + ("mean_utilization",)
    )
    for variant in result.variants:
        for sched in result.schedulers():
            for seed, rep in zip(
                result.seeds, result.cell(variant.name, sched)
            ):
                writer.writerow(
                    [variant.name, sched, seed]
                    + [getattr(rep, f) for f in _CSV_REPORT_FIELDS]
                    + [rep.mean_utilization]
                )
    atomic_write_text(path, buffer.getvalue(), newline="")


def save_run_to_registry(
    result: SweepResult, root: str | Path = "runs", name: str = "sweep"
) -> Path:
    """Save under a fresh timestamped directory in registry ``root``.

    The timestamp has seconds resolution, so back-to-back saves of the
    same name can land on the same path; a numeric suffix keeps each
    record distinct instead of tripping save_run's overwrite guard.
    """
    run_dir = new_run_dir(root, name)
    candidate = run_dir
    counter = 2
    while (candidate / RUN_JSON).exists():
        candidate = run_dir.with_name(f"{run_dir.name}-{counter}")
        counter += 1
    return save_run(result, candidate, name=name)


def load_run(run_dir: str | Path) -> StoredRun:
    """Reload a run record; the sweep round-trips bit-identically.

    Only ``run.json`` is read (``grid.csv`` is a convenience export,
    never parsed back).  Unsupported ``schema_version`` values and
    corrupt payloads raise ``ValueError``; a missing record raises
    ``FileNotFoundError``.  Merge provenance (the optional
    ``merged_from`` and ``manifest`` keys) surfaces as
    :attr:`StoredRun.merged_from` / :attr:`StoredRun.manifest`,
    ``None`` for directly-saved runs.
    """
    run_dir = Path(run_dir)
    record = run_dir / RUN_JSON
    if not record.is_file():
        raise FileNotFoundError(f"no run record at {record}")
    payload = parse_payload(
        record.read_text(encoding="utf-8"), source=str(record)
    )
    return stored_run_from_payload(payload, path=run_dir)


def list_runs(
    root: str | Path = "runs", *, skipped: list | None = None
) -> list[StoredRun]:
    """All loadable run records directly under ``root``, oldest first.

    Sorted by recorded ``created_at`` (directory names from
    :func:`new_run_dir` agree with that order).  A missing registry
    directory is an empty registry, not an error.

    A child directory whose ``run.json`` is corrupt, truncated, or of
    an unsupported schema is *skipped*, never fatal — one bad record
    must not make the whole registry unlistable.  Pass a list as
    ``skipped`` to collect the casualties: one ``(path, reason)``
    tuple per skipped record, in scan order.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    runs = []
    for child in sorted(root.iterdir()):
        if not (child / RUN_JSON).is_file():
            continue
        try:
            runs.append(load_run(child))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            if skipped is not None:
                skipped.append((child, str(exc)))
    return sorted(runs, key=lambda run: run.created_at)
