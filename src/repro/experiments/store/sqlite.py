"""``SqliteRunStore``: run records in one schema-versioned SQLite file.

The point of this backend is *queryability at scale*: ``list``/``find``
over thousands of runs become indexed SQL instead of the fs backend's
O(N full-JSON-parses) directory scan.  The format does not change —
each run's canonical ``run.json`` payload text (see
:mod:`repro.experiments.store.record`) is stored verbatim in a TEXT
column and exported unchanged, so fs → sqlite → fs round-trips are
byte-identical and the database can become the default store with zero
format risk.

Schema versioning
-----------------
``PRAGMA user_version`` tracks the applied schema version against the
ordered in-repo :data:`MIGRATIONS` list (the fuzzbench
``database/models.py`` + alembic-tree pattern, inlined: stdlib only).
On open, missing migrations are applied in order, each inside its own
transaction, so a fresh file reaches schema head atomically and an
old database upgrades in place.  A file whose version is *newer* than
this code knows is refused outright — downgrading by guesswork could
destroy columns a newer tool depends on; upgrade the tool instead.

Concurrency
-----------
The database runs in WAL mode with a generous busy timeout and every
write inside ``BEGIN IMMEDIATE``, so concurrent saves from separate
processes serialize instead of failing — N writers produce N rows
(exercised by the two-process test in ``tests/test_store_backends.py``).
"""

from __future__ import annotations

import sqlite3
from collections.abc import Sequence
from pathlib import Path

from repro.experiments.store.base import RunStore, RunSummary
from repro.experiments.store.record import (
    StoredRun,
    build_payload,
    load_run,
    parse_payload,
    payload_text,
    result_from_payload,
    stored_run_from_payload,
    write_record_text,
)
from repro.experiments.sweep import SWEEP_METRICS, SweepResult

__all__ = ["MIGRATIONS", "SqliteRunStore", "apply_migrations"]

#: Ordered schema migrations; ``PRAGMA user_version`` == number applied.
#: Append-only: released entries are immutable history (edit one and
#: existing databases silently diverge from fresh ones).  Each entry is
#: ``(title, (statement, ...))`` and is applied in its own transaction.
MIGRATIONS: tuple[tuple[str, tuple[str, ...]], ...] = (
    (
        "runs table: verbatim payload text + indexed metadata",
        (
            """
            CREATE TABLE runs (
                id             INTEGER PRIMARY KEY AUTOINCREMENT,
                name           TEXT NOT NULL,
                created_at     TEXT NOT NULL,
                git_sha        TEXT,
                schema_version INTEGER NOT NULL,
                n_variants     INTEGER NOT NULL,
                n_seeds        INTEGER NOT NULL,
                n_schedulers   INTEGER NOT NULL,
                payload        TEXT NOT NULL
            )
            """,
            "CREATE INDEX runs_name ON runs (name)",
            "CREATE INDEX runs_created_at ON runs (created_at)",
            "CREATE INDEX runs_git_sha ON runs (git_sha)",
        ),
    ),
    (
        "cells table: per-seed metric values for axis queries",
        (
            """
            CREATE TABLE cells (
                run_id    INTEGER NOT NULL
                          REFERENCES runs (id) ON DELETE CASCADE,
                variant   TEXT NOT NULL,
                scheduler TEXT NOT NULL,
                metric    TEXT NOT NULL,
                seed      INTEGER NOT NULL,
                value     REAL
            )
            """,
            "CREATE INDEX cells_run_id ON cells (run_id)",
            "CREATE INDEX cells_axes ON cells (variant, scheduler, metric)",
        ),
    ),
    (
        "jobs table: the experiment service's persistent job queue",
        (
            """
            CREATE TABLE jobs (
                id          INTEGER PRIMARY KEY AUTOINCREMENT,
                name        TEXT NOT NULL,
                spec        TEXT NOT NULL,
                spec_sha256 TEXT NOT NULL,
                state       TEXT NOT NULL DEFAULT 'pending'
                            CHECK (state IN ('pending', 'running', 'done',
                                             'failed', 'cancelled')),
                created_at  TEXT NOT NULL,
                updated_at  TEXT NOT NULL,
                started_at  TEXT,
                finished_at TEXT,
                error       TEXT,
                run_ref     TEXT
            )
            """,
            "CREATE INDEX jobs_state ON jobs (state, id)",
        ),
    ),
)


def apply_migrations(conn: sqlite3.Connection, path: str | Path) -> None:
    """Bring ``conn``'s database to schema head (refusing newer files).

    The shared schema-lifecycle routine: :class:`SqliteRunStore` runs
    it on open, and :class:`repro.service.queue.JobQueue` runs it on
    its own connection so a service-only open of a fresh database still
    creates every table.  Each missing migration applies inside its own
    ``BEGIN IMMEDIATE`` transaction with an under-lock version re-check,
    so two processes racing to migrate one file serialize — the loser
    finds the winner's work already applied.  ``path`` is used only for
    diagnostics.
    """
    (version,) = conn.execute("PRAGMA user_version").fetchone()
    if version > len(MIGRATIONS):
        raise ValueError(
            f"{path} is at store schema version {version}, but "
            f"this tool only knows versions up to {len(MIGRATIONS)}: "
            "a newer tool is required (refusing to downgrade)"
        )
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA busy_timeout=15000")
    conn.execute("PRAGMA foreign_keys=ON")
    for number, (title, statements) in enumerate(MIGRATIONS, start=1):
        if number <= version:
            continue
        conn.execute("BEGIN IMMEDIATE")
        try:
            # two processes can race to migrate a fresh database;
            # BEGIN IMMEDIATE serializes them, so re-check the
            # version under the write lock — the loser just finds
            # the winner's work already applied
            (current,) = conn.execute("PRAGMA user_version").fetchone()
            if current >= number:
                conn.execute("COMMIT")
                continue
            for statement in statements:
                conn.execute(statement)
            # user_version lives in the database header and is
            # journaled, so the bump commits with the DDL or not
            # at all
            # repro: allow[Q1] -- PRAGMA accepts no ? parameters; number is the migration index from enumerate(), never user input
            conn.execute(f"PRAGMA user_version={number}")
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise


class SqliteRunStore(RunStore):
    """Run store over one SQLite database file (created on open).

    Refs are row ids rendered as strings (``"1"``, ``"2"``, …); as
    with the fs backend, a unique run *name* also resolves.  The
    ``runs`` table is the source of truth (payload text verbatim);
    ``cells`` is a derived per-seed metric index rebuilt on every save,
    which is what lets ``find(variant=..., scheduler=...)`` — and a
    future ``find_regressions`` push-down — run without touching a
    single payload.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.uri = f"sqlite:{self.path}"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # autocommit mode: transactions are explicit BEGIN IMMEDIATE
        # blocks, never implicit ones the driver opens behind our back
        self._conn = sqlite3.connect(self.path, isolation_level=None)
        try:
            self._migrate()
        except BaseException:
            self._conn.close()
            raise

    def __repr__(self) -> str:
        return f"SqliteRunStore({str(self.path)!r})"

    def close(self) -> None:
        self._conn.close()

    # -- schema lifecycle ---------------------------------------------

    def _migrate(self) -> None:
        """Bring the database to schema head (refusing newer files)."""
        apply_migrations(self._conn, self.path)

    # -- ref resolution -----------------------------------------------

    def _row_id(self, ref: str) -> int:
        """The ``runs.id`` a ref (row id or unique run name) names."""
        try:
            row_id = int(ref)
        except (TypeError, ValueError):
            ids = [
                r[0]
                for r in self._conn.execute(
                    "SELECT id FROM runs WHERE name = ? ORDER BY id",
                    (ref,),
                )
            ]
            if len(ids) > 1:
                raise ValueError(
                    f"run name {ref!r} is ambiguous in {self.uri}: "
                    f"rows {ids} all carry it; use a ref"
                )
            if ids:
                return ids[0]
            raise KeyError(f"no run {ref!r} in {self.uri}")
        row = self._conn.execute(
            "SELECT id FROM runs WHERE id = ?", (row_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no run {ref!r} in {self.uri}")
        return row_id

    # -- persistence --------------------------------------------------

    def save(
        self,
        result: SweepResult,
        *,
        name: str | None = None,
        ref: str | None = None,
        overwrite: bool = False,
        merged_from: Sequence[str] | None = None,
        manifest: dict | None = None,
    ) -> StoredRun:
        payload = build_payload(
            result,
            name=name if name is not None else "sweep",
            merged_from=merged_from,
            manifest=manifest,
        )
        row_id = None
        if ref is not None:
            try:
                row_id = int(ref)
            except (TypeError, ValueError):
                raise ValueError(
                    f"sqlite store refs are row ids, got {ref!r}"
                ) from None
        stored_id = self._insert(
            payload_text(payload), payload, row_id=row_id, overwrite=overwrite
        )
        return self.load(str(stored_id))

    def _insert(
        self,
        text: str,
        payload: dict,
        *,
        row_id: int | None = None,
        overwrite: bool = False,
    ) -> int:
        reports = payload["reports"]
        first = next(iter(reports.values()), {})
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            if row_id is not None:
                exists = self._conn.execute(
                    "SELECT 1 FROM runs WHERE id = ?", (row_id,)
                ).fetchone()
                if exists and not overwrite:
                    raise FileExistsError(
                        f"run {row_id} already exists in {self.uri} "
                        "(pass overwrite=True)"
                    )
                self._conn.execute(
                    "DELETE FROM cells WHERE run_id = ?", (row_id,)
                )
                self._conn.execute(
                    "DELETE FROM runs WHERE id = ?", (row_id,)
                )
            cursor = self._conn.execute(
                """
                INSERT INTO runs (id, name, created_at, git_sha,
                                  schema_version, n_variants, n_seeds,
                                  n_schedulers, payload)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    row_id,
                    payload["name"],
                    payload["created_at"],
                    payload.get("git_sha"),
                    payload["schema_version"],
                    len(payload["variants"]),
                    len(payload["seeds"]),
                    len(first),
                    text,
                ),
            )
            stored_id = row_id if row_id is not None else cursor.lastrowid
            self._conn.executemany(
                """
                INSERT INTO cells (run_id, variant, scheduler, metric,
                                   seed, value)
                VALUES (?, ?, ?, ?, ?, ?)
                """,
                _cell_rows(stored_id, payload),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return stored_id

    def load(self, ref: str) -> StoredRun:
        row_id = self._row_id(ref)
        (text,) = self._conn.execute(
            "SELECT payload FROM runs WHERE id = ?", (row_id,)
        ).fetchone()
        payload = parse_payload(text, source=f"{self.uri}#{row_id}")
        return stored_run_from_payload(
            payload, path=self.path, ref=str(row_id)
        )

    def payload(self, ref: str) -> str:
        row_id = self._row_id(ref)
        (text,) = self._conn.execute(
            "SELECT payload FROM runs WHERE id = ?", (row_id,)
        ).fetchone()
        return text

    def delete(self, ref: str) -> None:
        row_id = self._row_id(ref)
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute(
                "DELETE FROM cells WHERE run_id = ?", (row_id,)
            )
            self._conn.execute("DELETE FROM runs WHERE id = ?", (row_id,))
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    # -- queries ------------------------------------------------------

    _SUMMARY_COLUMNS = (
        "id, name, created_at, git_sha, schema_version, "
        "n_variants, n_seeds, n_schedulers"
    )
    #: ``list()``'s whole statement, composed once at class-body time
    #: from the constants above so the query itself is static
    _LIST_SQL = (
        f"SELECT {_SUMMARY_COLUMNS} FROM runs ORDER BY created_at, id"
    )

    def list(self) -> list[RunSummary]:
        rows = self._conn.execute(self._LIST_SQL)
        return [_summary(row) for row in rows]

    def find(
        self,
        *,
        name: str | None = None,
        git_sha: str | None = None,
        variant: str | None = None,
        scheduler: str | None = None,
    ) -> list[RunSummary]:
        clauses, params = [], []
        if name is not None:
            clauses.append("name = ?")
            params.append(name)
        if git_sha is not None:
            clauses.append("git_sha = ?")
            params.append(git_sha)
        for column, value in (("variant", variant), ("scheduler", scheduler)):
            if value is not None:
                clauses.append(
                    "EXISTS (SELECT 1 FROM cells "
                    f"WHERE cells.run_id = runs.id AND cells.{column} = ?)"
                )
                params.append(value)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        # repro: allow[Q1] -- WHERE is joined from the fixed fragments above; every value rides a ? parameter
        rows = self._conn.execute(
            f"SELECT {self._SUMMARY_COLUMNS} FROM runs {where} "
            "ORDER BY created_at, id",
            params,
        )
        return [_summary(row) for row in rows]

    # -- the fs interchange codec -------------------------------------

    def import_fs(self, run_dir: str | Path) -> StoredRun:
        run_dir = Path(run_dir)
        # load_run gives FileNotFoundError/ValueError vetting for free,
        # but the stored text must be the file's bytes, not a re-dump
        load_run(run_dir)
        text = (run_dir / "run.json").read_text(encoding="utf-8")
        payload = parse_payload(text, source=str(run_dir / "run.json"))
        return self.load(str(self._insert(text, payload)))

    def export_fs(self, ref: str, dest_dir: str | Path) -> Path:
        row_id = self._row_id(ref)
        (text,) = self._conn.execute(
            "SELECT payload FROM runs WHERE id = ?", (row_id,)
        ).fetchone()
        payload = parse_payload(text, source=f"{self.uri}#{row_id}")
        return write_record_text(
            text, result_from_payload(payload), dest_dir
        )


def _cell_rows(run_id: int, payload: dict):
    """Per-seed metric rows for the ``cells`` index of one payload."""
    seeds = payload["seeds"]
    for variant, per_sched in payload["reports"].items():
        for scheduler, reports in per_sched.items():
            for seed, report in zip(seeds, reports):
                for metric in SWEEP_METRICS:
                    yield (
                        run_id,
                        variant,
                        scheduler,
                        metric,
                        seed,
                        report.get(metric),
                    )


def _summary(row: tuple) -> RunSummary:
    (
        row_id,
        name,
        created_at,
        git_sha,
        schema_version,
        n_variants,
        n_seeds,
        n_schedulers,
    ) = row
    return RunSummary(
        ref=str(row_id),
        name=name,
        created_at=created_at,
        git_sha=git_sha,
        schema_version=schema_version,
        n_variants=n_variants,
        n_seeds=n_seeds,
        n_schedulers=n_schedulers,
    )
