"""Pluggable run persistence: one codec, two backends.

This package replaces the single-backend ``store.py`` module with a
layered store:

* :mod:`~repro.experiments.store.record` — the ``run.json`` codec and
  the plain-directory registry functions (``save_run`` / ``load_run``
  / ``list_runs``), byte-compatible with every record written since
  PR 1.
* :mod:`~repro.experiments.store.base` — the :class:`RunStore`
  interface, :class:`RunSummary`, and the ``fs:`` / ``sqlite:``
  store-URI grammar (:func:`open_store`).
* :mod:`~repro.experiments.store.fs` /
  :mod:`~repro.experiments.store.sqlite` — the two backends:
  the directory registry (now also the import/export codec) and the
  schema-versioned, WAL-mode SQLite database.
* :mod:`~repro.experiments.store.compare` — cross-run diffing and the
  regression gate, backend-agnostic.

Every name the old flat module exported is re-exported here, so
``from repro.experiments.store import save_run`` keeps working
unchanged.  See ``docs/STORE.md`` for the backend matrix and
guarantees.
"""

from repro.experiments.store.base import (
    STORE_ENV,
    RunStore,
    RunSummary,
    open_store,
    parse_store_uri,
)
from repro.experiments.store.compare import (
    GATE_METRICS,
    as_result,
    compare_runs,
    find_regressions,
)
from repro.experiments.store.fs import FsRunStore
from repro.experiments.store.record import (
    GRID_CSV,
    RUN_JSON,
    SCHEMA_VERSION,
    StoredRun,
    build_payload,
    list_runs,
    load_run,
    new_run_dir,
    parse_payload,
    payload_text,
    result_from_payload,
    save_run,
    save_run_to_registry,
    stored_run_from_payload,
    write_grid_csv,
    write_record_text,
)
from repro.experiments.store.sqlite import MIGRATIONS, SqliteRunStore

__all__ = [
    # interface + URI grammar
    "STORE_ENV",
    "RunStore",
    "RunSummary",
    "open_store",
    "parse_store_uri",
    # backends
    "FsRunStore",
    "SqliteRunStore",
    "MIGRATIONS",
    # codec + directory registry
    "SCHEMA_VERSION",
    "RUN_JSON",
    "GRID_CSV",
    "StoredRun",
    "build_payload",
    "payload_text",
    "parse_payload",
    "result_from_payload",
    "stored_run_from_payload",
    "write_record_text",
    "write_grid_csv",
    "new_run_dir",
    "save_run",
    "save_run_to_registry",
    "load_run",
    "list_runs",
    # comparison + regression gate
    "GATE_METRICS",
    "as_result",
    "compare_runs",
    "find_regressions",
]
