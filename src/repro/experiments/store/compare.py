"""Cross-run comparison: diff two stored runs cell by cell.

Built purely on the codec (any two records that load can be compared,
whichever backend they live in): each (variant, scheduler, metric)
cell is summarised to mean ± Student-t 95 %-CI per side and judged
``same`` / ``overlap`` / ``diverged``; :func:`find_regressions` turns
those rows into the ``--fail-on-regression`` gate.

Run arguments accept one more form than before the store layer: with
a ``store=`` keyword, a string is first resolved as a store ref, so
``repro-grid compare-runs`` can name runs living in a SQLite store as
easily as record directories.
"""

from __future__ import annotations

from repro.experiments.store.base import RunStore
from repro.experiments.store.record import StoredRun, load_run
from repro.experiments.sweep import SWEEP_METRICS, SweepResult
from repro.metrics.compare import RunDiffRow

__all__ = [
    "GATE_METRICS",
    "as_result",
    "compare_runs",
    "find_regressions",
]


def as_result(run, *, store: RunStore | None = None) -> SweepResult:
    """Coerce a run argument to its :class:`SweepResult`.

    Accepts an in-memory :class:`SweepResult` (returned as-is), a
    :class:`StoredRun`, or a run reference — the argument contract
    shared by :func:`compare_runs` and
    :func:`repro.experiments.dispatch.merge_runs`.  A reference is a
    record path (loaded via
    :func:`~repro.experiments.store.record.load_run`); with ``store``
    given it is resolved through :meth:`RunStore.load` first, falling
    back to a plain path only if the store does not know the ref.
    """
    if isinstance(run, SweepResult):
        return run
    if isinstance(run, StoredRun):
        return run.result
    if store is not None:
        try:
            return store.load(str(run)).result
        except KeyError as unknown_ref:
            # not a ref in this store; try it as a path — but if that
            # misses too, the store's message ("no run '99' in
            # sqlite:runs.db") beats a baffling "99/run.json" path
            try:
                return load_run(run).result
            except FileNotFoundError:
                raise FileNotFoundError(unknown_ref.args[0]) from None
    return load_run(run).result


def compare_runs(
    run_a,
    run_b,
    *,
    metrics: tuple[str, ...] = SWEEP_METRICS,
    store: RunStore | None = None,
) -> list[RunDiffRow]:
    """Diff two runs per (variant, scheduler, metric) cell.

    ``run_a`` / ``run_b`` may be record paths, store refs (when
    ``store`` is given), :class:`StoredRun` or in-memory
    :class:`SweepResult` objects.  Cells present in both runs are
    compared (in run A's order): each side is summarised to mean ±
    Student-t 95 %-CI across its seeds, and the verdict is

    * ``"same"``      — identical per-seed values;
    * ``"overlap"``   — the two CIs overlap (shift within noise);
    * ``"diverged"``  — disjoint CIs, a statistically visible shift.

    Raises if the runs share no (variant, scheduler) cell at all.
    """
    a = as_result(run_a, store=store)
    b = as_result(run_b, store=store)
    rows: list[RunDiffRow] = []
    for variant in a.variants:
        if variant.name not in b.reports:
            continue
        for sched in a.schedulers():
            if sched not in b.reports[variant.name]:
                continue
            for metric in metrics:
                sa = a.summary(variant.name, sched, metric)
                sb = b.summary(variant.name, sched, metric)
                if sa.values == sb.values:
                    verdict = "same"
                elif abs(sb.mean - sa.mean) <= sa.ci95 + sb.ci95:
                    verdict = "overlap"
                else:
                    verdict = "diverged"
                rows.append(
                    RunDiffRow(
                        variant=variant.name,
                        scheduler=sched,
                        metric=metric,
                        mean_a=sa.mean,
                        ci_a=sa.ci95,
                        n_a=sa.n,
                        mean_b=sb.mean,
                        ci_b=sb.ci95,
                        n_b=sb.n,
                        verdict=verdict,
                    )
                )
    if not rows:
        raise ValueError(
            "the two runs share no (variant, scheduler) cell to compare"
        )
    return rows


#: metrics the regression gate judges — every sweep metric where a
#: larger value is unambiguously worse.  N_risk is deliberately
#: excluded: more risk-taking is the paper's *expected* behaviour for
#: the risky modes, not a quality regression.
GATE_METRICS = ("makespan", "avg_response_time", "slowdown_ratio", "n_fail")


def find_regressions(
    rows,
    *,
    threshold_pct: float = 5.0,
    metrics: tuple[str, ...] = GATE_METRICS,
) -> list[RunDiffRow]:
    """Cells where run B is statistically, materially worse than A.

    A cell regresses when all three hold: the metric is one the gate
    judges (larger = worse), the CIs are disjoint (verdict
    ``"diverged"`` — the shift is outside replication noise), and the
    mean rose by more than ``threshold_pct`` percent of the baseline
    (any rise counts when the baseline mean is 0, e.g. N_fail going
    0 -> 5).  Used by ``repro-grid compare-runs --fail-on-regression``.
    """
    if threshold_pct < 0:
        raise ValueError(
            f"threshold_pct must be >= 0, got {threshold_pct}"
        )
    out = []
    for r in rows:
        if r.metric not in metrics or r.verdict != "diverged":
            continue
        if r.mean_b <= r.mean_a:
            continue  # improved or unchanged
        if r.mean_a == 0 or r.shift_pct > threshold_pct:
            out.append(r)
    return out
