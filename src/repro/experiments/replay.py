"""Record whole experiment cells as grid traces, and replay them.

One sweep *cell* — a (variant, seed, scheduler-ref) triple — is the
smallest unit the paper reproduction re-runs when a number looks
wrong.  :func:`record_cell` executes one cell exactly the way
:func:`~repro.experiments.sweep.run_sweep` would (same settings
layering, same ``RngFactory`` streams) while logging every dispatch
into an :class:`~repro.grid.trace.AttemptLog`, and packages the whole
run — grid, jobs, dynamic timeline, attempt stream, and enough
metadata to rebuild the cell — as a :class:`~repro.grid.trace.GridTrace`.

:func:`replay_trace` is the inverse: it rebuilds the variant and
settings from the trace metadata, re-executes the cell, and checks the
re-run against the recording *bit for bit* — same scenario, same
attempt stream, same :class:`~repro.metrics.report.PerformanceReport`
(modulo ``scheduler_seconds``, which is wall-clock).  A clean replay is
the strongest determinism evidence the harness produces; a mismatch
means the code, the environment, or the trace changed.

``repro-grid replay TRACE.jsonl`` wires this into the CLI;
``repro-grid sweep --record-traces DIR`` records every cell of a sweep,
and :func:`record_sweep` is the library form (it also returns the
assembled :class:`~repro.experiments.sweep.SweepResult`, bit-identical
to :func:`run_sweep` over the same grid).
"""

from __future__ import annotations

import re
import time
from collections.abc import Sequence
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.experiments.config import PaperDefaults, RunSettings
from repro.experiments.runner import (
    PAPER_LINEUP,
    reports_by_name,
    simulate_scheduler,
)
from repro.experiments.sweep import ScenarioVariant, SweepResult
from repro.grid.trace import GridTrace, load_trace, save_trace
from repro.metrics.report import PerformanceReport, evaluate
from repro.registry import bind_scheduler
from repro.util.rng import RngFactory

__all__ = [
    "trace_slug",
    "trace_filename",
    "record_cell",
    "record_sweep",
    "ReplayOutcome",
    "replay_trace",
    "replay_result",
]


def trace_slug(text: str) -> str:
    """Filename-safe slug of a variant name or scheduler ref."""
    slug = re.sub(r"[^a-z0-9._-]+", "-", str(text).lower()).strip("-")
    return slug or "x"


def trace_filename(variant_name: str, seed: int, ref: str) -> str:
    """Canonical trace filename for one recorded cell."""
    return f"{trace_slug(variant_name)}--s{int(seed)}--{trace_slug(ref)}.jsonl"


def _scenario_for_replay(variant: ScenarioVariant, seed: int, scale: float):
    """(scenario, training) via the workload registry — the scenario
    construction :func:`~repro.experiments.sweep.run_sweep` workers use."""
    return variant.build_scenarios(seed, scale)


def record_cell(
    variant: ScenarioVariant,
    seed: int,
    ref: str,
    *,
    settings: RunSettings = RunSettings(),
    scale: float = 1.0,
    defaults: PaperDefaults = PaperDefaults(),
) -> tuple[GridTrace, PerformanceReport]:
    """Execute one (variant, seed, scheduler-ref) cell, recording it.

    Mirrors the sweep worker stream for stream: per-cell settings via
    :meth:`ScenarioVariant.settings_for`, scenario construction through
    the workload registry, the scheduler bound with
    ``RngFactory(cell_settings.seed)``, and the engine failure stream
    seeded from the same settings — so the returned report is
    bit-identical (modulo ``scheduler_seconds``) to the matching
    :func:`~repro.experiments.sweep.run_sweep` cell.

    The trace ``meta`` carries everything :func:`replay_trace` needs to
    rebuild the cell — the *base* settings (the variant re-layers its
    overrides on replay), the variant, seed, scale, scheduler ref, and
    the recorded report.
    """
    cell_settings = variant.settings_for(settings, seed)
    scenario, training = _scenario_for_replay(variant, seed, scale)
    scheduler = bind_scheduler(
        ref,
        cell_settings,
        RngFactory(cell_settings.seed),
        scenario=scenario,
        training=training,
        defaults=defaults,
        ga_config=None,
    )
    result = simulate_scheduler(
        scenario, scheduler, cell_settings, record_attempts=True
    )
    report = evaluate(result, scheduler.name)
    meta = {
        "name": scenario.name,
        "scheduler": ref,
        "seed": int(seed),
        "scale": float(scale),
        "settings": settings.to_dict(),
        "variant": asdict(variant),
        "report": report.to_dict(),
    }
    trace = GridTrace(
        meta=meta,
        grid=scenario.grid,
        jobs=scenario.jobs,
        timeline=getattr(scenario, "timeline", None),
        attempts=result.attempts,
    )
    return trace, report


def record_sweep(
    variants: Sequence[ScenarioVariant],
    seeds: Sequence[int],
    out_dir: str | Path,
    *,
    settings: RunSettings = RunSettings(),
    scale: float = 1.0,
    defaults: PaperDefaults = PaperDefaults(),
    lineup: Sequence[str] | None = None,
    include_stga: bool = True,
) -> tuple[SweepResult, list[Path]]:
    """Record every cell of a sweep grid as one trace file each.

    Runs the (variant x seed x ref) grid sequentially (recording is a
    forensic mode, not a throughput mode), writes one
    ``<variant>--s<seed>--<ref>.jsonl`` per cell under ``out_dir``, and
    assembles the reports into a :class:`SweepResult` bit-identical to
    :func:`~repro.experiments.sweep.run_sweep` over the same grid.
    """
    variants = tuple(variants)
    seeds = tuple(int(s) for s in seeds)
    if not variants:
        raise ValueError("need at least one scenario variant")
    if not seeds:
        raise ValueError("need at least one replication seed")
    refs = (
        tuple(lineup)
        if lineup is not None
        else (PAPER_LINEUP if include_stga else PAPER_LINEUP[:-1])
    )
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    started = time.perf_counter()
    paths: list[Path] = []
    reports: dict[str, dict[str, list[PerformanceReport]]] = {}
    for variant in variants:
        per_sched = reports.setdefault(variant.name, {})
        for seed in seeds:
            lineup_reports = []
            for ref in refs:
                trace, report = record_cell(
                    variant,
                    seed,
                    ref,
                    settings=settings,
                    scale=scale,
                    defaults=defaults,
                )
                paths.append(
                    save_trace(
                        out_dir / trace_filename(variant.name, seed, ref),
                        trace,
                    )
                )
                lineup_reports.append(report)
            for sched_name, rep in reports_by_name(lineup_reports).items():
                per_sched.setdefault(sched_name, []).append(rep)
    elapsed = time.perf_counter() - started

    result = SweepResult(
        variants=variants,
        seeds=seeds,
        reports={
            vname: {s: tuple(reps) for s, reps in per_sched.items()}
            for vname, per_sched in reports.items()
        },
        settings=settings,
        scale=scale,
        elapsed_seconds=elapsed,
    )
    return result, paths


@dataclass(frozen=True)
class ReplayOutcome:
    """The verdict of one trace replay.

    ``mismatches`` lists every aspect where the re-execution diverged
    from the recording; an empty tuple means the replay was
    bit-identical.  ``report`` is the *re-executed* report (what the
    current code produces), ``recorded_report`` the one stored in the
    trace metadata.
    """

    path: Path
    variant: ScenarioVariant
    seed: int
    ref: str
    settings: RunSettings
    scale: float
    report: PerformanceReport
    recorded_report: PerformanceReport
    mismatches: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True when the replay reproduced the recording exactly."""
        return not self.mismatches


def _reports_equal(a: PerformanceReport, b: PerformanceReport) -> bool:
    """Deterministic-field equality (``scheduler_seconds`` is wall-clock)."""
    return replace(a, scheduler_seconds=0.0) == replace(
        b, scheduler_seconds=0.0
    )


def replay_trace(
    path: str | Path,
    *,
    defaults: PaperDefaults = PaperDefaults(),
) -> ReplayOutcome:
    """Re-execute a recorded cell and diff it against the recording.

    The trace metadata pins the cell — base settings, variant, seed,
    scale, scheduler ref — so the replay rebuilds the exact experiment
    and runs it through the same streams as :func:`record_cell`.  The
    outcome's ``mismatches`` names any divergence: the regenerated
    scenario (grid / jobs / timeline), the attempt stream, or the
    performance report.  All three identical is the bit-identity
    guarantee ``repro-grid replay`` checks.

    Raises ``ValueError`` for traces without replayable metadata
    (e.g. hand-built ones that never went through :func:`record_cell`).
    """
    path = Path(path)
    trace = load_trace(path)
    meta = trace.meta
    missing = [
        k
        for k in ("scheduler", "seed", "scale", "settings", "variant")
        if k not in meta
    ]
    if missing:
        raise ValueError(
            f"{path} is not replayable: meta lacks {missing} "
            "(was it recorded by record_cell?)"
        )
    variant = ScenarioVariant(**meta["variant"])
    settings = RunSettings.from_dict(meta["settings"])
    seed = int(meta["seed"])
    scale = float(meta["scale"])
    ref = str(meta["scheduler"])
    recorded_report = PerformanceReport.from_dict(meta["report"])

    replayed, report = record_cell(
        variant, seed, ref, settings=settings, scale=scale, defaults=defaults
    )

    mismatches: list[str] = []
    if replayed.grid != trace.grid:
        mismatches.append("grid differs from the recording")
    if replayed.jobs != trace.jobs:
        mismatches.append("job stream differs from the recording")
    if replayed.timeline != trace.timeline:
        mismatches.append("dynamic timeline differs from the recording")
    recorded_attempts = (
        trace.attempts.attempts if trace.attempts is not None else []
    )
    replayed_attempts = (
        replayed.attempts.attempts if replayed.attempts is not None else []
    )
    if replayed_attempts != recorded_attempts:
        mismatches.append(
            f"attempt stream differs ({len(replayed_attempts)} replayed "
            f"vs {len(recorded_attempts)} recorded attempts)"
        )
    if not _reports_equal(report, recorded_report):
        mismatches.append("performance report differs from the recording")
    return ReplayOutcome(
        path=path,
        variant=variant,
        seed=seed,
        ref=ref,
        settings=settings,
        scale=scale,
        report=report,
        recorded_report=recorded_report,
        mismatches=tuple(mismatches),
    )


def replay_result(outcomes: Sequence[ReplayOutcome]) -> SweepResult:
    """Assemble replayed cells into one :class:`SweepResult`.

    The inverse of :func:`record_sweep`'s fan-out: replaying every
    trace of a recorded sweep and assembling the outcomes yields a run
    whose payload is bit-identical (modulo wall-clock provenance) to
    the original — which is what lets ``repro-grid compare-runs
    --threshold 0`` gate on a replay.  The replayed (variant, seed)
    cells must tile a complete grid (a full trace directory, a single
    cell, or any rectangular subset); ragged subsets raise.
    """
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("need at least one replay outcome")
    settings = outcomes[0].settings
    scale = outcomes[0].scale
    for o in outcomes[1:]:
        if o.settings != settings or o.scale != scale:
            raise ValueError(
                "replayed traces disagree on base settings or scale; "
                "assemble one recorded sweep at a time"
            )
    variants_by_name: dict[str, ScenarioVariant] = {}
    order: list[str] = []
    cells: dict[tuple[str, str, int], PerformanceReport] = {}
    seed_set: set[int] = set()
    for o in outcomes:
        seen = variants_by_name.get(o.variant.name)
        if seen is None:
            variants_by_name[o.variant.name] = o.variant
            order.append(o.variant.name)
        elif seen != o.variant:
            raise ValueError(
                f"replayed traces disagree on variant {o.variant.name!r}"
            )
        key = (o.variant.name, o.report.scheduler, o.seed)
        if key in cells:
            raise ValueError(f"duplicate replayed cell {key}")
        cells[key] = o.report
        seed_set.add(o.seed)
    seeds = tuple(sorted(seed_set))
    scheds_by_variant = {
        vname: list(
            dict.fromkeys(
                o.report.scheduler
                for o in outcomes
                if o.variant.name == vname
            )
        )
        for vname in order
    }
    missing = [
        (vname, sched, seed)
        for vname in order
        for sched in scheds_by_variant[vname]
        for seed in seeds
        if (vname, sched, seed) not in cells
    ]
    if missing:
        raise ValueError(
            f"replayed cells do not tile a complete (variant, seed) "
            f"grid; {len(missing)} missing, first: {missing[0]} — "
            "replay the full trace directory of one recorded sweep"
        )
    return SweepResult(
        variants=tuple(variants_by_name[n] for n in order),
        seeds=seeds,
        reports={
            vname: {
                sched: tuple(cells[vname, sched, seed] for seed in seeds)
                for sched in scheds_by_variant[vname]
            }
            for vname in order
        },
        settings=settings,
        scale=scale,
        elapsed_seconds=None,
    )
