"""Scheduler and workload plugin registries.

The paper's whole methodology is "evaluate N algorithms on identical
event streams", so the algorithm lineup and the workload generators
are *data*, not code: every scheduler and every workload generator is
a named registry entry, and a declarative
:class:`~repro.experiments.spec.ExperimentSpec` crosses scheduler refs
x scenario variants x seeds (the FuzzBench experiment-config shape).

Schedulers
----------
A :class:`SchedulerSpec` wraps a factory with signature ::

    build(settings: RunSettings, rng: RngFactory, **context) -> BatchScheduler

``settings`` carries the engine parameters (λ, batch interval, seed,
GA config), ``rng`` is an :class:`~repro.util.rng.RngFactory` rooted
at ``settings.seed`` (its named streams are order-independent, so
factories may also root their own — bit-identical either way), and
``context`` supplies per-run objects that only stateful schedulers
need: ``scenario``, ``training`` (the warm-up stream), ``defaults``
(:class:`~repro.experiments.config.PaperDefaults`) and ``ga_config``.
Factories that need none of it declare ``**_`` and ignore it — this is
what makes stateful, per-run schedulers (the STGA with its history
warm-up) first-class registry citizens instead of a special case in
the experiment runner.

Registering a scheduler::

    from repro.registry import register_scheduler

    @register_scheduler("my-sched", description="...")
    def _build(settings, rng, **_):
        return MySched(lam=settings.lam)

Ref grammar
-----------
Scheduler *refs* — the strings an experiment spec, lineup, or CLI
carries — address a registry entry plus optional factory parameters::

    ref    := name [ "?" param ( "&" param )* ]
    param  := key "=" value

with these rules (see :func:`parse_scheduler_ref`):

* ``name`` is a canonical entry name or one of its aliases; unknown
  names raise ``KeyError`` listing every available entry, at
  :meth:`ExperimentSpec.validate`/build time rather than construction
  time (so specs can be authored without the plugin that defines
  them).
* Each ``key=value`` is forwarded to the factory as a keyword
  argument, e.g. ``"min-min-f-risky?f=0.3"`` calls the ``min-min-f-
  risky`` factory with ``f=0.3``.  A parameter whose key collides
  with an argument the factory fixes itself (e.g. ``lam``, which
  comes from the settings) raises ``TypeError`` at build time.
* ``value`` parses as a JSON scalar when possible — ``f=0.3`` is the
  float 0.3, ``strict=true`` the boolean True, ``cap=50`` an int,
  ``mode=null`` None — and falls back to the raw string otherwise
  (``eviction=fifo`` is the string ``"fifo"``).  There is no quoting
  mechanism: a string value cannot contain ``&`` or ``=``.
* The key ``label`` is *reserved*: it never reaches the factory and
  instead overrides the scheduler's report name, so two
  parameterizations of one algorithm can share a lineup
  (``"stga?eviction=fifo&label=STGA-FIFO"``).  Works for any
  ``BatchScheduler`` — schedulers that ignore a ``label`` attribute
  are wrapped in a rename proxy.
* A malformed parameter segment (missing ``=``, empty key) and an
  empty name raise ``ValueError``.
* Refs are compared as plain strings (a spec's ``schedulers`` must be
  distinct *as refs*), so ``"stga?a=1&b=2"`` and ``"stga?b=2&a=1"``
  are different refs that build identical schedulers.
* Factories whose schedulers take an execution backend accept it as
  an ordinary parameter: ``"stga?backend=fast"`` runs that lineup
  entry on the vectorised fast path (bit-identical to the reference —
  see :mod:`repro.util.backend` and ``docs/PERF.md``).  There is no
  registry-level special case; the key flows to the factory like any
  other, and the process-wide ``REPRO_BACKEND`` environment variable
  covers schedulers addressed without it.

Unified invocation (``ScheduleFn``)
-----------------------------------
:func:`bind_scheduler` (or :meth:`SchedulerSpec.bind`) wraps the built
scheduler in a :class:`BoundScheduler` exposing one call signature ::

    bound(snapshot, sites, now) -> ScheduleResult

where ``snapshot`` is the residual job set (a
:class:`~repro.workloads.base.Scenario` or any iterable of jobs) and
``sites`` a :class:`~repro.grid.site.Grid`.  The engine's batch
protocol (``bound.schedule(batch)``) and the report name
(``bound.name``) delegate unchanged, so a bound scheduler drops into
``GridSimulator`` *and* the online rescheduling / replay loops — STGA
and all heuristic refs through the same surface.

Workloads
---------
A :class:`WorkloadSpec` wraps a scenario builder ::

    build(variant, seed: int, scale: float, **params)
        -> (Scenario, Scenario | None)

returning the live scenario and the (optional) training stream for one
replication of a :class:`~repro.experiments.sweep.ScenarioVariant`.
An optional ``validate(variant)`` hook lets a generator reject knobs
it does not support (e.g. NAS rejects ``arrival_rate``), keeping the
policy next to the generator instead of hard-coded in the sweep.

Workload refs use the same grammar as scheduler refs
(:func:`parse_workload_ref`): ``variant.workload`` may be a bare name
(``"psa"``) or carry parameters (``"replay?path=run.jsonl"``).  The
dynamic-scenario keys (``dynamics``, ``cancel``, ``breakdown``,
``repair``, ``ptvar``, ``due``, ``online`` — see
:mod:`repro.workloads.dynamics`) are split off and applied by the
event director *on top of* whatever the named generator built, so
``"nas?dynamics=poisson&breakdown=0.01"`` is just another ref; any
other key is forwarded to the generator itself.

Built-in entries register where they are defined (the six paper
heuristics and the extra baselines in
:mod:`repro.heuristics.factory`, the conventional GA in
:mod:`repro.core.stga`, the STGA in
:mod:`repro.experiments.runner`, the PSA/NAS generators in
:mod:`repro.workloads`); lookups lazily import those modules, so
``build_scheduler("stga", ...)`` works without manual imports.
"""

from __future__ import annotations

import inspect
import json
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

__all__ = [
    "SchedulerSpec",
    "WorkloadSpec",
    "register_scheduler",
    "register_workload",
    "unregister_scheduler",
    "unregister_workload",
    "scheduler_spec",
    "workload_spec",
    "available_schedulers",
    "available_workloads",
    "parse_scheduler_ref",
    "parse_workload_ref",
    "build_scheduler",
    "bind_scheduler",
    "BoundScheduler",
    "build_workload",
    "validate_variant",
]


@dataclass(frozen=True)
class SchedulerSpec:
    """One registered scheduler: a name, a factory, documentation."""

    name: str
    build: Callable
    description: str = ""
    aliases: tuple[str, ...] = ()
    #: carries per-run state (history tables, RNG streams); informational
    stateful: bool = False

    def bind(self, settings, rng=None, **context) -> "BoundScheduler":
        """Build this entry and wrap it in the unified ``ScheduleFn``
        surface (see :class:`BoundScheduler`).

        ``rng`` defaults to a fresh
        :class:`~repro.util.rng.RngFactory` rooted at
        ``settings.seed``, exactly as :func:`build_scheduler` does.
        """
        from repro.util.rng import RngFactory

        if rng is None:
            rng = RngFactory(settings.seed)
        return BoundScheduler(self.build(settings, rng, **context))


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload generator."""

    name: str
    build: Callable
    description: str = ""
    #: optional hook rejecting ScenarioVariant knobs the generator
    #: does not support; raises ValueError on bad variants
    validate: Callable | None = field(default=None, compare=False)


_SCHEDULERS: dict[str, SchedulerSpec] = {}
_SCHEDULER_ALIASES: dict[str, str] = {}
_WORKLOADS: dict[str, WorkloadSpec] = {}

#: modules whose import registers the built-in entries
_BUILTIN_MODULES = (
    "repro.heuristics.factory",
    "repro.core.stga",
    "repro.experiments.runner",
    "repro.workloads.psa",
    "repro.workloads.nas",
    "repro.workloads.dynamics",
)
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the modules that register the built-in entries (once)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import importlib

    for mod in _BUILTIN_MODULES:
        importlib.import_module(mod)


def register_scheduler(
    name: str,
    *,
    description: str = "",
    aliases: Iterable[str] = (),
    stateful: bool = False,
) -> Callable:
    """Decorator registering a scheduler factory under ``name``.

    Duplicate names (including alias collisions) raise ``ValueError``
    — silently shadowing an algorithm would corrupt every spec that
    references it.
    """

    aliases = tuple(aliases)

    def _register(build: Callable) -> Callable:
        spec = SchedulerSpec(
            name=name,
            build=build,
            description=description,
            aliases=aliases,
            stateful=stateful,
        )
        for key in (name, *aliases):
            if key in _SCHEDULERS or key in _SCHEDULER_ALIASES:
                raise ValueError(
                    f"scheduler {key!r} is already registered"
                )
        _SCHEDULERS[name] = spec
        for alias in aliases:
            _SCHEDULER_ALIASES[alias] = name
        return build

    return _register


def register_workload(
    name: str, *, description: str = "", validate: Callable | None = None
) -> Callable:
    """Decorator registering a workload scenario builder under ``name``."""

    def _register(build: Callable) -> Callable:
        if name in _WORKLOADS:
            raise ValueError(f"workload {name!r} is already registered")
        _WORKLOADS[name] = WorkloadSpec(
            name=name, build=build, description=description, validate=validate
        )
        return build

    return _register


def unregister_scheduler(name: str) -> None:
    """Remove a registered scheduler (for plugin tests).

    Given an alias, only the alias mapping is removed (the canonical
    entry stays); given a canonical name, the entry and all its
    aliases go.  An unknown name is a no-op.
    """
    if name in _SCHEDULER_ALIASES:
        _SCHEDULER_ALIASES.pop(name)
        return
    spec = _SCHEDULERS.pop(name, None)
    if spec is not None:
        for alias in spec.aliases:
            _SCHEDULER_ALIASES.pop(alias, None)


def unregister_workload(name: str) -> None:
    """Remove a registered workload (for plugin tests); missing is a no-op."""
    _WORKLOADS.pop(name, None)


def scheduler_spec(name: str) -> SchedulerSpec:
    """Look up a scheduler entry by name or alias.

    Unknown names raise ``KeyError`` listing every available entry.
    """
    _ensure_builtins()
    canonical = _SCHEDULER_ALIASES.get(name, name)
    try:
        return _SCHEDULERS[canonical]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: "
            f"{', '.join(available_schedulers())}"
        ) from None


def workload_spec(name: str) -> WorkloadSpec:
    """Look up a workload entry; unknown names list the alternatives."""
    _ensure_builtins()
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(available_workloads())}"
        ) from None


def available_schedulers() -> tuple[str, ...]:
    """Registered scheduler names (canonical, sorted)."""
    _ensure_builtins()
    return tuple(sorted(_SCHEDULERS))


def available_workloads() -> tuple[str, ...]:
    """Registered workload names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_WORKLOADS))


def _parse_scalar(raw: str):
    """JSON scalar if possible (int/float/bool/null), else the string."""
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _parse_ref(ref: str, what: str) -> tuple[str, dict]:
    name, sep, query = ref.partition("?")
    if not name:
        raise ValueError(f"{what} ref {ref!r} has an empty name")
    params: dict = {}
    if sep and query:
        for item in query.split("&"):
            key, eq, raw = item.partition("=")
            if not eq or not key:
                raise ValueError(
                    f"bad parameter {item!r} in {what} ref {ref!r} "
                    "(expected key=value)"
                )
            params[key] = _parse_scalar(raw)
    return name, params


def parse_scheduler_ref(ref: str) -> tuple[str, dict]:
    """Split ``"name?key=value&..."`` into (name, params).

    The full grammar lives in the module docstring ("Ref grammar");
    operationally: the bare name passes through with empty params;
    values are JSON-scalar parsed with a plain-string fallback
    (``f=0.3`` → ``0.3``, ``eviction=fifo`` → ``"fifo"``); the
    reserved ``label`` key is returned like any other and stripped by
    :func:`build_scheduler`.  Malformed parameter segments (missing
    ``=``, empty keys) and an empty name raise ``ValueError``.  The
    name is *not* resolved here — pass it to :func:`scheduler_spec`
    for that.
    """
    return _parse_ref(ref, "scheduler")


def parse_workload_ref(ref: str) -> tuple[str, dict]:
    """Split a workload ref into (name, params) — same grammar as
    :func:`parse_scheduler_ref`.

    The dynamic-scenario keys among the params are consumed by
    :func:`build_workload` itself (handed to the event director);
    everything else reaches the generator's ``build``.
    """
    return _parse_ref(ref, "workload")


class _LabeledScheduler:
    """Rename proxy for schedulers whose ``name`` ignores ``label``.

    Delegates everything to the wrapped scheduler; only the report
    name changes.  Used by :func:`build_scheduler` so the reserved
    ``label`` ref parameter works for *any* ``BatchScheduler``, not
    just classes that consult a ``label`` attribute themselves.
    """

    def __init__(self, inner, label: str) -> None:
        self._inner = inner
        self._label = label

    @property
    def name(self) -> str:
        return self._label

    def schedule(self, batch):
        return self._inner.schedule(batch)

    def __getattr__(self, attr):
        return getattr(self._inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Labeled {self._label!r} of {self._inner!r}>"


def build_scheduler(ref: str, settings, rng=None, **context):
    """Instantiate the scheduler a ref names.

    ``ref`` may carry ``?key=value`` factory parameters; the reserved
    ``label`` parameter overrides the scheduler's report name (so two
    parameterizations of one algorithm can share a lineup).  ``rng``
    defaults to a fresh :class:`~repro.util.rng.RngFactory` rooted at
    ``settings.seed``.
    """
    from repro.util.rng import RngFactory

    name, params = parse_scheduler_ref(ref)
    spec = scheduler_spec(name)
    label = params.pop("label", None)
    if rng is None:
        rng = RngFactory(settings.seed)
    sched = spec.build(settings, rng, **context, **params)
    if label is not None:
        label = str(label)
        # the built-in base classes honour a `label` attribute; wrap
        # anything that doesn't so the rename never silently drops
        try:
            sched.label = label
        except AttributeError:  # e.g. __slots__ schedulers
            pass
        if sched.name != label:
            sched = _LabeledScheduler(sched, label)
    return sched


class BoundScheduler:
    """The unified ``ScheduleFn`` surface around a built scheduler.

    Three equivalent entry points, one decision procedure:

    * ``bound(snapshot, sites, now)`` — the protocol call: snapshot a
      residual job set against a grid at simulation time ``now`` (via
      :func:`repro.grid.batch.snapshot_batch`) and schedule it;
    * ``bound.schedule(batch)`` — the engine's batch protocol,
      delegated verbatim (so a bound scheduler *is* a valid
      ``GridSimulator`` scheduler);
    * ``bound.name`` — the report name, delegated.

    Every other attribute passes through to the wrapped scheduler.
    """

    def __init__(self, inner) -> None:
        if not hasattr(inner, "schedule"):
            raise TypeError(
                f"scheduler {inner!r} lacks a schedule(batch) method"
            )
        self._inner = inner

    @property
    def name(self) -> str:
        return self._inner.name

    def schedule(self, batch):
        return self._inner.schedule(batch)

    def __call__(self, snapshot, sites, now: float = 0.0, *,
                 ready=None, secure_only=None):
        from repro.grid.batch import snapshot_batch

        jobs = getattr(snapshot, "jobs", snapshot)
        batch = snapshot_batch(
            jobs, sites, now, ready=ready, secure_only=secure_only
        )
        return self._inner.schedule(batch)

    def __getattr__(self, attr):
        return getattr(self._inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Bound {self._inner!r}>"


def bind_scheduler(ref: str, settings, rng=None, **context) -> BoundScheduler:
    """:func:`build_scheduler`, wrapped in the unified ``ScheduleFn``
    surface.

    This is the invocation path the experiment runner, the online
    rescheduling loop and trace replay all share; prefer it over
    calling scheduler classes or :mod:`repro.heuristics.factory`
    helpers directly.
    """
    return BoundScheduler(build_scheduler(ref, settings, rng, **context))


def _dynamics_module():
    # Deferred: repro.workloads.dynamics imports this module for
    # @register_workload, so a top-level import would be circular.
    import repro.workloads.dynamics as dynamics

    return dynamics


def build_workload(variant, seed: int, scale: float = 1.0):
    """(scenario, training) for one replication of ``variant``.

    ``variant.workload`` is parsed as a ref: the named generator
    builds the base scenario (receiving any non-dynamics params as
    keyword arguments), then the event director applies whatever
    dynamic-scenario keys the ref carried.
    """
    name, params = parse_workload_ref(variant.workload)
    spec = workload_spec(name)
    dynamics = _dynamics_module()
    dyn_params = {
        key: params.pop(key)
        for key in list(params)
        if key in dynamics.DYNAMICS_PARAMS
    }
    scenario, training = spec.build(variant, seed, scale, **params)
    if dyn_params:
        scenario = dynamics.apply_dynamics(scenario, seed=seed, **dyn_params)
    return scenario, training


def validate_variant(variant) -> None:
    """Run the workload's variant validator (if any); raises ValueError.

    Dynamic-scenario params in the ref are validated here too, so a
    bad ``breakdown=-1`` fails at variant construction rather than
    mid-sweep, and so do params the generator's ``build`` cannot
    accept — a typo'd knob must not surface as a ``TypeError``
    traceback inside a worker process.
    """
    name, params = parse_workload_ref(variant.workload)
    spec = workload_spec(name)
    dynamics = _dynamics_module()
    dyn_params = {
        key: value
        for key, value in params.items()
        if key in dynamics.DYNAMICS_PARAMS
    }
    if dyn_params:
        dynamics.validate_dynamics_params(dyn_params)
    extra = [key for key in params if key not in dyn_params]
    if extra:
        signature = inspect.signature(spec.build)
        takes_kwargs = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )
        if not takes_kwargs:
            accepted = [
                pname
                for pname, p in signature.parameters.items()
                if p.kind
                in (
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                    inspect.Parameter.KEYWORD_ONLY,
                )
                and pname not in ("variant", "seed", "scale")
            ]
            unknown = sorted(set(extra) - set(accepted))
            if unknown:
                known = sorted(accepted) + sorted(dynamics.DYNAMICS_PARAMS)
                raise ValueError(
                    f"workload {name!r} does not accept param(s) "
                    f"{unknown}; known: {known}"
                )
    if spec.validate is not None:
        spec.validate(variant)
