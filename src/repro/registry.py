"""Scheduler and workload plugin registries.

The paper's whole methodology is "evaluate N algorithms on identical
event streams", so the algorithm lineup and the workload generators
are *data*, not code: every scheduler and every workload generator is
a named registry entry, and a declarative
:class:`~repro.experiments.spec.ExperimentSpec` crosses scheduler refs
x scenario variants x seeds (the FuzzBench experiment-config shape).

Schedulers
----------
A :class:`SchedulerSpec` wraps a factory with signature ::

    build(settings: RunSettings, rng: RngFactory, **context) -> BatchScheduler

``settings`` carries the engine parameters (λ, batch interval, seed,
GA config), ``rng`` is an :class:`~repro.util.rng.RngFactory` rooted
at ``settings.seed`` (its named streams are order-independent, so
factories may also root their own — bit-identical either way), and
``context`` supplies per-run objects that only stateful schedulers
need: ``scenario``, ``training`` (the warm-up stream), ``defaults``
(:class:`~repro.experiments.config.PaperDefaults`) and ``ga_config``.
Factories that need none of it declare ``**_`` and ignore it — this is
what makes stateful, per-run schedulers (the STGA with its history
warm-up) first-class registry citizens instead of a special case in
the experiment runner.

Registering a scheduler::

    from repro.registry import register_scheduler

    @register_scheduler("my-sched", description="...")
    def _build(settings, rng, **_):
        return MySched(lam=settings.lam)

Ref grammar
-----------
Scheduler *refs* — the strings an experiment spec, lineup, or CLI
carries — address a registry entry plus optional factory parameters::

    ref    := name [ "?" param ( "&" param )* ]
    param  := key "=" value

with these rules (see :func:`parse_scheduler_ref`):

* ``name`` is a canonical entry name or one of its aliases; unknown
  names raise ``KeyError`` listing every available entry, at
  :meth:`ExperimentSpec.validate`/build time rather than construction
  time (so specs can be authored without the plugin that defines
  them).
* Each ``key=value`` is forwarded to the factory as a keyword
  argument, e.g. ``"min-min-f-risky?f=0.3"`` calls the ``min-min-f-
  risky`` factory with ``f=0.3``.  A parameter whose key collides
  with an argument the factory fixes itself (e.g. ``lam``, which
  comes from the settings) raises ``TypeError`` at build time.
* ``value`` parses as a JSON scalar when possible — ``f=0.3`` is the
  float 0.3, ``strict=true`` the boolean True, ``cap=50`` an int,
  ``mode=null`` None — and falls back to the raw string otherwise
  (``eviction=fifo`` is the string ``"fifo"``).  There is no quoting
  mechanism: a string value cannot contain ``&`` or ``=``.
* The key ``label`` is *reserved*: it never reaches the factory and
  instead overrides the scheduler's report name, so two
  parameterizations of one algorithm can share a lineup
  (``"stga?eviction=fifo&label=STGA-FIFO"``).  Works for any
  ``BatchScheduler`` — schedulers that ignore a ``label`` attribute
  are wrapped in a rename proxy.
* A malformed parameter segment (missing ``=``, empty key) and an
  empty name raise ``ValueError``.
* Refs are compared as plain strings (a spec's ``schedulers`` must be
  distinct *as refs*), so ``"stga?a=1&b=2"`` and ``"stga?b=2&a=1"``
  are different refs that build identical schedulers.
* Factories whose schedulers take an execution backend accept it as
  an ordinary parameter: ``"stga?backend=fast"`` runs that lineup
  entry on the vectorised fast path (bit-identical to the reference —
  see :mod:`repro.util.backend` and ``docs/PERF.md``).  There is no
  registry-level special case; the key flows to the factory like any
  other, and the process-wide ``REPRO_BACKEND`` environment variable
  covers schedulers addressed without it.

Workloads
---------
A :class:`WorkloadSpec` wraps a scenario builder ::

    build(variant, seed: int, scale: float) -> (Scenario, Scenario | None)

returning the live scenario and the (optional) training stream for one
replication of a :class:`~repro.experiments.sweep.ScenarioVariant`.
An optional ``validate(variant)`` hook lets a generator reject knobs
it does not support (e.g. NAS rejects ``arrival_rate``), keeping the
policy next to the generator instead of hard-coded in the sweep.

Built-in entries register where they are defined (the six paper
heuristics and the extra baselines in
:mod:`repro.heuristics.factory`, the conventional GA in
:mod:`repro.core.stga`, the STGA in
:mod:`repro.experiments.runner`, the PSA/NAS generators in
:mod:`repro.workloads`); lookups lazily import those modules, so
``build_scheduler("stga", ...)`` works without manual imports.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

__all__ = [
    "SchedulerSpec",
    "WorkloadSpec",
    "register_scheduler",
    "register_workload",
    "unregister_scheduler",
    "unregister_workload",
    "scheduler_spec",
    "workload_spec",
    "available_schedulers",
    "available_workloads",
    "parse_scheduler_ref",
    "build_scheduler",
    "build_workload",
    "validate_variant",
]


@dataclass(frozen=True)
class SchedulerSpec:
    """One registered scheduler: a name, a factory, documentation."""

    name: str
    build: Callable
    description: str = ""
    aliases: tuple[str, ...] = ()
    #: carries per-run state (history tables, RNG streams); informational
    stateful: bool = False


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload generator."""

    name: str
    build: Callable
    description: str = ""
    #: optional hook rejecting ScenarioVariant knobs the generator
    #: does not support; raises ValueError on bad variants
    validate: Callable | None = field(default=None, compare=False)


_SCHEDULERS: dict[str, SchedulerSpec] = {}
_SCHEDULER_ALIASES: dict[str, str] = {}
_WORKLOADS: dict[str, WorkloadSpec] = {}

#: modules whose import registers the built-in entries
_BUILTIN_MODULES = (
    "repro.heuristics.factory",
    "repro.core.stga",
    "repro.experiments.runner",
    "repro.workloads.psa",
    "repro.workloads.nas",
)
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the modules that register the built-in entries (once)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import importlib

    for mod in _BUILTIN_MODULES:
        importlib.import_module(mod)


def register_scheduler(
    name: str,
    *,
    description: str = "",
    aliases: Iterable[str] = (),
    stateful: bool = False,
) -> Callable:
    """Decorator registering a scheduler factory under ``name``.

    Duplicate names (including alias collisions) raise ``ValueError``
    — silently shadowing an algorithm would corrupt every spec that
    references it.
    """

    aliases = tuple(aliases)

    def _register(build: Callable) -> Callable:
        spec = SchedulerSpec(
            name=name,
            build=build,
            description=description,
            aliases=aliases,
            stateful=stateful,
        )
        for key in (name, *aliases):
            if key in _SCHEDULERS or key in _SCHEDULER_ALIASES:
                raise ValueError(
                    f"scheduler {key!r} is already registered"
                )
        _SCHEDULERS[name] = spec
        for alias in aliases:
            _SCHEDULER_ALIASES[alias] = name
        return build

    return _register


def register_workload(
    name: str, *, description: str = "", validate: Callable | None = None
) -> Callable:
    """Decorator registering a workload scenario builder under ``name``."""

    def _register(build: Callable) -> Callable:
        if name in _WORKLOADS:
            raise ValueError(f"workload {name!r} is already registered")
        _WORKLOADS[name] = WorkloadSpec(
            name=name, build=build, description=description, validate=validate
        )
        return build

    return _register


def unregister_scheduler(name: str) -> None:
    """Remove a registered scheduler (for plugin tests).

    Given an alias, only the alias mapping is removed (the canonical
    entry stays); given a canonical name, the entry and all its
    aliases go.  An unknown name is a no-op.
    """
    if name in _SCHEDULER_ALIASES:
        _SCHEDULER_ALIASES.pop(name)
        return
    spec = _SCHEDULERS.pop(name, None)
    if spec is not None:
        for alias in spec.aliases:
            _SCHEDULER_ALIASES.pop(alias, None)


def unregister_workload(name: str) -> None:
    """Remove a registered workload (for plugin tests); missing is a no-op."""
    _WORKLOADS.pop(name, None)


def scheduler_spec(name: str) -> SchedulerSpec:
    """Look up a scheduler entry by name or alias.

    Unknown names raise ``KeyError`` listing every available entry.
    """
    _ensure_builtins()
    canonical = _SCHEDULER_ALIASES.get(name, name)
    try:
        return _SCHEDULERS[canonical]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: "
            f"{', '.join(available_schedulers())}"
        ) from None


def workload_spec(name: str) -> WorkloadSpec:
    """Look up a workload entry; unknown names list the alternatives."""
    _ensure_builtins()
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(available_workloads())}"
        ) from None


def available_schedulers() -> tuple[str, ...]:
    """Registered scheduler names (canonical, sorted)."""
    _ensure_builtins()
    return tuple(sorted(_SCHEDULERS))


def available_workloads() -> tuple[str, ...]:
    """Registered workload names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_WORKLOADS))


def _parse_scalar(raw: str):
    """JSON scalar if possible (int/float/bool/null), else the string."""
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def parse_scheduler_ref(ref: str) -> tuple[str, dict]:
    """Split ``"name?key=value&..."`` into (name, params).

    The full grammar lives in the module docstring ("Ref grammar");
    operationally: the bare name passes through with empty params;
    values are JSON-scalar parsed with a plain-string fallback
    (``f=0.3`` → ``0.3``, ``eviction=fifo`` → ``"fifo"``); the
    reserved ``label`` key is returned like any other and stripped by
    :func:`build_scheduler`.  Malformed parameter segments (missing
    ``=``, empty keys) and an empty name raise ``ValueError``.  The
    name is *not* resolved here — pass it to :func:`scheduler_spec`
    for that.
    """
    name, sep, query = ref.partition("?")
    if not name:
        raise ValueError(f"scheduler ref {ref!r} has an empty name")
    params: dict = {}
    if sep and query:
        for item in query.split("&"):
            key, eq, raw = item.partition("=")
            if not eq or not key:
                raise ValueError(
                    f"bad parameter {item!r} in scheduler ref {ref!r} "
                    "(expected key=value)"
                )
            params[key] = _parse_scalar(raw)
    return name, params


class _LabeledScheduler:
    """Rename proxy for schedulers whose ``name`` ignores ``label``.

    Delegates everything to the wrapped scheduler; only the report
    name changes.  Used by :func:`build_scheduler` so the reserved
    ``label`` ref parameter works for *any* ``BatchScheduler``, not
    just classes that consult a ``label`` attribute themselves.
    """

    def __init__(self, inner, label: str) -> None:
        self._inner = inner
        self._label = label

    @property
    def name(self) -> str:
        return self._label

    def schedule(self, batch):
        return self._inner.schedule(batch)

    def __getattr__(self, attr):
        return getattr(self._inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Labeled {self._label!r} of {self._inner!r}>"


def build_scheduler(ref: str, settings, rng=None, **context):
    """Instantiate the scheduler a ref names.

    ``ref`` may carry ``?key=value`` factory parameters; the reserved
    ``label`` parameter overrides the scheduler's report name (so two
    parameterizations of one algorithm can share a lineup).  ``rng``
    defaults to a fresh :class:`~repro.util.rng.RngFactory` rooted at
    ``settings.seed``.
    """
    from repro.util.rng import RngFactory

    name, params = parse_scheduler_ref(ref)
    spec = scheduler_spec(name)
    label = params.pop("label", None)
    if rng is None:
        rng = RngFactory(settings.seed)
    sched = spec.build(settings, rng, **context, **params)
    if label is not None:
        label = str(label)
        # the built-in base classes honour a `label` attribute; wrap
        # anything that doesn't so the rename never silently drops
        try:
            sched.label = label
        except AttributeError:  # e.g. __slots__ schedulers
            pass
        if sched.name != label:
            sched = _LabeledScheduler(sched, label)
    return sched


def build_workload(variant, seed: int, scale: float = 1.0):
    """(scenario, training) for one replication of ``variant``.

    Dispatches on ``variant.workload``; see :class:`WorkloadSpec` for
    the builder contract.
    """
    return workload_spec(variant.workload).build(variant, seed, scale)


def validate_variant(variant) -> None:
    """Run the workload's variant validator (if any); raises ValueError."""
    spec = workload_spec(variant.workload)
    if spec.validate is not None:
        spec.validate(variant)
