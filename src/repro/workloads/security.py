"""Security-attribute sampling (Table 1).

Site security levels ``SL ~ U(0.4, 1.0)`` and job security demands
``SD ~ U(0.6, 0.9)``.  With finitely many sites it is possible that no
site satisfies the largest demands, in which case *secure* mode (and
the secure-resubmission rule for failed jobs) could never place some
jobs; the paper implicitly assumes at least one safe site exists.
``sample_security_levels(..., ensure_cover=0.9)`` enforces that by
lifting the most secure site into ``[ensure_cover, hi]`` when needed —
a measure-zero distortion for realistic site counts, documented in
DESIGN.md §3.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_in_range

__all__ = [
    "SD_RANGE",
    "SL_RANGE",
    "sample_security_demands",
    "sample_security_levels",
]

#: Table 1 defaults.
SD_RANGE = (0.6, 0.9)
SL_RANGE = (0.4, 1.0)


def sample_security_demands(
    n: int,
    rng: np.random.Generator,
    *,
    lo: float = SD_RANGE[0],
    hi: float = SD_RANGE[1],
) -> np.ndarray:
    """Uniform job security demands, shape (n,)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    check_in_range("lo", lo, 0.0, hi)
    return rng.uniform(lo, hi, size=n)


def sample_security_levels(
    n: int,
    rng: np.random.Generator,
    *,
    lo: float = SL_RANGE[0],
    hi: float = SL_RANGE[1],
    ensure_cover: float | None = SD_RANGE[1],
) -> np.ndarray:
    """Uniform site security levels, shape (n,).

    ``ensure_cover`` (default: the maximum SD, 0.9) guarantees
    ``max(SL) >= ensure_cover`` so every job has at least one
    absolutely safe site; pass ``None`` for the raw distribution.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    check_in_range("lo", lo, 0.0, hi)
    sls = rng.uniform(lo, hi, size=n)
    if ensure_cover is not None:
        check_in_range("ensure_cover", ensure_cover, lo, hi)
        if sls.max() < ensure_cover:
            sls[int(np.argmax(sls))] = rng.uniform(ensure_cover, hi)
    return sls
