"""Workload containers.

A :class:`Scenario` bundles what one simulation run needs: the grid
(sites with speeds and security levels) and the job stream.  Workload
generators return scenarios so that the site side (e.g. NAS's
4x16-node + 8x8-node layout) and the job side stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.grid.job import Job
from repro.grid.site import Grid

__all__ = ["Scenario", "scale_jobs", "TRAINING_SEED_OFFSET"]

#: offset between a replication's workload seed and its STGA
#: training-stream seed (a prime, so seed grids never collide)
TRAINING_SEED_OFFSET = 7919


def scale_jobs(n_jobs: int, scale: float) -> int:
    """Scaled job count, at least 20 so metrics stay meaningful."""
    if not (0 < scale <= 1.0):
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    return max(20, int(round(n_jobs * scale)))


@dataclass(frozen=True)
class Scenario:
    """A named (grid, jobs) pair ready to simulate."""

    name: str
    grid: Grid
    jobs: tuple[Job, ...]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a scenario needs at least one job")
        arr = [j.arrival for j in self.jobs]
        if any(b < a for a, b in zip(arr, arr[1:])):
            raise ValueError("jobs must be sorted by arrival time")

    @property
    def n_jobs(self) -> int:
        """Number of jobs in the stream."""
        return len(self.jobs)

    @property
    def span(self) -> float:
        """Time between first and last arrival (seconds)."""
        return self.jobs[-1].arrival - self.jobs[0].arrival

    @property
    def total_work(self) -> float:
        """Sum of job workloads (node-seconds)."""
        return float(sum(j.workload for j in self.jobs))

    def arrivals(self) -> np.ndarray:
        """Arrival-time vector, shape (N,)."""
        return np.array([j.arrival for j in self.jobs], dtype=float)

    def workloads(self) -> np.ndarray:
        """Workload vector, shape (N,)."""
        return np.array([j.workload for j in self.jobs], dtype=float)

    def security_demands(self) -> np.ndarray:
        """SD vector, shape (N,)."""
        return np.array([j.security_demand for j in self.jobs], dtype=float)

    def head(self, n: int) -> "Scenario":
        """First ``n`` jobs (same grid) — used to carve training sets."""
        if not (1 <= n <= self.n_jobs):
            raise ValueError(f"n must be in [1, {self.n_jobs}], got {n}")
        return replace(
            self, name=f"{self.name}[:{n}]", jobs=tuple(self.jobs[:n])
        )

    def tail(self, n: int) -> "Scenario":
        """Last ``n`` jobs with arrivals shifted to start near zero."""
        if not (1 <= n <= self.n_jobs):
            raise ValueError(f"n must be in [1, {self.n_jobs}], got {n}")
        picked = self.jobs[-n:]
        offset = picked[0].arrival
        shifted = tuple(
            Job(
                job_id=j.job_id,
                arrival=j.arrival - offset,
                workload=j.workload,
                security_demand=j.security_demand,
                nodes=j.nodes,
            )
            for j in picked
        )
        return replace(self, name=f"{self.name}[-{n}:]", jobs=shifted)
