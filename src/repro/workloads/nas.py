"""Synthetic NAS iPSC/860 trace (paper Section 4.2) — a substitution.

The paper replays three months (92 days, ~16 000 jobs) of accounting
records from the 128-node iPSC/860 at NASA Ames, squeezed to 46 days,
on a grid of 12 sites (4 x 16 nodes + 8 x 8 nodes).  The sanitized
trace itself is not available offline, so this module *synthesizes* a
stream with the characteristics documented by Feitelson & Nitzberg
(1994) for that machine:

* node requests are powers of two from 1 to 128, heavily weighted
  towards small sizes (sequential and <=8-node jobs dominate counts)
  with a non-trivial tail of 64/128-node runs;
* runtimes are roughly log-uniform over several orders of magnitude
  (seconds to hours), mildly increasing with job size;
* arrivals follow a strong daily cycle (prime-time peak) modulated by
  a weekday/weekend effect.

The schedulers only ever observe (arrival, workload = nodes x runtime,
SD), so matching these marginals and the arrival burstiness preserves
the contention structure the paper's NAS experiments exercise.  See
DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.grid.job import Job
from repro.grid.site import Grid
from repro.registry import register_workload
from repro.util.rng import as_generator
from repro.util.validation import check_positive
from repro.workloads.arrivals import cyclic_arrivals, hourly_rate_profile
from repro.workloads.base import TRAINING_SEED_OFFSET, Scenario, scale_jobs
from repro.workloads.security import (
    SD_RANGE,
    SL_RANGE,
    sample_security_demands,
    sample_security_levels,
)

__all__ = ["NASConfig", "nas_scenario", "nas_grid", "nas_site_plan"]

#: Power-of-two node requests on the 128-node iPSC/860 and their
#: approximate share of job *counts* per Feitelson & Nitzberg (1994):
#: small jobs dominate, with a visible 32/64-node tail.
_NODE_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)
_NODE_WEIGHTS = (0.26, 0.14, 0.16, 0.15, 0.12, 0.09, 0.06, 0.02)


@dataclass(frozen=True)
class NASConfig:
    """NAS synthesizer knobs; defaults reproduce the paper's setup."""

    n_jobs: int = 16_000
    trace_days: int = 92
    squeeze: float = 2.0  # 92 days -> 46 days
    #: site layout: 4 sites of 16 nodes + 8 sites of 8 nodes
    site_nodes: tuple[int, ...] = (16, 16, 16, 16, 8, 8, 8, 8, 8, 8, 8, 8)
    node_sizes: tuple[int, ...] = _NODE_SIZES
    node_weights: tuple[float, ...] = _NODE_WEIGHTS
    #: log10-runtime is uniform over [log_rt_lo, log_rt_hi] plus a
    #: size-dependent shift — bigger jobs run a bit longer.
    log_rt_lo: float = 0.5  # ~3 s
    log_rt_hi: float = 3.8  # ~6300 s
    size_rt_slope: float = 0.12  # added to log10 runtime per log2(nodes)
    sd_range: tuple[float, float] = SD_RANGE
    sl_range: tuple[float, float] = SL_RANGE
    ensure_feasible: bool = True
    profile_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.trace_days < 1:
            raise ValueError(f"trace_days must be >= 1, got {self.trace_days}")
        check_positive("squeeze", self.squeeze)
        if len(self.node_sizes) != len(self.node_weights):
            raise ValueError("node_sizes and node_weights must align")
        if abs(sum(self.node_weights) - 1.0) > 1e-9:
            raise ValueError("node_weights must sum to 1")
        if not self.site_nodes:
            raise ValueError("site_nodes must be non-empty")
        if self.log_rt_hi <= self.log_rt_lo:
            raise ValueError("log_rt_hi must exceed log_rt_lo")


def nas_site_plan(
    n_sites: int, *, big_nodes: int = 16, small_nodes: int = 8
) -> tuple[int, ...]:
    """Site-node plan for an ``n_sites`` NAS grid-layout variant.

    The paper's layout is 4 x 16-node + 8 x 8-node sites; this keeps
    that 1:2 big:small site ratio for any grid size — ``round(n/3)``
    big sites, the rest small — so ``nas_site_plan(12)`` reproduces
    the paper plan exactly and other sizes scale the same mix.
    """
    if n_sites < 1:
        raise ValueError(f"n_sites must be >= 1, got {n_sites}")
    check_positive("big_nodes", big_nodes)
    check_positive("small_nodes", small_nodes)
    n_big = round(n_sites / 3)
    return (big_nodes,) * n_big + (small_nodes,) * (n_sites - n_big)


def nas_grid(
    config: NASConfig = NASConfig(),
    *,
    rng: int | np.random.Generator | None = 0,
) -> Grid:
    """The 12-site grid: speed = node count, SL ~ U(0.4, 1.0)."""
    rng = as_generator(rng)
    nodes = np.asarray(config.site_nodes, dtype=int)
    sls = sample_security_levels(
        nodes.size,
        rng,
        lo=config.sl_range[0],
        hi=config.sl_range[1],
        ensure_cover=config.sd_range[1] if config.ensure_feasible else None,
    )
    return Grid.from_arrays(nodes.astype(float), sls, nodes=nodes)


def nas_scenario(
    config: NASConfig = NASConfig(),
    *,
    rng: int | np.random.Generator | None = 0,
) -> Scenario:
    """Generate the synthetic NAS scenario (grid + job stream)."""
    rng = as_generator(rng)
    grid = nas_grid(config, rng=rng)

    sizes = rng.choice(
        np.asarray(config.node_sizes, dtype=int),
        size=config.n_jobs,
        p=np.asarray(config.node_weights, dtype=float),
    )
    log_rt = rng.uniform(config.log_rt_lo, config.log_rt_hi, size=config.n_jobs)
    log_rt = log_rt + config.size_rt_slope * np.log2(sizes)
    runtimes = 10.0**log_rt
    workloads = sizes * runtimes  # node-seconds

    profile = hourly_rate_profile(config.trace_days, **config.profile_kwargs)
    arrivals = cyclic_arrivals(
        config.n_jobs,
        config.trace_days,
        rng,
        profile=profile,
        squeeze=config.squeeze,
    )
    sds = sample_security_demands(
        config.n_jobs, rng, lo=config.sd_range[0], hi=config.sd_range[1]
    )

    jobs = tuple(
        Job(
            job_id=i,
            arrival=float(arrivals[i]),
            workload=float(workloads[i]),
            security_demand=float(sds[i]),
            nodes=int(sizes[i]),
        )
        for i in range(config.n_jobs)
    )
    days_eff = config.trace_days / config.squeeze
    return Scenario(
        name=f"NAS(N={config.n_jobs}, {days_eff:g}d)", grid=grid, jobs=jobs
    )


def _validate_nas_variant(variant) -> None:
    """NAS arrivals follow the trace's daily-cycle profile."""
    if variant.arrival_rate is not None:
        raise ValueError(
            "arrival_rate is a PSA-only knob (NAS arrivals follow "
            "the trace's daily-cycle profile); use n_sites for NAS "
            "grid-layout variants"
        )


@register_workload(
    "nas",
    description="synthetic NAS iPSC/860 trace, daily-cycle arrivals "
    "(Table 1: 16000 jobs on 4x16 + 8x8 node sites)",
    validate=_validate_nas_variant,
)
def _nas_variant_scenarios(variant, seed: int, scale: float = 1.0):
    """Build (scenario, training) for one sweep replication.

    Replicates fig8's squeezed-horizon scaling — the trace-day count
    shrinks with ``scale`` so arrival pressure per day is preserved —
    and a 1-seed build reproduces ``nas_experiment()`` bit for bit.
    """
    n = scale_jobs(variant.n_jobs, scale)
    n_train = (
        scale_jobs(variant.n_training_jobs, scale)
        if variant.n_training_jobs
        else 0
    )
    base = NASConfig(n_jobs=variant.n_jobs)
    if variant.n_sites is not None:
        base = replace(base, site_nodes=nas_site_plan(variant.n_sites))
    days = max(2, int(round(base.trace_days * scale)))
    scenario = nas_scenario(
        replace(base, n_jobs=n, trace_days=days), rng=seed
    )
    training = None
    if n_train:
        train_days = max(1, int(round(days * n_train / max(n, 1))))
        training = nas_scenario(
            replace(base, n_jobs=n_train, trace_days=train_days),
            rng=seed + TRAINING_SEED_OFFSET,
        )
    return scenario, training
