"""Parameter-Sweep Application (PSA) workload (paper Section 4.2).

A PSA is N independent sequential jobs — one per parameter point —
dispatched to M sites with N >> M.  Table 1 fixes: 5 000 jobs, 20
sites, Poisson arrivals at 0.008 jobs/s, job workloads drawn from 20
discrete levels spanning (0, 300 000] node-seconds, site speeds from
10 discrete levels, SL ~ U(0.4, 1.0) and SD ~ U(0.6, 0.9).

"10 levels (0-10)" is read as speeds {1, ..., 10} — a zero-speed site
could execute nothing — and the workload levels as an evenly spaced
ladder {max/20, 2·max/20, ..., max} (a zero workload is no job).

**Calibration note (DESIGN.md §3).**  Table 1 prints the workload
range as "(0-300000)", but that value is irreconcilable with the
paper's own results: it implies an offered load ≈ 11x the grid's
aggregate capacity, whereas the makespans reported in Figures 7(a)
and 10(a) (≈1.5-2.5e5 s for N = 1000 arriving over 1.25e5 s) imply a
load ratio of ~1.2-1.5 — exactly what "(0-30000)" produces.  We treat
the printed value as a typo: ``max_workload`` defaults to the
calibrated 30 000 (reproducing the paper's magnitudes and shapes);
pass ``max_workload=300_000`` for the literal reading.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.grid.job import Job
from repro.grid.site import Grid
from repro.registry import register_workload
from repro.util.rng import as_generator
from repro.util.validation import check_positive
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.base import TRAINING_SEED_OFFSET, Scenario, scale_jobs
from repro.workloads.security import (
    SD_RANGE,
    SL_RANGE,
    sample_security_demands,
    sample_security_levels,
)

__all__ = ["PSAConfig", "psa_scenario"]


@dataclass(frozen=True)
class PSAConfig:
    """PSA generator knobs; defaults reproduce Table 1."""

    n_jobs: int = 5000
    n_sites: int = 20
    arrival_rate: float = 0.008  # jobs per second
    n_workload_levels: int = 20
    max_workload: float = 30_000.0  # node-seconds; see calibration note
    n_speed_levels: int = 10
    sd_range: tuple[float, float] = SD_RANGE
    sl_range: tuple[float, float] = SL_RANGE
    ensure_feasible: bool = True

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.n_sites < 1:
            raise ValueError(f"n_sites must be >= 1, got {self.n_sites}")
        check_positive("arrival_rate", self.arrival_rate)
        if self.n_workload_levels < 1:
            raise ValueError("n_workload_levels must be >= 1")
        check_positive("max_workload", self.max_workload)
        if self.n_speed_levels < 1:
            raise ValueError("n_speed_levels must be >= 1")


def psa_scenario(
    config: PSAConfig = PSAConfig(),
    *,
    rng: int | np.random.Generator | None = 0,
) -> Scenario:
    """Generate a PSA scenario (grid + job stream)."""
    rng = as_generator(rng)

    speed_levels = np.arange(1, config.n_speed_levels + 1, dtype=float)
    speeds = rng.choice(speed_levels, size=config.n_sites)
    sls = sample_security_levels(
        config.n_sites,
        rng,
        lo=config.sl_range[0],
        hi=config.sl_range[1],
        ensure_cover=config.sd_range[1] if config.ensure_feasible else None,
    )
    grid = Grid.from_arrays(speeds, sls)

    level_size = config.max_workload / config.n_workload_levels
    levels = level_size * np.arange(1, config.n_workload_levels + 1)
    workloads = rng.choice(levels, size=config.n_jobs)
    arrivals = poisson_arrivals(config.n_jobs, config.arrival_rate, rng)
    sds = sample_security_demands(
        config.n_jobs, rng, lo=config.sd_range[0], hi=config.sd_range[1]
    )

    jobs = tuple(
        Job(
            job_id=i,
            arrival=float(arrivals[i]),
            workload=float(workloads[i]),
            security_demand=float(sds[i]),
        )
        for i in range(config.n_jobs)
    )
    return Scenario(name=f"PSA(N={config.n_jobs})", grid=grid, jobs=jobs)


@register_workload(
    "psa",
    description="Parameter-Sweep Application stream, Poisson arrivals "
    "(Table 1: 5000 jobs on 20 sites)",
)
def _psa_variant_scenarios(variant, seed: int, scale: float = 1.0):
    """Build (scenario, training) for one sweep replication.

    Mirrors the figure drivers exactly: workload rng = ``seed``,
    training rng = ``seed + TRAINING_SEED_OFFSET``, job counts through
    :func:`~repro.workloads.base.scale_jobs`.  The training stream
    inherits the variant's overrides (same arrival intensity etc.) so
    the warm-up resembles the live workload; only the grid of the live
    scenario matters downstream (``warmup_history`` trains on it).
    """
    n = scale_jobs(variant.n_jobs, scale)
    n_train = (
        scale_jobs(variant.n_training_jobs, scale)
        if variant.n_training_jobs
        else 0
    )
    cfg = PSAConfig(n_jobs=n)
    if variant.n_sites is not None:
        cfg = replace(cfg, n_sites=variant.n_sites)
    if variant.arrival_rate is not None:
        cfg = replace(cfg, arrival_rate=variant.arrival_rate)
    scenario = psa_scenario(cfg, rng=seed)
    training = (
        psa_scenario(
            replace(cfg, n_jobs=n_train), rng=seed + TRAINING_SEED_OFFSET
        )
        if n_train
        else None
    )
    return scenario, training
