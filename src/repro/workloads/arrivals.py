"""Arrival-time processes.

* :func:`poisson_arrivals` — homogeneous Poisson stream (the PSA
  workload: Table 1 gives rate 0.008 jobs/s);
* :func:`cyclic_arrivals` — exactly-n arrivals drawn from a piecewise-
  constant daily/weekly rate profile (the NAS trace synthesizer's
  prime-time day cycle).  Sampling is by inverse CDF over hourly
  buckets, fully vectorised, so the job count is exact — matching the
  trace's fixed 16 000 jobs — rather than Poisson-random.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = ["poisson_arrivals", "hourly_rate_profile", "cyclic_arrivals"]

_DAY = 86_400.0
_HOUR = 3_600.0


def poisson_arrivals(
    n: int, rate: float, rng: np.random.Generator, *, start: float = 0.0
) -> np.ndarray:
    """``n`` arrival times of a homogeneous Poisson process."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    check_positive("rate", rate)
    gaps = rng.exponential(1.0 / rate, size=n)
    return start + np.cumsum(gaps)


def hourly_rate_profile(
    days: int,
    *,
    day_factor: float = 1.0,
    night_factor: float = 0.35,
    weekend_factor: float = 0.45,
    day_start_hour: int = 8,
    day_end_hour: int = 18,
) -> np.ndarray:
    """Relative arrival rate per hour over ``days`` days.

    Hours in [day_start_hour, day_end_hour) get ``day_factor``, the
    rest ``night_factor``; Saturdays/Sundays (days 5 and 6 of each
    week, the trace starts on a Monday by convention) are additionally
    scaled by ``weekend_factor``.  This reproduces the prime-time /
    non-prime-time structure reported for the NAS iPSC/860 trace.
    """
    if days < 1:
        raise ValueError(f"days must be >= 1, got {days}")
    hours = np.arange(days * 24)
    hour_of_day = hours % 24
    day_index = hours // 24
    rate = np.where(
        (hour_of_day >= day_start_hour) & (hour_of_day < day_end_hour),
        day_factor,
        night_factor,
    ).astype(float)
    weekend = (day_index % 7) >= 5
    rate[weekend] *= weekend_factor
    return rate


def cyclic_arrivals(
    n: int,
    days: int,
    rng: np.random.Generator,
    *,
    profile: np.ndarray | None = None,
    squeeze: float = 1.0,
) -> np.ndarray:
    """Exactly ``n`` sorted arrivals following an hourly rate profile.

    ``squeeze > 1`` compresses the timeline by that factor — the
    paper's preprocessing step of squeezing the 92-day NAS trace into
    46 days to raise throughput pressure.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    check_positive("squeeze", squeeze)
    if profile is None:
        profile = hourly_rate_profile(days)
    profile = np.asarray(profile, dtype=float)
    if profile.ndim != 1 or profile.size != days * 24:
        raise ValueError(
            f"profile must have days*24={days * 24} entries, got {profile.size}"
        )
    if (profile < 0).any() or profile.sum() == 0:
        raise ValueError("profile must be non-negative with positive mass")

    cdf = np.cumsum(profile)
    cdf = cdf / cdf[-1]
    u = np.sort(rng.random(n))
    bucket = np.searchsorted(cdf, u, side="left")
    # Linear position inside the chosen hour bucket.
    lo = np.concatenate([[0.0], cdf[:-1]])[bucket]
    frac = (u - lo) / np.maximum(cdf[bucket] - lo, np.finfo(float).tiny)
    times = (bucket + frac) * _HOUR
    return times / squeeze
