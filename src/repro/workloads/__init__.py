"""Workload generators: the PSA parameter-sweep stream and the
synthetic NAS iPSC/860 trace, plus the arrival processes and
security-attribute samplers they share."""

from repro.workloads.analysis import (
    WorkloadProfile,
    hourly_histogram,
    profile_scenario,
)
from repro.workloads.arrivals import (
    cyclic_arrivals,
    hourly_rate_profile,
    poisson_arrivals,
)
from repro.workloads.base import Scenario
from repro.workloads.dynamics import (
    DYNAMICS_PARAMS,
    DynamicScenario,
    apply_dynamics,
    scenario_from_trace,
    validate_dynamics_params,
)
from repro.workloads.nas import NASConfig, nas_grid, nas_scenario
from repro.workloads.psa import PSAConfig, psa_scenario
from repro.workloads.security import (
    SD_RANGE,
    SL_RANGE,
    sample_security_demands,
    sample_security_levels,
)

__all__ = [
    "Scenario",
    "DynamicScenario",
    "DYNAMICS_PARAMS",
    "apply_dynamics",
    "validate_dynamics_params",
    "scenario_from_trace",
    "WorkloadProfile",
    "profile_scenario",
    "hourly_histogram",
    "poisson_arrivals",
    "cyclic_arrivals",
    "hourly_rate_profile",
    "NASConfig",
    "nas_scenario",
    "nas_grid",
    "PSAConfig",
    "psa_scenario",
    "SD_RANGE",
    "SL_RANGE",
    "sample_security_demands",
    "sample_security_levels",
]
