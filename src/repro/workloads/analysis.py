"""Workload characterization.

Summary statistics of a :class:`~repro.workloads.base.Scenario` used
to validate the synthetic NAS trace against its published
characteristics and to report the operating regime of an experiment
(most importantly the *offered load ratio*: offered work per second
over grid capacity — the paper's NAS setup runs at ≈1.6, i.e. a
backlogged system).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import Scenario

__all__ = ["WorkloadProfile", "profile_scenario", "hourly_histogram"]

_HOUR = 3600.0
_DAY = 86_400.0


@dataclass(frozen=True)
class WorkloadProfile:
    """Aggregate characteristics of one scenario."""

    n_jobs: int
    span_seconds: float
    total_work: float
    load_ratio: float  # offered work rate / grid capacity
    mean_interarrival: float
    workload_p50: float
    workload_p95: float
    workload_max: float
    sd_mean: float
    prime_time_fraction: float  # arrivals landing 08:00-18:00

    @property
    def overloaded(self) -> bool:
        """True when offered load exceeds grid capacity."""
        return self.load_ratio > 1.0


def profile_scenario(
    scenario: Scenario, *, squeeze: float = 1.0
) -> WorkloadProfile:
    """Compute a :class:`WorkloadProfile`.

    ``squeeze`` un-compresses arrival timestamps before computing the
    time-of-day statistics (the NAS scenario halves all times, which
    would otherwise smear the daily cycle across hour boundaries).
    """
    if squeeze <= 0:
        raise ValueError(f"squeeze must be positive, got {squeeze}")
    arrivals = scenario.arrivals()
    workloads = scenario.workloads()
    span = float(arrivals[-1] - arrivals[0])
    if span <= 0:
        raise ValueError("scenario spans zero time; cannot profile")
    capacity = scenario.grid.total_speed
    wall = arrivals * squeeze
    hour = (wall % _DAY) // _HOUR
    prime = float(((hour >= 8) & (hour < 18)).mean())
    gaps = np.diff(arrivals)
    return WorkloadProfile(
        n_jobs=scenario.n_jobs,
        span_seconds=span,
        total_work=scenario.total_work,
        load_ratio=float(scenario.total_work / (capacity * span)),
        mean_interarrival=float(gaps.mean()) if gaps.size else 0.0,
        workload_p50=float(np.percentile(workloads, 50)),
        workload_p95=float(np.percentile(workloads, 95)),
        workload_max=float(workloads.max()),
        sd_mean=float(scenario.security_demands().mean()),
        prime_time_fraction=prime,
    )


def hourly_histogram(
    scenario: Scenario, *, squeeze: float = 1.0
) -> np.ndarray:
    """Arrival counts per hour-of-day (24 bins), after un-squeezing."""
    if squeeze <= 0:
        raise ValueError(f"squeeze must be positive, got {squeeze}")
    wall = scenario.arrivals() * squeeze
    hour = ((wall % _DAY) // _HOUR).astype(int)
    return np.bincount(hour, minlength=24)
