"""The event director: dynamic processes layered onto any workload.

The paper evaluates static batches, but its central mechanism — the
history table warm-starting the STGA — earns its keep when the grid
*churns*.  This module is the churn generator.  Given a base
:class:`~repro.workloads.base.Scenario` from any registered workload,
:func:`apply_dynamics` layers independent stochastic processes on top
and returns a :class:`DynamicScenario` carrying a
:class:`~repro.grid.timeline.DynamicTimeline` for the engine:

* ``dynamics=poisson`` — redraw the arrival stream as a homogeneous
  Poisson process at the base workload's empirical rate;
* ``cancel=RATE`` — job reneging: each job draws an exponential
  patience with mean ``1/RATE`` and withdraws if still queued when it
  runs out;
* ``breakdown=RATE`` (+ optional ``repair=RATE``) — per-site
  alternating exponential up/down times, the classic machine-breakdown
  model; the default repair rate is ten times the breakdown rate;
* ``ptvar=SIGMA`` — processing-time variability: per-job lognormal
  execution-time factors with unit mean (``exp(N(-σ²/2, σ))``);
* ``due=TIGHTNESS`` — due dates ``arrival + TIGHTNESS · workload /
  mean_speed`` for the metrics layer;
* ``online=true`` — switch the engine from periodic batch ticks to
  event-driven rescheduling of the residual job set.

Every stream is a named child of ``util.rng.RngFactory(seed)``
(``"dynamics-arrivals"``, ``"dynamics-cancel"``, …), so dynamic runs
are exactly as deterministic as static ones and independent knobs
never perturb each other's draws.

These keys travel inside ordinary workload refs —
``"nas?dynamics=poisson&breakdown=0.01"`` — split off and applied by
:func:`repro.registry.build_workload`; recorded runs come back as the
registered ``"replay?path=TRACE.jsonl"`` workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.job import Job
from repro.grid.timeline import DynamicTimeline, SiteOutage
from repro.grid.trace import GridTrace, load_trace
from repro.registry import register_workload
from repro.util.rng import RngFactory
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.base import Scenario

__all__ = [
    "DYNAMICS_PARAMS",
    "DynamicScenario",
    "apply_dynamics",
    "validate_dynamics_params",
    "scenario_from_trace",
]

#: the workload-ref keys the director consumes (everything else in a
#: ref reaches the base generator's ``build``)
DYNAMICS_PARAMS = frozenset(
    {"dynamics", "cancel", "breakdown", "repair", "ptvar", "due", "online"}
)


@dataclass(frozen=True)
class DynamicScenario(Scenario):
    """A scenario plus the dynamic timeline the engine should execute.

    Drops in anywhere a :class:`~repro.workloads.base.Scenario` is
    accepted; the experiment runner forwards ``timeline`` to
    :meth:`~repro.grid.engine.GridSimulator.run`.
    """

    timeline: DynamicTimeline = DynamicTimeline()


def _positive(params: dict, key: str) -> None:
    value = params[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"dynamics param {key!r} must be a positive number, got {value!r}"
        )
    if not value > 0:
        raise ValueError(
            f"dynamics param {key!r} must be positive, got {value!r}"
        )


def validate_dynamics_params(params: dict) -> None:
    """Reject malformed dynamic-scenario ref params with ``ValueError``.

    Shared by :func:`repro.registry.validate_variant` (so a bad knob
    fails at variant construction) and :func:`apply_dynamics` itself.
    """
    unknown = set(params) - DYNAMICS_PARAMS
    if unknown:
        raise ValueError(
            f"unknown dynamics param(s) {sorted(unknown)}; "
            f"known: {sorted(DYNAMICS_PARAMS)}"
        )
    dynamics = params.get("dynamics")
    if dynamics is not None and dynamics != "poisson":
        raise ValueError(
            f"dynamics must be 'poisson', got {dynamics!r}"
        )
    for key in ("cancel", "breakdown", "repair", "ptvar", "due"):
        if params.get(key) is not None:
            _positive(params, key)
    if params.get("repair") is not None and params.get("breakdown") is None:
        raise ValueError("dynamics param 'repair' requires 'breakdown'")
    online = params.get("online", False)
    if not isinstance(online, bool):
        raise ValueError(
            f"dynamics param 'online' must be a boolean "
            f"(online=true / online=false), got {online!r}"
        )


def _redraw_arrivals(
    scenario: Scenario, rng: np.random.Generator
) -> tuple[Job, ...]:
    """Replace arrivals with a Poisson stream at the empirical rate."""
    jobs = scenario.jobs
    n = len(jobs)
    span = scenario.span
    if n < 2 or span <= 0:
        raise ValueError(
            "dynamics=poisson needs a workload with a positive arrival span"
        )
    rate = (n - 1) / span  # n-1 inter-arrival gaps cover the span
    times = poisson_arrivals(n, rate, rng, start=jobs[0].arrival)
    return tuple(
        Job(
            job_id=j.job_id,
            arrival=float(t),
            workload=j.workload,
            security_demand=j.security_demand,
            nodes=j.nodes,
        )
        for j, t in zip(jobs, times)
    )


def _draw_outages(
    jobs: tuple[Job, ...],
    grid,
    rng: np.random.Generator,
    breakdown: float,
    repair: float,
) -> tuple[SiteOutage, ...]:
    """Alternating exponential up/down windows per site, id order."""
    # Enough horizon to cover the whole run: the last arrival plus
    # twice the serial-execution bound on the grid's total speed.
    total_work = float(sum(j.workload for j in jobs))
    horizon = (
        jobs[-1].arrival + 2.0 * total_work / grid.total_speed + 1.0
    )
    outages: list[SiteOutage] = []
    for site in range(grid.n_sites):
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / breakdown))
            if t > horizon:
                break
            down = float(rng.exponential(1.0 / repair))
            outages.append(SiteOutage(site_id=site, start=t, end=t + down))
            t += down
    return tuple(outages)


def apply_dynamics(
    scenario: Scenario,
    *,
    seed: int,
    dynamics: str | None = None,
    cancel: float | None = None,
    breakdown: float | None = None,
    repair: float | None = None,
    ptvar: float | None = None,
    due: float | None = None,
    online: bool = False,
) -> DynamicScenario:
    """Layer the requested dynamic processes onto ``scenario``.

    Each process draws from its own named child stream of
    ``RngFactory(seed)``, so enabling one knob never shifts another's
    draws and the whole construction is reproducible from
    ``(scenario, seed, params)`` alone.
    """
    params = {
        "dynamics": dynamics,
        "cancel": cancel,
        "breakdown": breakdown,
        "repair": repair,
        "ptvar": ptvar,
        "due": due,
        "online": online,
    }
    validate_dynamics_params({k: v for k, v in params.items() if v is not None or k == "online"})
    rngs = RngFactory(seed)

    jobs = scenario.jobs
    if dynamics == "poisson":
        jobs = _redraw_arrivals(scenario, rngs.stream("dynamics-arrivals"))

    cancels: tuple[tuple[int, float], ...] = ()
    if cancel is not None:
        patience = rngs.stream("dynamics-cancel").exponential(
            1.0 / cancel, size=len(jobs)
        )
        cancels = tuple(
            (j.job_id, j.arrival + float(p)) for j, p in zip(jobs, patience)
        )

    outages: tuple[SiteOutage, ...] = ()
    if breakdown is not None:
        repair_rate = repair if repair is not None else 10.0 * breakdown
        outages = _draw_outages(
            jobs,
            scenario.grid,
            rngs.stream("dynamics-breakdown"),
            breakdown,
            repair_rate,
        )

    factors: tuple[tuple[int, float], ...] = ()
    if ptvar is not None:
        draws = rngs.stream("dynamics-ptvar").normal(
            loc=-(ptvar**2) / 2.0, scale=ptvar, size=len(jobs)
        )
        factors = tuple(
            (j.job_id, float(np.exp(d))) for j, d in zip(jobs, draws)
        )

    dues: tuple[tuple[int, float], ...] = ()
    if due is not None:
        mean_speed = float(scenario.grid.speeds.mean())
        dues = tuple(
            (j.job_id, j.arrival + due * j.workload / mean_speed) for j in jobs
        )

    timeline = DynamicTimeline(
        cancels=cancels,
        outages=outages,
        exec_factors=factors,
        due_dates=dues,
        online=bool(online),
    )
    return DynamicScenario(
        name=scenario.name,
        grid=scenario.grid,
        jobs=jobs,
        timeline=timeline,
    )


def scenario_from_trace(trace: GridTrace, *, name: str | None = None):
    """Rebuild the scenario a recorded trace executed.

    Returns a :class:`DynamicScenario` when the trace carries a
    timeline, else a plain static scenario.
    """
    if name is None:
        name = str(trace.meta.get("name") or "replay")
    if trace.timeline is not None:
        return DynamicScenario(
            name=name, grid=trace.grid, jobs=trace.jobs, timeline=trace.timeline
        )
    return Scenario(name=name, grid=trace.grid, jobs=trace.jobs)


@register_workload(
    "replay",
    description="re-execute a recorded grid trace as a scenario "
    '(ref: "replay?path=TRACE.jsonl")',
)
def _replay_scenarios(variant, seed: int, scale: float = 1.0, *, path=None):
    """Scenario loaded verbatim from a recorded grid trace.

    The trace pins the grid, the job stream and the dynamic timeline
    exactly as they were recorded, so ``seed`` and ``scale`` are
    deliberately ignored and no training stream is returned — replay
    re-executes, it does not re-generate.
    """
    if not path:
        raise ValueError(
            'the "replay" workload needs a path parameter, '
            'e.g. "replay?path=TRACE.jsonl"'
        )
    trace = load_trace(str(path))
    return scenario_from_trace(trace), None
