"""The persistent job queue: ``jobs`` rows inside the SQLite run store.

A *job* is one submitted :class:`~repro.experiments.spec.ExperimentSpec`
plus its dispatch state.  Jobs live in the same schema-versioned
database file as the run records they produce (migration #3 of
:data:`repro.experiments.store.sqlite.MIGRATIONS`), so the queue gets
the store's durability properties for free — WAL mode, ``BEGIN
IMMEDIATE`` write serialization, append-only migrations under the Q1
lint lock — and a job row can never outlive or predate the database
holding its result.

State machine
-------------
::

    pending ──► running ──► done          (terminal)
       │           │
       │           └──────► failed        (terminal)
       └──► cancelled                     (terminal; pending only —
                                           a running job is already
                                           executing, cancel conflicts)

``running`` is *not* proof of life: a service killed mid-job leaves
the row ``running`` forever.  That is deliberate — on restart the
dispatcher re-adopts every ``running`` job and finishes it via the
manifest's crash-resume path, so the orphaned state is the recovery
signal, not a leak.

Concurrency
-----------
Every transition happens inside ``BEGIN IMMEDIATE`` with the current
state re-checked under the write lock.  :meth:`JobQueue.claim` is the
critical one: two dispatchers (or a dispatcher racing a cancel) both
try to move the oldest ``pending`` job; the lock serializes them and
the loser simply sees the state already changed — a job is never lost
and never double-run (``tests/test_service.py`` proves it with two
processes).

``sqlite3`` connections have thread affinity, so each thread owns its
own :class:`JobQueue` (the dispatcher thread and every HTTP request
handler open one); they coordinate purely through the database file.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.manifest import spec_sha256
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store.sqlite import apply_migrations
from repro.util.clock import utc_now_iso

__all__ = ["JOB_STATES", "Job", "JobQueue", "JobStateError"]

#: the job life cycle, in order of progress
JOB_STATES = ("pending", "running", "done", "failed", "cancelled")

#: legal transitions: new state -> states it may be entered from
_ALLOWED_FROM = {
    "running": ("pending",),
    "done": ("running",),
    "failed": ("running",),
    "cancelled": ("pending",),
}

_COLUMNS = (
    "id, name, spec, spec_sha256, state, created_at, updated_at, "
    "started_at, finished_at, error, run_ref"
)
#: whole statements composed once at import time from the constant
#: column list above, so every execute() call site is a static string
_SELECT_ONE = f"SELECT {_COLUMNS} FROM jobs WHERE id = ?"
_SELECT_ALL = f"SELECT {_COLUMNS} FROM jobs ORDER BY id"
_SELECT_BY_STATE = (
    f"SELECT {_COLUMNS} FROM jobs WHERE state = ? ORDER BY id"
)


class JobStateError(ValueError):
    """An illegal job transition (e.g. cancelling a running job).

    Carries the job id and its actual state so the HTTP layer can turn
    it into a 409 Conflict naming what the job is really doing.
    """

    def __init__(self, job_id: int, state: str, wanted: str):
        self.job_id = job_id
        self.state = state
        self.wanted = wanted
        super().__init__(
            f"job {job_id} is {state!r}, cannot move to {wanted!r} "
            f"(legal predecessors: {_ALLOWED_FROM[wanted]})"
        )


@dataclass(frozen=True)
class Job:
    """One queued experiment: the spec document plus dispatch state.

    ``spec_text`` is the spec's canonical JSON exactly as stored (the
    dispatcher re-parses it at execution time); ``spec_sha256`` is the
    canonical-form hash — the same function manifests use — so a
    submitted spec, its manifest and its job row all agree on
    identity.  ``run_ref`` names the merged run record in the store
    once the job is ``done``.
    """

    id: int
    name: str
    spec_text: str
    spec_sha256: str
    state: str
    created_at: str
    updated_at: str
    started_at: str | None = None
    finished_at: str | None = None
    error: str | None = None
    run_ref: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready payload for the HTTP API (spec text omitted —
        fetch the result, not the input, over the wire)."""
        return {
            "id": self.id,
            "name": self.name,
            "spec_sha256": self.spec_sha256,
            "state": self.state,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "run_ref": self.run_ref,
        }


def _job(row: tuple) -> Job:
    return Job(*row)


class JobQueue:
    """The jobs table of one service database, one connection.

    Opening a queue migrates the database to schema head (shared
    routine with :class:`~repro.experiments.store.sqlite.SqliteRunStore`
    — a service-only open of a fresh file still creates every table).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # autocommit mode: transactions are explicit BEGIN IMMEDIATE
        # blocks, same discipline as the run store
        self._conn = sqlite3.connect(self.path, isolation_level=None)
        try:
            apply_migrations(self._conn, self.path)
        except BaseException:
            self._conn.close()
            raise

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- intake -------------------------------------------------------

    def submit(self, spec: ExperimentSpec) -> Job:
        """Enqueue a spec as a new ``pending`` job.

        The spec is serialized to its canonical JSON once, here; the
        stored text is what the dispatcher will execute, so what you
        submitted is what runs — byte for byte.
        """
        now = utc_now_iso()
        text = spec.to_json()
        digest = spec_sha256(spec)
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = self._conn.execute(
                """
                INSERT INTO jobs (name, spec, spec_sha256, state,
                                  created_at, updated_at)
                VALUES (?, ?, ?, 'pending', ?, ?)
                """,
                (spec.name, text, digest, now, now),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        job_id = cursor.lastrowid
        assert job_id is not None
        return self.get(job_id)

    # -- queries ------------------------------------------------------

    def get(self, job_id: int) -> Job:
        """The job row for ``job_id`` (``KeyError`` if absent)."""
        row = self._conn.execute(
            _SELECT_ONE, (int(job_id),)
        ).fetchone()
        if row is None:
            raise KeyError(f"no job {job_id} in {self.path}")
        return _job(row)

    def list_jobs(self, state: str | None = None) -> list[Job]:
        """All jobs oldest-first, optionally filtered by state."""
        if state is not None and state not in JOB_STATES:
            raise ValueError(
                f"unknown job state {state!r}; choose from {JOB_STATES}"
            )
        if state is None:
            rows = self._conn.execute(_SELECT_ALL)
        else:
            rows = self._conn.execute(_SELECT_BY_STATE, (state,))
        return [_job(row) for row in rows]

    # -- transitions --------------------------------------------------

    def claim(self) -> Job | None:
        """Atomically move the oldest ``pending`` job to ``running``.

        The dispatcher's intake: ``BEGIN IMMEDIATE`` takes the write
        lock *before* selecting, so two dispatchers — or a dispatcher
        racing a concurrent submit or cancel — serialize here; each
        pending job is claimed exactly once.  Returns ``None`` when
        the queue has no pending work.
        """
        now = utc_now_iso()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT id FROM jobs WHERE state = 'pending' "
                "ORDER BY id LIMIT 1"
            ).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return None
            (job_id,) = row
            self._conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ?, "
                "updated_at = ? WHERE id = ?",
                (now, now, job_id),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return self.get(job_id)

    def finish(self, job_id: int, run_ref: str) -> Job:
        """``running`` → ``done``, recording the stored run's ref."""
        return self._terminal(job_id, "done", run_ref=run_ref)

    def fail(self, job_id: int, error: str) -> Job:
        """``running`` → ``failed``, recording the captured error."""
        return self._terminal(job_id, "failed", error=error)

    def cancel(self, job_id: int) -> Job:
        """``pending`` → ``cancelled``.

        Only a job the dispatcher has not claimed can be cancelled —
        a ``running`` job is already executing (and a terminal one is
        history); both raise :class:`JobStateError`, which the HTTP
        layer maps to 409 Conflict.  The ``BEGIN IMMEDIATE`` check
        makes cancel-vs-claim a clean race: exactly one side wins.
        """
        return self._terminal(job_id, "cancelled")

    def _terminal(
        self,
        job_id: int,
        state: str,
        *,
        run_ref: str | None = None,
        error: str | None = None,
    ) -> Job:
        now = utc_now_iso()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT state FROM jobs WHERE id = ?", (int(job_id),)
            ).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                raise KeyError(f"no job {job_id} in {self.path}")
            (current,) = row
            if current not in _ALLOWED_FROM[state]:
                self._conn.execute("COMMIT")
                raise JobStateError(int(job_id), current, state)
            self._conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, "
                "updated_at = ?, run_ref = ?, error = ? WHERE id = ?",
                (state, now, now, run_ref, error, int(job_id)),
            )
            self._conn.execute("COMMIT")
        except (KeyError, JobStateError):
            raise
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return self.get(job_id)
