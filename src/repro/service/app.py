"""The WSGI application: the service's JSON-over-HTTP surface.

Endpoints (all JSON unless noted; see ``docs/SERVICE.md`` for
request/response examples)::

    GET  /healthz                      liveness + schema version
    POST /v1/experiments               submit a spec -> job (201)
    GET  /v1/experiments               list jobs
    GET  /v1/experiments/{id}          one job + shard progress
    GET  /v1/experiments/{id}/result   the run record, verbatim
    POST /v1/experiments/{id}/cancel   cancel a pending job
    GET  /v1/runs                      store summaries
    GET  /v1/runs/{ref}                one record's payload, verbatim
    POST /v1/compare                   diff two stored runs

Error envelope: every non-2xx response is ``{"error": "<reason>"}`` —
a malformed spec body is ``422 {"error": "invalid spec: ..."}`` via
the same :func:`~repro.experiments.spec.parse_spec_text` helper the
CLI uses (exit 2 there, 422 here; one validator, two dialects), an
unknown id/ref is 404, an illegal transition (cancelling a running
job) is 409 naming the job's actual state.

The two *result* endpoints return the stored payload **text** via
:meth:`~repro.experiments.store.base.RunStore.payload`, never a
re-serialization — byte-identity with ``repro-grid run`` records is
the service's core invariant and re-dumping JSON is where it would
silently die.

Handlers open a fresh :class:`~repro.service.queue.JobQueue` / store
per request: ``sqlite3`` connections are single-thread and the server
is threading, so connection-per-request is the simple correct choice
(WAL + busy timeout make it cheap enough at this scale).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.manifest import MANIFEST_JSON, load_manifest
from repro.experiments.spec import SpecError, parse_spec_text
from repro.experiments.store import (
    compare_runs,
    find_regressions,
    open_store,
)
from repro.experiments.store.sqlite import MIGRATIONS
from repro.service.dispatcher import job_dir
from repro.service.queue import JobQueue, JobStateError

__all__ = ["ServiceApp"]

#: request bodies larger than this are refused outright (413) — specs
#: are small documents; anything bigger is a mistake or an attack
MAX_BODY_BYTES = 8 * 1024 * 1024


class _HttpError(Exception):
    """Internal control flow: abort the request with this status."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


_STATUS_LINES = {
    200: "200 OK",
    201: "201 Created",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    409: "409 Conflict",
    413: "413 Payload Too Large",
    422: "422 Unprocessable Entity",
    500: "500 Internal Server Error",
}


class ServiceApp:
    """WSGI callable over one service database.

    ``db_path`` is the shared queue+store SQLite file; ``work_dir``
    the per-job manifest tree (for the progress endpoint).
    """

    def __init__(self, db_path: str | Path, work_dir: str | Path):
        self.db_path = Path(db_path)
        self.work_dir = Path(work_dir)

    # -- WSGI plumbing ------------------------------------------------

    def __call__(self, environ, start_response):
        try:
            status, body, content_type = self._dispatch(environ)
        except _HttpError as exc:
            status = exc.status
            body = json.dumps({"error": exc.message}) + "\n"
            content_type = "application/json"
        except Exception as exc:  # noqa: BLE001 — a handler bug must
            # surface as a 500 envelope, never a half-written response
            status = 500
            body = json.dumps(
                {"error": f"{type(exc).__name__}: {exc}"}
            ) + "\n"
            content_type = "application/json"
        payload = body.encode("utf-8")
        start_response(
            _STATUS_LINES[status],
            [
                ("Content-Type", f"{content_type}; charset=utf-8"),
                ("Content-Length", str(len(payload))),
            ],
        )
        return [payload]

    def _dispatch(self, environ) -> tuple[int, str, str]:
        method = environ["REQUEST_METHOD"]
        path = environ.get("PATH_INFO", "/")
        parts = [p for p in path.split("/") if p]
        if parts == ["healthz"]:
            self._require(method, "GET")
            return self._json(200, {
                "status": "ok",
                "store": f"sqlite:{self.db_path}",
                "schema_version": len(MIGRATIONS),
            })
        if len(parts) >= 2 and parts[0] == "v1":
            if parts[1] == "experiments":
                return self._experiments(method, parts[2:], environ)
            if parts[1] == "runs":
                return self._runs(method, parts[2:])
            if parts[1] == "compare" and len(parts) == 2:
                self._require(method, "POST")
                return self._compare(environ)
        raise _HttpError(404, f"no such endpoint: {method} {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(
                405, f"method {method} not allowed (use {expected})"
            )

    @staticmethod
    def _json(status: int, payload: dict) -> tuple[int, str, str]:
        return (
            status,
            json.dumps(payload, indent=1) + "\n",
            "application/json",
        )

    @staticmethod
    def _body(environ) -> str:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            raise _HttpError(400, "bad Content-Length header") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"request body over {MAX_BODY_BYTES} bytes"
            )
        raw = environ["wsgi.input"].read(length) if length else b""
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise _HttpError(400, f"body is not UTF-8: {exc}") from None

    @staticmethod
    def _json_body(environ) -> dict:
        text = ServiceApp._body(environ)
        try:
            data = json.loads(text) if text else {}
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise _HttpError(
                400,
                f"body top level is {type(data).__name__}, expected "
                "an object",
            )
        return data

    @staticmethod
    def _job_id(raw: str) -> int:
        try:
            return int(raw)
        except ValueError:
            raise _HttpError(404, f"no such job: {raw!r}") from None

    # -- /v1/experiments ----------------------------------------------

    def _experiments(
        self, method: str, rest: list[str], environ
    ) -> tuple[int, str, str]:
        with JobQueue(self.db_path) as queue:
            if not rest:
                if method == "POST":
                    return self._submit(queue, environ)
                self._require(method, "GET")
                return self._json(200, {
                    "jobs": [j.to_dict() for j in queue.list_jobs()]
                })
            job_id = self._job_id(rest[0])
            try:
                job = queue.get(job_id)
            except KeyError as exc:
                raise _HttpError(404, exc.args[0]) from None
            if len(rest) == 1:
                self._require(method, "GET")
                payload = job.to_dict()
                payload["progress"] = self._progress(job_id)
                return self._json(200, payload)
            if rest[1:] == ["result"]:
                self._require(method, "GET")
                return self._result(job)
            if rest[1:] == ["cancel"]:
                self._require(method, "POST")
                try:
                    cancelled = queue.cancel(job_id)
                except JobStateError as exc:
                    raise _HttpError(409, str(exc)) from None
                return self._json(200, cancelled.to_dict())
        raise _HttpError(
            404, f"no such endpoint under /v1/experiments/{job_id}"
        )

    def _submit(self, queue: JobQueue, environ) -> tuple[int, str, str]:
        text = self._body(environ)
        try:
            spec = parse_spec_text(text)
            # resolve scheduler refs now: a spec naming an unknown
            # scheduler would otherwise be accepted and fail hours
            # later inside the dispatcher
            spec.validate()
        except SpecError as exc:
            raise _HttpError(422, str(exc)) from None
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if isinstance(exc, KeyError) else str(exc)
            raise _HttpError(422, f"invalid spec: {message}") from None
        job = queue.submit(spec)
        return self._json(201, job.to_dict())

    def _progress(self, job_id: int) -> dict | None:
        """Shard-level progress from the job's manifest (None before
        dispatch writes one).  Includes the stale-shard report: ages
        of ``running`` shards and which look abandoned."""
        manifest_path = job_dir(self.work_dir, job_id) / MANIFEST_JSON
        if not manifest_path.is_file():
            return None
        try:
            manifest = load_manifest(manifest_path)
        except (OSError, ValueError):
            return None
        running = {}
        for entry in manifest.shards:
            age = entry.running_age_seconds()
            if age is not None:
                running[str(entry.index)] = round(age, 3)
        return {
            "n_shards": manifest.n_shards,
            "counts": manifest.counts(),
            "completion": manifest.completion,
            "running_age_seconds": running,
            "stale": list(manifest.stale_indices()),
        }

    def _result(self, job) -> tuple[int, str, str]:
        if job.state != "done":
            raise _HttpError(
                409,
                f"job {job.id} is {job.state!r}, not 'done' — no "
                "result to serve"
                + (f" (error: {job.error})" if job.error else ""),
            )
        assert job.run_ref is not None
        with open_store(f"sqlite:{self.db_path}") as store:
            try:
                text = store.payload(job.run_ref)
            except KeyError as exc:
                raise _HttpError(404, exc.args[0]) from None
        return (200, text, "application/json")

    # -- /v1/runs -----------------------------------------------------

    def _runs(self, method: str, rest: list[str]) -> tuple[int, str, str]:
        self._require(method, "GET")
        with open_store(f"sqlite:{self.db_path}") as store:
            if not rest:
                return self._json(200, {
                    "runs": [
                        {
                            "ref": s.ref,
                            "name": s.name,
                            "created_at": s.created_at,
                            "git_sha": s.git_sha,
                            "n_variants": s.n_variants,
                            "n_seeds": s.n_seeds,
                            "n_schedulers": s.n_schedulers,
                        }
                        for s in store.list()
                    ]
                })
            if len(rest) == 1:
                try:
                    text = store.payload(rest[0])
                except KeyError as exc:
                    raise _HttpError(404, exc.args[0]) from None
                except ValueError as exc:
                    raise _HttpError(400, str(exc)) from None
                return (200, text, "application/json")
        raise _HttpError(404, "no such endpoint under /v1/runs")

    # -- /v1/compare --------------------------------------------------

    def _compare(self, environ) -> tuple[int, str, str]:
        body = self._json_body(environ)
        for key in ("baseline", "candidate"):
            if not isinstance(body.get(key), str):
                raise _HttpError(
                    400, f"compare body needs a string {key!r} ref"
                )
        threshold = body.get("threshold", 5.0)
        if not isinstance(threshold, (int, float)) or threshold < 0:
            raise _HttpError(
                400, f"threshold must be a number >= 0, got {threshold!r}"
            )
        with open_store(f"sqlite:{self.db_path}") as store:
            try:
                rows = compare_runs(
                    body["baseline"], body["candidate"], store=store
                )
            except (KeyError, FileNotFoundError) as exc:
                # over HTTP a ref is a store ref, never a local path —
                # compare_runs's path fallback missing means 404
                message = (
                    exc.args[0] if isinstance(exc, KeyError) else str(exc)
                )
                raise _HttpError(404, message) from None
            except (OSError, ValueError) as exc:
                raise _HttpError(400, str(exc)) from None
        regressions = find_regressions(rows, threshold_pct=float(threshold))
        return self._json(200, {
            "cells": len(rows),
            "same": sum(r.verdict == "same" for r in rows),
            "overlap": sum(r.verdict == "overlap" for r in rows),
            "diverged": sum(r.verdict == "diverged" for r in rows),
            "threshold_pct": float(threshold),
            "regressions": [
                {
                    "variant": r.variant,
                    "scheduler": r.scheduler,
                    "metric": r.metric,
                    "mean_a": r.mean_a,
                    "mean_b": r.mean_b,
                }
                for r in regressions
            ],
        })
