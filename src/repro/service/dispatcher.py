"""The background dispatcher: claims jobs, runs them, survives kills.

One daemon thread per service process.  The loop is deliberately dumb:
adopt orphans, then ``claim → execute → finish/fail`` until stopped —
all the interesting machinery (deterministic sharding, per-transition
manifest persistence, retries, resume) is the existing
:mod:`repro.experiments.dispatch` layer, reused unchanged.  Each job
executes with its own manifest directory (``job-<id>/`` under the
service work dir), so a job *is* a PR 5 sharded run and inherits its
crash-resume guarantee wholesale:

* the service killed mid-job leaves the job row ``running`` and the
  manifest a consistent snapshot of exactly what completed;
* on the next startup :meth:`Dispatcher.adopt_orphans` finds every
  ``running`` job and finishes it via
  :func:`~repro.experiments.dispatch.resume_manifest` — only the
  shards that never reached ``done`` are redone, and the merged
  record is bit-identical to an uninterrupted run.

Thread affinity: ``sqlite3`` connections are single-thread, so the
dispatcher opens its own :class:`~repro.service.queue.JobQueue` and
:class:`~repro.experiments.store.RunStore` *inside* the thread; it
shares only the database file with the HTTP handlers.
"""

from __future__ import annotations

import threading
import traceback
from pathlib import Path

from repro.experiments.config import PaperDefaults
from repro.experiments.dispatch import (
    resume_manifest,
    run_sharded,
)
from repro.experiments.manifest import MANIFEST_JSON, load_manifest
from repro.experiments.spec import parse_spec_text
from repro.experiments.store import open_store
from repro.service.queue import Job, JobQueue

__all__ = ["Dispatcher", "job_dir"]


def job_dir(work_dir: str | Path, job_id: int) -> Path:
    """Job ``job_id``'s manifest directory under the service work dir.

    A pure function of the id, so the dispatcher, the progress
    endpoint and a post-mortem operator all find the same
    ``manifest.json`` without a column recording it.
    """
    return Path(work_dir) / f"job-{job_id}"


class Dispatcher:
    """Claims and executes queued jobs on a daemon thread.

    ``db_path`` is the service database (queue + store in one file);
    ``work_dir`` holds the per-job manifest directories.  ``n_shards``
    and ``max_workers`` size each job's sharded dispatch
    (``max_workers=1`` runs shards sequentially in-process — the
    deterministic tier-1 path); ``max_retries`` is per shard, per
    dispatch, as in ``repro-grid resume``.
    """

    def __init__(
        self,
        db_path: str | Path,
        work_dir: str | Path,
        *,
        defaults: PaperDefaults = PaperDefaults(),
        n_shards: int = 2,
        max_workers: int | None = 1,
        max_retries: int = 1,
        poll_seconds: float = 0.2,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.db_path = Path(db_path)
        self.work_dir = Path(work_dir)
        self.defaults = defaults
        self.n_shards = n_shards
        self.max_workers = max_workers
        self.max_retries = max_retries
        self.poll_seconds = poll_seconds
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Start the dispatch loop (idempotent while running)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-dispatcher", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float | None = 10.0) -> None:
        """Signal the loop to exit and wait for the thread.

        An in-flight job finishes its current dispatch first — state
        is persisted after every shard anyway, so even an impatient
        caller (or a kill) loses nothing but wall-clock time.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    # -- the loop -----------------------------------------------------

    def _loop(self) -> None:
        queue = JobQueue(self.db_path)
        store = open_store(f"sqlite:{self.db_path}")
        try:
            self.adopt_orphans(queue, store)
            while not self._stop.is_set():
                job = queue.claim()
                if job is None:
                    self._stop.wait(self.poll_seconds)
                    continue
                self._execute(job, queue, store)
        finally:
            store.close()
            queue.close()

    def adopt_orphans(self, queue: JobQueue, store) -> None:
        """Finish every job a dead service left ``running``.

        A job with a manifest on disk resumes (redoing only the shards
        that never reached ``done``); one killed before its manifest
        was ever written simply runs from scratch — either way the job
        reaches a terminal state and its record lands in the store.
        """
        for job in queue.list_jobs(state="running"):
            if self._stop.is_set():
                return
            self._execute(job, queue, store, adopted=True)

    def _execute(
        self, job: Job, queue: JobQueue, store, *, adopted: bool = False
    ) -> None:
        manifest_dir = job_dir(self.work_dir, job.id)
        manifest_path = manifest_dir / MANIFEST_JSON
        try:
            spec = parse_spec_text(job.spec_text)
            if adopted and manifest_path.is_file():
                manifest, merged = resume_manifest(
                    manifest_path,
                    defaults=self.defaults,
                    max_workers=self.max_workers,
                    max_retries=self.max_retries,
                )
            else:
                merged = run_sharded(
                    spec,
                    self.n_shards,
                    defaults=self.defaults,
                    max_workers=self.max_workers,
                    max_retries=self.max_retries,
                    manifest_dir=manifest_dir,
                )
                manifest = load_manifest(manifest_path)
            stored = store.save(
                merged,
                name=spec.name,
                merged_from=[
                    str(manifest.shard_run_dir(manifest_path, i))
                    for i in range(manifest.n_shards)
                ],
                manifest={
                    "path": str(manifest_path),
                    "spec_sha256": manifest.spec_hash,
                },
            )
            queue.finish(job.id, stored.ref)
        except Exception as exc:  # noqa: BLE001 — job isolation: one
            # bad job must never take down the dispatch loop
            queue.fail(job.id, f"{type(exc).__name__}: {exc}")
            traceback.print_exc()
