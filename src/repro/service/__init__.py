"""The long-lived experiment service: queue, dispatcher, HTTP API.

Everything else in the package is a one-shot CLI invocation; this
package is the layer that *stays alive* and owns the store — the
fuzzbench scheduler/measurer split, stdlib-only.  Three pieces:

* :mod:`repro.service.queue` — a persistent job queue as
  schema-versioned tables inside the SQLite run store (one database
  file holds both the queue and the results it produces, so a job and
  its record commit to the same durability domain).
* :mod:`repro.service.dispatcher` — a background thread that claims
  ``pending`` jobs under ``BEGIN IMMEDIATE``, executes them through
  the existing ``shard_spec``/``run_sharded``/manifest machinery with
  a per-job manifest directory, and saves the merged record into the
  store.  On startup it re-adopts orphaned ``running`` jobs via
  ``resume_manifest`` — PR 5's crash-resume guarantee, inherited
  wholesale: ``kill -9`` the service, restart it, the job finishes.
* :mod:`repro.service.app` / :mod:`repro.service.server` /
  :mod:`repro.service.client` — the JSON-over-HTTP surface
  (``wsgiref``, threading server) and its typed client, used by the
  ``repro-grid serve`` / ``submit`` / ``jobs`` / ``cancel``
  subcommands and the tests alike.

The core invariant, enforced by ``tests/test_service.py`` and the CI
service smoke job: submit → poll → result over HTTP returns a run
record byte-identical (modulo timing provenance) to a direct
:func:`~repro.experiments.spec.run_spec` of the same spec — the
service adds availability, never a different answer.

See ``docs/SERVICE.md`` for the endpoint reference, the queue state
machine, and restart semantics.
"""

from __future__ import annotations

from repro.service.client import ServiceClient, ServiceError
from repro.service.dispatcher import Dispatcher
from repro.service.queue import JOB_STATES, Job, JobQueue, JobStateError
from repro.service.server import DEFAULT_HOST, DEFAULT_PORT, serve

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "JOB_STATES",
    "Dispatcher",
    "Job",
    "JobQueue",
    "JobStateError",
    "ServiceClient",
    "ServiceError",
    "serve",
]
