"""The HTTP server: threading wsgiref around the app + dispatcher.

``serve()`` is what ``repro-grid serve`` calls: it opens (creating if
needed) the service database, starts the background
:class:`~repro.service.dispatcher.Dispatcher`, and serves the
:class:`~repro.service.app.ServiceApp` until interrupted.  Stdlib
only — ``wsgiref.simple_server`` with ``socketserver.ThreadingMixIn``
so a long-polling client cannot starve the health check.

Port 0 binds an ephemeral port; the *bound* address is always printed
as ``listening on http://HOST:PORT`` (flushed), which is the line the
tests and the CI smoke job parse to find the server.
"""

from __future__ import annotations

import sys
from pathlib import Path
from socketserver import ThreadingMixIn
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer

from repro.experiments.config import PaperDefaults
from repro.service.app import ServiceApp
from repro.service.dispatcher import Dispatcher

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "make_server",
    "serve",
    "work_dir_for",
]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8750


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """One thread per request, none of them blocking shutdown."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Request log on stderr (stdout is the service's own protocol:
    the ``listening on …`` line must stay parseable)."""

    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        sys.stderr.write(
            "%s - %s\n" % (self.address_string(), format % args)
        )


def work_dir_for(db_path: str | Path) -> Path:
    """The per-job manifest tree for a service database: a sibling
    directory named ``<db>.jobs`` — next to the data it belongs to,
    and derivable by every process that knows the database path."""
    db_path = Path(db_path)
    return db_path.parent / (db_path.name + ".jobs")


def make_server(
    db_path: str | Path,
    *,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> WSGIServer:
    """A bound (not yet serving) server for the service app.

    Split out from :func:`serve` so tests can bind port 0, read the
    real port from ``server_address``, and drive requests in-process.
    """
    app = ServiceApp(db_path, work_dir_for(db_path))
    server = _ThreadingWSGIServer((host, port), _QuietHandler)
    server.set_app(app)
    return server


def serve(
    db_path: str | Path,
    *,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    defaults: PaperDefaults = PaperDefaults(),
    n_shards: int = 2,
    max_workers: int | None = 1,
    max_retries: int = 1,
) -> int:
    """Run the service until interrupted; returns a process exit code.

    Startup order matters: the dispatcher starts *before* the listener
    so orphaned ``running`` jobs from a killed predecessor begin
    resuming even if no client ever connects.
    """
    dispatcher = Dispatcher(
        db_path,
        work_dir_for(db_path),
        defaults=defaults,
        n_shards=n_shards,
        max_workers=max_workers,
        max_retries=max_retries,
    )
    dispatcher.start()
    server = make_server(db_path, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    print(f"listening on http://{bound_host}:{bound_port}", flush=True)
    print(
        f"store sqlite:{db_path}; job manifests under "
        f"{work_dir_for(db_path)}",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        dispatcher.stop()
    return 0
