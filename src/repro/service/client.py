"""Typed HTTP client for the experiment service.

The one client everything uses — the ``repro-grid submit`` / ``jobs``
/ ``cancel`` subcommands, the tests, and the CI smoke job — so the
CLI and the test suite exercise the exact HTTP surface a remote
caller would, not a private shortcut.  Stdlib ``urllib`` only.

Non-2xx responses raise :class:`ServiceError` carrying the status and
the server's ``{"error": ...}`` message; connection failures surface
as the underlying ``URLError``.  :meth:`ServiceClient.result_text`
returns the run-record payload *text* untouched — byte-identity with
``repro-grid run`` records survives the wire only if nobody re-dumps
the JSON.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.experiments.spec import ExperimentSpec

__all__ = ["SERVICE_URL_ENV", "ServiceClient", "ServiceError"]

#: environment variable naming the default service base URL for the
#: CLI's ``submit`` / ``jobs`` / ``cancel`` subcommands
SERVICE_URL_ENV = "REPRO_SERVICE_URL"

#: job states that accept no further transition
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Client for one service base URL (``http://host:port``)."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------

    def _request(
        self, method: str, path: str, body: str | None = None
    ) -> tuple[int, str]:
        request = urllib.request.Request(
            self.base_url + path,
            data=body.encode("utf-8") if body is not None else None,
            method=method,
            headers={"Content-Type": "application/json"}
            if body is not None
            else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            text = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(text)["error"]
            except (json.JSONDecodeError, KeyError, TypeError):
                message = text.strip() or exc.reason
            raise ServiceError(exc.code, message) from None

    def _get_json(self, path: str) -> dict:
        return json.loads(self._request("GET", path)[1])

    def _post_json(self, path: str, body: str | None = None) -> dict:
        return json.loads(self._request("POST", path, body)[1])

    # -- endpoints ----------------------------------------------------

    def health(self) -> dict:
        return self._get_json("/healthz")

    def submit(self, spec: ExperimentSpec) -> dict:
        """POST a spec; returns the created job (state ``pending``)."""
        return self._post_json("/v1/experiments", spec.to_json())

    def submit_text(self, spec_text: str) -> dict:
        """POST raw spec JSON text (the CLI path: the file's bytes go
        over the wire unchanged, and the *server* validates)."""
        return self._post_json("/v1/experiments", spec_text)

    def jobs(self) -> list[dict]:
        return self._get_json("/v1/experiments")["jobs"]

    def job(self, job_id: int) -> dict:
        """One job's row plus shard-level ``progress`` (manifest
        counts, running-shard ages, likely-stale indices)."""
        return self._get_json(f"/v1/experiments/{int(job_id)}")

    def cancel(self, job_id: int) -> dict:
        """Cancel a pending job (409 → :class:`ServiceError` when it
        is already running or terminal)."""
        return self._post_json(f"/v1/experiments/{int(job_id)}/cancel")

    def result_text(self, job_id: int) -> str:
        """The finished job's run record, verbatim payload text."""
        return self._request(
            "GET", f"/v1/experiments/{int(job_id)}/result"
        )[1]

    def result(self, job_id: int) -> dict:
        """The finished job's run record, parsed."""
        return json.loads(self.result_text(job_id))

    def runs(self) -> list[dict]:
        return self._get_json("/v1/runs")["runs"]

    def run_payload(self, ref: str) -> str:
        """One stored run's verbatim payload text."""
        return self._request("GET", f"/v1/runs/{ref}")[1]

    def compare(
        self,
        baseline: str,
        candidate: str,
        *,
        threshold: float = 5.0,
    ) -> dict:
        """Diff two stored runs; the response's ``regressions`` list
        is the ``--fail-on-regression`` gate's verdict."""
        return self._post_json(
            "/v1/compare",
            json.dumps({
                "baseline": baseline,
                "candidate": candidate,
                "threshold": threshold,
            }),
        )

    # -- polling ------------------------------------------------------

    def wait(
        self,
        job_id: int,
        *,
        timeout: float = 300.0,
        poll_seconds: float = 0.2,
    ) -> dict:
        """Poll until the job reaches a terminal state.

        Returns the final job dict (check ``state`` — ``failed`` and
        ``cancelled`` are terminal too); raises ``TimeoutError`` if
        the deadline passes first.  Monotonic clock: wall-clock
        adjustments cannot stretch or collapse the deadline.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_seconds)
