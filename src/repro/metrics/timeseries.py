"""Time-series metrics derived from the execution trace.

The paper reports end-of-run aggregates; for diagnosis (and for
validating that the simulated system really is in the backlogged
regime the paper describes) time-resolved views are more telling:

* :func:`backlog_series` — number of jobs in the system (arrived but
  not finished) over time;
* :func:`running_series` — number of attempts in flight over time;
* :func:`utilization_series` — per-interval grid utilization;
* :func:`failure_timeline` — cumulative failed attempts over time;
* :func:`waste_fraction` — share of consumed site-seconds lost to
  failed attempts (the price of risk-taking, one number);
* :func:`due_date_violations` — jobs finishing after the due dates a
  dynamic scenario's ``due=`` knob assigned
  (:mod:`repro.workloads.dynamics`).

All functions take the :class:`~repro.grid.trace.AttemptLog` (and the
simulation result where needed) and return ``(times, values)`` pairs
ready for plotting or tabulation.
"""

from __future__ import annotations

import numpy as np

from repro.grid.engine import SimulationResult
from repro.grid.job import JobState
from repro.grid.trace import AttemptLog

__all__ = [
    "backlog_series",
    "running_series",
    "utilization_series",
    "failure_timeline",
    "waste_fraction",
    "due_date_violations",
]


def _step_series(starts: np.ndarray, ends: np.ndarray):
    """Counting process: +1 at each start, -1 at each end."""
    times = np.concatenate([starts, ends])
    deltas = np.concatenate([np.ones_like(starts), -np.ones_like(ends)])
    order = np.argsort(times, kind="stable")
    times = times[order]
    values = np.cumsum(deltas[order])
    return times, values


def backlog_series(result: SimulationResult):
    """Jobs in the system (arrived, not yet completed) over time.

    Returns ``(times, counts)``; ``counts[i]`` is the backlog just
    after ``times[i]``.
    """
    arrivals = result.arrivals()
    completions = result.completions()
    return _step_series(arrivals, completions)


def running_series(log: AttemptLog):
    """Attempts in flight over time, from the execution trace."""
    if len(log) == 0:
        raise ValueError("empty attempt log")
    cols = log.to_arrays()
    return _step_series(cols["start"], cols["end"])


def utilization_series(
    log: AttemptLog,
    total_speed_units: int,
    *,
    n_bins: int = 50,
    horizon: float | None = None,
):
    """Fraction of grid capacity busy per time bin.

    ``total_speed_units`` is the number of parallel site-resources
    (the site count under the one-queue-per-site abstraction).
    Returns ``(bin_edges, fractions)`` with ``len(fractions) == n_bins``.
    """
    if len(log) == 0:
        raise ValueError("empty attempt log")
    if total_speed_units < 1:
        raise ValueError("total_speed_units must be >= 1")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    cols = log.to_arrays()
    end = horizon if horizon is not None else float(cols["end"].max())
    if end <= 0:
        raise ValueError("horizon must be positive")
    edges = np.linspace(0.0, end, n_bins + 1)
    busy = np.zeros(n_bins)
    # Clip each attempt onto the bins (vectorised overlap computation).
    lo = np.clip(cols["start"], 0.0, end)
    hi = np.clip(cols["end"], 0.0, end)
    for a, b in zip(lo, hi):
        if b <= a:
            continue
        first = np.searchsorted(edges, a, side="right") - 1
        last = np.searchsorted(edges, b, side="left") - 1
        for k in range(first, last + 1):
            seg_lo = max(a, edges[k])
            seg_hi = min(b, edges[k + 1])
            busy[k] += max(seg_hi - seg_lo, 0.0)
    width = edges[1] - edges[0]
    return edges, busy / (width * total_speed_units)


def failure_timeline(log: AttemptLog):
    """Cumulative count of failed attempts over time.

    Returns ``(times, cumulative)``; empty log raises.
    """
    if len(log) == 0:
        raise ValueError("empty attempt log")
    fails = sorted(a.end for a in log.failures())
    times = np.asarray(fails, dtype=float)
    return times, np.arange(1, times.size + 1)


def waste_fraction(log: AttemptLog) -> float:
    """Share of consumed site-seconds spent on failed attempts."""
    total = log.total_busy_time()
    if total == 0:
        raise ValueError("attempt log has no busy time")
    return log.wasted_time() / total


def due_date_violations(
    result: SimulationResult,
) -> tuple[tuple[int, float], ...]:
    """Jobs that finished after their assigned due date.

    Consumes the due dates a dynamic scenario's ``due=`` knob attached
    to the run (``result.timeline.due_dates``); returns
    ``(job_id, lateness)`` pairs in job-id order, lateness strictly
    positive.  Cancelled jobs never violate (they withdrew), and jobs
    without a due date are skipped.  Raises ``ValueError`` when the
    result carries no timeline or the timeline assigns no due dates —
    "zero violations" and "due dates were never in play" must not be
    conflated.
    """
    timeline = result.timeline
    if timeline is None or not timeline.due_dates:
        raise ValueError(
            "the run has no due dates; generate the scenario with the "
            "due= dynamics knob (see repro.workloads.dynamics)"
        )
    due = timeline.due_map()
    out = []
    for rec in result.records:
        if rec.state is JobState.CANCELLED:
            continue
        deadline = due.get(rec.job.job_id)
        if deadline is None:
            continue
        lateness = float(rec.completion) - float(deadline)
        if lateness > 0:
            out.append((rec.job.job_id, lateness))
    return tuple(sorted(out))
