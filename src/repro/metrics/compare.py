"""Cross-scheduler comparison (paper Table 2).

The paper summarises the NAS results with two ratios per heuristic,
both relative to the STGA:

* ``alpha`` — makespan ratio (heuristic / STGA);
* ``beta``  — average-response-time ratio (heuristic / STGA);

and a holistic ranking (STGA 1st, risky 2nd, f-risky 3rd, secure 4th).
We rank by ``alpha + beta`` with a small tolerance so that the
Min-Min/Sufferage twins of one mode share a rank, as in the paper.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.metrics.report import PerformanceReport
from repro.util.tables import render_table

__all__ = [
    "ComparisonRow",
    "EnsembleComparisonRow",
    "RunDiffRow",
    "compare_to_reference",
    "compare_ensemble",
    "render_comparison",
    "render_ensemble_comparison",
    "render_run_diff",
]

#: two schedulers whose alpha+beta scores differ by less than this are
#: considered tied (the paper groups Min-Min/Sufferage per mode).
_TIE_TOL = 0.05


@dataclass(frozen=True)
class ComparisonRow:
    """One Table 2 row."""

    scheduler: str
    alpha: float  # makespan ratio vs reference
    beta: float  # response-time ratio vs reference
    rank: int

    @property
    def rank_label(self) -> str:
        """Ordinal label: 1 -> '1st', 2 -> '2nd', ..."""
        suffix = {1: "st", 2: "nd", 3: "rd"}.get(
            self.rank if self.rank < 20 else self.rank % 10, "th"
        )
        return f"{self.rank}{suffix}"


def compare_to_reference(
    reports: list[PerformanceReport], reference: str = "STGA"
) -> list[ComparisonRow]:
    """Build Table 2 rows from per-scheduler reports.

    ``reference`` names the baseline scheduler (alpha = beta = 1).
    Rows come back in the input order; ranks are dense with ties
    within ``_TIE_TOL`` of each other sharing a rank.
    """
    by_name = {r.scheduler: r for r in reports}
    if reference not in by_name:
        raise KeyError(
            f"reference scheduler {reference!r} not among "
            f"{sorted(by_name)}"
        )
    ref = by_name[reference]
    if ref.makespan <= 0 or ref.avg_response_time <= 0:
        raise ValueError("reference metrics must be positive")

    scored = []
    for rep in reports:
        alpha = rep.makespan / ref.makespan
        beta = rep.avg_response_time / ref.avg_response_time
        scored.append((rep.scheduler, alpha, beta, alpha + beta))

    ranks = _dense_ranks({name_: score for name_, _, _, score in scored})
    return [
        ComparisonRow(scheduler=n, alpha=a, beta=b, rank=ranks[n])
        for n, a, b, _ in scored
    ]


def _dense_ranks(scores: dict[str, float]) -> dict[str, int]:
    """Dense ranking with tolerance-based tying on the combined score."""
    ranks: dict[str, int] = {}
    rank = 0
    prev_score = None
    for name_, score in sorted(scores.items(), key=lambda t: t[1]):
        if prev_score is None or score > prev_score + _TIE_TOL:
            rank += 1
            prev_score = score
        ranks[name_] = rank
    return ranks


@dataclass(frozen=True)
class EnsembleComparisonRow:
    """One Table 2 row aggregated across a seed ensemble."""

    scheduler: str
    alpha_mean: float
    alpha_std: float
    beta_mean: float
    beta_std: float
    rank: int  # from the mean alpha + beta scores
    n_seeds: int


def compare_ensemble(
    per_seed_reports: Sequence[list[PerformanceReport]],
    reference: str = "STGA",
) -> list[EnsembleComparisonRow]:
    """Table 2 with error bars: ratios averaged over replications.

    ``per_seed_reports`` holds one report list per seed (same lineup
    each time, e.g. the per-seed cells of a
    :class:`~repro.experiments.sweep.SweepResult`).  Alpha and beta
    are computed per seed against that seed's ``reference`` run, then
    summarised; ranks use the mean combined score with the same tie
    tolerance as :func:`compare_to_reference`.
    """
    if not per_seed_reports:
        raise ValueError("need at least one replication")
    rows_per_seed = [
        compare_to_reference(reps, reference) for reps in per_seed_reports
    ]
    names = [row.scheduler for row in rows_per_seed[0]]
    for rows in rows_per_seed[1:]:
        if [row.scheduler for row in rows] != names:
            raise ValueError("replications disagree on the scheduler lineup")

    n = len(rows_per_seed)
    ddof = 1 if n > 1 else 0
    alphas = {
        name: np.array([rows[i].alpha for rows in rows_per_seed])
        for i, name in enumerate(names)
    }
    betas = {
        name: np.array([rows[i].beta for rows in rows_per_seed])
        for i, name in enumerate(names)
    }
    ranks = _dense_ranks(
        {name: float(alphas[name].mean() + betas[name].mean()) for name in names}
    )
    return [
        EnsembleComparisonRow(
            scheduler=name,
            alpha_mean=float(alphas[name].mean()),
            alpha_std=float(alphas[name].std(ddof=ddof)),
            beta_mean=float(betas[name].mean()),
            beta_std=float(betas[name].std(ddof=ddof)),
            rank=ranks[name],
            n_seeds=n,
        )
        for name in names
    ]


@dataclass(frozen=True)
class RunDiffRow:
    """One (variant, scheduler, metric) cell of a cross-run diff.

    Produced by :func:`repro.experiments.store.compare_runs`; the A/B
    sides carry the cell's ensemble mean and Student-t 95 %-CI
    half-width (:attr:`~repro.experiments.sweep.MetricSummary.ci95`).
    ``verdict`` is one of ``"same"`` (identical per-seed values),
    ``"overlap"`` (means differ but the CIs overlap) or ``"diverged"``
    (disjoint CIs — a statistically visible shift).
    """

    variant: str
    scheduler: str
    metric: str
    mean_a: float
    ci_a: float
    n_a: int
    mean_b: float
    ci_b: float
    n_b: int
    verdict: str  # "same" | "overlap" | "diverged"

    @property
    def mean_shift(self) -> float:
        """Signed mean shift, B minus A."""
        return self.mean_b - self.mean_a

    @property
    def shift_pct(self) -> float:
        """Relative mean shift in percent of A (NaN for mean_a = 0)."""
        if self.mean_a == 0:
            return 0.0 if self.mean_b == 0 else float("nan")
        return self.mean_shift / self.mean_a * 100.0


def render_run_diff(rows: Sequence[RunDiffRow], *, title: str = "") -> str:
    """Cross-run diff table in the ensemble-comparison mean ± CI style."""
    return render_table(
        ["scenario", "scheduler", "metric", "run A", "run B", "shift_%",
         "verdict"],
        [
            [
                r.variant,
                r.scheduler,
                r.metric,
                f"{r.mean_a:.6g} ± {r.ci_a:.3g}",
                f"{r.mean_b:.6g} ± {r.ci_b:.3g}",
                f"{r.shift_pct:+.3g}",
                r.verdict,
            ]
            for r in rows
        ],
        title=title or "Cross-run comparison (mean ± 95% CI per cell)",
    )


def render_comparison(rows: list[ComparisonRow], *, title: str = "") -> str:
    """ASCII rendering in the paper's Table 2 layout."""
    return render_table(
        ["Heuristics", "alpha", "beta", "Ranking"],
        [[r.scheduler, r.alpha, r.beta, r.rank_label] for r in rows],
        title=title or "Performance comparison (alpha/beta vs STGA)",
    )


def render_ensemble_comparison(
    rows: list[EnsembleComparisonRow], *, title: str = ""
) -> str:
    """Table 2 layout with mean ± std ratios."""
    n = rows[0].n_seeds if rows else 0
    return render_table(
        ["Heuristics", "alpha", "beta", "Ranking"],
        [
            [
                r.scheduler,
                f"{r.alpha_mean:.4g} ± {r.alpha_std:.2g}",
                f"{r.beta_mean:.4g} ± {r.beta_std:.2g}",
                f"{r.rank}",
            ]
            for r in rows
        ],
        title=title
        or f"Performance comparison (alpha/beta vs STGA, {n} seeds)",
    )
