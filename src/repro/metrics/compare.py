"""Cross-scheduler comparison (paper Table 2).

The paper summarises the NAS results with two ratios per heuristic,
both relative to the STGA:

* ``alpha`` — makespan ratio (heuristic / STGA);
* ``beta``  — average-response-time ratio (heuristic / STGA);

and a holistic ranking (STGA 1st, risky 2nd, f-risky 3rd, secure 4th).
We rank by ``alpha + beta`` with a small tolerance so that the
Min-Min/Sufferage twins of one mode share a rank, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.report import PerformanceReport
from repro.util.tables import render_table

__all__ = ["ComparisonRow", "compare_to_reference", "render_comparison"]

#: two schedulers whose alpha+beta scores differ by less than this are
#: considered tied (the paper groups Min-Min/Sufferage per mode).
_TIE_TOL = 0.05


@dataclass(frozen=True)
class ComparisonRow:
    """One Table 2 row."""

    scheduler: str
    alpha: float  # makespan ratio vs reference
    beta: float  # response-time ratio vs reference
    rank: int

    @property
    def rank_label(self) -> str:
        """Ordinal label: 1 -> '1st', 2 -> '2nd', ..."""
        suffix = {1: "st", 2: "nd", 3: "rd"}.get(
            self.rank if self.rank < 20 else self.rank % 10, "th"
        )
        return f"{self.rank}{suffix}"


def compare_to_reference(
    reports: list[PerformanceReport], reference: str = "STGA"
) -> list[ComparisonRow]:
    """Build Table 2 rows from per-scheduler reports.

    ``reference`` names the baseline scheduler (alpha = beta = 1).
    Rows come back in the input order; ranks are dense with ties
    within ``_TIE_TOL`` of each other sharing a rank.
    """
    by_name = {r.scheduler: r for r in reports}
    if reference not in by_name:
        raise KeyError(
            f"reference scheduler {reference!r} not among "
            f"{sorted(by_name)}"
        )
    ref = by_name[reference]
    if ref.makespan <= 0 or ref.avg_response_time <= 0:
        raise ValueError("reference metrics must be positive")

    scored = []
    for rep in reports:
        alpha = rep.makespan / ref.makespan
        beta = rep.avg_response_time / ref.avg_response_time
        scored.append((rep.scheduler, alpha, beta, alpha + beta))

    # Dense ranking with tolerance-based tying on the combined score.
    order = sorted(scored, key=lambda t: t[3])
    ranks: dict[str, int] = {}
    rank = 0
    prev_score = None
    for name_, _, _, score in order:
        if prev_score is None or score > prev_score + _TIE_TOL:
            rank += 1
            prev_score = score
        ranks[name_] = rank

    return [
        ComparisonRow(scheduler=n, alpha=a, beta=b, rank=ranks[n])
        for n, a, b, _ in scored
    ]


def render_comparison(rows: list[ComparisonRow], *, title: str = "") -> str:
    """ASCII rendering in the paper's Table 2 layout."""
    return render_table(
        ["Heuristics", "alpha", "beta", "Ranking"],
        [[r.scheduler, r.alpha, r.beta, r.rank_label] for r in rows],
        title=title or "Performance comparison (alpha/beta vs STGA)",
    )
