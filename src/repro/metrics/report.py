"""Performance metrics (paper Section 4.1).

Given a finished :class:`~repro.grid.engine.SimulationResult`,
:func:`evaluate` computes every metric the paper reports:

* **makespan** — ``max_i c_i``;
* **average response time** — ``mean(c_i - a_i)``;
* **average service span** — ``mean(c_i - b_i)`` (the paper calls this
  the "average waiting time"; ``b_i`` is the job's first start);
* **slowdown ratio** (Eq. 3) — response / service-span ratio, the
  average contention a job experiences;
* **N_risk** — jobs that ever ran on a site with ``SL < SD``;
* **N_fail** — jobs that failed (and were rescheduled) at least once;
* **site utilization** — per-site busy time over the makespan, in %.

We additionally record the failure *rate* among risk-takers, the
number of engine-forced placements, and the scheduler's wall-clock
decision time (the STGA's selling point is being fast enough for
online use).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.grid.engine import SimulationResult
from repro.grid.job import JobState

__all__ = ["PerformanceReport", "evaluate"]


@dataclass(frozen=True, eq=False)
class PerformanceReport:
    """All Section 4.1 metrics for one simulation run.

    ``eq=False`` on the decorator: the generated ``__eq__`` would
    compare the ``site_utilization`` arrays with ``==`` and raise
    "truth value of an array is ambiguous"; the explicit ``__eq__``
    below compares that field with :func:`numpy.array_equal` instead.
    :meth:`to_dict` / :meth:`from_dict` give the run store a lossless
    JSON-safe round trip (the array becomes a list of floats).
    """

    scheduler: str
    n_jobs: int
    makespan: float
    avg_response_time: float
    avg_service_span: float
    slowdown_ratio: float
    n_risk: int
    n_fail: int
    n_forced: int
    total_attempts: int
    site_utilization: np.ndarray  # (S,) percentages
    scheduler_seconds: float
    n_batches: int

    @property
    def failure_rate(self) -> float:
        """Fraction of risk-taking jobs that actually failed."""
        return self.n_fail / self.n_risk if self.n_risk else 0.0

    @property
    def mean_utilization(self) -> float:
        """Grid-wide mean site utilization (%)."""
        return float(self.site_utilization.mean())

    @property
    def idle_sites(self) -> int:
        """Sites that never ran a job (< 0.1 % busy)."""
        return int((self.site_utilization < 0.1).sum())

    def row(self) -> list:
        """Row for the harness tables."""
        return [
            self.scheduler,
            self.makespan,
            self.avg_response_time,
            self.slowdown_ratio,
            self.n_risk,
            self.n_fail,
            self.mean_utilization,
        ]

    #: headers matching :meth:`row`
    ROW_HEADERS = (
        "scheduler",
        "makespan",
        "avg_response",
        "slowdown",
        "N_risk",
        "N_fail",
        "util_%",
    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PerformanceReport):
            return NotImplemented
        for f in fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if f.name == "site_utilization":
                if not np.array_equal(
                    np.asarray(mine, dtype=float),
                    np.asarray(theirs, dtype=float),
                ):
                    return False
            elif mine != theirs:
                return False
        return True

    def __hash__(self) -> int:
        util = tuple(np.asarray(self.site_utilization, dtype=float).tolist())
        rest = tuple(
            getattr(self, f.name)
            for f in fields(self)
            if f.name != "site_utilization"
        )
        return hash(rest + (util,))

    def to_dict(self) -> dict:
        """JSON-safe dict: every field scalar, the array a float list."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "site_utilization":
                value = [float(x) for x in np.asarray(value, dtype=float)]
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "PerformanceReport":
        """Inverse of :meth:`to_dict`; extra keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown PerformanceReport fields {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["site_utilization"] = np.asarray(
            kwargs["site_utilization"], dtype=float
        )
        return cls(**kwargs)


def evaluate(result: SimulationResult, scheduler_name: str | None = None):
    """Compute a :class:`PerformanceReport` from a simulation result.

    Jobs cancelled by a dynamic timeline never completed by design;
    their records are excluded from the time-based averages (``n_jobs``
    still counts the whole workload).  A *non-cancelled* job without a
    completion time is still an error.
    """
    records = result.records
    if not records:
        raise ValueError("simulation result has no job records")
    completions = result.completions()
    arrivals = result.arrivals()
    starts = result.first_starts()
    kept = np.array(
        [r.state is not JobState.CANCELLED for r in records], dtype=bool
    )
    if not kept.any():
        raise ValueError("every job was cancelled; cannot evaluate")
    if not kept.all():
        completions = completions[kept]
        arrivals = arrivals[kept]
        starts = starts[kept]
    if np.isnan(completions).any():
        raise ValueError("some jobs never completed; cannot evaluate")

    response = completions - arrivals
    service = completions - starts
    if (response < -1e-9).any():
        raise ValueError("negative response time — corrupt simulation result")
    mean_service = float(service.mean())
    slowdown = float(response.mean() / mean_service) if mean_service > 0 else 1.0

    name = scheduler_name
    if name is None:
        name = getattr(result, "scheduler_name", "") or getattr(
            getattr(result, "scheduler", None), "name", "?"
        )

    return PerformanceReport(
        scheduler=name,
        n_jobs=len(records),
        makespan=result.makespan,
        avg_response_time=float(response.mean()),
        avg_service_span=mean_service,
        slowdown_ratio=slowdown,
        n_risk=sum(r.took_risk for r in records),
        n_fail=sum(r.ever_failed for r in records),
        n_forced=result.n_forced,
        total_attempts=sum(r.attempts for r in records),
        site_utilization=result.busy_time / result.makespan * 100.0,
        scheduler_seconds=result.scheduler_seconds,
        n_batches=result.n_batches,
    )
