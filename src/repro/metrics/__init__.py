"""Performance metrics (Section 4.1) and Table 2 comparison machinery."""

from repro.metrics.compare import (
    ComparisonRow,
    RunDiffRow,
    compare_to_reference,
    render_comparison,
    render_run_diff,
)
from repro.metrics.report import PerformanceReport, evaluate
from repro.metrics.timeseries import (
    backlog_series,
    due_date_violations,
    failure_timeline,
    running_series,
    utilization_series,
    waste_fraction,
)

__all__ = [
    "PerformanceReport",
    "evaluate",
    "ComparisonRow",
    "RunDiffRow",
    "compare_to_reference",
    "render_comparison",
    "render_run_diff",
    "backlog_series",
    "running_series",
    "utilization_series",
    "failure_timeline",
    "waste_fraction",
    "due_date_violations",
]
