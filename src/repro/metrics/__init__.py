"""Performance metrics (Section 4.1) and Table 2 comparison machinery."""

from repro.metrics.compare import (
    ComparisonRow,
    compare_to_reference,
    render_comparison,
)
from repro.metrics.report import PerformanceReport, evaluate
from repro.metrics.timeseries import (
    backlog_series,
    failure_timeline,
    running_series,
    utilization_series,
    waste_fraction,
)

__all__ = [
    "PerformanceReport",
    "evaluate",
    "ComparisonRow",
    "compare_to_reference",
    "render_comparison",
    "backlog_series",
    "running_series",
    "utilization_series",
    "failure_timeline",
    "waste_fraction",
]
