"""Small argument-validation helpers shared across the library.

These raise uniform, descriptive errors so that public API misuse is
caught at the boundary rather than deep inside a vectorised kernel.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_1d",
    "check_2d",
    "check_same_length",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Require ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {value!r}")
    return float(value)


def check_1d(name: str, arr: np.ndarray) -> np.ndarray:
    """Coerce to a 1-D float array."""
    out = np.asarray(arr, dtype=float)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {out.shape}")
    return out


def check_2d(name: str, arr: np.ndarray) -> np.ndarray:
    """Coerce to a 2-D float array."""
    out = np.asarray(arr, dtype=float)
    if out.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {out.shape}")
    return out


def check_same_length(pairs: Sequence[tuple[str, Sequence]]) -> int:
    """Require all named sequences to share one length; return it."""
    if not pairs:
        raise ValueError("check_same_length needs at least one sequence")
    lengths = {name: len(seq) for name, seq in pairs}
    unique = set(lengths.values())
    if len(unique) != 1:
        raise ValueError(f"length mismatch: {lengths}")
    return unique.pop()
