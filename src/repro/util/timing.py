"""Wall-clock timing helpers.

The paper's pitch for the STGA is *speed* ("fast ... suitable for
online scheduling"), so the harness reports scheduler decision time
alongside schedule quality.  ``Stopwatch`` accumulates named segments
so the engine can separate "time spent inside the scheduler" from
"time spent simulating".
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch"]


@dataclass
class Stopwatch:
    """Accumulate wall-clock time under named labels."""

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str):
        """Context manager adding the elapsed time to ``label``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.totals[label] = self.totals.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1

    def total(self, label: str) -> float:
        """Accumulated seconds for ``label`` (0.0 if never measured)."""
        return self.totals.get(label, 0.0)

    def count(self, label: str) -> int:
        """Number of measured segments for ``label``."""
        return self.counts.get(label, 0)

    def mean(self, label: str) -> float:
        """Mean segment duration for ``label``."""
        n = self.counts.get(label, 0)
        if n == 0:
            raise KeyError(f"no measurements recorded under {label!r}")
        return self.totals[label] / n

    def reset(self) -> None:
        """Drop all accumulated measurements."""
        self.totals.clear()
        self.counts.clear()
