"""Summary statistics used by the metrics layer and the benchmarks.

Nothing here is paper-specific; these are the plain descriptive
statistics the experiment harness prints next to the paper's numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "Summary",
    "summarize",
    "ratio",
    "improvement_pct",
    "is_concave_around",
    "t_critical",
]


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(values) -> Summary:
    """Compute a :class:`Summary` of ``values`` (must be non-empty)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


def ratio(value: float, baseline: float) -> float:
    """``value / baseline`` with an explicit error on a zero baseline."""
    if baseline == 0:
        raise ZeroDivisionError("baseline is zero; ratio undefined")
    return value / baseline


def improvement_pct(better: float, worse: float) -> float:
    """Relative improvement of ``better`` over ``worse`` in percent.

    Matches the paper's usage: "STGA improves X% over Y" means
    ``(worse - better) / worse * 100``.
    """
    if worse == 0:
        raise ZeroDivisionError("reference value is zero; improvement undefined")
    return (worse - better) / worse * 100.0


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularized incomplete beta function
    (modified Lentz's method, Numerical Recipes §6.4)."""
    max_iter, eps, fpmin = 200, 3e-16, 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < fpmin:
        d = fpmin
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function ``I_x(a, b)``."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


@lru_cache(maxsize=256)
def t_critical(df: int, *, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value: ``P(|T_df| <= t) = confidence``.

    Dependency-free replacement for ``scipy.stats.t.ppf``: the
    two-sided tail mass ``P(|T_df| > t) = I_{df/(df+t^2)}(df/2, 1/2)``
    is monotone decreasing in ``t``, so we invert it by bisection on
    the incomplete beta function.  Accurate to ~1e-10 against scipy
    for the df range the sweeps use (e.g. ``t_critical(4)`` ≈ 2.776445,
    vs the 1.959964 normal limit).
    """
    if df < 1:
        raise ValueError(f"df must be >= 1, got {df}")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    alpha = 1.0 - confidence

    def tail(t: float) -> float:
        return _betainc(df / 2.0, 0.5, df / (df + t * t))

    hi = 1.0
    while tail(hi) > alpha:
        hi *= 2.0
    lo = 0.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if tail(mid) > alpha:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


def is_concave_around(xs, ys, *, rel_tol: float = 0.02) -> bool:
    """Heuristic check that a curve dips to an interior minimum.

    Used by the Figure 7(a) benchmark: the paper reports *concave*
    makespan-vs-f curves with the minimum at f ≈ 0.5-0.6.  We verify the
    weaker, robust property that the interior minimum improves on both
    endpoints by at least ``rel_tol`` (relative).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size < 3:
        raise ValueError("need matching xs/ys with at least 3 points")
    order = np.argsort(xs)
    ys = ys[order]
    interior = ys[1:-1]
    best = interior.min()
    return bool(best <= ys[0] * (1 - rel_tol) and best <= ys[-1] * (1 - rel_tol))
