"""Summary statistics used by the metrics layer and the benchmarks.

Nothing here is paper-specific; these are the plain descriptive
statistics the experiment harness prints next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "ratio", "improvement_pct", "is_concave_around"]


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(values) -> Summary:
    """Compute a :class:`Summary` of ``values`` (must be non-empty)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


def ratio(value: float, baseline: float) -> float:
    """``value / baseline`` with an explicit error on a zero baseline."""
    if baseline == 0:
        raise ZeroDivisionError("baseline is zero; ratio undefined")
    return value / baseline


def improvement_pct(better: float, worse: float) -> float:
    """Relative improvement of ``better`` over ``worse`` in percent.

    Matches the paper's usage: "STGA improves X% over Y" means
    ``(worse - better) / worse * 100``.
    """
    if worse == 0:
        raise ZeroDivisionError("reference value is zero; improvement undefined")
    return (worse - better) / worse * 100.0


def is_concave_around(xs, ys, *, rel_tol: float = 0.02) -> bool:
    """Heuristic check that a curve dips to an interior minimum.

    Used by the Figure 7(a) benchmark: the paper reports *concave*
    makespan-vs-f curves with the minimum at f ≈ 0.5-0.6.  We verify the
    weaker, robust property that the interior minimum improves on both
    endpoints by at least ``rel_tol`` (relative).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size < 3:
        raise ValueError("need matching xs/ys with at least 3 points")
    order = np.argsort(xs)
    ys = ys[order]
    interior = ys[1:-1]
    best = interior.min()
    return bool(best <= ys[0] * (1 - rel_tol) and best <= ys[-1] * (1 - rel_tol))
