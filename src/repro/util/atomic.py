"""Atomic file writes: the temp-file + rename helper.

The crash-resume protocol leans on one filesystem property: a record
that exists is complete.  A dispatcher killed mid-save must leave
either the previous consistent snapshot or nothing — never a truncated
``run.json`` behind a shard marked "done".  POSIX gives exactly that
for a same-directory ``rename(2)``, so every durable write in the
store and manifest layers goes through :func:`atomic_write_text`:
write the full payload to a sibling temp file, then rename it over the
destination in one atomic step.

This module is the *only* sanctioned way to write files under
``repro/experiments/store/`` and ``repro/experiments/manifest.py`` —
the ``repro.lint`` rule **A1** flags any direct ``open(..., "w")`` /
``write_text`` call there and points here instead.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(
    path: str | Path,
    text: str,
    *,
    encoding: str = "utf-8",
    newline: str | None = None,
) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    Parent directories are created.  The content is flushed and
    fsynced before the rename, so after a crash the destination holds
    either the complete new text or whatever was there before — never
    a prefix.  ``newline`` follows :func:`open` semantics (pass ``""``
    for content that carries its own line endings, e.g. CSV text with
    ``\\r\\n`` terminators).  Returns ``path``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding=encoding, newline=newline) as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    tmp.replace(path)
    return path
