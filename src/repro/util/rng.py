"""Deterministic random-number management.

Every stochastic component in the library (workload generators, the
failure model, GA operators, ...) draws from its own independently
seeded :class:`numpy.random.Generator`.  Streams are derived from a
single root seed through :class:`numpy.random.SeedSequence` spawning,
so that

* two runs with the same root seed are bit-identical, and
* changing the number of draws made by one component never perturbs
  the stream seen by another (no hidden coupling through a shared
  global state).

This module is the only place in the library that constructs
generators; everything else receives a ``Generator`` (or a
:class:`RngFactory`) explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RngFactory", "as_generator", "spawn"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer
    seed, or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


@dataclass
class RngFactory:
    """Named, reproducible random streams derived from one root seed.

    ``factory.stream("failures")`` always returns the same generator
    state for the same root seed, independent of the order in which
    other streams were requested.

    Examples
    --------
    >>> f = RngFactory(seed=42)
    >>> a = f.stream("arrivals").random()
    >>> g = RngFactory(seed=42)
    >>> b = g.stream("arrivals").random()
    >>> a == b
    True
    """

    seed: int = 0
    _cache: dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for stream ``name``."""
        if name not in self._cache:
            # Hash the name into the seed sequence so stream identity
            # depends only on (root seed, name).
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            entropy = [self.seed, *digest.tolist()]
            self._cache[name] = np.random.default_rng(np.random.SeedSequence(entropy))
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` (reset to stream start)."""
        self._cache.pop(name, None)
        return self.stream(name)
