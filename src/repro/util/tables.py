"""Plain-text table rendering for the experiment harness.

The benchmarks print paper-style rows (e.g. Table 2's α/β columns) to
stdout; this module renders those rows without any third-party
dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["render_table", "format_number"]


def format_number(value, *, digits: int = 4) -> str:
    """Format a cell: floats get ``digits`` significant digits."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{digits - 1}e}"
        return f"{value:.{digits}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
    digits: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[format_number(c, digits=digits) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)
