"""Shared utilities: deterministic RNG streams, validation, statistics,
table rendering, timing, atomic writes and the provenance clock."""

from repro.util.atomic import atomic_write_text
from repro.util.clock import utc_now_iso, utc_timestamp
from repro.util.rng import RngFactory, as_generator, spawn
from repro.util.stats import (
    Summary,
    improvement_pct,
    is_concave_around,
    ratio,
    summarize,
)
from repro.util.tables import format_number, render_table
from repro.util.timing import Stopwatch
from repro.util.validation import (
    check_1d,
    check_2d,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_same_length,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn",
    "atomic_write_text",
    "utc_now_iso",
    "utc_timestamp",
    "Summary",
    "summarize",
    "ratio",
    "improvement_pct",
    "is_concave_around",
    "render_table",
    "format_number",
    "Stopwatch",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_1d",
    "check_2d",
    "check_same_length",
]
