"""Execution-backend selection for the hot paths.

The GA generation loop and the engine's event queue each ship two
implementations:

* ``"reference"`` — the straightforward code the repository grew up
  with; every committed baseline was produced by it.
* ``"fast"`` — fused, allocation-light kernels that draw from the same
  RNG stream in the same order and are **bit-identical** to the
  reference at any fixed seed.  ``tests/test_backend_parity.py`` is
  the differential suite that enforces this, the same way
  ``population_similarity`` was shipped.

The backend is addressed three ways, most specific wins:

1. explicitly — ``evolve(..., backend="fast")``,
   ``GridSimulator(..., backend="fast")``,
   ``STGAScheduler(..., backend="fast")``;
2. per scheduler ref — ``"stga?backend=fast"`` (the registry forwards
   unknown ref params to the factory, which passes them through);
3. process-wide — the ``REPRO_BACKEND`` environment variable, which
   every unset ``backend=None`` falls back to.  Because experiment
   workers inherit the environment, ``REPRO_BACKEND=fast`` switches a
   whole sweep/shard/service run with zero plumbing.

Because the two backends are bit-identical, the choice is a pure
performance knob: records, baselines and regression gates are
backend-agnostic.
"""

from __future__ import annotations

import os

__all__ = [
    "REFERENCE_BACKEND",
    "FAST_BACKEND",
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "resolve_backend",
]

#: the seed implementation; produced every committed baseline
REFERENCE_BACKEND = "reference"
#: fused kernels, bit-identical to the reference at fixed seed
FAST_BACKEND = "fast"
#: every valid backend name
BACKENDS = (REFERENCE_BACKEND, FAST_BACKEND)
#: environment variable consulted when no explicit backend is given
BACKEND_ENV_VAR = "REPRO_BACKEND"


def resolve_backend(backend: str | None = None) -> str:
    """Validate ``backend``, falling back to ``$REPRO_BACKEND``.

    ``None`` resolves to the environment variable (or
    :data:`REFERENCE_BACKEND` when unset/empty); anything that is not
    a known backend name raises ``ValueError`` listing the options.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "") or REFERENCE_BACKEND
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; available: {', '.join(BACKENDS)}"
        )
    return backend
