"""Designated wall-clock provenance helpers.

Run records, manifests and reports carry *provenance* timestamps
(``created_at``, ``updated_at``) that are deliberately wall-clock —
they say when a record was written, not anything about the simulated
experiment.  Every other byte of a record must be a pure function of
the spec and seeds, so payload-producing modules are forbidden from
reaching for ``datetime.now()`` / ``time.time()`` themselves: the
``repro.lint`` rule **D2** flags any direct wall-clock call in those
modules and points here instead.

Funnelling every stamp through this module keeps the set of
nondeterministic bytes in a record auditable (grep for these helpers
and you have found them all), and gives tests one seam to monkeypatch
when they need a frozen clock.
"""

from __future__ import annotations

from datetime import datetime, timezone

__all__ = ["utc_now_iso", "utc_timestamp"]


def utc_now_iso() -> str:
    """The current UTC wall-clock time as an ISO-8601 string.

    The ``created_at`` / ``updated_at`` form used by run records and
    manifests (e.g. ``2026-07-28T09:31:02.123456+00:00``).
    """
    return datetime.now(timezone.utc).isoformat()


def utc_timestamp() -> str:
    """The current UTC wall-clock time as a compact path-safe stamp.

    The ``<YYYYmmddTHHMMSSZ>`` form used to name registry directories
    (see :func:`repro.experiments.store.record.new_run_dir`); seconds
    resolution, sorts chronologically as a plain string.
    """
    return datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
