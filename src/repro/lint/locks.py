"""Pinned checksums for append-only artifacts (rule ``Q1``).

``MIGRATIONS_LOCK`` holds one checksum per *released* entry of the
``MIGRATIONS`` tuple in :mod:`repro.experiments.store.sqlite`, in
order.  The linter recomputes each entry's checksum (SHA-256 of the
whitespace-stripped source segment, first 16 hex digits — see
:func:`repro.lint.rules.migration_checksum`) and compares
positionally, so:

* editing or reordering a released migration → ``Q1`` finding — a
  migration that already ran against someone's database is history,
  not code;
* appending a new migration → ``Q1`` finding whose hint carries the
  checksum to append here, which is the release act.

Whitespace-insensitivity means pure reformatting never invalidates a
lock; any change to the SQL itself does.
"""

from __future__ import annotations

__all__ = ["MIGRATIONS_LOCK"]

MIGRATIONS_LOCK: tuple[str, ...] = (
    "32b4d717a01a63c5",  # v1: runs table + metadata indexes
    "da345429ce99f5a4",  # v2: cells table for axis queries
    "d9ebe0c8951ef3d2",  # v3: jobs table, the service's job queue
)
