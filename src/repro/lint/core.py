"""The invariant-linter framework: rules, findings, suppressions.

``repro.lint`` is a custom AST static-analysis pass that turns the
library's documented conventions — determinism, atomic persistence,
registry hygiene — into mechanically enforced rules (see
``docs/LINT.md`` for the catalogue and the rationale per rule).  This
module is the rule-agnostic machinery:

* :class:`Finding` — one violation: file, line, column, rule id,
  message, and a fix hint;
* :class:`Rule` — the base class a rule subclasses: a ``rule_id``, a
  scope predicate (:meth:`Rule.applies`) and a :meth:`Rule.check`
  generator walking the parsed file;
* :class:`FileContext` — one parsed file plus the cross-rule
  conveniences (import-alias resolution to dotted names, a parent
  map, the suppression table);
* :func:`lint_paths` — the engine: collect ``.py`` files, parse, run
  every applicable rule, filter suppressed findings, and police the
  suppression pragmas themselves.

Suppression pragmas
-------------------
A finding is silenced in place with ::

    do_unavoidable_thing()  # repro: allow[Q1] -- find() composes a WHERE clause

or, for multi-line statements, with a standalone pragma comment on the
line directly above the finding.  The justification after ``--`` is
*mandatory*: a pragma without one, or naming a rule id that does not
exist, is itself a finding (rule id ``LNT``) — an unexplained
suppression is a convention violation of its own.  Several ids may
share one pragma: ``allow[D1,D3]``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "META_RULE_ID",
    "Finding",
    "Suppression",
    "FileContext",
    "Rule",
    "LintReport",
    "lint_paths",
]

#: rule id of the linter's own hygiene findings (unparseable files,
#: malformed or unjustified suppression pragmas)
META_RULE_ID = "LNT"

#: ``# repro: allow[D1] -- justification`` (ids comma-separable)
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[([^\]]*)\]\s*(?:--\s*(.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """``path:line:col: RULE: message`` (plus an indented hint)."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id}: " \
               f"{self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        """JSON-ready form (``repro-grid lint --format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: allow[...]`` pragma found in a file."""

    line: int
    rule_ids: tuple[str, ...]
    justification: str
    #: the pragma is alone on its line, so it covers the next line too
    standalone: bool

    def covers(self, rule_id: str, line: int) -> bool:
        """Whether this pragma silences ``rule_id`` findings at ``line``."""
        if rule_id not in self.rule_ids:
            return False
        return line == self.line or (self.standalone and line == self.line + 1)


def _attr_chain(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` attribute/name chain as a tuple, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class FileContext:
    """One parsed source file plus the lookups every rule shares."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        #: display path (as given on the command line, posix separators)
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        #: local name -> dotted origin, from the file's import statements
        self.imports: dict[str, str] = {}
        #: child node -> parent node, for wrapped-in-``sorted()`` checks
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._collect_imports()
        self.suppressions = self._collect_suppressions()

    # -- imports and name resolution ----------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    origin = alias.name if alias.asname else local
                    self.imports[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module:
                # relative imports keep their dots; suffix matching in
                # the rules still works on the trailing segments
                prefix = "." * node.level + node.module
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{prefix}.{alias.name}"

    def resolved_name(self, node: ast.AST) -> str | None:
        """The dotted origin a call target resolves to, or None.

        ``np.random.default_rng`` resolves through ``import numpy as
        np`` to ``"numpy.random.default_rng"``; a bare builtin name
        (``open``, ``sorted``, ``set``) resolves to itself.  Chains
        rooted in an un-imported name (``self.rng.choice``) resolve to
        None — rules for *module-level* state must not fire on
        instance attributes that merely share a module's name.
        """
        chain = _attr_chain(node)
        if chain is None:
            return None
        root, rest = chain[0], chain[1:]
        origin = self.imports.get(root)
        if origin is not None:
            return ".".join((origin, *rest))
        if not rest:
            return root  # bare name: a builtin or module-local def
        return None

    def call_name(self, node: ast.Call) -> str | None:
        """:meth:`resolved_name` of a call's target."""
        return self.resolved_name(node.func)

    # -- location helpers ---------------------------------------------

    def in_sorted(self, node: ast.AST) -> bool:
        """Whether ``node`` is a direct argument of a ``sorted()`` call."""
        parent = self.parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and self.resolved_name(parent.func) == "sorted"
            and node in parent.args
        )

    def path_endswith(self, *suffixes: str) -> bool:
        """Whether the file's posix path ends with any of ``suffixes``."""
        posix = self.path.as_posix()
        return any(posix.endswith(s) for s in suffixes)

    def path_contains(self, *fragments: str) -> bool:
        """Whether any ``fragment`` occurs in the file's posix path."""
        posix = "/" + self.path.as_posix().lstrip("/")
        return any(f in posix for f in fragments)

    # -- suppressions -------------------------------------------------

    def _collect_suppressions(self) -> list[Suppression]:
        # tokenize, not a raw line scan: pragmas are *comments*, and a
        # docstring quoting the pragma syntax must not register one
        out = []
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except (tokenize.TokenError, IndentationError):
            # the file already survived ast.parse, so this is
            # unreachable in practice; fail open (no suppressions)
            return []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if not match:
                continue
            ids = tuple(
                part.strip() for part in match.group(1).split(",")
                if part.strip()
            )
            justification = (match.group(2) or "").strip()
            lineno, col = tok.start
            before = self.lines[lineno - 1][:col]
            out.append(
                Suppression(
                    line=lineno,
                    rule_ids=ids,
                    justification=justification,
                    standalone=not before.strip(),
                )
            )
        return out

    def suppressed(self, finding: Finding) -> bool:
        """Whether an in-file pragma covers ``finding``."""
        return any(
            s.covers(finding.rule_id, finding.line)
            for s in self.suppressions
        )


class Rule(ABC):
    """One invariant: an id, a scope, and an AST check.

    Subclasses set :attr:`rule_id` (the short code findings and
    ``allow[...]`` pragmas use), :attr:`title` (one line for ``lint
    --list-rules``) and :attr:`default_hint`, then implement
    :meth:`check` as a generator of findings over a
    :class:`FileContext`.  Override :meth:`applies` to scope the rule
    to particular paths — rules outside their scope are never run, so
    a rule's cost is bounded by its blast radius.
    """

    rule_id: str = ""
    title: str = ""
    default_hint: str = ""

    def applies(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (default: yes)."""
        return True

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx``."""

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        *,
        hint: str | None = None,
    ) -> Finding:
        """A :class:`Finding` at ``node``'s location in ``ctx``."""
        return Finding(
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
            hint=hint if hint is not None else self.default_hint,
        )


@dataclass
class LintReport:
    """The outcome of one :func:`lint_paths` pass."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        """Human-readable report (the ``--format text`` body)."""
        lines = [f.render() for f in self.findings]
        tally = (
            f"{len(self.findings)} finding(s)"
            if self.findings
            else "clean"
        )
        lines.append(
            f"{tally}: {len(self.files)} file(s) checked, "
            f"{len(self.suppressed)} finding(s) suppressed"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form (``repro-grid lint --format json``)."""
        return {
            "clean": self.clean,
            "files_checked": len(self.files),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }


def _collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files and directories),
    deduplicated, in sorted order.  Missing paths raise
    ``FileNotFoundError`` naming the offender."""
    out: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            out.setdefault(path, None)
        elif path.is_dir():
            for child in sorted(path.rglob("*.py")):
                out.setdefault(child, None)
        else:
            raise FileNotFoundError(
                f"no such file or directory: {raw}"
            )
    return list(out)


def _pragma_findings(ctx: FileContext, known_ids: set[str]) -> list[Finding]:
    """Police the suppression pragmas themselves (rule ``LNT``)."""
    out = []
    for pragma in ctx.suppressions:
        if not pragma.rule_ids:
            out.append(Finding(
                path=ctx.rel, line=pragma.line, col=1,
                rule_id=META_RULE_ID,
                message="suppression pragma names no rule id",
                hint="write '# repro: allow[RULE-ID] -- justification'",
            ))
            continue
        unknown = [r for r in pragma.rule_ids if r not in known_ids]
        if unknown:
            out.append(Finding(
                path=ctx.rel, line=pragma.line, col=1,
                rule_id=META_RULE_ID,
                message=(
                    f"suppression pragma names unknown rule id(s) "
                    f"{', '.join(unknown)} (it would silence nothing)"
                ),
                hint=f"known rule ids: {', '.join(sorted(known_ids))}",
            ))
        if not pragma.justification:
            out.append(Finding(
                path=ctx.rel, line=pragma.line, col=1,
                rule_id=META_RULE_ID,
                message=(
                    "suppression pragma has no justification — every "
                    "allow[...] must say why the rule does not apply"
                ),
                hint=(
                    "append ' -- <reason>' to the pragma, e.g. "
                    "'# repro: allow[Q1] -- WHERE clause is composed "
                    "from fixed fragments, values go through ? params'"
                ),
            ))
    return out


def lint_paths(
    paths: Sequence[str | Path],
    rules: Iterable[Rule],
    *,
    rule_ids: Sequence[str] | None = None,
) -> LintReport:
    """Run ``rules`` over every ``.py`` file under ``paths``.

    ``rule_ids`` restricts the pass to those rules (``repro-grid lint
    --rule D1``); pragma hygiene (``LNT``) always runs.  Findings come
    back sorted by (path, line, column, rule id); suppressed findings
    are kept separately so the report can say how much is being
    allowed.  Unreadable or unparseable files surface as ``LNT``
    findings, not crashes — the linter must be able to report on a
    broken tree.
    """
    active = [
        rule for rule in rules
        if rule_ids is None or rule.rule_id in rule_ids
    ]
    known_ids = {rule.rule_id for rule in rules} | {META_RULE_ID}
    report = LintReport()
    for path in _collect_files(paths):
        rel = path.as_posix()
        report.files.append(rel)
        try:
            source = path.read_text(encoding="utf-8")
            ctx = FileContext(path, rel, source)
        except (OSError, UnicodeDecodeError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            report.findings.append(Finding(
                path=rel, line=line, col=1, rule_id=META_RULE_ID,
                message=f"cannot lint file: {exc}",
                hint="the linter needs a parseable UTF-8 python file",
            ))
            continue
        raised: list[Finding] = []
        for rule in active:
            if rule.applies(ctx):
                raised.extend(rule.check(ctx))
        for finding in raised:
            if ctx.suppressed(finding):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
        report.findings.extend(_pragma_findings(ctx, known_ids))
    report.findings.sort(
        key=lambda f: (f.path, f.line, f.col, f.rule_id)
    )
    return report
