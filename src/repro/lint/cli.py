"""The ``repro-grid lint`` subcommand.

Thin argparse adapter over :func:`repro.lint.core.lint_paths` with the
repo-wide exit-code contract: 0 clean, 1 findings, 2 bad invocation
(unknown rule id, nonexistent path).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.core import lint_paths
from repro.lint.rules import default_rules

__all__ = ["add_lint_parser", "cmd_lint"]


def add_lint_parser(sub) -> None:
    """Attach the ``lint`` subparser to a subparsers object."""
    parser = sub.add_parser(
        "lint",
        help="check sources against the repo's determinism/atomicity/"
        "registry invariants",
        description=(
            "AST-check Python sources against the repro.lint rule "
            "catalogue (docs/LINT.md). Exit 0 when clean, 1 when any "
            "finding remains, 2 on bad invocation."
        ),
    )
    parser.add_argument(
        "paths",
        metavar="PATHS",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--rule",
        metavar="ID",
        action="append",
        dest="rules",
        help="run only this rule id (repeatable); default: all rules",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def cmd_lint(args: argparse.Namespace) -> int:
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    known = {rule.rule_id for rule in rules}
    selected = args.rules
    if selected:
        unknown = sorted(set(selected) - known)
        if unknown:
            print(
                f"--rule: unknown rule id(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
    try:
        report = lint_paths(args.paths, rules, rule_ids=selected)
    except FileNotFoundError as exc:
        print(f"PATHS: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(report.render())
    return 0 if report.clean else 1


def _main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(prog="repro-lint")
    sub = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(sub)
    return cmd_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(_main())
