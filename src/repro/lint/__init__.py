"""``repro.lint``: an AST-based linter for the repo's own invariants.

General-purpose linters check style; this package checks the
*semantic* conventions the reproduction's correctness claims rest on —
single-point RNG construction, clock-free payload codecs, ordered
iteration before serialization, atomic persistence writes, registry
hygiene, and parameterized append-only SQL.  Rule catalogue and
suppression policy live in ``docs/LINT.md``; run it as
``repro-grid lint [PATHS]``.

Layout:

* :mod:`repro.lint.core` — rule-agnostic framework (``Rule``,
  ``FileContext``, ``Finding``, suppression pragmas, ``lint_paths``)
* :mod:`repro.lint.rules` — the six shipped rules
* :mod:`repro.lint.locks` — pinned checksums for append-only artifacts
* :mod:`repro.lint.cli` — the ``repro-grid lint`` subcommand
"""

from repro.lint.core import (
    FileContext,
    Finding,
    LintReport,
    Rule,
    lint_paths,
)
from repro.lint.rules import default_rules

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "default_rules",
    "lint_paths",
]
