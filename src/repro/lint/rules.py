"""The initial rule set: the repo's real invariants, mechanized.

Each rule below encodes a convention that the library's correctness
claims rest on (bit-identical sweeps, byte-stable run records,
crash-resume == uninterrupted run) but that used to live only in
docstrings.  ``docs/LINT.md`` carries the full catalogue with the
rationale and remediation per rule; the short form:

========  ==========================================================
rule id   invariant
========  ==========================================================
``D1``    no random-state construction outside ``util/rng.py``
``D2``    no wall-clock reads in payload-producing modules (use
          :mod:`repro.util.clock`)
``D3``    no unordered iteration (bare sets, ``os.listdir``) in
          serialization modules
``A1``    every write under ``experiments/store/`` and
          ``experiments/manifest.py`` goes through
          :func:`repro.util.atomic.atomic_write_text`
``R1``    registry entries carry a description, a docstring, and a
          ref-grammar-safe name
``Q1``    SQL in ``store/sqlite.py`` is parameterized; ``MIGRATIONS``
          is append-only (checksummed prefix)
========  ==========================================================
"""

from __future__ import annotations

import ast
import hashlib
import re
from collections.abc import Iterator

from repro.lint.core import FileContext, Finding, Rule
from repro.lint.locks import MIGRATIONS_LOCK

__all__ = [
    "RngConstructionRule",
    "WallClockRule",
    "UnorderedIterationRule",
    "AtomicWriteRule",
    "RegistryHygieneRule",
    "SqlHygieneRule",
    "default_rules",
    "migration_checksum",
]

#: modules whose records/payloads must be pure functions of their
#: inputs — the D2/D3 blast radius.  The service tree is in scope:
#: everything it persists (job rows, run records) must stamp time via
#: repro.util.clock only, so stored state stays replayable.
_PAYLOAD_SUFFIXES = ("experiments/spec.py", "metrics/report.py")
_PAYLOAD_FRAGMENTS = ("/experiments/store/", "/service/")


def _walk_calls(ctx: FileContext) -> Iterator[ast.Call]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            yield node


class RngConstructionRule(Rule):
    """D1: generators are constructed in ``util/rng.py`` and nowhere
    else.

    Deterministic replication rests on every stochastic component
    drawing from an explicitly passed ``numpy.random.Generator`` (or
    :class:`~repro.util.rng.RngFactory` stream).  A stray
    ``default_rng()`` — or worse, stdlib ``random`` module state —
    creates a hidden stream that silently decouples a component from
    the root seed.
    """

    rule_id = "D1"
    title = (
        "no np.random/default_rng/random.* construction outside "
        "util/rng.py"
    )
    default_hint = (
        "take a numpy Generator or RngFactory parameter and derive "
        "streams via repro.util.rng (as_generator / RngFactory.stream)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.path_endswith("util/rng.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _walk_calls(ctx):
            name = ctx.call_name(call)
            if name is None:
                continue
            if name.startswith("numpy.random.") or (
                name == "random" or name.startswith("random.")
            ):
                yield self.finding(
                    ctx,
                    call,
                    f"constructs or touches shared random state via "
                    f"{name}() — only repro/util/rng.py may build "
                    f"generators",
                )


class WallClockRule(Rule):
    """D2: payload-producing modules never read the wall clock
    directly.

    Provenance timestamps (``created_at`` et al.) are the *only*
    nondeterministic bytes a record may carry, and they all funnel
    through :mod:`repro.util.clock` so they stay auditable and
    monkeypatchable.  A direct ``datetime.now()`` in a codec module is
    a byte of nondeterminism the byte-identity tests cannot see.
    """

    rule_id = "D2"
    title = (
        "no direct wall-clock reads in payload-producing modules "
        "(store/, spec.py, metrics/report.py)"
    )
    default_hint = (
        "use repro.util.clock.utc_now_iso() / utc_timestamp(), the "
        "designated provenance helpers"
    )

    _BANNED = frozenset({
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    })

    def applies(self, ctx: FileContext) -> bool:
        return ctx.path_contains(*_PAYLOAD_FRAGMENTS) or ctx.path_endswith(
            *_PAYLOAD_SUFFIXES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _walk_calls(ctx):
            name = ctx.call_name(call)
            if name in self._BANNED:
                yield self.finding(
                    ctx,
                    call,
                    f"wall-clock read {name}() in a payload-producing "
                    f"module (nondeterministic record bytes)",
                )


class UnorderedIterationRule(Rule):
    """D3: nothing with arbitrary order feeds JSON/CSV serialization.

    ``os.listdir`` order is filesystem-dependent and ``set`` iteration
    order is hash-seed-dependent; either one upstream of a record
    write makes "byte-identical" a coin flip.  Directory scans must be
    ``sorted(...)``-wrapped and sets sorted before iteration.
    """

    rule_id = "D3"
    title = (
        "no bare-set iteration or unsorted directory listings in "
        "serialization modules"
    )
    default_hint = "wrap the listing/set in sorted(...) before iterating"

    _LISTING_CALLS = frozenset({"os.listdir", "os.scandir"})
    _LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

    def applies(self, ctx: FileContext) -> bool:
        return (
            ctx.path_contains(*_PAYLOAD_FRAGMENTS)
            or ctx.path_endswith(
                *_PAYLOAD_SUFFIXES, "experiments/manifest.py"
            )
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _walk_calls(ctx):
            name = ctx.call_name(call)
            method = (
                call.func.attr
                if isinstance(call.func, ast.Attribute)
                else None
            )
            if (
                name in self._LISTING_CALLS
                or method in self._LISTING_METHODS
            ) and not ctx.in_sorted(call):
                label = name if name is not None else f".{method}()"
                yield self.finding(
                    ctx,
                    call,
                    f"directory listing {label} has filesystem-"
                    f"dependent order; wrap it in sorted(...)",
                )
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if isinstance(it, ast.Set) or (
                    isinstance(it, ast.Call)
                    and ctx.call_name(it) == "set"
                ):
                    yield self.finding(
                        ctx,
                        it,
                        "iterating a bare set: hash-seed-dependent "
                        "order feeding a serialization module",
                    )


class AtomicWriteRule(Rule):
    """A1: durable writes in store/manifest code are atomic.

    Crash-resume's core guarantee — a record that exists is complete —
    holds only if every ``run.json`` / ``manifest.json`` / ``grid.csv``
    write is a temp-file + rename.  All writes in the persistence
    layer must go through
    :func:`repro.util.atomic.atomic_write_text`; a direct
    ``open(..., "w")`` is a truncation window.
    """

    rule_id = "A1"
    title = (
        "writes under experiments/store/ and experiments/manifest.py "
        "go through the atomic temp+rename helper"
    )
    default_hint = (
        "serialize to a string and write it with "
        "repro.util.atomic.atomic_write_text(path, text)"
    )

    _WRITE_METHODS = frozenset({"write_text", "write_bytes"})

    def applies(self, ctx: FileContext) -> bool:
        return ctx.path_contains(*_PAYLOAD_FRAGMENTS) or ctx.path_endswith(
            "experiments/manifest.py"
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _walk_calls(ctx):
            name = ctx.call_name(call)
            method = (
                call.func.attr
                if isinstance(call.func, ast.Attribute)
                else None
            )
            if method in self._WRITE_METHODS:
                yield self.finding(
                    ctx,
                    call,
                    f"direct .{method}() in the persistence layer — a "
                    f"crash mid-write leaves a truncated file",
                )
            elif name == "open" or method == "open":
                mode = self._mode_argument(call)
                if mode is not None and any(c in mode for c in "wxa+"):
                    yield self.finding(
                        ctx,
                        call,
                        f"direct open(..., {mode!r}) in the "
                        f"persistence layer — a crash mid-write "
                        f"leaves a truncated file",
                    )

    @staticmethod
    def _mode_argument(call: ast.Call) -> str | None:
        """The constant mode string of an ``open`` call, if any."""
        mode: ast.expr | None = None
        if call.args:
            # builtin open(path, mode) / Path.open(mode)
            index = 1 if isinstance(call.func, ast.Name) else 0
            if len(call.args) > index:
                mode = call.args[index]
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None


class RegistryHygieneRule(Rule):
    """R1: registry entries are documented and ref-grammar-safe.

    Specs address schedulers/workloads by *ref* strings
    (``name?key=value``), so an entry name containing ``?``, ``&``,
    ``=`` or upper case would be unaddressable or ambiguous; and the
    ``repro-grid registry`` table is only as useful as the
    descriptions and docstrings behind it.
    """

    rule_id = "R1"
    title = (
        "@register_scheduler/@register_workload sites carry a "
        "description, a docstring, and a grammar-safe name"
    )
    default_hint = (
        "pass description=\"...\", give the factory a docstring, and "
        "keep names to lowercase [a-z0-9._-] (the ref grammar)"
    )

    _TARGETS = frozenset({
        "repro.registry.register_scheduler",
        "repro.registry.register_workload",
        "register_scheduler",
        "register_workload",
    })
    _NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
        seen: set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for deco in node.decorator_list:
                if (
                    isinstance(deco, ast.Call)
                    and self._target(ctx, deco) is not None
                ):
                    seen.add(id(deco))
                    yield from self._check_call(ctx, deco)
                    if not ast.get_docstring(node):
                        yield self.finding(
                            ctx,
                            node,
                            f"registered factory {node.name}() has no "
                            f"docstring",
                        )
        for call in _walk_calls(ctx):
            if id(call) in seen or self._target(ctx, call) is None:
                continue
            yield from self._check_call(ctx, call)
            yield from self._check_applied_function(ctx, call, functions)

    def _target(self, ctx: FileContext, call: ast.Call) -> str | None:
        name = ctx.call_name(call)
        return name if name in self._TARGETS else None

    def _check_call(
        self, ctx: FileContext, call: ast.Call
    ) -> Iterator[Finding]:
        kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
        description = kwargs.get("description")
        if description is None:
            yield self.finding(
                ctx,
                call,
                "registry entry has no description= (the 'repro-grid "
                "registry' table would show an empty row)",
            )
        elif (
            isinstance(description, ast.Constant)
            and isinstance(description.value, str)
            and not description.value.strip()
        ):
            yield self.finding(
                ctx, call, "registry entry has an empty description="
            )
        names: list[ast.expr] = []
        if call.args:
            names.append(call.args[0])
        elif "name" in kwargs:
            names.append(kwargs["name"])
        aliases = kwargs.get("aliases")
        if isinstance(aliases, (ast.Tuple, ast.List)):
            names.extend(aliases.elts)
        for name_node in names:
            if isinstance(name_node, ast.Constant) and isinstance(
                name_node.value, str
            ):
                if not self._NAME_RE.match(name_node.value):
                    yield self.finding(
                        ctx,
                        name_node,
                        f"registry name {name_node.value!r} violates "
                        f"the ref grammar (lowercase [a-z0-9._-], no "
                        f"'?'/'&'/'=')",
                    )

    def _check_applied_function(
        self,
        ctx: FileContext,
        call: ast.Call,
        functions: dict,
    ) -> Iterator[Finding]:
        """Docstring check for the ``register_x(...)(fn)`` call form."""
        parent = ctx.parents.get(call)
        if not (isinstance(parent, ast.Call) and parent.func is call):
            return
        if not parent.args:
            return
        target = parent.args[0]
        if isinstance(target, ast.Lambda):
            yield self.finding(
                ctx,
                target,
                "registering a lambda: a registry factory needs a "
                "docstring",
            )
        elif isinstance(target, ast.Name):
            func = functions.get(target.id)
            if func is not None and not ast.get_docstring(func):
                yield self.finding(
                    ctx,
                    func,
                    f"registered factory {func.name}() has no "
                    f"docstring",
                )


def migration_checksum(segment: str) -> str:
    """Whitespace-insensitive checksum of one ``MIGRATIONS`` entry.

    Every whitespace character is stripped before hashing, so
    reformatting an entry does not change its checksum but touching a
    single character of its SQL does.  16 hex digits of SHA-256 —
    plenty against accidental edits, which is the threat model.
    """
    canonical = "".join(segment.split())
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class SqlHygieneRule(Rule):
    """Q1: the SQLite backend's SQL is parameterized and its
    migration history immutable.

    String-built SQL is how injection and quoting bugs arrive, so any
    dynamically composed query (f-string, concatenation, ``%``,
    ``.format``) is flagged — genuinely dynamic clauses carry a
    justified ``allow[Q1]`` pragma instead.  The ``MIGRATIONS`` list
    is released schema history: editing an applied entry makes fresh
    databases silently diverge from upgraded ones, so each released
    entry's checksum is pinned in
    :data:`repro.lint.locks.MIGRATIONS_LOCK` and verified here.
    """

    rule_id = "Q1"
    title = (
        "sqlite backend: parameterized queries only; MIGRATIONS is "
        "append-only against a checksummed prefix"
    )
    default_hint = (
        "pass values through '?' placeholders; for structurally "
        "dynamic SQL add '# repro: allow[Q1] -- <why it is safe>'"
    )

    _EXECUTE_METHODS = frozenset({"execute", "executemany", "executescript"})

    def __init__(self, migrations_lock: tuple[str, ...] | None = None):
        self.migrations_lock = (
            migrations_lock if migrations_lock is not None
            else MIGRATIONS_LOCK
        )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.path_endswith(
            "experiments/store/sqlite.py", "service/queue.py"
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _walk_calls(ctx):
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in self._EXECUTE_METHODS
                and call.args
                and self._dynamic_sql(call.args[0])
            ):
                yield self.finding(
                    ctx,
                    call,
                    f".{call.func.attr}() with dynamically built SQL "
                    f"— use parameterized queries (? placeholders)",
                )
        yield from self._check_migrations(ctx)

    @staticmethod
    def _dynamic_sql(node: ast.expr) -> bool:
        if isinstance(node, ast.JoinedStr):
            return any(
                isinstance(part, ast.FormattedValue) for part in node.values
            )
        if isinstance(node, ast.BinOp):
            return True
        if isinstance(node, ast.Call) and (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"
        ):
            return True
        return False

    def _check_migrations(self, ctx: FileContext) -> Iterator[Finding]:
        entries = self._migration_entries(ctx)
        if entries is None:
            return
        lock = self.migrations_lock
        lock_hint = (
            "released MIGRATIONS entries are immutable history: add "
            "new behaviour as a *new* appended migration"
        )
        for i, (node, checksum) in enumerate(entries):
            if i < len(lock) and checksum != lock[i]:
                yield self.finding(
                    ctx,
                    node,
                    f"released migration #{i + 1} was edited or "
                    f"reordered (checksum {checksum} != locked "
                    f"{lock[i]})",
                    hint=lock_hint,
                )
            elif i >= len(lock):
                yield self.finding(
                    ctx,
                    node,
                    f"new migration #{i + 1} is not pinned yet",
                    hint=(
                        f"append \"{checksum}\" to MIGRATIONS_LOCK in "
                        f"src/repro/lint/locks.py to release it"
                    ),
                )
        if len(entries) < len(lock):
            yield self.finding(
                ctx,
                ctx.tree,
                f"MIGRATIONS lists {len(entries)} entr(ies) but "
                f"{len(lock)} are locked — released migrations were "
                f"removed",
                hint=lock_hint,
            )

    @staticmethod
    def _migration_entries(
        ctx: FileContext,
    ) -> list[tuple[ast.expr, str]] | None:
        """(node, checksum) per entry of the MIGRATIONS tuple, or None
        when the file has no module-level MIGRATIONS assignment."""
        for node in ctx.tree.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if not (
                isinstance(target, ast.Name)
                and target.id == "MIGRATIONS"
                and value is not None
            ):
                continue
            if not isinstance(value, ast.Tuple):
                return []
            out: list[tuple[ast.expr, str]] = []
            for elt in value.elts:
                segment = ast.get_source_segment(ctx.source, elt) or ""
                out.append((elt, migration_checksum(segment)))
            return out
        return None


def default_rules() -> tuple[Rule, ...]:
    """Fresh instances of the full rule set, in catalogue order."""
    return (
        RngConstructionRule(),
        WallClockRule(),
        UnorderedIterationRule(),
        AtomicWriteRule(),
        RegistryHygieneRule(),
        SqlHygieneRule(),
    )
