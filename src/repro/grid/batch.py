"""The batch view handed to schedulers, and their reply.

At every scheduling tick the engine snapshots the queue and the grid
into a :class:`Batch` — exactly the information the paper's lookup
table stores per entry: the site ready times, the job execution-time
(ETC) matrix, and the job security demands.  Schedulers are pure
functions ``Batch -> ScheduleResult`` and never touch engine state,
which is what makes the GA fitness evaluation and the history-table
machinery testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Batch",
    "ScheduleResult",
    "check_order_permutation",
    "snapshot_batch",
]


def check_order_permutation(assignment, order) -> None:
    """Require ``order`` to cover the assigned jobs exactly once each.

    An order entry pointing at an unassigned job would dispatch its
    -1 site index (which numpy silently resolves to the *last* site),
    a duplicate would dispatch a job twice, and an omission would
    strand an assigned job forever.  Shared by
    :class:`ScheduleResult` construction and the engine's check of
    duck-typed scheduler results.
    """
    a = np.asarray(assignment)
    o = np.asarray(order)
    assigned = np.flatnonzero(a >= 0)
    if o.shape != assigned.shape or not np.array_equal(np.sort(o), assigned):
        raise ValueError(
            "order must be a permutation of the assigned job indices: "
            f"order={o.tolist()} assigned={assigned.tolist()}"
        )


@dataclass(frozen=True)
class Batch:
    """Immutable snapshot of one scheduling event.

    Attributes
    ----------
    now:
        Simulation time of the tick.
    job_ids:
        Global job identifiers, shape (B,).
    workloads:
        Job workloads (node-seconds), shape (B,).
    security_demands:
        Job SD values, shape (B,).
    secure_only:
        True for jobs that previously failed and must now be placed on
        absolutely safe sites, shape (B,).
    etc:
        Execution-time matrix, shape (B, S).
    ready:
        Site next-available times, clipped to >= now, shape (S,).
    site_security:
        Site SL values, shape (S,).
    speeds:
        Site speeds, shape (S,).
    """

    now: float
    job_ids: np.ndarray
    workloads: np.ndarray
    security_demands: np.ndarray
    secure_only: np.ndarray
    etc: np.ndarray
    ready: np.ndarray
    site_security: np.ndarray
    speeds: np.ndarray

    def __post_init__(self) -> None:
        b, s = self.etc.shape
        for name in ("job_ids", "workloads", "security_demands", "secure_only"):
            arr = getattr(self, name)
            if arr.shape != (b,):
                raise ValueError(
                    f"{name} has shape {arr.shape}, expected ({b},) to match etc"
                )
        for name in ("ready", "site_security", "speeds"):
            arr = getattr(self, name)
            if arr.shape != (s,):
                raise ValueError(
                    f"{name} has shape {arr.shape}, expected ({s},) to match etc"
                )

    @property
    def n_jobs(self) -> int:
        """Batch size B."""
        return self.etc.shape[0]

    @property
    def n_sites(self) -> int:
        """Number of sites S."""
        return self.etc.shape[1]

    def completion(self) -> np.ndarray:
        """Expected completion matrix ``max(ready, now) + etc``."""
        return np.maximum(self.ready, self.now)[None, :] + self.etc


def snapshot_batch(
    jobs,
    grid,
    now: float = 0.0,
    *,
    ready=None,
    secure_only=None,
) -> Batch:
    """Snapshot a residual job set and a grid into a :class:`Batch`.

    This is the bridge behind the unified ``ScheduleFn`` protocol
    (:func:`repro.registry.bind_scheduler`): any collection of
    :class:`~repro.grid.job.Job` objects plus a
    :class:`~repro.grid.site.Grid` becomes the exact structure every
    scheduler consumes, without going through the engine.  ``ready``
    defaults to all sites free at ``now``; ``secure_only`` defaults to
    no job being restricted.
    """
    from repro.grid.etc import etc_matrix  # deferred: keep batch.py leaf-light

    jobs = list(jobs)
    job_ids = np.array([j.job_id for j in jobs], dtype=int)
    workloads = np.array([j.workload for j in jobs], dtype=float)
    sds = np.array([j.security_demand for j in jobs], dtype=float)
    if secure_only is None:
        secure_only = np.zeros(len(jobs), dtype=bool)
    else:
        secure_only = np.asarray(secure_only, dtype=bool)
    if ready is None:
        ready = np.full(grid.n_sites, float(now), dtype=float)
    else:
        ready = np.maximum(np.asarray(ready, dtype=float), float(now))
    return Batch(
        now=float(now),
        job_ids=job_ids,
        workloads=workloads,
        security_demands=sds,
        secure_only=secure_only,
        etc=etc_matrix(workloads, grid.speeds),
        ready=ready,
        site_security=grid.security_levels.copy(),
        speeds=grid.speeds.copy(),
    )


@dataclass(frozen=True)
class ScheduleResult:
    """A scheduler's decision for one batch.

    Attributes
    ----------
    assignment:
        Site index per batch job, shape (B,); ``-1`` defers the job to
        a later batch (e.g. no eligible site exists).
    order:
        Indices (into the batch) of *assigned* jobs in dispatch order.
        Dispatch order determines per-job start times when several
        jobs share a site; heuristics return their natural assignment
        order, the GA returns batch order.
    """

    assignment: np.ndarray
    order: np.ndarray

    def __post_init__(self) -> None:
        a = np.asarray(self.assignment)
        o = np.asarray(self.order)
        if a.ndim != 1:
            raise ValueError(f"assignment must be 1-D, got shape {a.shape}")
        if o.ndim != 1:
            raise ValueError(f"order must be 1-D, got shape {o.shape}")
        check_order_permutation(a, o)

    @classmethod
    def from_assignment(cls, assignment) -> "ScheduleResult":
        """Build a result dispatching assigned jobs in batch order."""
        a = np.asarray(assignment, dtype=int)
        return cls(assignment=a, order=np.flatnonzero(a >= 0))

    @property
    def n_assigned(self) -> int:
        """Number of jobs actually placed this batch."""
        return int((np.asarray(self.assignment) >= 0).sum())

    @property
    def n_deferred(self) -> int:
        """Number of jobs pushed to a later batch."""
        return int((np.asarray(self.assignment) < 0).sum())
