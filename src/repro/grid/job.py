"""Job model.

A *job* is the paper's atomic unit of execution: independent (no
inter-job communication), neither malleable nor moldable.  A job is
fully described by its arrival time, its computational *workload*
(node-seconds of work), and its *security demand* ``SD`` — the minimum
site security level under which it is guaranteed to finish.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_non_negative, check_positive

__all__ = ["Job", "JobState", "JobRecord"]


@dataclass(frozen=True, slots=True)
class Job:
    """Immutable job specification as submitted by the user.

    Parameters
    ----------
    job_id:
        Unique non-negative identifier (index into the workload).
    arrival:
        Submission time in simulated seconds.
    workload:
        Amount of computation in node-seconds; execution time on a
        site of aggregate speed ``v`` is ``workload / v``.
    security_demand:
        The job's ``SD`` value (paper: uniform in [0.6, 0.9]).
    nodes:
        Number of nodes the original trace job requested.  Purely
        informational under the aggregate-speed site abstraction (the
        workload already folds it in), retained for trace fidelity.
    """

    job_id: int
    arrival: float
    workload: float
    security_demand: float
    nodes: int = 1

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError(f"job_id must be non-negative, got {self.job_id}")
        check_non_negative("arrival", self.arrival)
        check_positive("workload", self.workload)
        check_non_negative("security_demand", self.security_demand)
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")


class JobState(enum.Enum):
    """Lifecycle of a job inside the simulation engine."""

    PENDING = "pending"  # arrived, waiting in the scheduler queue
    RUNNING = "running"  # dispatched, attempt in flight
    DONE = "done"  # completed successfully
    FAILED = "failed"  # last attempt failed; queued for secure retry
    CANCELLED = "cancelled"  # withdrawn while waiting (dynamic runs)


@dataclass(slots=True)
class JobRecord:
    """Mutable per-job bookkeeping accumulated by the engine.

    The metrics layer consumes these records: ``first_start`` is the
    paper's ``b_i``, ``completion`` its ``c_i``, and the ``took_risk``
    / ``ever_failed`` flags feed ``N_risk`` / ``N_fail``.
    """

    job: Job
    state: JobState = JobState.PENDING
    attempts: int = 0
    first_start: float = np.nan
    completion: float = np.nan
    took_risk: bool = False
    ever_failed: bool = False
    secure_only: bool = False
    forced: bool = False  # engine fell back to the max-SL site
    sites_visited: list[int] = field(default_factory=list)

    @property
    def response_time(self) -> float:
        """``c_i - a_i`` — completion minus arrival."""
        return self.completion - self.job.arrival

    @property
    def service_span(self) -> float:
        """``c_i - b_i`` — completion minus first start (paper's
        'waiting time' denominator in the slowdown ratio, Eq. 3)."""
        return self.completion - self.first_start
