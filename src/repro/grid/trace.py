"""Execution-trace recording.

With ``GridSimulator(..., record_attempts=True)`` the engine logs one
:class:`Attempt` per dispatch — (job, site, start, end, outcome) — into
an :class:`AttemptLog`.  The log is the raw material for the
time-series metrics (:mod:`repro.metrics.timeseries`): backlog curves,
per-interval utilization, failure timelines; it can also be exported
as rows for external analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Attempt", "AttemptLog"]


@dataclass(frozen=True, slots=True)
class Attempt:
    """One execution attempt of one job on one site."""

    job_id: int
    site_id: int
    start: float
    end: float
    failed: bool
    risky: bool  # SL < SD at dispatch time
    attempt_index: int  # 1 for the first try

    @property
    def duration(self) -> float:
        """Site occupancy of this attempt (seconds)."""
        return self.end - self.start


@dataclass
class AttemptLog:
    """Append-only log of attempts, ordered by dispatch."""

    attempts: list[Attempt] = field(default_factory=list)

    def record(self, attempt: Attempt) -> None:
        """Append one attempt (engine hook)."""
        if attempt.end < attempt.start:
            raise ValueError(
                f"attempt ends before it starts: {attempt}"
            )
        self.attempts.append(attempt)

    def __len__(self) -> int:
        return len(self.attempts)

    def __iter__(self):
        return iter(self.attempts)

    # -- selections ----------------------------------------------------
    def for_job(self, job_id: int) -> list[Attempt]:
        """All attempts of one job, in dispatch order."""
        return [a for a in self.attempts if a.job_id == job_id]

    def for_site(self, site_id: int) -> list[Attempt]:
        """All attempts executed on one site."""
        return [a for a in self.attempts if a.site_id == site_id]

    def failures(self) -> list[Attempt]:
        """All failed attempts."""
        return [a for a in self.attempts if a.failed]

    # -- exports ---------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Columnar view: arrays keyed by field name."""
        n = len(self.attempts)
        out = {
            "job_id": np.empty(n, dtype=np.int64),
            "site_id": np.empty(n, dtype=np.int64),
            "start": np.empty(n, dtype=float),
            "end": np.empty(n, dtype=float),
            "failed": np.empty(n, dtype=bool),
            "risky": np.empty(n, dtype=bool),
            "attempt_index": np.empty(n, dtype=np.int64),
        }
        for i, a in enumerate(self.attempts):
            out["job_id"][i] = a.job_id
            out["site_id"][i] = a.site_id
            out["start"][i] = a.start
            out["end"][i] = a.end
            out["failed"][i] = a.failed
            out["risky"][i] = a.risky
            out["attempt_index"][i] = a.attempt_index
        return out

    def wasted_time(self) -> float:
        """Total site-seconds consumed by failed attempts."""
        return float(sum(a.duration for a in self.attempts if a.failed))

    def total_busy_time(self) -> float:
        """Total site-seconds consumed by all attempts."""
        return float(sum(a.duration for a in self.attempts))
