"""Execution-trace recording and the versioned trace codec.

With ``GridSimulator(..., record_attempts=True)`` the engine logs one
:class:`Attempt` per dispatch — (job, site, start, end, outcome) — into
an :class:`AttemptLog`.  The log is the raw material for the
time-series metrics (:mod:`repro.metrics.timeseries`): backlog curves,
per-interval utilization, failure timelines; it can also be exported
as rows for external analysis.

:func:`save_trace` / :func:`load_trace` give a whole recorded run — the
grid, the job batch, the dynamic timeline, and the attempt stream — a
durable JSONL form (:class:`GridTrace`).  The codec is versioned like
the run store: the header line carries ``schema_version`` and a reader
refuses any version it does not know, writes are atomic (temp file +
rename), and a round-trip is bit-identical — which is what makes
``repro-grid replay`` able to re-execute a recorded run exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.grid.job import Job
from repro.grid.site import Grid, Site
from repro.grid.timeline import DynamicTimeline, SiteOutage
from repro.util.atomic import atomic_write_text

__all__ = [
    "Attempt",
    "AttemptLog",
    "GridTrace",
    "TRACE_SCHEMA_VERSION",
    "save_trace",
    "load_trace",
]


@dataclass(frozen=True, slots=True)
class Attempt:
    """One execution attempt of one job on one site."""

    job_id: int
    site_id: int
    start: float
    end: float
    failed: bool
    risky: bool  # SL < SD at dispatch time
    attempt_index: int  # 1 for the first try

    @property
    def duration(self) -> float:
        """Site occupancy of this attempt (seconds)."""
        return self.end - self.start


@dataclass
class AttemptLog:
    """Append-only log of attempts, ordered by dispatch."""

    attempts: list[Attempt] = field(default_factory=list)

    def record(self, attempt: Attempt) -> None:
        """Append one attempt (engine hook)."""
        if attempt.end < attempt.start:
            raise ValueError(
                f"attempt ends before it starts: {attempt}"
            )
        self.attempts.append(attempt)

    def __len__(self) -> int:
        return len(self.attempts)

    def __iter__(self):
        return iter(self.attempts)

    # -- selections ----------------------------------------------------
    def for_job(self, job_id: int) -> list[Attempt]:
        """All attempts of one job, in dispatch order."""
        return [a for a in self.attempts if a.job_id == job_id]

    def for_site(self, site_id: int) -> list[Attempt]:
        """All attempts executed on one site."""
        return [a for a in self.attempts if a.site_id == site_id]

    def failures(self) -> list[Attempt]:
        """All failed attempts."""
        return [a for a in self.attempts if a.failed]

    # -- exports ---------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Columnar view: arrays keyed by field name."""
        n = len(self.attempts)
        out = {
            "job_id": np.empty(n, dtype=np.int64),
            "site_id": np.empty(n, dtype=np.int64),
            "start": np.empty(n, dtype=float),
            "end": np.empty(n, dtype=float),
            "failed": np.empty(n, dtype=bool),
            "risky": np.empty(n, dtype=bool),
            "attempt_index": np.empty(n, dtype=np.int64),
        }
        for i, a in enumerate(self.attempts):
            out["job_id"][i] = a.job_id
            out["site_id"][i] = a.site_id
            out["start"][i] = a.start
            out["end"][i] = a.end
            out["failed"][i] = a.failed
            out["risky"][i] = a.risky
            out["attempt_index"][i] = a.attempt_index
        return out

    def wasted_time(self) -> float:
        """Total site-seconds consumed by failed attempts."""
        return float(sum(a.duration for a in self.attempts if a.failed))

    def total_busy_time(self) -> float:
        """Total site-seconds consumed by all attempts."""
        return float(sum(a.duration for a in self.attempts))


# ----------------------------------------------------------------------
# Versioned trace codec
# ----------------------------------------------------------------------

#: current trace file schema; bump on any incompatible row change
TRACE_SCHEMA_VERSION = 1
#: the ``kind`` tag that marks a file as a grid trace
TRACE_KIND = "grid-trace"


@dataclass(frozen=True)
class GridTrace:
    """One recorded run as a self-contained value.

    ``meta`` is an opaque JSON-able dict owned by the caller — the
    experiments layer stashes the scheduler ref, settings, variant and
    recorded report there; this module never interprets it, which
    keeps the grid layer free of upward dependencies.
    """

    meta: dict
    grid: Grid
    jobs: tuple[Job, ...]
    timeline: DynamicTimeline | None = None
    attempts: AttemptLog | None = None


def _dump(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def save_trace(path: str | Path, trace: GridTrace) -> Path:
    """Write ``trace`` to ``path`` as versioned JSONL, atomically.

    Line 1 is the header (``schema_version``, ``kind``, ``meta``);
    every further line is one typed row.  The write goes through
    :func:`repro.util.atomic.atomic_write_text`, so a crash leaves
    either the complete trace or the previous file — never a prefix.
    """
    lines = [
        _dump(
            {
                "schema_version": TRACE_SCHEMA_VERSION,
                "kind": TRACE_KIND,
                "meta": trace.meta,
            }
        )
    ]
    for site in trace.grid.sites:
        lines.append(
            _dump(
                {
                    "row": "site",
                    "site_id": int(site.site_id),
                    "speed": float(site.speed),
                    "security_level": float(site.security_level),
                    "nodes": int(site.nodes),
                }
            )
        )
    for job in trace.jobs:
        lines.append(
            _dump(
                {
                    "row": "job",
                    "job_id": int(job.job_id),
                    "arrival": float(job.arrival),
                    "workload": float(job.workload),
                    "security_demand": float(job.security_demand),
                    "nodes": int(job.nodes),
                }
            )
        )
    if trace.timeline is not None:
        t = trace.timeline
        lines.append(_dump({"row": "timeline", "online": bool(t.online)}))
        for job_id, time in t.cancels:
            lines.append(
                _dump({"row": "cancel", "job_id": int(job_id), "time": float(time)})
            )
        for outage in t.outages:
            lines.append(
                _dump(
                    {
                        "row": "outage",
                        "site_id": int(outage.site_id),
                        "start": float(outage.start),
                        "end": float(outage.end),
                    }
                )
            )
        for job_id, factor in t.exec_factors:
            lines.append(
                _dump(
                    {"row": "factor", "job_id": int(job_id), "factor": float(factor)}
                )
            )
        for job_id, due in t.due_dates:
            lines.append(
                _dump({"row": "due", "job_id": int(job_id), "due": float(due)})
            )
    if trace.attempts is not None:
        lines.append(_dump({"row": "attempt-log"}))
        for a in trace.attempts:
            lines.append(
                _dump(
                    {
                        "row": "attempt",
                        "job_id": int(a.job_id),
                        "site_id": int(a.site_id),
                        "start": float(a.start),
                        "end": float(a.end),
                        "failed": bool(a.failed),
                        "risky": bool(a.risky),
                        "attempt_index": int(a.attempt_index),
                    }
                )
            )
    return atomic_write_text(Path(path), "\n".join(lines) + "\n")


def load_trace(path: str | Path) -> GridTrace:
    """Read a trace written by :func:`save_trace`.

    Mirrors the run store's migration policy: a header whose
    ``schema_version`` this reader does not support is refused rather
    than half-parsed, as is any unknown row type — a trace is evidence
    for a bit-identical replay, so "best effort" is the wrong failure
    mode.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"{path} is not a grid trace: empty file")
    head = json.loads(lines[0])
    if not isinstance(head, dict) or head.get("kind") != TRACE_KIND:
        raise ValueError(
            f"{path} is not a grid trace (missing kind={TRACE_KIND!r} header)"
        )
    version = head.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema_version {version!r} "
            f"(this reader supports {TRACE_SCHEMA_VERSION})"
        )
    meta = head.get("meta") or {}
    sites: list[Site] = []
    jobs: list[Job] = []
    cancels: list[tuple[int, float]] = []
    outages: list[SiteOutage] = []
    factors: list[tuple[int, float]] = []
    dues: list[tuple[int, float]] = []
    attempt_rows: list[Attempt] = []
    has_timeline = False
    has_attempts = False
    online = False
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        row = json.loads(line)
        kind = row.get("row")
        if kind == "site":
            sites.append(
                Site(
                    site_id=int(row["site_id"]),
                    speed=float(row["speed"]),
                    security_level=float(row["security_level"]),
                    nodes=int(row["nodes"]),
                )
            )
        elif kind == "job":
            jobs.append(
                Job(
                    job_id=int(row["job_id"]),
                    arrival=float(row["arrival"]),
                    workload=float(row["workload"]),
                    security_demand=float(row["security_demand"]),
                    nodes=int(row["nodes"]),
                )
            )
        elif kind == "timeline":
            has_timeline = True
            online = bool(row["online"])
        elif kind == "cancel":
            has_timeline = True
            cancels.append((int(row["job_id"]), float(row["time"])))
        elif kind == "outage":
            has_timeline = True
            outages.append(
                SiteOutage(
                    site_id=int(row["site_id"]),
                    start=float(row["start"]),
                    end=float(row["end"]),
                )
            )
        elif kind == "factor":
            has_timeline = True
            factors.append((int(row["job_id"]), float(row["factor"])))
        elif kind == "due":
            has_timeline = True
            dues.append((int(row["job_id"]), float(row["due"])))
        elif kind == "attempt-log":
            has_attempts = True
        elif kind == "attempt":
            has_attempts = True
            attempt_rows.append(
                Attempt(
                    job_id=int(row["job_id"]),
                    site_id=int(row["site_id"]),
                    start=float(row["start"]),
                    end=float(row["end"]),
                    failed=bool(row["failed"]),
                    risky=bool(row["risky"]),
                    attempt_index=int(row["attempt_index"]),
                )
            )
        else:
            raise ValueError(f"{path}:{lineno}: unknown trace row {kind!r}")
    if not sites:
        raise ValueError(f"{path} has no site rows")
    if not jobs:
        raise ValueError(f"{path} has no job rows")
    grid = Grid(tuple(sorted(sites, key=lambda s: s.site_id)))
    timeline = None
    if has_timeline:
        timeline = DynamicTimeline(
            cancels=tuple(cancels),
            outages=tuple(outages),
            exec_factors=tuple(factors),
            due_dates=tuple(dues),
            online=online,
        )
    log = None
    if has_attempts:
        log = AttemptLog()
        for a in attempt_rows:
            log.record(a)
    return GridTrace(
        meta=meta, grid=grid, jobs=tuple(jobs), timeline=timeline, attempts=log
    )
