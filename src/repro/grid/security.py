"""Security and risk model (paper Section 2, Eq. 1; Figure 3).

The failure law: a job with security demand ``SD`` executing on a site
with security level ``SL`` fails with probability::

    P(fail) = 0                        if SD <= SL
    P(fail) = 1 - exp(-lambda (SD-SL)) if SD >  SL

The paper leaves the rate constant lambda unspecified; we default to
``DEFAULT_LAMBDA = 3.0`` (see DESIGN.md §3) and expose it everywhere.

The three *risk modes* of Figure 3 translate into per-(job, site)
eligibility:

* ``SECURE``  — only sites with ``SD <= SL`` (zero risk),
* ``RISKY``   — every site (tolerated failure probability 1),
* ``F_RISKY`` — sites whose failure probability is at most ``f``.

``SECURE`` equals ``F_RISKY`` with f = 0 and ``RISKY`` equals f = 1, so
all eligibility reduces to one vectorised threshold test.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.util.validation import check_positive, check_probability

__all__ = [
    "DEFAULT_LAMBDA",
    "RiskMode",
    "failure_probability",
    "max_tolerable_gap",
    "risk_tolerance",
    "eligibility_matrix",
    "eligible_sites",
]

DEFAULT_LAMBDA = 3.0


class RiskMode(enum.Enum):
    """Operational risk mode of a security-driven scheduler."""

    SECURE = "secure"
    RISKY = "risky"
    F_RISKY = "f-risky"

    @classmethod
    def parse(cls, value: "RiskMode | str") -> "RiskMode":
        """Accept a mode or its string name (``'secure'`` etc.)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown risk mode {value!r}; expected one of {names}")


def failure_probability(
    security_demand, security_level, *, lam: float = DEFAULT_LAMBDA
):
    """Eq. 1 failure probability, broadcasting over array inputs.

    Parameters
    ----------
    security_demand, security_level:
        Scalars or arrays; broadcast against each other.
    lam:
        Exponential rate constant (> 0).

    Returns
    -------
    Array (or scalar) of probabilities in [0, 1).
    """
    check_positive("lam", lam)
    sd = np.asarray(security_demand, dtype=float)
    sl = np.asarray(security_level, dtype=float)
    gap = np.maximum(sd - sl, 0.0)
    out = -np.expm1(-lam * gap)  # 1 - exp(-lam*gap), accurate for small gap
    if out.ndim == 0:
        return float(out)
    return out


def max_tolerable_gap(f: float, *, lam: float = DEFAULT_LAMBDA) -> float:
    """Largest ``SD - SL`` gap whose failure probability is <= ``f``.

    Inverse of Eq. 1: ``gap = -ln(1 - f) / lam``; infinite for f = 1.
    """
    check_probability("f", f)
    check_positive("lam", lam)
    if f >= 1.0:
        return float("inf")
    return float(-np.log1p(-f) / lam)


def risk_tolerance(mode: "RiskMode | str", f: float = 0.5) -> float:
    """Map a risk mode to its tolerated failure probability."""
    mode = RiskMode.parse(mode)
    if mode is RiskMode.SECURE:
        return 0.0
    if mode is RiskMode.RISKY:
        return 1.0
    return check_probability("f", f)


def eligibility_matrix(
    security_demands,
    security_levels,
    *,
    mode: "RiskMode | str" = RiskMode.SECURE,
    f: float = 0.5,
    lam: float = DEFAULT_LAMBDA,
    secure_only=None,
) -> np.ndarray:
    """Boolean (J, S) matrix: may job j run on site s under ``mode``?

    Parameters
    ----------
    security_demands:
        Job SD vector, shape (J,).
    security_levels:
        Site SL vector, shape (S,).
    mode, f, lam:
        Risk mode and its parameters.
    secure_only:
        Optional boolean (J,) mask of jobs that *must* be placed on
        absolutely safe sites regardless of the mode — the paper's
        rule for re-scheduling previously failed jobs.
    """
    sd = np.asarray(security_demands, dtype=float).reshape(-1, 1)
    sl = np.asarray(security_levels, dtype=float).reshape(1, -1)
    tol = risk_tolerance(mode, f)
    pfail = failure_probability(sd, sl, lam=lam)
    # "<= tol" with a tiny epsilon so that f-risky with f equal to an
    # exactly attained probability keeps the site (boundary inclusive).
    elig = pfail <= tol + 1e-12
    if secure_only is not None:
        mask = np.asarray(secure_only, dtype=bool).reshape(-1, 1)
        strict = sd <= sl
        elig = np.where(mask, strict, elig)
    return elig


def eligible_sites(
    security_demand: float,
    security_levels,
    *,
    mode: "RiskMode | str" = RiskMode.SECURE,
    f: float = 0.5,
    lam: float = DEFAULT_LAMBDA,
) -> np.ndarray:
    """Indices of sites eligible for one job under ``mode``."""
    row = eligibility_matrix(
        np.asarray([security_demand]), security_levels, mode=mode, f=f, lam=lam
    )[0]
    return np.flatnonzero(row)
