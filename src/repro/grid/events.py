"""Event types and the event queue for the discrete-event engine.

Three event kinds drive the periodic online scheduling model of the
paper's Figure 1:

* ``ARRIVAL``     — a job enters the scheduler queue;
* ``SCHEDULE``    — the periodic batch-scheduling tick;
* ``COMPLETION``  — a running attempt ends (successfully or failed).

Dynamic scenarios (:mod:`repro.workloads.dynamics`) add three more:

* ``SITE_UP`` / ``SITE_DOWN`` — a site recovers from / enters an
  outage window drawn by the event director;
* ``CANCEL``  — a waiting job is withdrawn by its submitter.

Events at equal timestamps are ordered by kind priority: completions
first (the freed site's state and a failed job's resubmission must be
visible to anything later at the same instant), then site state
changes (recovery before the next breakdown), then arrivals and
cancellations (queue membership settles), and the scheduling tick
last so it always observes the fully settled state.  A monotone
sequence number is the final tie-breaker for determinism.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.util.backend import FAST_BACKEND, resolve_backend

__all__ = [
    "EventKind",
    "Event",
    "EventQueue",
    "ArrayEventQueue",
    "make_event_queue",
]


class EventKind(enum.IntEnum):
    """Event kinds in same-timestamp processing order.

    The numeric values *are* the same-timestamp priority; static runs
    only ever enqueue COMPLETION/ARRIVAL/SCHEDULE, whose relative
    order is unchanged by the dynamic kinds slotted between them.
    """

    COMPLETION = 0
    SITE_UP = 1
    SITE_DOWN = 2
    ARRIVAL = 3
    CANCEL = 4
    SCHEDULE = 5


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled simulation event.

    ``payload`` is the job id for ARRIVAL/COMPLETION/CANCEL events,
    the site id for SITE_DOWN/SITE_UP, and unused for SCHEDULE ticks.
    """

    time: float
    kind: EventKind
    payload: int = -1

    def sort_key(self, seq: int) -> tuple:
        return (self.time, int(self.kind), seq)


@dataclass
class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    _heap: list = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count)

    def push(self, event: Event) -> None:
        """Insert ``event``."""
        if event.time < 0 or event.time != event.time:  # negative or NaN
            raise ValueError(f"invalid event time {event.time!r}")
        heapq.heappush(self._heap, (*event.sort_key(next(self._counter)), event))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[-1]

    def peek_time(self) -> float:
        """Timestamp of the earliest event (inf if empty)."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


#: structured record backing :class:`ArrayEventQueue`; field order is
#: exactly the (time, kind, seq) total order plus the payload.
EVENT_DTYPE = np.dtype(
    [
        ("time", np.float64),
        ("kind", np.int64),
        ("seq", np.int64),
        ("payload", np.int64),
    ]
)


class ArrayEventQueue:
    """The ``"fast"`` event queue: a lexsorted structured array plus a
    small dynamic heap.

    The engine's queue has a very lopsided access pattern: the whole
    workload's arrivals are pushed up front, then pops interleave with
    a trickle of SCHEDULE/COMPLETION pushes.  This queue exploits that
    shape — pushes before the first pop buffer in a list and are
    frozen into one ``np.lexsort``-ordered structured array; later
    pushes go to a ``heapq`` overflow; each pop takes the smaller of
    the two heads under the same ``(time, kind, seq)`` total order.

    The overflow path is public API: callers that know the up-front
    event set is complete may call :meth:`freeze` explicitly, after
    which every further :meth:`push` — the dynamic CANCEL/SITE_DOWN/
    SITE_UP stream included — lands on the heap segment.  (The first
    pop freezes implicitly, so calling it is never required.)

    Because the sequence number is unique and monotone across both
    segments, the pop order is **identical** to :class:`EventQueue` for
    any push/pop interleaving — enforced by the parity suite.
    """

    def __init__(self) -> None:
        self._pending: list[tuple] = []  # pushes before the freeze
        self._static: np.ndarray | None = None
        self._pos = 0  # next unpopped index into the static segment
        self._heap: list[tuple] = []  # pushes after the freeze
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        """Insert ``event``."""
        if event.time < 0 or event.time != event.time:  # negative or NaN
            raise ValueError(f"invalid event time {event.time!r}")
        item = (event.time, int(event.kind), next(self._counter), event.payload)
        if self._static is None:
            self._pending.append(item)
        else:
            heapq.heappush(self._heap, item)

    def freeze(self) -> None:
        """Seal the up-front push buffer into the sorted static segment.

        Idempotent; implicit on the first pop.  After freezing, pushes
        take the heap overflow path, which preserves the global pop
        order — this is the entry point dynamic event streams use.
        """
        if self._static is not None:
            return
        arr = np.array(self._pending, dtype=EVENT_DTYPE)
        self._pending.clear()
        order = np.lexsort((arr["seq"], arr["kind"], arr["time"]))
        self._static = arr[order]
        self._pos = 0

    def _static_head(self) -> tuple | None:
        if self._static is None or self._pos >= len(self._static):
            return None
        rec = self._static[self._pos]
        return (float(rec["time"]), int(rec["kind"]), int(rec["seq"]))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if self._static is None:
            if not self._pending:
                raise IndexError("pop from an empty event queue")
            self.freeze()
        head = self._static_head()
        if self._heap and (head is None or self._heap[0][:3] < head):
            time, kind, _, payload = heapq.heappop(self._heap)
        elif head is not None:
            rec = self._static[self._pos]
            self._pos += 1
            time, kind, payload = rec["time"], rec["kind"], rec["payload"]
        else:
            raise IndexError("pop from an empty event queue")
        return Event(float(time), EventKind(int(kind)), int(payload))

    def peek_time(self) -> float:
        """Timestamp of the earliest event (inf if empty)."""
        if self._static is None and self._pending:
            self.freeze()
        head = self._static_head()
        times = [t for t in (
            head[0] if head is not None else None,
            self._heap[0][0] if self._heap else None,
        ) if t is not None]
        return min(times) if times else float("inf")

    def __len__(self) -> int:
        n_static = 0 if self._static is None else len(self._static) - self._pos
        return len(self._pending) + n_static + len(self._heap)

    def __bool__(self) -> bool:
        return len(self) > 0


def make_event_queue(backend: str | None = None) -> EventQueue | ArrayEventQueue:
    """Build the event queue for ``backend`` (see :mod:`repro.util.backend`)."""
    if resolve_backend(backend) == FAST_BACKEND:
        return ArrayEventQueue()
    return EventQueue()
