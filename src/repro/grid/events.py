"""Event types and the event queue for the discrete-event engine.

Three event kinds drive the periodic online scheduling model of the
paper's Figure 1:

* ``ARRIVAL``     — a job enters the scheduler queue;
* ``SCHEDULE``    — the periodic batch-scheduling tick;
* ``COMPLETION``  — a running attempt ends (successfully or failed).

Events at equal timestamps are ordered ARRIVAL < SCHEDULE < COMPLETION
is *not* what we want: completions must be processed before the
scheduling tick at the same instant (so the freed site's state and a
failed job's resubmission are visible to the scheduler), and arrivals
likewise.  Hence the kind-priority ordering COMPLETION < ARRIVAL <
SCHEDULE, with a monotone sequence number as the final tie-breaker for
determinism.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """Event kinds in same-timestamp processing order."""

    COMPLETION = 0
    ARRIVAL = 1
    SCHEDULE = 2


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled simulation event.

    ``payload`` is the job id for ARRIVAL/COMPLETION events and unused
    for SCHEDULE ticks.
    """

    time: float
    kind: EventKind
    payload: int = -1

    def sort_key(self, seq: int) -> tuple:
        return (self.time, int(self.kind), seq)


@dataclass
class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    _heap: list = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count)

    def push(self, event: Event) -> None:
        """Insert ``event``."""
        if event.time < 0 or event.time != event.time:  # negative or NaN
            raise ValueError(f"invalid event time {event.time!r}")
        heapq.heappush(self._heap, (*event.sort_key(next(self._counter)), event))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[-1]

    def peek_time(self) -> float:
        """Timestamp of the earliest event (inf if empty)."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
