"""Pluggable failure laws (extension of the paper's Eq. 1).

The paper notes its exponential failure model "is just for
illustration only.  We can substitute the above model by any
reasonable failure scheme."  This module takes that sentence
seriously: a :class:`FailureLaw` maps (SD, SL) to a failure
probability and plugs into :class:`~repro.grid.engine.GridSimulator`.

Provided laws:

* :class:`ExponentialFailure` — Eq. 1, the default;
* :class:`WeibullFailure` — adds a shape parameter k: k > 1 makes
  small security gaps nearly harmless, k < 1 makes any gap costly;
* :class:`StepFailure` — an all-or-nothing audit model: gaps below the
  tolerance never fail, larger gaps fail with one fixed probability;
* :class:`LinearFailure` — probability grows linearly to a ceiling.

All laws satisfy the contract: zero probability when ``SD <= SL``,
monotone non-decreasing in the gap, values in [0, 1).  The property
tests enforce this for every registered law.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.grid.security import DEFAULT_LAMBDA
from repro.util.validation import check_positive, check_probability

__all__ = [
    "FailureLaw",
    "ExponentialFailure",
    "WeibullFailure",
    "StepFailure",
    "LinearFailure",
    "BUILTIN_LAWS",
    "make_failure_law",
]


class FailureLaw(abc.ABC):
    """Maps a (security demand, security level) pair to P(fail)."""

    @abc.abstractmethod
    def probability(self, security_demand, security_level):
        """Failure probability; broadcasts over array inputs."""

    def gap_probability(self, gap):
        """Failure probability as a function of the SD-SL gap >= 0."""
        gap = np.asarray(gap, dtype=float)
        return self.probability(gap, np.zeros_like(gap))

    def __call__(self, security_demand, security_level):
        return self.probability(security_demand, security_level)


def _gap(security_demand, security_level) -> np.ndarray:
    sd = np.asarray(security_demand, dtype=float)
    sl = np.asarray(security_level, dtype=float)
    return np.maximum(sd - sl, 0.0)


def _scalar_ok(out):
    return float(out) if np.ndim(out) == 0 else out


@dataclass(frozen=True)
class ExponentialFailure(FailureLaw):
    """Eq. 1: ``1 - exp(-lam * gap)``."""

    lam: float = DEFAULT_LAMBDA

    def __post_init__(self) -> None:
        check_positive("lam", self.lam)

    def probability(self, security_demand, security_level):
        gap = _gap(security_demand, security_level)
        return _scalar_ok(-np.expm1(-self.lam * gap))


@dataclass(frozen=True)
class WeibullFailure(FailureLaw):
    """``1 - exp(-(gap/scale)^shape)``.

    ``shape > 1``: hazard accelerates — small gaps are nearly safe,
    large gaps almost surely fail.  ``shape < 1``: even tiny gaps are
    dangerous.  ``shape = 1`` recovers the exponential law with
    ``lam = 1/scale``.
    """

    shape: float = 2.0
    scale: float = 0.3

    def __post_init__(self) -> None:
        check_positive("shape", self.shape)
        check_positive("scale", self.scale)

    def probability(self, security_demand, security_level):
        gap = _gap(security_demand, security_level)
        return _scalar_ok(-np.expm1(-((gap / self.scale) ** self.shape)))


@dataclass(frozen=True)
class StepFailure(FailureLaw):
    """Zero below ``tolerance``, constant ``p_fail`` above it."""

    tolerance: float = 0.1
    p_fail: float = 0.8

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")
        check_probability("p_fail", self.p_fail)
        if self.p_fail >= 1.0:
            raise ValueError("p_fail must be < 1 so retries can succeed")

    def probability(self, security_demand, security_level):
        gap = _gap(security_demand, security_level)
        return _scalar_ok(np.where(gap > self.tolerance, self.p_fail, 0.0))


@dataclass(frozen=True)
class LinearFailure(FailureLaw):
    """``min(slope * gap, ceiling)``."""

    slope: float = 1.6
    ceiling: float = 0.95

    def __post_init__(self) -> None:
        check_positive("slope", self.slope)
        check_probability("ceiling", self.ceiling)
        if self.ceiling >= 1.0:
            raise ValueError("ceiling must be < 1 so retries can succeed")

    def probability(self, security_demand, security_level):
        gap = _gap(security_demand, security_level)
        return _scalar_ok(np.minimum(self.slope * gap, self.ceiling))


BUILTIN_LAWS = {
    "exponential": ExponentialFailure,
    "weibull": WeibullFailure,
    "step": StepFailure,
    "linear": LinearFailure,
}


def make_failure_law(name: str, **kwargs) -> FailureLaw:
    """Instantiate a registered failure law by name."""
    key = name.lower()
    if key not in BUILTIN_LAWS:
        raise KeyError(
            f"unknown failure law {name!r}; choose from {sorted(BUILTIN_LAWS)}"
        )
    return BUILTIN_LAWS[key](**kwargs)
