"""Dynamic-events timeline: the churn a director layers onto a run.

A :class:`DynamicTimeline` is the engine-facing description of
everything that happens to a scenario *beyond* its static job batch:
job cancellations, site outage windows, per-job execution-time
factors, and due dates.  It is deliberately a plain frozen value —
the director (:mod:`repro.workloads.dynamics`) draws one from seeded
RNG streams, the engine consumes it, and the trace codec
(:mod:`repro.grid.trace`) round-trips it bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_non_negative, check_positive

__all__ = ["SiteOutage", "DynamicTimeline"]


@dataclass(frozen=True, slots=True)
class SiteOutage:
    """One breakdown window: ``site_id`` is unavailable on
    ``[start, end)``; capacity returns at ``end``."""

    site_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.site_id < 0:
            raise ValueError(f"site_id must be non-negative, got {self.site_id}")
        check_non_negative("start", self.start)
        if not self.end > self.start:
            raise ValueError(
                f"outage end must exceed start, got [{self.start}, {self.end}]"
            )

    @property
    def duration(self) -> float:
        """Length of the downtime window."""
        return self.end - self.start


@dataclass(frozen=True)
class DynamicTimeline:
    """Everything dynamic about one run, as immutable event data.

    Parameters
    ----------
    cancels:
        ``(job_id, time)`` pairs — the job is withdrawn at ``time`` if
        it is still waiting in the queue (a running or finished job is
        past the point of no return and the cancel is a no-op).
    outages:
        :class:`SiteOutage` windows per site; may overlap in time
        across sites but must be disjoint and ordered within one site.
    exec_factors:
        ``(job_id, factor)`` pairs — the job's execution time is
        multiplied by ``factor`` (processing-time variability).
    due_dates:
        ``(job_id, due)`` pairs consumed by the metrics layer (the
        engine itself never preempts on a due date).
    online:
        When true the engine abandons the periodic batch tick and
        re-schedules the residual job set on every disruptive event.
    """

    cancels: tuple[tuple[int, float], ...] = ()
    outages: tuple[SiteOutage, ...] = ()
    exec_factors: tuple[tuple[int, float], ...] = ()
    due_dates: tuple[tuple[int, float], ...] = ()
    online: bool = False

    def __post_init__(self) -> None:
        for job_id, time in self.cancels:
            if job_id < 0:
                raise ValueError(f"cancel job_id must be non-negative, got {job_id}")
            check_non_negative("cancel time", time)
        by_site: dict[int, float] = {}
        for outage in self.outages:
            prev_end = by_site.get(outage.site_id)
            if prev_end is not None and outage.start < prev_end:
                raise ValueError(
                    f"site {outage.site_id} outages must be ordered and "
                    f"disjoint; window starting at {outage.start} overlaps "
                    f"one ending at {prev_end}"
                )
            by_site[outage.site_id] = outage.end
        for job_id, factor in self.exec_factors:
            if job_id < 0:
                raise ValueError(f"factor job_id must be non-negative, got {job_id}")
            check_positive("exec factor", factor)
        for job_id, due in self.due_dates:
            if job_id < 0:
                raise ValueError(f"due job_id must be non-negative, got {job_id}")
            check_non_negative("due date", due)

    @property
    def n_events(self) -> int:
        """Number of engine-visible events this timeline injects."""
        return len(self.cancels) + 2 * len(self.outages)

    def factor_map(self) -> dict[int, float]:
        """``job_id -> execution-time factor`` lookup."""
        return {job_id: factor for job_id, factor in self.exec_factors}

    def due_map(self) -> dict[int, float]:
        """``job_id -> due date`` lookup for the metrics layer."""
        return {job_id: due for job_id, due in self.due_dates}

    def outages_for(self, site_id: int) -> tuple[SiteOutage, ...]:
        """This site's outage windows in chronological order."""
        return tuple(o for o in self.outages if o.site_id == site_id)
