"""Grid substrate: jobs, sites, the security/risk model, the ETC model
and the discrete-event simulation engine for periodic online batch
scheduling (paper Section 2)."""

from repro.grid.batch import (
    Batch,
    ScheduleResult,
    check_order_permutation,
    snapshot_batch,
)
from repro.grid.engine import GridSimulator, SchedulerDeadlock, SimulationResult
from repro.grid.etc import completion_matrix, etc_matrix, masked_completion
from repro.grid.events import ArrayEventQueue, Event, EventKind, EventQueue, make_event_queue
from repro.grid.job import Job, JobRecord, JobState
from repro.grid.reliability import (
    BUILTIN_LAWS,
    ExponentialFailure,
    FailureLaw,
    LinearFailure,
    StepFailure,
    WeibullFailure,
    make_failure_law,
)
from repro.grid.security import (
    DEFAULT_LAMBDA,
    RiskMode,
    eligibility_matrix,
    eligible_sites,
    failure_probability,
    max_tolerable_gap,
    risk_tolerance,
)
from repro.grid.site import Grid, Site
from repro.grid.timeline import DynamicTimeline, SiteOutage
from repro.grid.trace import (
    TRACE_SCHEMA_VERSION,
    Attempt,
    AttemptLog,
    GridTrace,
    load_trace,
    save_trace,
)

__all__ = [
    "Batch",
    "ScheduleResult",
    "check_order_permutation",
    "snapshot_batch",
    "GridSimulator",
    "SimulationResult",
    "SchedulerDeadlock",
    "etc_matrix",
    "completion_matrix",
    "masked_completion",
    "Event",
    "EventKind",
    "EventQueue",
    "ArrayEventQueue",
    "make_event_queue",
    "Job",
    "JobRecord",
    "JobState",
    "DEFAULT_LAMBDA",
    "RiskMode",
    "failure_probability",
    "max_tolerable_gap",
    "risk_tolerance",
    "eligibility_matrix",
    "eligible_sites",
    "Grid",
    "Site",
    "FailureLaw",
    "ExponentialFailure",
    "WeibullFailure",
    "StepFailure",
    "LinearFailure",
    "BUILTIN_LAWS",
    "make_failure_law",
    "Attempt",
    "AttemptLog",
    "GridTrace",
    "TRACE_SCHEMA_VERSION",
    "save_trace",
    "load_trace",
    "DynamicTimeline",
    "SiteOutage",
]
