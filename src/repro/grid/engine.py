"""Discrete-event simulation engine for periodic online batch scheduling.

This implements the paper's Figure 1 system model:

1. jobs *arrive* over time and accumulate in the scheduler queue;
2. every ``batch_interval`` simulated seconds a *scheduling event*
   fires, the pluggable batch scheduler maps the queued jobs to sites,
   and the engine dispatches them;
3. dispatched jobs occupy their site serially in dispatch order; at
   the end of an attempt the Eq. 1 failure model decides success;
4. a failed job re-enters the queue flagged *secure-only* — the paper's
   fail-stop rule that a failed job "will not ... take any risk again".

The engine is scheduler-agnostic: anything exposing
``schedule(batch: Batch) -> ScheduleResult`` (see
:mod:`repro.heuristics.base`) plugs in, which is how the six
security-driven heuristics and the STGA are all evaluated on identical
event streams.

Dynamic runs pass a :class:`~repro.grid.timeline.DynamicTimeline` to
:meth:`GridSimulator.run`, which injects CANCEL / SITE_DOWN / SITE_UP
events and per-job execution-time factors, and — when the timeline is
*online* — replaces the periodic tick with event-driven rescheduling:
every disruptive event (arrival, completion, cancellation, site
recovery) re-runs the scheduler on the residual job set, and only the
jobs whose assigned site is free *now* are started.  A static run
(``timeline=None``) takes exactly the pre-existing code path.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.grid.batch import Batch, ScheduleResult, check_order_permutation
from repro.grid.etc import etc_matrix
from repro.grid.events import Event, EventKind, make_event_queue
from repro.grid.job import Job, JobRecord, JobState
from repro.grid.reliability import ExponentialFailure, FailureLaw
from repro.grid.security import DEFAULT_LAMBDA
from repro.grid.site import Grid
from repro.grid.timeline import DynamicTimeline
from repro.grid.trace import Attempt, AttemptLog
from repro.util.backend import resolve_backend
from repro.util.rng import as_generator
from repro.util.timing import Stopwatch
from repro.util.validation import check_positive

__all__ = ["GridSimulator", "SimulationResult", "SchedulerDeadlock"]


class SchedulerDeadlock(RuntimeError):
    """Raised when queued jobs can never be placed and fallback is off."""


@dataclass
class SimulationResult:
    """Everything the metrics layer needs about one simulation run."""

    grid: Grid
    records: list[JobRecord]
    busy_time: np.ndarray  # (S,) seconds each site was occupied
    makespan: float  # max job completion time
    n_batches: int  # scheduling events that dispatched >= 1 job
    n_forced: int  # jobs placed by the engine fallback
    scheduler_seconds: float  # wall-clock time inside scheduler.schedule
    batch_sizes: list[int] = field(default_factory=list)
    #: per-attempt execution trace; populated only when the simulator
    #: was built with ``record_attempts=True``
    attempts: AttemptLog | None = None
    #: jobs withdrawn by a CANCEL event before ever running to
    #: completion (their records carry ``JobState.CANCELLED`` and NaN
    #: completion times; the metrics layer excludes them)
    n_cancelled: int = 0
    #: the dynamic timeline this run executed under, if any
    timeline: DynamicTimeline | None = None

    @property
    def n_jobs(self) -> int:
        """Number of simulated jobs."""
        return len(self.records)

    def completions(self) -> np.ndarray:
        """Vector of job completion times ``c_i``."""
        return np.array([r.completion for r in self.records], dtype=float)

    def arrivals(self) -> np.ndarray:
        """Vector of job arrival times ``a_i``."""
        return np.array([r.job.arrival for r in self.records], dtype=float)

    def first_starts(self) -> np.ndarray:
        """Vector of first-attempt start times ``b_i``."""
        return np.array([r.first_start for r in self.records], dtype=float)


class GridSimulator:
    """Simulate one workload under one scheduler on one grid.

    Parameters
    ----------
    grid:
        The resource sites.
    scheduler:
        Batch scheduler implementing ``schedule(Batch) -> ScheduleResult``.
    batch_interval:
        Seconds between scheduling events (paper: "jobs are
        accumulated and then scheduled in batches").
    lam:
        Eq. 1 failure-rate constant.
    failure_point:
        Where inside a doomed attempt the fail-stop occurs:
        ``"uniform"`` (default) draws the abort point uniformly over
        the attempt, ``"end"`` charges the full execution time.
    fallback:
        ``"force_max_sl"`` (default) places a job that no scheduler
        will accept (e.g. SD above every SL under secure mode) on the
        most secure site once the system would otherwise deadlock;
        ``"error"`` raises :class:`SchedulerDeadlock` instead.
    rng:
        Seed or generator for failure sampling.
    failure_law:
        Pluggable :class:`~repro.grid.reliability.FailureLaw`; the
        default is Eq. 1's exponential law with rate ``lam``.  Note
        the *schedulers'* f-risky eligibility always uses Eq. 1 — the
        scheduler's beliefs and the world's behaviour are decoupled on
        purpose (model-mismatch studies).
    record_attempts:
        Keep a per-attempt :class:`~repro.grid.trace.AttemptLog` in
        the result (costs one record per dispatch).
    backend:
        Event-queue backend — ``"reference"``, ``"fast"``, or None to
        defer to ``$REPRO_BACKEND`` when :meth:`run` starts (see
        :mod:`repro.util.backend`).  Both queues pop events in the
        identical deterministic order, so results are bit-identical.
    """

    def __init__(
        self,
        grid: Grid,
        scheduler,
        *,
        batch_interval: float = 100.0,
        lam: float = DEFAULT_LAMBDA,
        failure_point: str = "uniform",
        fallback: str = "force_max_sl",
        rng: int | np.random.Generator | None = 0,
        failure_law: FailureLaw | None = None,
        record_attempts: bool = False,
        backend: str | None = None,
    ) -> None:
        if not hasattr(scheduler, "schedule"):
            raise TypeError(
                f"scheduler {scheduler!r} lacks a schedule(batch) method"
            )
        if failure_point not in ("uniform", "end"):
            raise ValueError(
                f"failure_point must be 'uniform' or 'end', got {failure_point!r}"
            )
        if fallback not in ("force_max_sl", "error"):
            raise ValueError(
                f"fallback must be 'force_max_sl' or 'error', got {fallback!r}"
            )
        check_positive("batch_interval", batch_interval)
        check_positive("lam", lam)
        if backend is not None:
            resolve_backend(backend)  # fail fast on typos
        self.backend = backend
        self.grid = grid
        self.scheduler = scheduler
        self.batch_interval = float(batch_interval)
        self.lam = float(lam)
        self.failure_point = failure_point
        self.fallback = fallback
        self.rng = as_generator(rng)
        if failure_law is None:
            failure_law = ExponentialFailure(lam=lam)
        if not isinstance(failure_law, FailureLaw):
            raise TypeError(
                f"failure_law must be a FailureLaw, got {failure_law!r}"
            )
        self.failure_law = failure_law
        self.record_attempts = record_attempts
        self.stopwatch = Stopwatch()

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[Job] | Iterable[Job],
        *,
        timeline: DynamicTimeline | None = None,
    ) -> SimulationResult:
        """Simulate ``jobs`` to completion and return the result.

        ``timeline`` layers a dynamic event stream onto the run; with
        the default ``None`` the simulation is the pure static model
        and its event stream, RNG draws and result are byte-identical
        to versions of this engine that predate dynamic scenarios.
        """
        jobs = list(jobs)
        if not jobs:
            raise ValueError("cannot simulate an empty workload")
        records = [JobRecord(job=j) for j in jobs]
        by_id = {j.job_id: i for i, j in enumerate(jobs)}
        if len(by_id) != len(jobs):
            raise ValueError("duplicate job_ids in workload")

        events = make_event_queue(self.backend)
        for j in jobs:
            events.push(Event(j.arrival, EventKind.ARRIVAL, j.job_id))

        online = timeline is not None and timeline.online
        self._exec_factors = {}
        outage_ends: dict[int, deque] = {}
        if timeline is not None:
            for jid, t in timeline.cancels:
                if jid not in by_id:
                    raise ValueError(f"timeline cancels unknown job {jid}")
                events.push(Event(t, EventKind.CANCEL, jid))
            for outage in timeline.outages:
                if outage.site_id >= self.grid.n_sites:
                    raise ValueError(
                        f"timeline outage names unknown site {outage.site_id}"
                    )
                events.push(Event(outage.start, EventKind.SITE_DOWN, outage.site_id))
                events.push(Event(outage.end, EventKind.SITE_UP, outage.site_id))
                outage_ends.setdefault(outage.site_id, deque()).append(outage.end)
            for jid, factor in timeline.exec_factors:
                if jid not in by_id:
                    raise ValueError(f"timeline factor names unknown job {jid}")
                self._exec_factors[jid] = factor

        # Per-job columns gathered batch-by-batch in _build_batch; the
        # secure flag mirrors records[i].secure_only (flipped only in
        # the failed-completion branch below).
        self._workloads = np.array([j.workload for j in jobs], dtype=float)
        self._sds = np.array([j.security_demand for j in jobs], dtype=float)
        self._secure_flags = np.array([r.secure_only for r in records], dtype=bool)

        queue: list[int] = []  # pending job ids, FIFO
        outcome: dict[int, bool] = {}  # job_id -> attempt failed?
        self._log = AttemptLog() if self.record_attempts else None
        free = np.zeros(self.grid.n_sites, dtype=float)  # site ready times
        busy = np.zeros(self.grid.n_sites, dtype=float)
        running = 0
        tick_pending = False
        n_batches = 0
        n_forced = 0
        n_cancelled = 0
        batch_sizes: list[int] = []
        done = 0

        def ensure_tick(now: float) -> None:
            # Online mode replaces the periodic tick with an immediate
            # replan: SCHEDULE has the lowest same-timestamp priority,
            # so a tick at `now` still sees every co-timed event.
            nonlocal tick_pending
            if not tick_pending:
                delay = 0.0 if online else self.batch_interval
                events.push(Event(now + delay, EventKind.SCHEDULE))
                tick_pending = True

        while done < len(jobs):
            if not events:
                raise SchedulerDeadlock(
                    f"{len(jobs) - done} job(s) unfinished but no events remain"
                )
            ev = events.pop()
            now = ev.time

            if ev.kind is EventKind.ARRIVAL:
                queue.append(ev.payload)
                ensure_tick(now)
                continue

            if ev.kind is EventKind.CANCEL:
                # Reneging: only a job still waiting in the queue can
                # be withdrawn; running/finished jobs ignore it.
                try:
                    queue.remove(ev.payload)
                except ValueError:
                    continue
                rec = records[by_id[ev.payload]]
                rec.state = JobState.CANCELLED
                done += 1
                n_cancelled += 1
                if online and queue:
                    ensure_tick(now)
                continue

            if ev.kind is EventKind.SITE_DOWN:
                # Model an outage as an advance reservation: the site
                # accepts no new attempt before the matching SITE_UP.
                # Attempts already in flight drain normally.
                site = ev.payload
                end = outage_ends[site].popleft()
                free[site] = max(float(free[site]), end)
                continue

            if ev.kind is EventKind.SITE_UP:
                # Capacity is back; in online mode that is a replan
                # opportunity for whatever is still queued.
                if online and queue:
                    ensure_tick(now)
                continue

            if ev.kind is EventKind.COMPLETION:
                running -= 1
                idx = by_id[ev.payload]
                rec = records[idx]
                failed = outcome.pop(ev.payload)
                if failed:
                    rec.ever_failed = True
                    rec.secure_only = True
                    self._secure_flags[idx] = True
                    rec.state = JobState.FAILED
                    queue.append(ev.payload)
                    ensure_tick(now)
                else:
                    rec.state = JobState.DONE
                    done += 1
                    if online and queue:
                        ensure_tick(now)
                continue

            # SCHEDULE tick
            tick_pending = False
            if not queue:
                continue
            batch_ids = list(queue)
            queue.clear()
            batch = self._build_batch(now, batch_ids, records, by_id, free)
            with self.stopwatch.measure("scheduler"):
                result = self.scheduler.schedule(batch)
            self._check_result(result, batch)

            if online:
                dispatched, deferred = self._dispatch_online(
                    now, batch, result, records, by_id, free, busy, outcome, events
                )
            else:
                dispatched = self._dispatch(
                    now, batch, result, records, by_id, free, busy, outcome, events
                )
                deferred = [
                    batch_ids[i]
                    for i in range(batch.n_jobs)
                    if result.assignment[i] < 0
                ]
            running += dispatched
            if dispatched:
                n_batches += 1
                batch_sizes.append(dispatched)

            if deferred:
                queue.extend(deferred)
                if running == 0 and len(events) == 0:
                    # Nothing in flight and nothing inbound: the queue
                    # can never drain on its own.
                    if self.fallback == "error":
                        raise SchedulerDeadlock(
                            f"jobs {deferred} have no eligible site and "
                            "fallback='error'"
                        )
                    n_forced += self._force_dispatch(
                        now, deferred, records, by_id, free, busy, outcome, events
                    )
                    running += len(deferred)
                    queue.clear()
                elif not online:
                    ensure_tick(now)
                # Online: re-ticking at `now` with unchanged state
                # would loop forever; the next disruptive event
                # (completion, arrival, cancel, site recovery) replans.

        completed = [
            r.completion for r in records if r.state is not JobState.CANCELLED
        ]
        makespan = max(completed) if completed else 0.0
        log = self._log
        self._log = None
        return SimulationResult(
            grid=self.grid,
            records=records,
            busy_time=busy,
            makespan=float(makespan),
            n_batches=n_batches,
            n_forced=n_forced,
            scheduler_seconds=self.stopwatch.total("scheduler"),
            batch_sizes=batch_sizes,
            attempts=log,
            n_cancelled=n_cancelled,
            timeline=timeline,
        )

    # ------------------------------------------------------------------
    def _build_batch(self, now, batch_ids, records, by_id, free) -> Batch:
        idxs = np.fromiter(
            (by_id[jid] for jid in batch_ids),
            dtype=np.int64,
            count=len(batch_ids),
        )
        workloads = self._workloads[idxs]
        sds = self._sds[idxs]
        secure_only = self._secure_flags[idxs]
        return Batch(
            now=now,
            job_ids=np.array(batch_ids, dtype=int),
            workloads=workloads,
            security_demands=sds,
            secure_only=secure_only,
            etc=etc_matrix(workloads, self.grid.speeds),
            ready=np.maximum(free, now),
            site_security=self.grid.security_levels.copy(),
            speeds=self.grid.speeds.copy(),
        )

    @staticmethod
    def _check_result(result: ScheduleResult, batch: Batch) -> None:
        a = np.asarray(result.assignment)
        if a.shape != (batch.n_jobs,):
            raise ValueError(
                f"scheduler returned assignment of shape {a.shape} for a "
                f"batch of {batch.n_jobs} jobs"
            )
        if (a >= batch.n_sites).any():
            raise ValueError(
                f"scheduler assigned a site index >= {batch.n_sites}"
            )
        if (a < -1).any():
            raise ValueError(
                "scheduler assignment contains site indices below -1"
            )
        # ScheduleResult validates this at construction, but the
        # engine accepts any duck-typed result — re-check here so a
        # buggy third-party scheduler cannot dispatch through a
        # malformed order (e.g. an unassigned job's -1 site index,
        # which numpy silently resolves to the last site).
        check_order_permutation(a, result.order)

    def _start_attempt(
        self, now, rec, site_idx, free, busy, outcome, events
    ) -> None:
        """Dispatch one attempt of ``rec.job`` onto ``site_idx``."""
        sl = float(self.grid.security_levels[site_idx])
        speed = float(self.grid.speeds[site_idx])
        start = max(float(free[site_idx]), now)
        exec_time = rec.job.workload / speed
        if self._exec_factors:
            factor = self._exec_factors.get(rec.job.job_id)
            if factor is not None:
                exec_time *= factor

        pfail = self.failure_law.probability(rec.job.security_demand, sl)
        fails = bool(self.rng.random() < pfail)
        if fails:
            frac = (
                float(self.rng.uniform(np.finfo(float).tiny, 1.0))
                if self.failure_point == "uniform"
                else 1.0
            )
            occupancy = exec_time * frac
        else:
            occupancy = exec_time
        end = start + occupancy

        rec.attempts += 1
        if rec.attempts == 1:
            rec.first_start = start
        rec.state = JobState.RUNNING
        rec.sites_visited.append(site_idx)
        if sl < rec.job.security_demand:
            rec.took_risk = True
        if not fails:
            rec.completion = end

        free[site_idx] = end
        busy[site_idx] += occupancy
        outcome[rec.job.job_id] = fails
        if self._log is not None:
            self._log.record(
                Attempt(
                    job_id=rec.job.job_id,
                    site_id=site_idx,
                    start=start,
                    end=end,
                    failed=fails,
                    risky=sl < rec.job.security_demand,
                    attempt_index=rec.attempts,
                )
            )
        events.push(Event(end, EventKind.COMPLETION, rec.job.job_id))

    def _dispatch(
        self, now, batch, result, records, by_id, free, busy, outcome, events
    ) -> int:
        dispatched = 0
        assignment = np.asarray(result.assignment, dtype=int)
        for i in np.asarray(result.order, dtype=int):
            s = int(assignment[i])
            rec = records[by_id[int(batch.job_ids[i])]]
            self._start_attempt(now, rec, s, free, busy, outcome, events)
            dispatched += 1
        return dispatched

    def _dispatch_online(
        self, now, batch, result, records, by_id, free, busy, outcome, events
    ) -> tuple[int, list[int]]:
        """Online-mode dispatch: start only what can run *now*.

        At most one attempt per currently-free site; every other job —
        scheduler-deferred or aimed at a busy/down site — stays queued
        (in original queue order) for the next disruptive-event
        replan, which re-runs the scheduler on the residual set.
        """
        assignment = np.asarray(result.assignment, dtype=int)
        taken = np.zeros(batch.n_jobs, dtype=bool)
        dispatched = 0
        for i in np.asarray(result.order, dtype=int):
            s = int(assignment[i])
            if float(free[s]) > now:
                continue  # site busy or in an outage window: hold
            rec = records[by_id[int(batch.job_ids[i])]]
            self._start_attempt(now, rec, s, free, busy, outcome, events)
            taken[i] = True
            dispatched += 1
        deferred = [
            int(batch.job_ids[i]) for i in range(batch.n_jobs) if not taken[i]
        ]
        return dispatched, deferred

    def _force_dispatch(
        self, now, job_ids, records, by_id, free, busy, outcome, events
    ) -> int:
        """Fallback: place stuck jobs on the most secure site."""
        target = self.grid.max_security_site()
        for jid in job_ids:
            rec = records[by_id[jid]]
            rec.forced = True
            self._start_attempt(now, rec, target, free, busy, outcome, events)
        return len(job_ids)
