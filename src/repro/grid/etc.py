"""Expected-Time-to-Compute (ETC) model.

The heuristics and the GA both operate on an ETC matrix: entry (j, s)
is the *execution time* of job j on site s.  Under the aggregate-speed
site abstraction this is simply ``workload_j / speed_s``, vectorised
over the whole batch (no Python loops — the matrix is rebuilt every
scheduling event for up to thousands of jobs).

``completion_matrix`` adds the site ready times to produce the
*expected completion times* the heuristics minimise.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_1d

__all__ = ["etc_matrix", "completion_matrix", "masked_completion"]


def etc_matrix(workloads, speeds) -> np.ndarray:
    """Execution-time matrix, shape (J, S): ``workloads[:,None]/speeds``.

    Raises if any workload is negative or any speed is non-positive.
    """
    w = check_1d("workloads", workloads)
    v = check_1d("speeds", speeds)
    if (w < 0).any():
        raise ValueError("workloads must be non-negative")
    if (v <= 0).any():
        raise ValueError("speeds must be strictly positive")
    return w[:, None] / v[None, :]


def completion_matrix(etc: np.ndarray, ready, now: float = 0.0) -> np.ndarray:
    """Expected completion times: ``max(ready, now) + etc``.

    ``ready`` is the per-site next-available-time vector; a site that
    freed up in the past cannot start a job before ``now``.
    """
    etc = np.asarray(etc, dtype=float)
    r = check_1d("ready", ready)
    if etc.ndim != 2 or etc.shape[1] != r.shape[0]:
        raise ValueError(
            f"etc shape {etc.shape} incompatible with {r.shape[0]} sites"
        )
    return np.maximum(r, now)[None, :] + etc


def masked_completion(completion: np.ndarray, eligible: np.ndarray) -> np.ndarray:
    """Set ineligible (job, site) completion entries to +inf.

    Returns a new array; the heuristics then take row-wise minima
    without special-casing eligibility.
    """
    completion = np.asarray(completion, dtype=float)
    eligible = np.asarray(eligible, dtype=bool)
    if completion.shape != eligible.shape:
        raise ValueError(
            f"completion {completion.shape} and eligibility {eligible.shape} "
            "must have the same shape"
        )
    out = completion.copy()
    out[~eligible] = np.inf
    return out
