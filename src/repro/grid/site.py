"""Grid site model.

A *site* (supercomputing centre or cluster) is abstracted as a single
space-shared resource with an aggregate processing speed and a
security level ``SL`` offered to remote jobs.  For the NAS setup a
site's speed equals its node count (4 sites x 16 nodes + 8 sites x 8
nodes = the trace's 128-node iPSC/860); for PSA speeds are levelled in
1..10 as per Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_non_negative, check_positive

__all__ = ["Site", "Grid"]


@dataclass(frozen=True, slots=True)
class Site:
    """Immutable site specification.

    Parameters
    ----------
    site_id:
        Unique non-negative identifier (index into the grid).
    speed:
        Aggregate processing speed; a job of workload ``w`` executes
        in ``w / speed`` seconds here.
    security_level:
        The site's ``SL`` value (paper: uniform in [0.4, 1.0]).
    nodes:
        Node count behind the aggregate-speed abstraction.
    """

    site_id: int
    speed: float
    security_level: float
    nodes: int = 1

    def __post_init__(self) -> None:
        if self.site_id < 0:
            raise ValueError(f"site_id must be non-negative, got {self.site_id}")
        check_positive("speed", self.speed)
        check_non_negative("security_level", self.security_level)
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")


@dataclass(frozen=True)
class Grid:
    """An ordered collection of sites with cached vector views.

    The vector properties (``speeds``, ``security_levels``) are what
    the vectorised ETC and eligibility kernels consume; they are
    computed once at construction.
    """

    sites: tuple[Site, ...]
    _speeds: np.ndarray = field(init=False, repr=False, compare=False)
    _sls: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError("a grid needs at least one site")
        ids = [s.site_id for s in self.sites]
        if ids != list(range(len(self.sites))):
            raise ValueError(
                "site_ids must be 0..n-1 in order, got " + repr(ids)
            )
        object.__setattr__(
            self, "_speeds", np.array([s.speed for s in self.sites], dtype=float)
        )
        object.__setattr__(
            self,
            "_sls",
            np.array([s.security_level for s in self.sites], dtype=float),
        )

    @classmethod
    def from_arrays(cls, speeds, security_levels, nodes=None) -> "Grid":
        """Build a grid from parallel arrays."""
        speeds = np.asarray(speeds, dtype=float)
        sls = np.asarray(security_levels, dtype=float)
        if speeds.shape != sls.shape or speeds.ndim != 1:
            raise ValueError(
                f"speeds {speeds.shape} and security_levels {sls.shape} "
                "must be equal-length 1-D arrays"
            )
        if nodes is None:
            nodes = np.ones(len(speeds), dtype=int)
        nodes = np.asarray(nodes, dtype=int)
        if nodes.shape != speeds.shape:
            raise ValueError("nodes must match speeds in shape")
        return cls(
            tuple(
                Site(i, float(v), float(sl), int(nd))
                for i, (v, sl, nd) in enumerate(zip(speeds, sls, nodes))
            )
        )

    def __len__(self) -> int:
        return len(self.sites)

    def __getitem__(self, i: int) -> Site:
        return self.sites[i]

    @property
    def n_sites(self) -> int:
        """Number of sites in the grid."""
        return len(self.sites)

    @property
    def speeds(self) -> np.ndarray:
        """Read-only vector of site speeds, shape (S,)."""
        out = self._speeds.view()
        out.flags.writeable = False
        return out

    @property
    def security_levels(self) -> np.ndarray:
        """Read-only vector of site SL values, shape (S,)."""
        out = self._sls.view()
        out.flags.writeable = False
        return out

    @property
    def total_speed(self) -> float:
        """Aggregate processing power of the whole grid."""
        return float(self._speeds.sum())

    def max_security_site(self) -> int:
        """Index of the most secure site (fallback target)."""
        return int(np.argmax(self._sls))

    def secure_sites_for(self, security_demand: float) -> np.ndarray:
        """Indices of sites that are absolutely safe for ``SD``."""
        return np.flatnonzero(self._sls >= security_demand)
