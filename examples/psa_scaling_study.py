#!/usr/bin/env python
"""PSA scaling study: the paper's Figure 10 plus the Figure 7 sweeps.

Three experiments on parameter-sweep workloads:

1. Figure 7(a): makespan of the f-risky heuristics as the tolerated
   risk f sweeps from secure (0) to fully risky (1) — showing the
   interior optimum that justifies the paper's f = 0.5;
2. Figure 7(b): STGA makespan vs the GA iteration budget — showing
   convergence within ~50 generations;
3. Figure 10: Min-Min f-risky vs Sufferage f-risky vs STGA as the
   job count N scales up.

Run (a few minutes at the default 5% scale):
    python examples/psa_scaling_study.py [scale]
"""

import sys

from repro.experiments.config import RunSettings
from repro.experiments.fig7 import frisky_makespan_sweep, stga_iteration_sweep
from repro.experiments.fig10 import psa_scaling_experiment
from repro.util.tables import render_table


def main(scale: float = 0.05) -> None:
    settings = RunSettings(batch_interval=1000.0, seed=2005)

    print("=== Figure 7(a): risk-level sweep ===")
    sweep = frisky_makespan_sweep(
        scale=scale, f_values=(0.0, 0.25, 0.5, 0.75, 1.0), settings=settings
    )
    print(sweep.render())
    print(f"best f: Min-Min {sweep.best_f('minmin')}, "
          f"Sufferage {sweep.best_f('sufferage')} (paper: 0.5-0.6)\n")

    print("=== Figure 7(b): STGA convergence ===")
    conv = stga_iteration_sweep(
        scale=scale, generations=(0, 10, 25, 50, 100), settings=settings
    )
    print(conv.render())
    print(f"converged after ~{conv.converged_after()} generations "
          "(paper: ~50)\n")

    print("=== Figure 10: scaling N ===")
    scaling = psa_scaling_experiment(
        n_values=(1000, 2000, 5000), scale=scale, settings=settings
    )
    for metric in ("makespan", "avg_response", "slowdown", "n_fail"):
        print(scaling.render(metric))
        print()

    stga = scaling.reports["STGA"]
    print(render_table(
        ["N", "decision ms/batch"],
        [
            [n, r.scheduler_seconds / max(r.n_batches, 1) * 1e3]
            for n, r in zip(scaling.n_values, stga)
        ],
        title="STGA decision time per scheduling event",
    ))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
