#!/usr/bin/env python
"""Quickstart: schedule a small PSA workload three ways.

Builds a 20-site grid plus a 300-job parameter-sweep stream (Table 1
distributions), runs the secure and f-risky Min-Min heuristics and the
STGA on identical event streams, and prints the Section 4.1 metrics
side by side.

Run:
    python examples/quickstart.py
"""

from repro import (
    GAConfig,
    GridSimulator,
    MinMinScheduler,
    PSAConfig,
    STGAScheduler,
    evaluate,
    psa_scenario,
)
from repro.util.tables import render_table


def main() -> None:
    # One scenario = one grid + one job stream; rng makes it reproducible.
    scenario = psa_scenario(PSAConfig(n_jobs=300), rng=42)
    print(
        f"scenario: {scenario.name} on {scenario.grid.n_sites} sites, "
        f"{scenario.total_work:.3g} node-seconds of work over "
        f"{scenario.span:.3g} s of arrivals"
    )

    schedulers = [
        MinMinScheduler("secure"),
        MinMinScheduler("f-risky", f=0.5),
        STGAScheduler(
            "f-risky",
            config=GAConfig(
                population_size=100, generations=50, flow_weight=1.0
            ),
            rng=0,
        ),
    ]

    reports = []
    for sched in schedulers:
        sim = GridSimulator(
            scenario.grid, sched, batch_interval=1000.0, rng=7
        )
        result = sim.run(scenario.jobs)
        reports.append(evaluate(result, sched.name))

    print()
    print(
        render_table(
            ["scheduler", "makespan (s)", "avg response (s)", "slowdown",
             "N_risk", "N_fail"],
            [
                [r.scheduler, r.makespan, r.avg_response_time,
                 r.slowdown_ratio, r.n_risk, r.n_fail]
                for r in reports
            ],
            title="Section 4.1 metrics, identical event stream",
        )
    )
    print(
        "\nNote how the secure mode never fails (N_fail = 0) but pays "
        "for it with queueing on the few safe sites, while the "
        "risk-taking schedulers spread load and re-run the occasional "
        "failed job on a safe site."
    )


if __name__ == "__main__":
    main()
