#!/usr/bin/env python
"""Distributed sweep: shard a spec, run the shards in subprocesses,
merge the partial records, and prove the merge is lossless.

The walkthrough mirrors the multi-host protocol end to end on one
machine (``docs/CLI.md`` shows the same loop via ``repro-grid shard`` /
``run`` / ``merge``):

1. build the Figure 7(a) risk-level study as a declarative
   ``ExperimentSpec`` replicated over several seeds,
2. partition its (variant, seed) grid with ``shard_spec`` — each shard
   is a self-contained spec that JSON round-trips, the shippable unit
   a real deployment would copy to a worker host,
3. execute every shard in its own subprocess via ``run_sharded`` (the
   local dispatcher) and persist each partial result as an ordinary
   run record, exactly what remote workers would send back,
4. ``merge_runs`` the partial records — pooling the per-seed raw
   values, so mean/std/Student-t CIs are recomputed over the union —
   and ``compare_runs`` the merged record against a sequential
   single-process run of the same spec: every verdict must be "same",
5. crash-resume: re-dispatch with a manifest while the
   ``REPRO_FAULT_SHARDS`` hook kills shard 0 mid-flight, then
   ``resume_manifest`` — only the dead shard is redone, and the
   resumed merge still matches the uninterrupted run bit for bit
   (the CLI loop is ``repro-grid shard`` / ``status`` / ``resume``).

Run (seconds at the default 1% scale):
    python examples/distributed_sweep.py [scale] [n_seeds] [n_shards]
"""

import os
import sys
import tempfile
from pathlib import Path

from repro.core.ga import GAConfig
from repro.experiments.config import RunSettings
from repro.experiments.dispatch import (
    FAULT_ENV,
    ShardError,
    merge_runs,
    resume_manifest,
    run_sharded,
    shard_file_name,
    shard_spec,
)
from repro.experiments.manifest import MANIFEST_JSON, load_manifest
from repro.experiments.fig7 import frisky_sweep_spec
from repro.experiments.spec import run_spec, save_spec
from repro.experiments.store import compare_runs, load_run, save_run
from repro.experiments.sweep import seed_list
from repro.metrics.compare import render_run_diff


def main(scale: float = 0.01, n_seeds: int = 4, n_shards: int = 2) -> None:
    settings = RunSettings(
        seed=2005, ga=GAConfig(population_size=32, generations=10)
    )
    spec = frisky_sweep_spec(
        n_jobs=500,
        f_values=(0.0, 0.5, 1.0),
        seeds=seed_list(n_seeds, base_seed=settings.seed),
        scale=scale,
        settings=settings,
    )
    grid = len(spec.variants) * len(spec.seeds)
    print(
        f"spec {spec.name!r}: {len(spec.schedulers)} scheduler refs x "
        f"{grid} grid cells over {n_seeds} seeds"
    )

    print(f"\n=== 1. Shard into {n_shards} self-contained sub-specs ===")
    shards = shard_spec(spec, n_shards)
    with tempfile.TemporaryDirectory() as tmp:
        for i, shard in enumerate(shards):
            path = save_spec(
                shard, Path(tmp) / shard_file_name(i, len(shards))
            )
            print(
                f"  {path.name}: seeds {shard.seeds} "
                "(ship this file to a worker host)"
            )

        print("\n=== 2+3. Run shards in subprocesses, save partial records ===")
        # run_sharded executes one shard per pool process and merges;
        # here we also persist each partial record the way separate
        # hosts would, to demonstrate the file-based merge below.
        partials = [run_spec(shard, max_workers=1) for shard in shards]
        part_dirs = [
            save_run(res, Path(tmp) / f"part-{i}", name=shards[i].name)
            for i, res in enumerate(partials)
        ]
        for d in part_dirs:
            print(f"  saved partial record {d.name} "
                  f"({len(load_run(d).result.seeds)} seed(s))")

        print("\n=== 4. Merge the records and verify against sequential ===")
        merged = merge_runs(part_dirs, spec=spec)
        dispatched = run_sharded(spec, n_shards)  # same thing, one call
        assert merged.reports.keys() == dispatched.reports.keys()

        sequential = run_spec(spec, max_workers=1)
        rows = compare_runs(sequential, merged)
        print(render_run_diff(
            rows,
            title="Merged shards vs single-host run "
            "(every verdict must be 'same')",
        ))
        bad = [r for r in rows if r.verdict != "same"]
        assert not bad, f"shard/merge diverged from sequential: {bad}"

        variant = spec.variants[0].name
        sched = sequential.schedulers()[0]
        s = merged.summary(variant, sched, "makespan")
        print(
            f"\npooled summary for ({variant!r}, {sched!r}): "
            f"{s} over n={s.n} seeds (CI half-width {s.ci95:.4g})"
        )
        print(
            "shard -> run -> merge reproduced the single-host run "
            "bit-identically."
        )

        print("\n=== 5. Kill a shard mid-flight, then resume ===")
        work = Path(tmp) / "work"
        os.environ[FAULT_ENV] = "0"  # the fault-injection test hook
        try:
            run_sharded(spec, n_shards, max_workers=1, manifest_dir=work)
        except ShardError as err:
            print(f"  dispatch died as injected: {err}")
        finally:
            del os.environ[FAULT_ENV]
        manifest = load_manifest(work / MANIFEST_JSON)
        print(
            f"  manifest after the crash: "
            f"{[s.state for s in manifest.shards]} "
            f"({manifest.completion:.0%} complete)"
        )
        manifest, resumed = resume_manifest(
            work / MANIFEST_JSON, max_workers=1
        )
        print(
            f"  resumed: {[s.state for s in manifest.shards]}, shard 0 "
            f"took {manifest.shard(0).attempts} attempts"
        )
        rows = compare_runs(sequential, resumed)
        assert all(r.verdict == "same" for r in rows)
        print(
            "  kill -> resume -> merge still matches the uninterrupted "
            "run on every cell."
        )


if __name__ == "__main__":
    main(
        float(sys.argv[1]) if len(sys.argv) > 1 else 0.01,
        int(sys.argv[2]) if len(sys.argv) > 2 else 4,
        int(sys.argv[3]) if len(sys.argv) > 3 else 2,
    )
