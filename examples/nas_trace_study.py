#!/usr/bin/env python
"""NAS trace study: the paper's Figure 8 / Figure 9 / Table 2 pipeline.

Synthesizes a scaled-down NAS iPSC/860 trace (power-of-two node
requests, prime-time daily cycle, 92->46 day squeeze), runs the full
seven-algorithm line-up — Min-Min and Sufferage in secure / f-risky /
risky mode plus a trained STGA — and prints:

* the four Figure 8 panels as one metrics table,
* the three Figure 9 per-site utilization panels,
* the Table 2 alpha/beta ranking against the STGA.

Run (about a minute at the default 5% scale):
    python examples/nas_trace_study.py [scale]
"""

import sys

from repro.experiments.config import RunSettings
from repro.experiments.fig8 import nas_experiment
from repro.experiments.fig9 import utilization_panels
from repro.experiments.table2 import render_table2


def main(scale: float = 0.05) -> None:
    settings = RunSettings(batch_interval=2000.0, seed=2005)
    print(f"running the NAS line-up at scale {scale} "
          f"({int(16000 * scale)} jobs)...")
    result = nas_experiment(scale=scale, settings=settings)

    print()
    print(result.render())

    for panel in utilization_panels(result):
        print()
        print(panel.render())

    print()
    print(render_table2(result))

    stga = result.stga
    print(
        f"\nSTGA: {stga.n_batches} scheduling events, "
        f"{stga.scheduler_seconds:.2f} s total decision time "
        f"({stga.scheduler_seconds / stga.n_batches * 1e3:.1f} ms per "
        "batch) — the paper's online-suitability claim."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
