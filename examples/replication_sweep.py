#!/usr/bin/env python
"""Replication sweep: paper results with error bars.

The paper (and the seed reproduction) reports every number from a
single seed.  This example re-runs the headline comparisons as an
N-seed x M-variant sweep fanned out over a process pool, then prints

1. the Figure 10 job-count scaling panels as mean ± std series,
2. Table 2 (alpha/beta vs STGA) aggregated over the seed ensemble,
3. the Figure 7(a) risk-level sweep with per-f error bars,
4. a run-store demo: the sweep persisted to ``runs/`` (JSON + CSV),
   reloaded, and self-compared with ``compare_runs`` — the loop that
   makes cross-revision regressions visible (``repro-grid compare-runs
   A B`` does the same between two stored runs),

so "STGA wins" claims come with the spread that supports them.

Run (about a minute at the default 2% scale):
    python examples/replication_sweep.py [scale] [n_seeds] [max_workers]
"""

import sys

from repro.experiments.config import RunSettings
from repro.experiments.fig7 import frisky_makespan_sweep
from repro.experiments.store import (
    compare_runs,
    list_runs,
    load_run,
    save_run_to_registry,
)
from repro.experiments.sweep import (
    job_scaling_variants,
    run_sweep,
    seed_list,
)
from repro.metrics.compare import (
    compare_ensemble,
    render_ensemble_comparison,
    render_run_diff,
)


def main(
    scale: float = 0.02, n_seeds: int = 3, max_workers: int | None = None
) -> None:
    settings = RunSettings(batch_interval=1000.0, seed=2005)
    seeds = seed_list(n_seeds, base_seed=settings.seed)

    print(f"=== Figure 10 with error bars ({n_seeds} seeds) ===")
    result = run_sweep(
        job_scaling_variants([1000, 2000, 5000]),
        seeds,
        settings=settings,
        scale=scale,
        max_workers=max_workers,
    )
    for metric in ("makespan", "avg_response_time", "slowdown_ratio",
                   "n_fail"):
        print(result.render(metric))
        print()

    print("=== Table 2 over the seed ensemble ===")
    largest = result.variants[-1].name
    print(render_ensemble_comparison(
        compare_ensemble(result.per_seed_lineups(largest)),
        title=f"Table 2 over {n_seeds} seeds ({largest})",
    ))
    print()

    print("=== Figure 7(a) with error bars ===")
    fig7 = frisky_makespan_sweep(
        scale=scale,
        f_values=(0.0, 0.25, 0.5, 0.75, 1.0),
        settings=settings,
        seeds=seeds,
        max_workers=max_workers,
    )
    print(fig7.render())
    print(f"best f (ensemble mean): Min-Min {fig7.best_f('minmin')}, "
          f"Sufferage {fig7.best_f('sufferage')} (paper: 0.5-0.6)")
    print()

    print("=== Run store: persist, reload, self-compare ===")
    run_dir = save_run_to_registry(result, root="runs", name="fig10-demo")
    stored = load_run(run_dir)
    assert stored.result.summary_grid("makespan") == result.summary_grid(
        "makespan"
    ), "reloaded summaries must be bit-identical"
    print(f"saved {stored} (git {stored.git_sha or 'n/a'})")
    rows = compare_runs(stored, result)
    print(render_run_diff(
        [r for r in rows if r.metric == "makespan"],
        title="Self-diff sanity check (every verdict should be 'same')",
    ))
    print(f"registry now holds {len(list_runs('runs'))} run(s); diff a "
          "pair with: repro-grid compare-runs <A> <B>")


if __name__ == "__main__":
    main(
        float(sys.argv[1]) if len(sys.argv) > 1 else 0.02,
        int(sys.argv[2]) if len(sys.argv) > 2 else 3,
        int(sys.argv[3]) if len(sys.argv) > 3 else None,
    )
