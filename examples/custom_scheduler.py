#!/usr/bin/env python
"""Extending the library: write and evaluate your own scheduler.

The engine accepts anything implementing ``schedule(Batch) ->
ScheduleResult``.  This example builds two custom schedulers:

* ``GreedySecurityMargin`` — a security-first heuristic that places
  each job on the eligible site maximising SL - SD (most headroom),
  breaking ties by completion time;
* ``HedgedScheduler`` — a meta-scheduler that calls Min-Min and
  Sufferage per batch and keeps whichever batch schedule has the
  smaller makespan (a poor man's portfolio approach).

Both are benchmarked against the built-ins on one PSA stream, and the
margin heuristic is then *registered* as a scheduler-registry plugin
(``@register_scheduler``) so a declarative ``ExperimentSpec`` can
name it next to the built-in lineup — the same mechanism the paper
experiments use.

Run:
    python examples/custom_scheduler.py
"""

import numpy as np

from repro import (
    GridSimulator,
    MinMinScheduler,
    PSAConfig,
    SufferageScheduler,
    evaluate,
    psa_scenario,
)
from repro.core.fitness import assignment_makespan
from repro.grid.batch import Batch, ScheduleResult
from repro.heuristics.base import SecurityDrivenScheduler
from repro.util.tables import render_table


class GreedySecurityMargin(SecurityDrivenScheduler):
    """Pick the eligible site with the largest security headroom."""

    algorithm = "Greedy-SL-margin"

    def schedule(self, batch: Batch) -> ScheduleResult:
        elig = self.eligibility(batch)
        comp = batch.completion()
        margin = (
            batch.site_security[None, :]
            - batch.security_demands[:, None]
        )
        assignment = np.full(batch.n_jobs, -1, dtype=int)
        for j in range(batch.n_jobs):
            sites = np.flatnonzero(elig[j])
            if sites.size == 0:
                continue
            best_margin = margin[j, sites].max()
            tied = sites[margin[j, sites] >= best_margin - 1e-12]
            assignment[j] = int(tied[np.argmin(comp[j, tied])])
        return ScheduleResult.from_assignment(assignment)


class HedgedScheduler(SecurityDrivenScheduler):
    """Run Min-Min and Sufferage; keep the better batch schedule."""

    algorithm = "Hedged(MM|Suff)"

    def __init__(self, mode="f-risky", *, f=0.5, lam=3.0):
        super().__init__(mode, f=f, lam=lam)
        self._candidates = [
            MinMinScheduler(mode, f=f, lam=lam),
            SufferageScheduler(mode, f=f, lam=lam),
        ]

    def schedule(self, batch: Batch) -> ScheduleResult:
        ready = np.maximum(batch.ready, batch.now)
        best, best_ms = None, np.inf
        for sched in self._candidates:
            res = sched.schedule(batch)
            assigned = np.asarray(res.assignment)
            mask = assigned >= 0
            if not mask.any():
                best = best if best is not None else res
                continue
            ms = assignment_makespan(
                assigned[mask], batch.etc[mask], ready
            )
            if ms < best_ms:
                best, best_ms = res, ms
        return best


def main() -> None:
    scenario = psa_scenario(PSAConfig(n_jobs=400), rng=9)
    lineup = [
        MinMinScheduler("f-risky", f=0.5),
        SufferageScheduler("f-risky", f=0.5),
        GreedySecurityMargin("f-risky", f=0.5),
        HedgedScheduler("f-risky", f=0.5),
    ]
    rows = []
    for sched in lineup:
        sim = GridSimulator(
            scenario.grid, sched, batch_interval=1000.0, rng=4
        )
        rep = evaluate(sim.run(scenario.jobs), sched.name)
        rows.append([rep.scheduler, rep.makespan, rep.avg_response_time,
                     rep.n_fail, rep.mean_utilization])

    print(render_table(
        ["scheduler", "makespan", "avg response", "N_fail", "util %"],
        rows,
        title="Custom schedulers vs built-ins (PSA, 400 jobs)",
    ))
    print(
        "\nThe security-margin heuristic avoids failures entirely at "
        "the cost of load imbalance; the hedged portfolio tracks the "
        "better of its two members per batch."
    )

    # --- the plugin route: register once, reference by name ---------
    from repro import register_scheduler
    from repro.experiments import (
        ExperimentSpec,
        RunSettings,
        ScenarioVariant,
        run_spec,
    )

    @register_scheduler(
        "greedy-sl-margin",
        description="maximise SL - SD headroom, tie-break by completion",
    )
    def _build(settings, rng, *, f=0.5, **_):
        return GreedySecurityMargin("f-risky", f=f, lam=settings.lam)

    spec = ExperimentSpec(
        name="margin-vs-builtins",
        schedulers=(
            "min-min-f-risky",
            "sufferage-f-risky",
            "greedy-sl-margin?f=0.5",
        ),
        variants=(
            ScenarioVariant(
                name="PSA N=400", n_jobs=400, n_training_jobs=0
            ),
        ),
        seeds=(9, 10, 11),
        metrics=("makespan", "n_fail"),
        settings=RunSettings(),
    )
    # max_workers=1: the plugin registered in *this* process; forked
    # or spawned workers would have to import the registering module
    # themselves before executing the spec
    res = run_spec(spec, max_workers=1)
    print()
    print(res.render("makespan"))
    print(
        "\nThe spec JSON-round-trips (ExperimentSpec.from_json"
        "(spec.to_json()) == spec); any process that first imports "
        "the module registering 'greedy-sl-margin' reproduces these "
        "rows bit for bit from the JSON alone."
    )


if __name__ == "__main__":
    main()
