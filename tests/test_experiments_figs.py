"""Smoke + structure tests for the figure drivers (tiny scale).

Shape assertions on the paper's qualitative claims live in the
benchmarks (which run at a larger scale); here we verify the drivers
produce well-formed, deterministic output quickly.
"""

import numpy as np
import pytest

from repro.core.ga import GAConfig
from repro.experiments.config import PaperDefaults, RunSettings
from repro.experiments.fig7 import frisky_makespan_sweep, stga_iteration_sweep
from repro.experiments.fig8 import nas_experiment
from repro.experiments.fig9 import utilization_panels
from repro.experiments.fig10 import psa_scaling_experiment
from repro.experiments.table2 import render_table2, table2_rows

FAST_GA = GAConfig(population_size=16, generations=8)
SETTINGS = RunSettings(batch_interval=2000.0, seed=3, ga=FAST_GA)


class TestFig7a:
    def test_structure(self):
        res = frisky_makespan_sweep(
            n_jobs=40, scale=1.0, f_values=(0.0, 0.5, 1.0), settings=SETTINGS
        )
        assert res.f_values.shape == (3,)
        assert (res.minmin_makespan > 0).all()
        assert (res.sufferage_makespan > 0).all()
        assert 0.0 <= res.best_f("minmin") <= 1.0
        assert "Figure 7(a)" in res.render()


class TestFig7b:
    def test_structure(self):
        res = stga_iteration_sweep(
            n_jobs=40,
            scale=1.0,
            generations=(0, 5, 10),
            settings=SETTINGS,
            defaults=PaperDefaults(),
        )
        np.testing.assert_array_equal(res.generations, [0, 5, 10])
        assert (res.makespan > 0).all()
        assert res.converged_after() in (0, 5, 10)
        assert "Figure 7(b)" in res.render()

    def test_generation_grid_deduped_sorted(self):
        res = stga_iteration_sweep(
            n_jobs=30,
            scale=1.0,
            generations=(5, 0, 5),
            settings=SETTINGS,
        )
        np.testing.assert_array_equal(res.generations, [0, 5])

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            stga_iteration_sweep(
                n_jobs=30, generations=(-5,), settings=SETTINGS
            )


@pytest.fixture(scope="module")
def nas_result():
    return nas_experiment(
        scale=0.004, settings=SETTINGS, ga_config=FAST_GA
    )


class TestFig8:
    def test_seven_algorithms(self, nas_result):
        assert len(nas_result.reports) == 7
        assert nas_result.stga.scheduler == "STGA"

    def test_secure_zero_failures(self, nas_result):
        by = nas_result.by_name()
        assert by["Min-Min Secure"].n_fail == 0
        assert by["Min-Min Secure"].n_risk == 0

    def test_nfail_le_nrisk_everywhere(self, nas_result):
        for rep in nas_result.reports:
            assert rep.n_fail <= rep.n_risk

    def test_render(self, nas_result):
        out = nas_result.render()
        assert "STGA" in out and "makespan" in out


class TestFig9:
    def test_three_panels(self, nas_result):
        a, b, c = utilization_panels(nas_result)
        assert a.utilization.shape[1] == 12
        assert a.schedulers == (
            "Min-Min Secure",
            "Min-Min f-Risky(f=0.5)",
            "Min-Min Risky",
        )
        assert c.schedulers[-1] == "STGA"
        assert "Figure 9(a)" in a.render()

    def test_balance_and_idle_helpers(self, nas_result):
        a, _, c = utilization_panels(nas_result)
        assert a.idle_sites("Min-Min Secure") >= 0
        assert c.balance("STGA") >= 0


class TestTable2:
    def test_rows(self, nas_result):
        rows = table2_rows(nas_result)
        assert len(rows) == 7
        stga = next(r for r in rows if r.scheduler == "STGA")
        assert stga.alpha == 1.0 and stga.beta == 1.0

    def test_render_includes_paper_values(self, nas_result):
        out = render_table2(nas_result)
        assert "Table 2 (measured)" in out
        assert "Table 2 (paper)" in out
        assert "1.314" in out  # the paper's Min-Min Secure alpha


class TestFig10:
    def test_structure(self):
        res = psa_scaling_experiment(
            n_values=(30, 60),
            scale=1.0,
            settings=SETTINGS,
            ga_config=FAST_GA,
        )
        assert res.n_values == (30, 60)
        assert set(res.reports) == {
            "Min-Min f-Risky(f=0.5)",
            "Sufferage f-Risky(f=0.5)",
            "STGA",
        }
        s = res.series("STGA", "makespan")
        assert s.shape == (2,)
        assert (s > 0).all()
        assert "Figure 10" in res.render("makespan")

    def test_unknown_metric_rejected(self):
        res = psa_scaling_experiment(
            n_values=(25,), scale=1.0, settings=SETTINGS, ga_config=FAST_GA
        )
        with pytest.raises(KeyError):
            res.render("latency")
