"""Tests for repro.grid.job."""

import numpy as np
import pytest

from repro.grid.job import Job, JobRecord, JobState


class TestJob:
    def test_construction(self):
        j = Job(job_id=0, arrival=1.0, workload=10.0, security_demand=0.7)
        assert j.nodes == 1

    def test_frozen(self):
        j = Job(0, 0.0, 1.0, 0.6)
        with pytest.raises(AttributeError):
            j.workload = 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(job_id=-1, arrival=0.0, workload=1.0, security_demand=0.6),
            dict(job_id=0, arrival=-1.0, workload=1.0, security_demand=0.6),
            dict(job_id=0, arrival=0.0, workload=0.0, security_demand=0.6),
            dict(job_id=0, arrival=0.0, workload=-5.0, security_demand=0.6),
            dict(job_id=0, arrival=0.0, workload=1.0, security_demand=-0.1),
            dict(job_id=0, arrival=0.0, workload=1.0, security_demand=0.6, nodes=0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Job(**kwargs)


class TestJobRecord:
    def test_initial_state(self):
        rec = JobRecord(job=Job(0, 0.0, 1.0, 0.6))
        assert rec.state is JobState.PENDING
        assert rec.attempts == 0
        assert not rec.took_risk and not rec.ever_failed
        assert np.isnan(rec.completion)

    def test_response_time(self):
        rec = JobRecord(job=Job(0, 5.0, 1.0, 0.6))
        rec.completion = 12.0
        assert rec.response_time == 7.0

    def test_service_span(self):
        rec = JobRecord(job=Job(0, 0.0, 1.0, 0.6))
        rec.first_start = 3.0
        rec.completion = 10.0
        assert rec.service_span == 7.0

    def test_sites_visited_independent_instances(self):
        a = JobRecord(job=Job(0, 0.0, 1.0, 0.6))
        b = JobRecord(job=Job(1, 0.0, 1.0, 0.6))
        a.sites_visited.append(3)
        assert b.sites_visited == []


class TestJobState:
    def test_members(self):
        assert {s.value for s in JobState} == {
            "pending",
            "running",
            "done",
            "failed",
            "cancelled",
        }
