"""Tests for the flow-weighted fitness (population_fitness)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fitness import population_fitness, population_makespan
from repro.core.ga import GAConfig


class TestPopulationFitness:
    def test_zero_weight_equals_makespan(self, rng):
        etc = rng.uniform(1, 20, size=(6, 3))
        ready = rng.uniform(0, 10, size=3)
        pop = rng.integers(0, 3, size=(15, 6))
        np.testing.assert_allclose(
            population_fitness(pop, etc, ready, flow_weight=0.0),
            population_makespan(pop, etc, ready),
        )

    def test_flow_term_hand_worked(self):
        etc = np.array([[2.0, 4.0], [6.0, 3.0]])
        ready = np.array([1.0, 0.0])
        pop = np.array([[0, 1]])  # makespan = max(1+2, 0+3) = 3
        # per-job completions: job0 -> 1+2=3, job1 -> 0+3=3; mean = 3
        out = population_fitness(pop, etc, ready, flow_weight=2.0)
        assert out[0] == pytest.approx(3.0 + 2.0 * 3.0)

    def test_flow_discourages_backlogged_sites(self):
        # Two sites, site 1 heavily backlogged.  Both assignments have
        # the same makespan (the backlog dominates), but the flow term
        # separates them.
        etc = np.array([[10.0, 10.0]])
        ready = np.array([0.0, 100.0])
        both = np.array([[0], [1]])
        pure = population_fitness(both, etc, ready, flow_weight=0.0)
        assert pure[0] < pure[1]  # job on empty site finishes sooner
        flw = population_fitness(both, etc, ready, flow_weight=1.0)
        assert flw[1] - flw[0] > pure[1] - pure[0]  # gap widens

    def test_negative_weight_rejected(self, rng):
        with pytest.raises(ValueError):
            population_fitness(
                np.zeros((1, 1), dtype=int),
                np.ones((1, 1)),
                np.zeros(1),
                flow_weight=-0.5,
            )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            population_fitness(
                np.zeros((2, 3), dtype=int), np.ones((2, 2)), np.zeros(2)
            )

    @given(
        p=st.integers(1, 10),
        b=st.integers(1, 8),
        s=st.integers(1, 4),
        w=st.floats(0.0, 5.0),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_flow_adds_nonnegative_term_property(self, p, b, s, w, seed):
        rng = np.random.default_rng(seed)
        etc = rng.uniform(0.5, 20, size=(b, s))
        ready = rng.uniform(0, 50, size=s)
        pop = rng.integers(0, s, size=(p, b))
        base = population_makespan(pop, etc, ready)
        weighted = population_fitness(pop, etc, ready, flow_weight=w)
        assert (weighted >= base - 1e-9).all()


class TestGAConfigFlowWeight:
    def test_default_zero(self):
        assert GAConfig().flow_weight == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GAConfig(flow_weight=-1.0)

    def test_ga_optimizes_flow_when_weighted(self, rng):
        """With a dominant flow weight the GA must prefer per-job
        completions, i.e. spread jobs to fast empty sites."""
        from repro.core.ga import evolve

        etc = np.tile(np.array([[1.0, 50.0]]), (4, 1))
        ready = np.zeros(2)
        elig = np.ones((4, 2), dtype=bool)
        res = evolve(
            etc, ready, elig, rng,
            GAConfig(population_size=20, generations=30, flow_weight=100.0),
        )
        # site 1 is 50x slower; the flow term forbids parking there
        assert (res.best == 0).all()
