"""Tests for repro.workloads.security."""

import numpy as np
import pytest

from repro.workloads.security import (
    sample_security_demands,
    sample_security_levels,
)


class TestSecurityDemands:
    def test_range(self, rng):
        sds = sample_security_demands(5000, rng)
        assert (sds >= 0.6).all() and (sds <= 0.9).all()

    def test_roughly_uniform(self, rng):
        sds = sample_security_demands(20000, rng)
        assert sds.mean() == pytest.approx(0.75, abs=0.01)

    def test_custom_range(self, rng):
        sds = sample_security_demands(100, rng, lo=0.1, hi=0.2)
        assert (sds >= 0.1).all() and (sds <= 0.2).all()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sample_security_demands(0, rng)


class TestSecurityLevels:
    def test_range(self, rng):
        sls = sample_security_levels(5000, rng, ensure_cover=None)
        assert (sls >= 0.4).all() and (sls <= 1.0).all()

    def test_ensure_cover_guarantees_safe_site(self):
        # With 2 sites, max SL < 0.9 happens often without the fix.
        hit = False
        for seed in range(200):
            rng = np.random.default_rng(seed)
            raw = rng.uniform(0.4, 1.0, size=2)
            if raw.max() < 0.9:
                hit = True
            sls = sample_security_levels(
                2, np.random.default_rng(seed), ensure_cover=0.9
            )
            assert sls.max() >= 0.9
        assert hit  # the guarantee was actually exercised

    def test_cover_none_raw_distribution(self):
        found_uncovered = any(
            sample_security_levels(
                2, np.random.default_rng(s), ensure_cover=None
            ).max()
            < 0.9
            for s in range(200)
        )
        assert found_uncovered

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sample_security_levels(0, rng)
        with pytest.raises(ValueError):
            sample_security_levels(3, rng, ensure_cover=2.0)
