"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.batch import Batch
from repro.grid.job import Job
from repro.grid.site import Grid


@pytest.fixture
def rng():
    """A fresh deterministic generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_grid():
    """Four sites: speeds 1/2/4/8, SLs 0.5/0.7/0.85/0.95 (one safe)."""
    return Grid.from_arrays(
        speeds=[1.0, 2.0, 4.0, 8.0],
        security_levels=[0.5, 0.7, 0.85, 0.95],
    )


@pytest.fixture
def sufferage_beats_minmin_etc():
    """A Figure-2-style ETC matrix where Sufferage beats Min-Min.

    J3 "suffers" hugely without S2; Min-Min greedily burns S2's head
    start on J2 instead.  Hand-worked schedules: Min-Min makespan 8
    (J1->S1@3, J2->S2@4, J3->S2@8), Sufferage makespan 6 (J3->S2@4,
    J1->S1@3, J2->S1@6) — the paper's Figure 2 makes the same point
    with makespans 7 vs 6.
    """
    return np.array(
        [
            [3.0, 4.0],
            [3.0, 4.0],
            [10.0, 4.0],
        ]
    )


def make_jobs(workloads, arrivals=None, sds=None, start_id=0):
    """Helper: build a list of jobs from parallel value lists."""
    n = len(workloads)
    arrivals = arrivals if arrivals is not None else [0.0] * n
    sds = sds if sds is not None else [0.6] * n
    return [
        Job(
            job_id=start_id + i,
            arrival=float(arrivals[i]),
            workload=float(workloads[i]),
            security_demand=float(sds[i]),
        )
        for i in range(n)
    ]


def make_batch(
    grid: Grid,
    workloads,
    *,
    now: float = 0.0,
    ready=None,
    sds=None,
    secure_only=None,
) -> Batch:
    """Helper: build a Batch directly (bypassing the engine)."""
    n = len(workloads)
    w = np.asarray(workloads, dtype=float)
    sds = (
        np.asarray(sds, dtype=float)
        if sds is not None
        else np.full(n, 0.6)
    )
    secure_only = (
        np.asarray(secure_only, dtype=bool)
        if secure_only is not None
        else np.zeros(n, dtype=bool)
    )
    ready = (
        np.asarray(ready, dtype=float)
        if ready is not None
        else np.full(grid.n_sites, now)
    )
    return Batch(
        now=now,
        job_ids=np.arange(n),
        workloads=w,
        security_demands=sds,
        secure_only=secure_only,
        etc=w[:, None] / grid.speeds[None, :],
        ready=np.maximum(ready, now),
        site_security=grid.security_levels.copy(),
        speeds=grid.speeds.copy(),
    )


@pytest.fixture
def batch_factory(small_grid):
    """Factory fixture producing batches on the small grid."""

    def factory(workloads, **kwargs):
        return make_batch(small_grid, workloads, **kwargs)

    return factory
