"""Tests for repro.workloads.analysis."""

import numpy as np
import pytest

from repro.workloads.analysis import (
    WorkloadProfile,
    hourly_histogram,
    profile_scenario,
)
from repro.workloads.nas import NASConfig, nas_scenario
from repro.workloads.psa import PSAConfig, psa_scenario


@pytest.fixture(scope="module")
def nas():
    return nas_scenario(NASConfig(n_jobs=3000, trace_days=20), rng=0)


@pytest.fixture(scope="module")
def psa():
    return psa_scenario(PSAConfig(n_jobs=1000), rng=0)


class TestProfile:
    def test_basic_fields(self, psa):
        p = profile_scenario(psa)
        assert p.n_jobs == 1000
        assert p.span_seconds > 0
        assert p.total_work == pytest.approx(psa.total_work)
        assert 0.6 <= p.sd_mean <= 0.9

    def test_load_ratio_definition(self, psa):
        p = profile_scenario(psa)
        expected = psa.total_work / (psa.grid.total_speed * p.span_seconds)
        assert p.load_ratio == pytest.approx(expected)

    def test_psa_regime_near_critical(self, psa):
        """Calibrated PSA runs close to (slightly above) capacity."""
        p = profile_scenario(psa)
        assert 0.8 < p.load_ratio < 2.0

    def test_nas_regime_overloaded(self, nas):
        p = profile_scenario(nas, squeeze=2.0)
        assert p.overloaded

    def test_nas_prime_time_cycle(self, nas):
        p = profile_scenario(nas, squeeze=2.0)
        # 10 of 24 hours are prime time but carry most arrivals
        assert p.prime_time_fraction > 0.5

    def test_interarrival(self, psa):
        p = profile_scenario(psa)
        assert p.mean_interarrival == pytest.approx(125.0, rel=0.2)

    def test_percentiles_ordered(self, nas):
        p = profile_scenario(nas, squeeze=2.0)
        assert p.workload_p50 <= p.workload_p95 <= p.workload_max

    def test_squeeze_validation(self, psa):
        with pytest.raises(ValueError):
            profile_scenario(psa, squeeze=0.0)


class TestHourlyHistogram:
    def test_shape_and_total(self, nas):
        h = hourly_histogram(nas, squeeze=2.0)
        assert h.shape == (24,)
        assert h.sum() == nas.n_jobs

    def test_daily_cycle_visible(self, nas):
        h = hourly_histogram(nas, squeeze=2.0)
        assert h[8:18].mean() > 1.5 * np.mean(np.r_[h[:8], h[18:]])

    def test_squeeze_validation(self, psa):
        with pytest.raises(ValueError):
            hourly_histogram(psa, squeeze=-1.0)
