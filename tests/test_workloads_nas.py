"""Tests for repro.workloads.nas — the synthetic trace."""

import numpy as np
import pytest

from repro.workloads.nas import NASConfig, nas_grid, nas_scenario, nas_site_plan


class TestNASSitePlan:
    def test_twelve_sites_is_the_paper_plan(self):
        assert nas_site_plan(12) == NASConfig().site_nodes

    def test_keeps_big_to_small_ratio(self):
        plan = nas_site_plan(6)
        assert plan == (16, 16, 8, 8, 8, 8)
        plan24 = nas_site_plan(24)
        assert plan24.count(16) == 8 and plan24.count(8) == 16

    def test_tiny_grids(self):
        assert nas_site_plan(1) == (8,)
        assert nas_site_plan(2) == (16, 8)
        assert nas_site_plan(3) == (16, 8, 8)

    def test_custom_node_counts(self):
        assert nas_site_plan(3, big_nodes=32, small_nodes=4) == (32, 4, 4)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_sites"):
            nas_site_plan(0)
        with pytest.raises(ValueError):
            nas_site_plan(3, big_nodes=0)

    def test_plan_builds_a_valid_grid(self):
        grid = nas_grid(NASConfig(site_nodes=nas_site_plan(5)), rng=0)
        assert grid.n_sites == 5


class TestNASConfig:
    def test_paper_defaults(self):
        cfg = NASConfig()
        assert cfg.n_jobs == 16_000
        assert cfg.trace_days == 92
        assert cfg.squeeze == 2.0
        assert sum(cfg.site_nodes) == 128
        assert cfg.site_nodes.count(16) == 4
        assert cfg.site_nodes.count(8) == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_jobs=0),
            dict(trace_days=0),
            dict(squeeze=0.0),
            dict(node_weights=(1.0,)),  # misaligned with sizes
            dict(log_rt_lo=3.0, log_rt_hi=2.0),
            dict(site_nodes=()),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NASConfig(**kwargs)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            NASConfig(
                node_sizes=(1, 2),
                node_weights=(0.5, 0.6),
            )


class TestNASGrid:
    def test_layout(self):
        grid = nas_grid(rng=0)
        assert grid.n_sites == 12
        speeds = sorted(grid.speeds.tolist(), reverse=True)
        assert speeds[:4] == [16.0] * 4
        assert speeds[4:] == [8.0] * 8
        assert grid.total_speed == 128.0

    def test_feasible(self):
        assert nas_grid(rng=0).security_levels.max() >= 0.9


class TestNASScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return nas_scenario(NASConfig(n_jobs=4000, trace_days=23), rng=0)

    def test_counts(self, scenario):
        assert scenario.n_jobs == 4000

    def test_power_of_two_nodes(self, scenario):
        nodes = np.array([j.nodes for j in scenario.jobs])
        assert set(np.unique(nodes)) <= {1, 2, 4, 8, 16, 32, 64, 128}

    def test_small_jobs_dominate(self, scenario):
        nodes = np.array([j.nodes for j in scenario.jobs])
        assert (nodes <= 8).mean() > 0.5

    def test_workload_is_nodes_times_runtime(self, scenario):
        # runtime = workload / nodes must lie within the configured
        # log-uniform envelope (plus the size-dependent shift).
        cfg = NASConfig()
        for j in scenario.jobs[:200]:
            runtime = j.workload / j.nodes
            log_rt = np.log10(runtime)
            shift = cfg.size_rt_slope * np.log2(j.nodes)
            assert cfg.log_rt_lo + shift - 1e-9 <= log_rt
            assert log_rt <= cfg.log_rt_hi + shift + 1e-9

    def test_squeeze_compresses_horizon(self):
        cfg = NASConfig(n_jobs=500, trace_days=10, squeeze=2.0)
        sc = nas_scenario(cfg, rng=0)
        assert sc.jobs[-1].arrival <= 10 * 86400 / 2

    def test_daily_cycle_visible(self, scenario):
        # Arrivals (after un-squeezing) concentrate in prime time.
        t = scenario.arrivals() * 2.0  # undo squeeze
        hour = (t % 86400) // 3600
        assert ((hour >= 8) & (hour < 18)).mean() > 0.5

    def test_heavy_runtime_tail(self, scenario):
        w = scenario.workloads()
        assert w.max() / np.median(w) > 50  # orders of magnitude spread

    def test_reproducible(self):
        a = nas_scenario(NASConfig(n_jobs=100, trace_days=5), rng=7)
        b = nas_scenario(NASConfig(n_jobs=100, trace_days=5), rng=7)
        assert a.workloads().tolist() == b.workloads().tolist()

    def test_overload_regime_at_full_scale(self):
        """The paper's NAS setup is a backlogged system: offered load
        exceeds grid capacity over the squeezed horizon."""
        sc = nas_scenario(NASConfig(), rng=0)
        load_ratio = sc.total_work / (sc.grid.total_speed * sc.span)
        assert load_ratio > 1.0
