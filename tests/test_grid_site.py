"""Tests for repro.grid.site."""

import numpy as np
import pytest

from repro.grid.site import Grid, Site


class TestSite:
    def test_construction(self):
        s = Site(site_id=0, speed=8.0, security_level=0.9, nodes=8)
        assert s.speed == 8.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(site_id=-1, speed=1.0, security_level=0.5),
            dict(site_id=0, speed=0.0, security_level=0.5),
            dict(site_id=0, speed=-2.0, security_level=0.5),
            dict(site_id=0, speed=1.0, security_level=-0.1),
            dict(site_id=0, speed=1.0, security_level=0.5, nodes=0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Site(**kwargs)


class TestGrid:
    def test_from_arrays(self):
        g = Grid.from_arrays([1.0, 2.0], [0.5, 0.9])
        assert g.n_sites == 2
        assert g[1].speed == 2.0
        np.testing.assert_allclose(g.security_levels, [0.5, 0.9])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one site"):
            Grid(())

    def test_bad_ids_rejected(self):
        with pytest.raises(ValueError, match="site_ids"):
            Grid((Site(1, 1.0, 0.5),))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Grid.from_arrays([1.0], [0.5, 0.6])

    def test_nodes_shape_checked(self):
        with pytest.raises(ValueError, match="nodes"):
            Grid.from_arrays([1.0, 2.0], [0.5, 0.6], nodes=[1])

    def test_vector_views_read_only(self, small_grid):
        with pytest.raises(ValueError):
            small_grid.speeds[0] = 99.0

    def test_total_speed(self, small_grid):
        assert small_grid.total_speed == 15.0

    def test_len_and_iter_order(self, small_grid):
        assert len(small_grid) == 4
        assert [s.site_id for s in small_grid.sites] == [0, 1, 2, 3]

    def test_max_security_site(self, small_grid):
        assert small_grid.max_security_site() == 3

    def test_secure_sites_for(self, small_grid):
        np.testing.assert_array_equal(
            small_grid.secure_sites_for(0.8), [2, 3]
        )
        np.testing.assert_array_equal(small_grid.secure_sites_for(0.99), [])

    def test_nodes_passthrough(self):
        g = Grid.from_arrays([16.0, 8.0], [0.5, 0.6], nodes=[16, 8])
        assert g[0].nodes == 16 and g[1].nodes == 8
