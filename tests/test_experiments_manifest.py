"""Tests for repro.experiments.manifest and the fault-tolerant
dispatch loop built on it.

The acceptance invariant lives here (and in the CI crash-resume smoke
job): kill a shard mid-flight, ``resume`` the manifest, ``merge`` —
and the result is bit-identical to an uninterrupted single-host
``run_spec``.  Around it, the manifest edge cases: corrupted/truncated
``manifest.json``, a shard reporting done twice, resume when all
shards are already done (a no-op), and spec-hash mismatch rejection.
"""

import json
from dataclasses import replace

import pytest

from repro.core.ga import GAConfig
from repro.experiments import dispatch
from repro.experiments.config import RunSettings
from repro.experiments.dispatch import (
    FAULT_ENV,
    ShardError,
    grid_completion,
    merge_runs,
    resume_manifest,
    resume_todo,
    run_sharded,
    shard_spec,
)
from repro.experiments.manifest import (
    MANIFEST_JSON,
    SHARD_STATES,
    create_manifest,
    load_manifest,
    save_manifest,
    spec_sha256,
)
from repro.experiments.spec import ExperimentSpec, run_spec
from repro.experiments.store import load_run, save_run
from repro.experiments.sweep import ScenarioVariant

FAST = RunSettings(seed=11, ga=GAConfig(population_size=16, generations=4))

SPEC = ExperimentSpec(
    name="manifest-tiny",
    schedulers=("min-min-risky", "sufferage-risky"),
    variants=(
        ScenarioVariant(name="psa-a", n_jobs=60, n_training_jobs=0),
        ScenarioVariant(name="psa-b", n_jobs=80, n_training_jobs=0),
    ),
    seeds=(11, 12, 13, 14),
    metrics=("makespan", "n_fail"),
    scale=0.1,
    settings=FAST,
)


@pytest.fixture(scope="module")
def single_host():
    return run_spec(SPEC, max_workers=1)


@pytest.fixture()
def fresh_manifest():
    shards = shard_spec(SPEC, 2)
    return create_manifest(SPEC, shards, strategy="auto")


def assert_cells_identical(a, b) -> None:
    """Bit-identical per-cell reports modulo wall-clock seconds."""
    assert a.variants == b.variants
    assert a.seeds == b.seeds
    assert a.schedulers() == b.schedulers()
    for v in a.variants:
        for sched in a.schedulers():
            for ra, rb in zip(a.cell(v.name, sched), b.cell(v.name, sched)):
                assert replace(ra, scheduler_seconds=0.0) == replace(
                    rb, scheduler_seconds=0.0
                )


class TestManifestModel:
    def test_create_is_all_pending(self, fresh_manifest):
        m = fresh_manifest
        assert m.n_shards == 2
        assert [s.state for s in m.shards] == ["pending", "pending"]
        assert [s.run_dir for s in m.shards] == ["part-0", "part-1"]
        assert [s.attempts for s in m.shards] == [0, 0]
        assert m.spec_hash == spec_sha256(SPEC)
        assert m.completion == 0.0
        assert not m.all_done
        assert m.incomplete_indices() == (0, 1)

    def test_round_trip_through_dict_and_file(self, fresh_manifest, tmp_path):
        m = fresh_manifest.with_shard(0, "running").with_shard(0, "done")
        again = type(m).from_dict(m.to_dict())
        assert again == m
        path = save_manifest(m, tmp_path / MANIFEST_JSON)
        assert load_manifest(path) == m
        # the atomic-save temp file must not linger
        assert list(tmp_path.iterdir()) == [path]

    def test_running_bumps_attempts_and_stamps_start(self, fresh_manifest):
        m = fresh_manifest.with_shard(0, "running")
        entry = m.shard(0)
        assert entry.state == "running"
        assert entry.attempts == 1
        assert entry.started_at is not None
        assert entry.finished_at is None
        # a dispatcher that died mid-shard re-dispatches: running->running
        again = m.with_shard(0, "running").shard(0)
        assert again.attempts == 2

    def test_done_records_finish_and_clears_error(self, fresh_manifest):
        m = (
            fresh_manifest.with_shard(0, "running")
            .with_shard(0, "failed", error="boom")
            .with_shard(0, "running")
            .with_shard(0, "done")
        )
        entry = m.shard(0)
        assert entry.state == "done"
        assert entry.attempts == 2
        assert entry.error is None
        assert entry.finished_at is not None
        assert m.completion == 0.5

    def test_failed_records_error(self, fresh_manifest):
        m = fresh_manifest.with_shard(1, "running").with_shard(
            1, "failed", error="shard 1 exploded"
        )
        assert m.shard(1).error == "shard 1 exploded"
        assert m.counts()["failed"] == 1

    def test_done_twice_raises(self, fresh_manifest):
        m = fresh_manifest.with_shard(0, "running").with_shard(0, "done")
        with pytest.raises(ValueError, match="done twice"):
            m.with_shard(0, "done")

    def test_done_accepts_only_pending_reset(self, fresh_manifest):
        m = fresh_manifest.with_shard(0, "running").with_shard(0, "done")
        for state in ("running", "failed"):
            with pytest.raises(ValueError, match="illegal transition"):
                m.with_shard(0, state)
        reset = m.with_shard(0, "pending").shard(0)
        assert reset.state == "pending"
        assert reset.started_at is None
        assert reset.finished_at is None

    def test_done_requires_running(self, fresh_manifest):
        with pytest.raises(ValueError, match="illegal transition"):
            fresh_manifest.with_shard(0, "done")
        with pytest.raises(ValueError, match="illegal transition"):
            fresh_manifest.with_shard(0, "failed")

    def test_unknown_state_and_bad_index_rejected(self, fresh_manifest):
        with pytest.raises(ValueError, match="unknown shard state"):
            fresh_manifest.with_shard(0, "exploded")
        with pytest.raises(ValueError, match="no shard 7"):
            fresh_manifest.with_shard(7, "running")

    def test_counts_covers_every_state(self, fresh_manifest):
        assert set(fresh_manifest.counts()) == set(SHARD_STATES)

    def test_render_names_states_and_spec(self, fresh_manifest):
        text = fresh_manifest.with_shard(0, "running").render()
        assert "manifest-tiny" in text
        assert "running" in text
        assert "pending" in text
        assert "0% complete" in text


class TestManifestIO:
    def _saved(self, tmp_path, manifest):
        return save_manifest(manifest, tmp_path / MANIFEST_JSON)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no run manifest"):
            load_manifest(tmp_path / MANIFEST_JSON)

    def test_corrupted_json(self, tmp_path):
        path = tmp_path / MANIFEST_JSON
        path.write_text("{this is not json", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupted or truncated"):
            load_manifest(path)

    def test_truncated_json(self, fresh_manifest, tmp_path):
        path = self._saved(tmp_path, fresh_manifest)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(ValueError, match="corrupted or truncated"):
            load_manifest(path)

    def test_non_object_top_level(self, tmp_path):
        path = tmp_path / MANIFEST_JSON
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(ValueError, match="not a run manifest"):
            load_manifest(path)

    def test_missing_field_is_malformed(self, fresh_manifest, tmp_path):
        path = self._saved(tmp_path, fresh_manifest)
        data = json.loads(path.read_text(encoding="utf-8"))
        del data["shards"][0]["run_dir"]
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ValueError, match="malformed manifest"):
            load_manifest(path)

    def test_spec_hash_mismatch_rejected(self, fresh_manifest, tmp_path):
        # edit the embedded spec without refreshing the hash: resuming
        # would silently execute a different experiment
        path = self._saved(tmp_path, fresh_manifest)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["spec"]["seeds"] = [999]
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ValueError, match="spec-hash mismatch"):
            load_manifest(path)

    def test_hash_ignores_formatting_but_not_content(self, fresh_manifest):
        payload = SPEC.to_dict()
        assert spec_sha256(payload) == spec_sha256(SPEC)
        assert spec_sha256(payload) == fresh_manifest.spec_hash
        assert spec_sha256(replace(SPEC, seeds=(11,))) != spec_sha256(SPEC)

    def test_unsupported_schema_version(self, fresh_manifest, tmp_path):
        path = self._saved(tmp_path, fresh_manifest)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["schema_version"] = 99
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ValueError, match="schema_version"):
            load_manifest(path)

    def test_bad_shard_state_rejected(self, fresh_manifest, tmp_path):
        path = self._saved(tmp_path, fresh_manifest)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["shards"][1]["state"] = "vanished"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ValueError, match="unknown shard state"):
            load_manifest(path)

    def test_misindexed_shard_table_rejected(self, fresh_manifest, tmp_path):
        path = self._saved(tmp_path, fresh_manifest)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["shards"][0]["index"] = 1
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ValueError, match="indexed 0"):
            load_manifest(path)


class TestRetryingDispatch:
    def test_shard_failure_carries_context(self, monkeypatch, tmp_path):
        """The bugfix: a dying worker surfaces as ShardError naming the
        shard index and sub-spec, not as a bare pool traceback."""
        monkeypatch.setenv(FAULT_ENV, "1")
        with pytest.raises(ShardError) as err:
            run_sharded(SPEC, 2, max_workers=1)
        assert err.value.index == 1
        assert err.value.shard_name == "manifest-tiny#shard-1-of-2"
        assert err.value.attempts == 1
        assert isinstance(err.value.cause, RuntimeError)
        assert "shard 1" in str(err.value)
        assert "manifest-tiny#shard-1-of-2" in str(err.value)
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_retry_recovers_a_flaky_shard(
        self, monkeypatch, tmp_path, single_host
    ):
        real = dispatch._run_shard
        calls = {"n": 0}

        def flaky(task):
            if task.index == 0:
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("transient shard death")
            return real(task)

        monkeypatch.setattr(dispatch, "_run_shard", flaky)
        merged = run_sharded(
            SPEC,
            2,
            max_workers=1,
            max_retries=1,
            manifest_dir=tmp_path / "work",
        )
        assert_cells_identical(single_host, merged)
        manifest = load_manifest(tmp_path / "work" / MANIFEST_JSON)
        assert manifest.all_done
        assert manifest.shard(0).attempts == 2  # failed once, retried
        assert manifest.shard(1).attempts == 1

    def test_exhausted_retries_persist_failed_state(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(FAULT_ENV, "0")
        with pytest.raises(ShardError, match="after 3 attempt"):
            run_sharded(
                SPEC,
                2,
                max_workers=1,
                max_retries=2,
                manifest_dir=tmp_path / "work",
            )
        manifest = load_manifest(tmp_path / "work" / MANIFEST_JSON)
        assert manifest.shard(0).state == "failed"
        assert manifest.shard(0).attempts == 3
        assert "fault injection" in manifest.shard(0).error
        # the healthy shard finished and its run record is loadable
        assert manifest.shard(1).state == "done"
        part = load_run(
            manifest.shard_run_dir(tmp_path / "work" / MANIFEST_JSON, 1)
        )
        assert part.name == "manifest-tiny#shard-1-of-2"

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            run_sharded(SPEC, 2, max_workers=1, max_retries=-1)

    def test_hard_killed_worker_surfaces_as_shard_error(
        self, monkeypatch, tmp_path, single_host
    ):
        """A worker dying abruptly (SIGKILL/OOM: the '!' hook variant)
        breaks the whole process pool — the dispatch must still report
        a ShardError, keep the survivors, and stay resumable."""
        monkeypatch.setenv(FAULT_ENV, "0!")
        with pytest.raises(ShardError) as err:
            run_sharded(
                SPEC,
                2,
                max_workers=2,
                max_retries=1,
                manifest_dir=tmp_path / "work",
            )
        assert "BrokenProcessPool" in str(err.value)
        monkeypatch.delenv(FAULT_ENV)
        path = tmp_path / "work" / MANIFEST_JSON
        manifest = load_manifest(path)
        assert manifest.shard(0).state == "failed"
        # shard 1 either finished or went down with the pool; resume
        # recovers whichever state it landed in
        manifest, merged = resume_manifest(path, max_workers=1)
        assert manifest.all_done
        assert_cells_identical(single_host, merged)

    def test_manifest_dir_records_full_clean_run(
        self, tmp_path, single_host
    ):
        merged = run_sharded(
            SPEC, 2, max_workers=1, manifest_dir=tmp_path / "work"
        )
        assert_cells_identical(single_host, merged)
        manifest = load_manifest(tmp_path / "work" / MANIFEST_JSON)
        assert manifest.all_done
        assert manifest.completion == 1.0
        for i in range(2):
            stored = load_run(tmp_path / "work" / f"part-{i}")
            assert stored.name == f"manifest-tiny#shard-{i}-of-2"


class TestResume:
    def _crashed_run(self, tmp_path, monkeypatch, *, doomed="0"):
        """A manifest left behind by a dispatch whose shard died."""
        monkeypatch.setenv(FAULT_ENV, doomed)
        with pytest.raises(ShardError):
            run_sharded(
                SPEC, 2, max_workers=1, manifest_dir=tmp_path / "work"
            )
        monkeypatch.delenv(FAULT_ENV)
        return tmp_path / "work" / MANIFEST_JSON

    def test_kill_resume_merge_equals_single_host(
        self, tmp_path, monkeypatch, single_host
    ):
        """The acceptance criterion: kill shard -> resume -> merge is
        bit-identical to an uninterrupted run_spec."""
        path = self._crashed_run(tmp_path, monkeypatch)
        manifest, merged = resume_manifest(path, max_workers=1)
        assert manifest.all_done
        assert manifest.shard(0).attempts == 2  # crash + resume
        assert_cells_identical(single_host, merged)

    def test_resumed_record_payload_identical_modulo_provenance(
        self, tmp_path, monkeypatch, single_host
    ):
        path = self._crashed_run(tmp_path, monkeypatch)
        _, merged = resume_manifest(path, max_workers=1)
        a = save_run(single_host, tmp_path / "seq", name="x")
        b = save_run(
            merged,
            tmp_path / "resumed",
            name="x",
            merged_from=["p0", "p1"],
            manifest={"path": str(path), "spec_sha256": spec_sha256(SPEC)},
        )
        pa = json.loads((a / "run.json").read_text(encoding="utf-8"))
        pb = json.loads((b / "run.json").read_text(encoding="utf-8"))
        for payload in (pa, pb):
            for key in ("created_at", "git_sha", "elapsed_seconds"):
                payload.pop(key)
            payload.pop("merged_from", None)
            payload.pop("manifest", None)
            for per_sched in payload["reports"].values():
                for reps in per_sched.values():
                    for rep in reps:
                        rep["scheduler_seconds"] = 0.0
        assert pa == pb

    def test_resume_all_done_is_a_noop_dispatch(
        self, tmp_path, monkeypatch, single_host
    ):
        run_sharded(SPEC, 2, max_workers=1, manifest_dir=tmp_path / "work")

        def explode(task):  # resume must not re-run anything
            raise AssertionError("no shard should be dispatched")

        monkeypatch.setattr(dispatch, "_run_shard", explode)
        path = tmp_path / "work" / MANIFEST_JSON
        before = load_manifest(path)
        manifest, merged = resume_manifest(path, max_workers=1)
        assert manifest == before  # attempts untouched by the no-op
        assert_cells_identical(single_host, merged)

    def test_resume_redoes_done_shard_with_missing_record(
        self, tmp_path, single_host
    ):
        run_sharded(SPEC, 2, max_workers=1, manifest_dir=tmp_path / "work")
        record = tmp_path / "work" / "part-1" / "run.json"
        record.unlink()  # "done" state, evidence gone
        path = tmp_path / "work" / MANIFEST_JSON
        assert resume_todo(load_manifest(path), path) == (1,)
        manifest, merged = resume_manifest(path, max_workers=1)
        assert manifest.all_done
        assert manifest.shard(1).attempts == 2  # redone, not trusted
        assert_cells_identical(single_host, merged)
        assert record.is_file()

    def test_resume_redoes_done_shard_with_corrupt_record(
        self, tmp_path, single_host
    ):
        # a run.json truncated by a crashed save is as untrustworthy
        # as a missing one: redo the shard, don't dead-end resume
        run_sharded(SPEC, 2, max_workers=1, manifest_dir=tmp_path / "work")
        record = tmp_path / "work" / "part-0" / "run.json"
        record.write_text(
            record.read_text(encoding="utf-8")[:100], encoding="utf-8"
        )
        path = tmp_path / "work" / MANIFEST_JSON
        assert resume_todo(load_manifest(path), path) == (0,)
        manifest, merged = resume_manifest(path, max_workers=1)
        assert manifest.all_done
        assert manifest.shard(0).attempts == 2
        assert_cells_identical(single_host, merged)

    def test_resume_todo_covers_every_non_done_state(
        self, tmp_path, monkeypatch
    ):
        path = self._crashed_run(tmp_path, monkeypatch)
        manifest = load_manifest(path)
        assert manifest.shard(0).state == "failed"
        assert resume_todo(manifest, path) == (0,)
        assert resume_todo(
            manifest.with_shard(0, "running"), path
        ) == (0,)

    def test_resume_still_failing_raises_and_records(
        self, tmp_path, monkeypatch
    ):
        path = self._crashed_run(tmp_path, monkeypatch)
        monkeypatch.setenv(FAULT_ENV, "0")
        with pytest.raises(ShardError, match="shard 0"):
            resume_manifest(path, max_workers=1, max_retries=0)
        manifest = load_manifest(path)
        assert manifest.shard(0).state == "failed"
        assert manifest.shard(0).attempts == 2

    def test_resume_rejects_tampered_shard_table(
        self, tmp_path, monkeypatch
    ):
        path = self._crashed_run(tmp_path, monkeypatch)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["shards"][0]["name"] = "someone-elses-shard"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ValueError, match="does not match the partition"):
            resume_manifest(path, max_workers=1)

    def test_resume_rejects_corrupt_manifest(self, tmp_path):
        path = tmp_path / MANIFEST_JSON
        path.write_text("{oops", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupted or truncated"):
            resume_manifest(path)


class TestPartialMerge:
    @pytest.fixture(scope="class")
    def seed_shards(self):
        return [
            run_spec(s, max_workers=1)
            for s in shard_spec(SPEC, 2, strategy="seeds")
        ]

    def test_missing_seed_shard_keeps_complete_subgrid(
        self, seed_shards, single_host
    ):
        partial = merge_runs([seed_shards[0]], spec=SPEC, allow_partial=True)
        assert partial.seeds == (11, 12)  # shard 1's seeds are gone
        assert [v.name for v in partial.variants] == ["psa-a", "psa-b"]
        for v in partial.variants:
            for sched in partial.schedulers():
                for ra, rb in zip(
                    partial.cell(v.name, sched),
                    single_host.cell(v.name, sched)[:2],
                ):
                    assert replace(ra, scheduler_seconds=0.0) == replace(
                        rb, scheduler_seconds=0.0
                    )

    def test_missing_variant_shard_keeps_surviving_variants(
        self, single_host
    ):
        shards = shard_spec(SPEC, 2, strategy="variants")
        part = run_spec(shards[1], max_workers=1)
        partial = merge_runs([part], spec=SPEC, allow_partial=True)
        assert [v.name for v in partial.variants] == ["psa-b"]
        assert partial.seeds == SPEC.seeds
        for ra, rb in zip(
            partial.cell("psa-b", partial.schedulers()[0]),
            single_host.cell("psa-b", single_host.schedulers()[0]),
        ):
            assert replace(ra, scheduler_seconds=0.0) == replace(
                rb, scheduler_seconds=0.0
            )

    def test_complete_parts_merge_identically_with_flag(
        self, seed_shards, single_host
    ):
        strict = merge_runs(seed_shards, spec=SPEC)
        relaxed = merge_runs(seed_shards, spec=SPEC, allow_partial=True)
        assert strict == relaxed
        assert_cells_identical(single_host, relaxed)

    def test_disjoint_coverage_keeps_one_complete_side(self):
        # variant a covers seeds {11,12}, variant b covers {13,14}:
        # no common seed, but each side is a complete sub-grid — the
        # merge keeps one (ties go to the first variant) instead of
        # refusing
        a = replace(
            SPEC, name="a", variants=SPEC.variants[:1], seeds=(11, 12)
        )
        b = replace(
            SPEC, name="b", variants=SPEC.variants[1:], seeds=(13, 14)
        )
        parts = [run_spec(s, max_workers=1) for s in (a, b)]
        partial = merge_runs(parts, allow_partial=True)
        assert [v.name for v in partial.variants] == ["psa-a"]
        assert partial.seeds == (11, 12)

    def test_lopsided_coverage_keeps_the_larger_grid(self):
        # variant a covers all 4 seeds, variant b only seed 14: the
        # 1x4 grid beats the 2x1 intersection grid — a barely covered
        # straggler must not discard the well-covered variant's data
        a = replace(SPEC, name="a", variants=SPEC.variants[:1])
        b = replace(
            SPEC, name="b", variants=SPEC.variants[1:], seeds=(14,)
        )
        parts = [run_spec(s, max_workers=1) for s in (a, b)]
        partial = merge_runs(parts, spec=SPEC, allow_partial=True)
        assert [v.name for v in partial.variants] == ["psa-a"]
        assert partial.seeds == SPEC.seeds

    def test_common_intersection_candidate_wins_when_largest(self):
        # a covers {11,12,13}, b covers {12,13}: the shared {12,13}
        # slab over both variants (4 cells) beats a alone (3 cells)
        a = replace(
            SPEC, name="a", variants=SPEC.variants[:1], seeds=(11, 12, 13)
        )
        b = replace(
            SPEC, name="b", variants=SPEC.variants[1:], seeds=(12, 13)
        )
        parts = [run_spec(s, max_workers=1) for s in (a, b)]
        partial = merge_runs(parts, allow_partial=True)
        assert [v.name for v in partial.variants] == ["psa-a", "psa-b"]
        assert partial.seeds == (12, 13)

    def test_grid_completion_against_spec(self, seed_shards):
        completion = grid_completion([seed_shards[0]], spec=SPEC)
        assert completion.total == 8  # 2 variants x 4 seeds
        assert completion.present == 4
        assert completion.fraction == 0.5
        assert not completion.complete
        assert ("psa-a", 13) in completion.missing
        text = completion.render()
        assert "4/8" in text
        assert "50.0%" in text
        assert "psa-a" in text

    def test_grid_completion_union_denominator(self, seed_shards):
        # without a spec the denominator is the union grid, which is
        # complete here (each part tiles its own seeds)
        completion = grid_completion([seed_shards[0]])
        assert completion.complete
        assert completion.fraction == 1.0

    def test_grid_completion_render_caps_listing(self, seed_shards):
        completion = grid_completion([seed_shards[0]], spec=SPEC)
        text = completion.render(limit=1)
        assert "and 3 more missing" in text

    def test_grid_completion_needs_runs(self):
        with pytest.raises(ValueError, match="at least one run"):
            grid_completion([])

    def test_partial_orderings_reject_duplicates(self, seed_shards):
        # the allow_partial orderings are filters, but a duplicated
        # seed would double-count its replication in every summary
        from repro.experiments.sweep import SweepResult

        with pytest.raises(ValueError, match="duplicates"):
            SweepResult.merge(
                [seed_shards[0]],
                seeds_order=(11, 11, 12),
                allow_partial=True,
            )
        with pytest.raises(ValueError, match="duplicates"):
            SweepResult.merge(
                [seed_shards[0]],
                variants_order=("psa-a", "psa-a", "psa-b"),
                allow_partial=True,
            )


class TestStaleShards:
    """The stale-running-shard report: `running` is not proof of life,
    so ages past STALE_RUNNING_SECONDS are flagged in render()/status
    (and the service progress endpoint)."""

    NOW = "2026-08-08T12:00:00+00:00"

    def _running_since(self, fresh_manifest, stamp):
        m = fresh_manifest.with_shard(0, "running")
        entry = replace(m.shard(0), started_at=stamp)
        return replace(m, shards=(entry,) + m.shards[1:])

    def test_age_none_unless_running_with_start(self, fresh_manifest):
        assert fresh_manifest.shard(0).running_age_seconds() is None
        done = fresh_manifest.with_shard(0, "running").with_shard(0, "done")
        assert done.shard(0).running_age_seconds() is None

    def test_age_measures_since_start(self, fresh_manifest):
        m = self._running_since(fresh_manifest, "2026-08-08T11:53:00+00:00")
        assert m.shard(0).running_age_seconds(self.NOW) == 420.0
        assert not m.shard(0).is_stale(self.NOW)

    def test_clock_skew_clamps_to_zero(self, fresh_manifest):
        m = self._running_since(fresh_manifest, "2026-08-08T12:00:05+00:00")
        assert m.shard(0).running_age_seconds(self.NOW) == 0.0

    def test_naive_stamp_assumed_utc(self, fresh_manifest):
        m = self._running_since(fresh_manifest, "2026-08-08T11:59:00")
        assert m.shard(0).running_age_seconds(self.NOW) == 60.0

    def test_stale_past_threshold(self, fresh_manifest):
        from repro.experiments.manifest import STALE_RUNNING_SECONDS

        m = self._running_since(fresh_manifest, "2026-08-08T11:00:00+00:00")
        assert m.shard(0).running_age_seconds(self.NOW) == 3600.0
        assert 3600.0 > STALE_RUNNING_SECONDS
        assert m.shard(0).is_stale(self.NOW)
        assert m.stale_indices(self.NOW) == (0,)
        # a custom threshold overrides the default
        assert m.stale_indices(self.NOW, threshold=4000) == ()

    def test_render_shows_age_and_stale_warning(self, fresh_manifest):
        fresh = self._running_since(
            fresh_manifest, "2026-08-08T11:53:00+00:00"
        ).render(self.NOW)
        assert "running (7m)" in fresh
        assert "stale" not in fresh
        old = self._running_since(
            fresh_manifest, "2026-08-08T09:00:00+00:00"
        ).render(self.NOW)
        assert "running (3h, stale?)" in old
        assert "warning: shard(s) 0 have been running" in old

    def test_live_dispatch_reports_fresh_age(self, tmp_path):
        # an actually-running transition stamps started_at with the
        # real clock, so the age is tiny and nothing is stale
        shards = shard_spec(SPEC, 2)
        m = create_manifest(SPEC, shards, strategy="auto").with_shard(
            0, "running"
        )
        age = m.shard(0).running_age_seconds()
        assert age is not None and age < 60
        assert m.stale_indices() == ()
