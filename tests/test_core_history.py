"""Tests for repro.core.history — the STGA lookup table."""

import numpy as np
import pytest

from repro.core.history import HistoryTable


def entry(scale=1.0, b=3, s=2, assignment=None):
    ready = np.arange(1.0, s + 1) * scale
    etc = (np.arange(b * s, dtype=float).reshape(b, s) + 1) * scale
    sd = np.linspace(0.6, 0.9, b)
    a = (
        np.asarray(assignment)
        if assignment is not None
        else np.zeros(b, dtype=int)
    )
    return ready, etc, sd, a


class TestInsertQuery:
    def test_exact_match_returned(self):
        t = HistoryTable(capacity=10, threshold=0.8)
        r, e, s, a = entry(assignment=[0, 1, 0])
        t.insert(r, e, s, a)
        out = t.query(r, e, s)
        assert len(out) == 1
        np.testing.assert_array_equal(out[0], [0, 1, 0])

    def test_near_match_above_threshold(self):
        t = HistoryTable(capacity=10, threshold=0.8)
        r, e, s, a = entry()
        t.insert(r, e, s, a)
        r2, e2, s2, _ = entry(scale=1.02)
        assert len(t.query(r2, e2, s2)) == 1

    def test_dissimilar_not_returned(self):
        t = HistoryTable(capacity=10, threshold=0.8)
        r, e, s, a = entry()
        t.insert(r, e, s, a)
        r2, e2, s2, _ = entry(scale=50.0)
        assert t.query(r2, e2, s2) == []

    def test_shape_mismatch_filtered(self):
        t = HistoryTable(capacity=10, threshold=0.0)
        r, e, s, a = entry(b=3)
        t.insert(r, e, s, a)
        r2, e2, s2, _ = entry(b=4)
        assert t.query(r2, e2, s2) == []

    def test_best_similarity_first(self):
        t = HistoryTable(capacity=10, threshold=0.0)
        r, e, s, _ = entry()
        t.insert(*entry(scale=1.3, assignment=[1, 1, 1])[:3], [1, 1, 1])
        t.insert(*entry(scale=1.0, assignment=[0, 0, 0])[:3], [0, 0, 0])
        out = t.query(r, e, s)
        np.testing.assert_array_equal(out[0], [0, 0, 0])

    def test_max_results(self):
        t = HistoryTable(capacity=10, threshold=0.0)
        for i in range(5):
            r, e, s, _ = entry(scale=1.0 + i * 0.01)
            t.insert(r, e, s, [i, i, i])
        r, e, s, _ = entry()
        assert len(t.query(r, e, s, max_results=2)) == 2

    def test_returned_views_are_read_only(self):
        """query returns the stored arrays without copying; they are
        frozen so a caller cannot corrupt the table through them."""
        t = HistoryTable(capacity=10, threshold=0.8)
        r, e, s, a = entry(assignment=[0, 1, 0])
        t.insert(r, e, s, a)
        out = t.query(r, e, s)[0]
        with pytest.raises(ValueError, match="read-only"):
            out[:] = 9
        np.testing.assert_array_equal(t.query(r, e, s)[0], [0, 1, 0])

    def test_stored_entry_isolated_from_caller_arrays(self):
        """insert copies its inputs — mutating the caller's assignment
        afterwards must not change what query returns."""
        t = HistoryTable(capacity=10, threshold=0.8)
        r, e, s, _ = entry()
        a = np.array([0, 1, 0])
        t.insert(r, e, s, a)
        a[:] = 7
        np.testing.assert_array_equal(t.query(r, e, s)[0], [0, 1, 0])

    def test_stats(self):
        t = HistoryTable(capacity=10, threshold=0.8)
        r, e, s, a = entry()
        t.insert(r, e, s, a)
        t.query(r, e, s)  # hit
        r2, e2, s2, _ = entry(scale=50.0)
        t.query(r2, e2, s2)  # miss
        assert t.queries == 2 and t.hits == 1
        assert t.hit_rate == 0.5

    def test_validation(self):
        t = HistoryTable(capacity=2)
        r, e, s, a = entry()
        with pytest.raises(ValueError, match="assignment length"):
            t.insert(r, e, s, [0])
        with pytest.raises(ValueError, match="ready length"):
            t.insert(np.zeros(5), e, s, a)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HistoryTable(capacity=0)
        with pytest.raises(ValueError):
            HistoryTable(threshold=1.5)
        with pytest.raises(ValueError):
            HistoryTable(eviction="mru")


class TestEviction:
    def test_capacity_enforced(self):
        t = HistoryTable(capacity=3, threshold=0.0)
        for i in range(5):
            r, e, s, _ = entry(scale=1.0 + i)
            t.insert(r, e, s, [i, i, i])
        assert len(t) == 3

    def test_lru_keeps_recently_queried(self):
        t = HistoryTable(capacity=2, threshold=0.5)
        r0, e0, s0, _ = entry(scale=1.0)
        r1, e1, s1, _ = entry(scale=1.1)
        t.insert(r0, e0, s0, [0, 0, 0])
        t.insert(r1, e1, s1, [1, 1, 1])
        # touch entry 0 so entry 1 becomes LRU
        assert t.query(r0, e0, s0, max_results=1)
        r2, e2, s2, _ = entry(scale=40.0)
        t.insert(r2, e2, s2, [2, 2, 2])  # evicts entry 1
        assert len(t) == 2
        out = t.query(r0, e0, s0, max_results=5)
        assert any(np.array_equal(o, [0, 0, 0]) for o in out)

    def test_fifo_ignores_recency(self):
        t = HistoryTable(capacity=2, threshold=0.5, eviction="fifo")
        r0, e0, s0, _ = entry(scale=1.0)
        r1, e1, s1, _ = entry(scale=1.1)
        t.insert(r0, e0, s0, [0, 0, 0])
        t.insert(r1, e1, s1, [1, 1, 1])
        assert t.query(r0, e0, s0, max_results=1)  # does not refresh
        r2, e2, s2, _ = entry(scale=40.0)
        t.insert(r2, e2, s2, [2, 2, 2])  # evicts entry 0 (oldest)
        out = t.query(r0, e0, s0, max_results=5)
        assert not any(np.array_equal(o, [0, 0, 0]) for o in out)

    def test_clear(self):
        t = HistoryTable(capacity=3)
        r, e, s, a = entry()
        t.insert(r, e, s, a)
        t.query(r, e, s)
        t.clear()
        assert len(t) == 0 and t.queries == 0 and t.hits == 0

    def test_insert_after_clear(self):
        t = HistoryTable(capacity=3, threshold=0.8)
        r, e, s, a = entry(assignment=[1, 0, 1])
        t.insert(r, e, s, a)
        t.clear()
        t.insert(r, e, s, a)
        out = t.query(r, e, s)
        assert len(out) == 1
        np.testing.assert_array_equal(out[0], [1, 0, 1])

    def test_eviction_under_mixed_shapes(self):
        """Capacity is global across shapes; eviction drops the oldest
        entry regardless of which shape bucket it lives in."""
        t = HistoryTable(capacity=3, threshold=0.0, eviction="fifo")
        r3, e3, s3, _ = entry(b=3)
        r4, e4, s4, _ = entry(b=4, s=2)
        t.insert(r3, e3, s3, [0, 0, 0])          # oldest, shape (3, 2)
        t.insert(r4, e4, s4, [1, 1, 1, 1])       # shape (4, 2)
        t.insert(*entry(b=3, scale=1.01)[:3], [2, 2, 2])
        assert len(t) == 3
        t.insert(*entry(b=4, s=2, scale=1.01)[:3], [3, 3, 3, 3])
        # evicts the oldest (3, 2)-shaped entry, not a (4, 2) one
        assert len(t) == 3
        out3 = t.query(r3, e3, s3)
        assert not any(np.array_equal(o, [0, 0, 0]) for o in out3)
        assert any(np.array_equal(o, [2, 2, 2]) for o in out3)
        out4 = t.query(r4, e4, s4)
        assert len(out4) == 2

    def test_mixed_shape_eviction_then_query_each_shape(self):
        """Evicting the last entry of a shape leaves other shapes
        queryable and the emptied shape a clean miss."""
        t = HistoryTable(capacity=2, threshold=0.0, eviction="fifo")
        r3, e3, s3, _ = entry(b=3)
        r4, e4, s4, _ = entry(b=4, s=2)
        t.insert(r3, e3, s3, [0, 0, 0])
        t.insert(r4, e4, s4, [1, 1, 1, 1])
        t.insert(*entry(b=5, s=2)[:3], [2] * 5)  # evicts the (3, 2) entry
        assert t.query(r3, e3, s3) == []
        assert len(t.query(r4, e4, s4)) == 1

    def test_lru_refresh_on_match_moves_entry_to_end(self):
        """A successful match must refresh the entry's LRU position
        (insertion and match both count as 'use')."""
        t = HistoryTable(capacity=5, threshold=0.5)
        r0, e0, s0, _ = entry(scale=1.0)
        r1, e1, s1, _ = entry(scale=1.05)
        t.insert(r0, e0, s0, [0, 0, 0])  # key 0
        t.insert(r1, e1, s1, [1, 1, 1])  # key 1
        assert list(t._entries) == [0, 1]
        t.query(r0, e0, s0, max_results=1)  # matches entry 0 only? both match
        # whatever matched was moved to the end; entry 0 is the best
        # match and max_results=1 restricts the refresh to it
        assert list(t._entries) == [1, 0]

    def test_lru_refresh_only_for_returned_matches(self):
        """max_results limits both the returned schedules and the LRU
        refresh — an entry trimmed from the result list keeps its age."""
        t = HistoryTable(capacity=5, threshold=0.0)
        for i in range(3):
            r, e, s, _ = entry(scale=1.0 + i * 0.01)
            t.insert(r, e, s, [i, i, i])
        r, e, s, _ = entry()
        t.query(r, e, s, max_results=2)  # refreshes keys 0 and 1 only
        assert list(t._entries) == [2, 0, 1]

    def test_fifo_match_does_not_refresh_order(self):
        t = HistoryTable(capacity=5, threshold=0.0, eviction="fifo")
        r0, e0, s0, _ = entry(scale=1.0)
        t.insert(r0, e0, s0, [0, 0, 0])
        t.insert(*entry(scale=1.05)[:3], [1, 1, 1])
        t.query(r0, e0, s0)
        assert list(t._entries) == [0, 1]
