"""Tests for the Duplex heuristic."""

import numpy as np
import pytest

from repro.core.fitness import assignment_makespan
from repro.grid.site import Grid
from repro.heuristics.duplex import DuplexScheduler
from repro.heuristics.maxmin import MaxMinScheduler
from repro.heuristics.minmin import MinMinScheduler
from tests.conftest import make_batch


class TestDuplex:
    def test_name(self):
        assert DuplexScheduler("risky").name == "Duplex Risky"

    def test_never_worse_than_either_member(self):
        for seed in range(15):
            rng = np.random.default_rng(seed)
            grid = Grid.from_arrays(
                rng.uniform(1, 8, size=4), np.full(4, 0.95)
            )
            batch = make_batch(grid, rng.uniform(1, 60, size=8))
            dup = DuplexScheduler("risky").schedule(batch)
            mm = MinMinScheduler("risky").schedule(batch)
            xm = MaxMinScheduler("risky").schedule(batch)
            ms = {
                "dup": assignment_makespan(
                    dup.assignment, batch.etc, batch.ready
                ),
                "mm": assignment_makespan(
                    mm.assignment, batch.etc, batch.ready
                ),
                "xm": assignment_makespan(
                    xm.assignment, batch.etc, batch.ready
                ),
            }
            assert ms["dup"] <= min(ms["mm"], ms["xm"]) + 1e-9

    def test_respects_eligibility(self, batch_factory):
        batch = batch_factory([4.0] * 6, sds=[0.9] * 6)
        res = DuplexScheduler("secure").schedule(batch)
        assert (res.assignment == 3).all()

    def test_defers_infeasible(self, batch_factory):
        batch = batch_factory([4.0], sds=[0.99])
        res = DuplexScheduler("secure").schedule(batch)
        assert res.assignment[0] == -1

    def test_deterministic(self, batch_factory):
        batch = batch_factory(np.linspace(2, 50, 7))
        a = DuplexScheduler("risky").schedule(batch)
        b = DuplexScheduler("risky").schedule(batch)
        np.testing.assert_array_equal(a.assignment, b.assignment)
