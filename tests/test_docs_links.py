"""Docs anti-rot checks: cross-references in README/docs must resolve.

Two guarantees:

1. every relative markdown link in ``README.md`` and ``docs/*.md``
   points at a file that exists (external http(s) links are not
   fetched — only repo-local references are checked);
2. ``docs/CLI.md`` documents every ``repro-grid`` subcommand the
   parser actually exposes, so adding a subcommand without documenting
   it fails CI.
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent

#: markdown inline links: [text](target)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: schemes that name external resources we do not check
_EXTERNAL = ("http://", "https://", "mailto:")


def _markdown_files():
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return files


def _relative_links(path: Path):
    for target in _LINK_RE.findall(path.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        yield target.split("#", 1)[0]  # drop any anchor suffix


@pytest.mark.parametrize(
    "md_file", _markdown_files(), ids=lambda p: p.name
)
def test_relative_links_resolve(md_file):
    assert md_file.is_file(), f"expected docs file {md_file} to exist"
    broken = [
        target
        for target in _relative_links(md_file)
        if not (md_file.parent / target).exists()
    ]
    assert not broken, (
        f"{md_file.relative_to(REPO_ROOT)} has broken relative links: "
        f"{broken}"
    )


def test_readme_links_to_docs_tree():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/ARCHITECTURE.md" in text
    assert "docs/CLI.md" in text
    assert "docs/PERF.md" in text


def _subcommand_names():
    parser = build_parser()
    for action in parser._actions:  # argparse keeps subparsers here
        if hasattr(action, "choices") and action.choices:
            return sorted(action.choices)
    raise AssertionError("repro-grid parser has no subcommands")


def test_cli_reference_covers_every_subcommand():
    doc = (REPO_ROOT / "docs" / "CLI.md").read_text(encoding="utf-8")
    missing = [name for name in _subcommand_names() if name not in doc]
    assert not missing, (
        f"docs/CLI.md does not mention subcommand(s): {missing}"
    )


def test_architecture_doc_names_every_layer():
    doc = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    for layer in (
        "repro.grid",
        "repro.core",
        "repro.heuristics",
        "repro.workloads",
        "repro.metrics",
        "repro.registry",
        "repro.experiments",
        "repro.service",
        "repro.lint",
    ):
        assert layer in doc, f"ARCHITECTURE.md does not mention {layer}"
