"""Backend-parameterized tests for the pluggable RunStore layer.

Every interface test runs against both backends through one
parameterized fixture, so the fs/sqlite contract (same semantics, same
ordering, same byte-level codec) is enforced by construction.  Setting
``REPRO_STORE`` narrows the parameterization to that backend — how CI
proves the suite is backend-agnostic by running it once under
``REPRO_STORE=sqlite:...``.

The adversarial cases the issue names live here too: truncated
records, unknown schema versions, a future-versioned SQLite file
(refused, never downgraded), and two processes saving into one
database concurrently (WAL serializes; no lost runs).
"""

import json
import os
import sqlite3
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.store import (
    MIGRATIONS,
    RUN_JSON,
    STORE_ENV,
    FsRunStore,
    RunSummary,
    SqliteRunStore,
    compare_runs,
    open_store,
    parse_store_uri,
    save_run,
)
from repro.experiments.sweep import ScenarioVariant, SweepResult
from repro.metrics.report import PerformanceReport

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_report(scheduler="S", makespan=100.0, **overrides) -> PerformanceReport:
    kwargs = dict(
        scheduler=scheduler,
        n_jobs=10,
        makespan=makespan,
        avg_response_time=makespan / 2,
        avg_service_span=makespan / 4,
        slowdown_ratio=2.0,
        n_risk=3,
        n_fail=1,
        n_forced=0,
        total_attempts=11,
        site_utilization=np.array([50.0, 75.0]),
        scheduler_seconds=0.01,
        n_batches=2,
    )
    kwargs.update(overrides)
    return PerformanceReport(**kwargs)


def synthetic_run(
    makespans_per_seed=(100.0, 110.0), name="v", schedulers=("S",)
) -> SweepResult:
    seeds = tuple(range(len(makespans_per_seed)))
    return SweepResult(
        variants=(ScenarioVariant(name=name, n_jobs=100),),
        seeds=seeds,
        reports={
            name: {
                sched: tuple(
                    make_report(scheduler=sched, makespan=m)
                    for m in makespans_per_seed
                )
                for sched in schedulers
            }
        },
    )


# REPRO_STORE narrows which backends the interface tests exercise —
# the CI sqlite tier-1 run sets it, proving the suite backend-agnostic
_ENV_URI = os.environ.get(STORE_ENV)
BACKENDS = ("fs", "sqlite") if not _ENV_URI else (parse_store_uri(_ENV_URI)[0],)


def make_store(backend: str, tmp_path: Path):
    if backend == "fs":
        return FsRunStore(tmp_path / "registry")
    return SqliteRunStore(tmp_path / "runs.db")


def pinned_ref(store) -> str:
    """A valid caller-pinned ref for the backend (fs: a directory
    name, sqlite: a row id)."""
    return "part-0" if isinstance(store, FsRunStore) else "7"


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    with make_store(request.param, tmp_path) as s:
        yield s


class TestParseStoreUri:
    def test_schemes(self):
        assert parse_store_uri("fs:runs") == ("fs", "runs")
        assert parse_store_uri("sqlite:runs.db") == ("sqlite", "runs.db")
        assert parse_store_uri("fs:/abs/path") == ("fs", "/abs/path")

    def test_bare_path_is_fs(self):
        assert parse_store_uri("runs") == ("fs", "runs")
        assert parse_store_uri("runs/nested") == ("fs", "runs/nested")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown store backend"):
            parse_store_uri("bogus:x")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_store_uri("")
        with pytest.raises(ValueError, match="no path"):
            parse_store_uri("sqlite:")

    def test_open_store_dispatches(self, tmp_path):
        with open_store(f"fs:{tmp_path / 'r'}") as s:
            assert isinstance(s, FsRunStore)
        with open_store(f"sqlite:{tmp_path / 'r.db'}") as s:
            assert isinstance(s, SqliteRunStore)
        with open_store(str(tmp_path / "bare")) as s:
            assert isinstance(s, FsRunStore)


class TestInterface:
    def test_save_load_round_trip(self, store):
        res = synthetic_run()
        stored = store.save(res, name="demo")
        assert stored.ref is not None
        again = store.load(stored.ref)
        assert again.result == res
        assert again.name == "demo"
        assert again.ref == stored.ref

    def test_load_by_unique_name(self, store):
        stored = store.save(synthetic_run(), name="nightly")
        assert store.load("nightly").ref == stored.ref

    def test_load_ambiguous_name_raises(self, store):
        store.save(synthetic_run(), name="dup")
        store.save(synthetic_run(), name="dup")
        with pytest.raises(ValueError, match="ambiguous"):
            store.load("dup")

    def test_load_unknown_ref_raises_keyerror(self, store):
        with pytest.raises(KeyError, match="no run"):
            store.load("does-not-exist")

    def test_saves_get_distinct_refs(self, store):
        refs = {store.save(synthetic_run(), name="x").ref for _ in range(3)}
        assert len(refs) == 3
        assert len(store.list()) == 3

    def test_list_summaries(self, store):
        store.save(synthetic_run(schedulers=("S", "T")), name="a")
        summaries = store.list()
        assert [type(s) for s in summaries] == [RunSummary]
        (s,) = summaries
        assert s.name == "a"
        assert (s.n_variants, s.n_seeds, s.n_schedulers) == (1, 2, 2)
        assert "1 variant(s) x 2 seed(s) x 2 scheduler(s)" in str(s)

    def test_list_is_oldest_first(self, store):
        for name in ("one", "two", "three"):
            store.save(synthetic_run(), name=name)
        summaries = store.list()
        assert [s.name for s in summaries] == ["one", "two", "three"]
        assert [s.created_at for s in summaries] == sorted(
            s.created_at for s in summaries
        )

    def test_find_filters(self, store):
        store.save(synthetic_run(name="psa", schedulers=("S",)), name="a")
        store.save(synthetic_run(name="nas", schedulers=("S", "T")), name="b")
        assert [s.name for s in store.find(name="b")] == ["b"]
        assert [s.name for s in store.find(variant="nas")] == ["b"]
        assert [s.name for s in store.find(scheduler="T")] == ["b"]
        assert [s.name for s in store.find(scheduler="S")] == ["a", "b"]
        assert store.find(name="nope") == []
        assert len(store.find()) == 2

    def test_delete(self, store):
        ref = store.save(synthetic_run(), name="gone").ref
        keep = store.save(synthetic_run(), name="kept").ref
        store.delete(ref)
        assert [s.ref for s in store.list()] == [keep]
        with pytest.raises(KeyError):
            store.load(ref)
        with pytest.raises(KeyError):
            store.delete(ref)

    def test_pinned_ref_and_overwrite_guard(self, store):
        ref = pinned_ref(store)
        stored = store.save(synthetic_run(), name="shard", ref=ref)
        assert stored.ref == ref
        with pytest.raises(FileExistsError, match="overwrite"):
            store.save(synthetic_run(), name="shard", ref=ref)
        redo = store.save(
            synthetic_run((5.0, 6.0)), name="shard", ref=ref, overwrite=True
        )
        assert redo.ref == ref
        assert len(store.list()) == 1

    def test_provenance_round_trips(self, store):
        stored = store.save(
            synthetic_run(),
            name="merged",
            merged_from=["part-0", "part-1"],
            manifest={"path": "work/manifest.json", "spec_sha256": "ab" * 32},
        )
        again = store.load(stored.ref)
        assert again.merged_from == ("part-0", "part-1")
        assert again.manifest == {
            "path": "work/manifest.json",
            "spec_sha256": "ab" * 32,
        }


class TestRoundTripIdentity:
    """The tentpole invariant: import_fs → export_fs is byte-identical."""

    def test_fs_to_store_to_fs_bit_identical(self, store, tmp_path):
        src = save_run(synthetic_run(), tmp_path / "src", name="orig")
        stored = store.import_fs(src)
        out = store.export_fs(stored.ref, tmp_path / "out")
        assert (out / "run.json").read_bytes() == (src / "run.json").read_bytes()
        assert (out / "grid.csv").read_bytes() == (src / "grid.csv").read_bytes()

    def test_round_trip_compares_as_same(self, store, tmp_path):
        src = save_run(synthetic_run(), tmp_path / "src")
        stored = store.import_fs(src)
        out = store.export_fs(stored.ref, tmp_path / "out")
        assert all(r.verdict == "same" for r in compare_runs(src, out))

    def test_ci_baseline_record_round_trips(self, store, tmp_path):
        # byte-compatibility with PR 1-5 records: the committed CI
        # baseline must import/export unmodified
        baseline = REPO_ROOT / "baselines" / "ci-baseline"
        stored = store.import_fs(baseline)
        assert stored.result.variants  # loads, not just copies
        out = store.export_fs(stored.ref, tmp_path / "out")
        assert (
            (out / "run.json").read_bytes()
            == (baseline / "run.json").read_bytes()
        )

    def test_import_assigns_fresh_refs(self, store, tmp_path):
        src = save_run(synthetic_run(), tmp_path / "src", name="orig")
        a = store.import_fs(src)
        b = store.import_fs(src)
        assert a.ref != b.ref
        assert len(store.list()) == 2

    def test_import_missing_record_raises(self, store, tmp_path):
        with pytest.raises(FileNotFoundError, match="no run record"):
            store.import_fs(tmp_path / "nope")


class TestBackendParity:
    """fs and sqlite must present one registry identically."""

    def test_list_ordering_matches_across_backends(self, tmp_path):
        registry = tmp_path / "source"
        for name in ("alpha", "beta", "gamma"):
            save_run(synthetic_run(), registry / name, name=name)
        listings = {}
        for backend in ("fs", "sqlite"):
            with make_store(backend, tmp_path / backend) as store:
                for child in sorted(registry.iterdir()):
                    store.import_fs(child)
                listings[backend] = [
                    (s.name, s.created_at) for s in store.list()
                ]
        assert listings["fs"] == listings["sqlite"]
        assert [n for n, _ in listings["fs"]] == ["alpha", "beta", "gamma"]


class TestAdversarial:
    def test_truncated_record_fails_to_load_with_clear_error(self, tmp_path):
        run_dir = save_run(synthetic_run(), tmp_path / "r")
        record = run_dir / RUN_JSON
        record.write_text(record.read_text()[: 40])
        from repro.experiments.store import load_run

        with pytest.raises(ValueError, match="corrupted or truncated"):
            load_run(run_dir)

    def test_truncated_record_skipped_by_store_list(self, store, tmp_path):
        good = save_run(synthetic_run(), tmp_path / "good", name="good")
        bad = save_run(synthetic_run(), tmp_path / "bad", name="bad")
        (bad / RUN_JSON).write_text("{not json")
        store.import_fs(good)
        with pytest.raises(ValueError, match="corrupted or truncated"):
            store.import_fs(bad)
        assert [s.name for s in store.list()] == ["good"]

    def test_unknown_schema_version_rejected(self, store, tmp_path):
        run_dir = save_run(synthetic_run(), tmp_path / "r")
        record = run_dir / RUN_JSON
        payload = json.loads(record.read_text())
        payload["schema_version"] = 999
        record.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema_version"):
            store.import_fs(run_dir)

    def test_future_db_version_refused(self, tmp_path):
        db = tmp_path / "future.db"
        conn = sqlite3.connect(db)
        conn.execute("PRAGMA user_version=99")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="newer tool"):
            SqliteRunStore(db)
        # and the file was not touched: version still 99
        conn = sqlite3.connect(db)
        assert conn.execute("PRAGMA user_version").fetchone() == (99,)
        conn.close()


class TestSqliteMigrations:
    def test_fresh_db_reaches_schema_head(self, tmp_path):
        with SqliteRunStore(tmp_path / "new.db") as store:
            (version,) = store._conn.execute(
                "PRAGMA user_version"
            ).fetchone()
            assert version == len(MIGRATIONS)

    def test_v1_db_upgrades_in_place(self, tmp_path):
        # hand-build a database as the v1-only tool would have left it
        db = tmp_path / "old.db"
        conn = sqlite3.connect(db)
        for statement in MIGRATIONS[0][1]:
            conn.execute(statement)
        conn.execute("PRAGMA user_version=1")
        conn.commit()
        conn.close()
        with SqliteRunStore(db) as store:
            (version,) = store._conn.execute(
                "PRAGMA user_version"
            ).fetchone()
            assert version == len(MIGRATIONS)
            # the upgraded database is fully usable, cells table and all
            stored = store.save(synthetic_run(), name="post-upgrade")
            assert store.find(variant="v")[0].ref == stored.ref

    def test_reopen_is_idempotent(self, tmp_path):
        db = tmp_path / "runs.db"
        with SqliteRunStore(db) as store:
            ref = store.save(synthetic_run(), name="first").ref
        with SqliteRunStore(db) as store:
            assert store.load(ref).name == "first"


_CONCURRENT_WRITER = """
import sys
sys.path.insert(0, {src!r})
import numpy as np
from repro.experiments.store import SqliteRunStore
from repro.experiments.sweep import ScenarioVariant, SweepResult
from repro.metrics.report import PerformanceReport

def rep(m):
    return PerformanceReport(
        scheduler="S", n_jobs=10, makespan=m, avg_response_time=m / 2,
        avg_service_span=m / 4, slowdown_ratio=2.0, n_risk=3, n_fail=1,
        n_forced=0, total_attempts=11,
        site_utilization=np.array([50.0, 75.0]),
        scheduler_seconds=0.01, n_batches=2,
    )

res = SweepResult(
    variants=(ScenarioVariant(name="v", n_jobs=100),),
    seeds=(0, 1),
    reports={{"v": {{"S": (rep(100.0), rep(110.0))}}}},
)
with SqliteRunStore({db!r}) as store:
    for i in range({n}):
        store.save(res, name="{tag}-" + str(i))
"""


class TestConcurrency:
    def test_two_process_saves_are_serialized(self, tmp_path):
        # WAL + busy_timeout + BEGIN IMMEDIATE: two writers racing on
        # one database must serialize — every save lands, none lost
        db = str(tmp_path / "shared.db")
        src = str(REPO_ROOT / "src")
        n = 5
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    _CONCURRENT_WRITER.format(src=src, db=db, n=n, tag=tag),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for tag in ("a", "b")
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        with SqliteRunStore(db) as store:
            names = sorted(s.name for s in store.list())
        assert names == sorted(
            f"{tag}-{i}" for tag in ("a", "b") for i in range(n)
        )
