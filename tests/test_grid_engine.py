"""Tests for repro.grid.engine — the discrete-event core."""

import numpy as np
import pytest

from repro.grid.batch import ScheduleResult
from repro.grid.engine import GridSimulator, SchedulerDeadlock
from repro.grid.job import Job, JobState
from repro.grid.site import Grid
from repro.heuristics.minmin import MinMinScheduler
from tests.conftest import make_jobs


class FixedSiteScheduler:
    """Test stub: every job goes to one fixed site, batch order."""

    name = "fixed"

    def __init__(self, site: int = 0):
        self.site = site
        self.batches = []

    def schedule(self, batch):
        self.batches.append(batch)
        return ScheduleResult.from_assignment(
            np.full(batch.n_jobs, self.site, dtype=int)
        )


class DeferAllScheduler:
    """Test stub: never assigns anything."""

    name = "defer"

    def schedule(self, batch):
        return ScheduleResult.from_assignment(
            np.full(batch.n_jobs, -1, dtype=int)
        )


@pytest.fixture
def one_site_grid():
    return Grid.from_arrays([2.0], [0.95])


class TestBasicExecution:
    def test_single_job_timing(self, one_site_grid):
        # Arrival at 0; first tick at interval 100; exec 10/2 = 5.
        sim = GridSimulator(
            one_site_grid, FixedSiteScheduler(), batch_interval=100.0, rng=0
        )
        res = sim.run(make_jobs([10.0]))
        rec = res.records[0]
        assert rec.first_start == 100.0
        assert rec.completion == 105.0
        assert rec.state is JobState.DONE
        assert rec.attempts == 1
        assert res.makespan == 105.0

    def test_two_jobs_serialize_on_one_site(self, one_site_grid):
        sim = GridSimulator(
            one_site_grid, FixedSiteScheduler(), batch_interval=10.0, rng=0
        )
        res = sim.run(make_jobs([4.0, 4.0]))
        c = sorted(r.completion for r in res.records)
        assert c == [12.0, 14.0]  # start 10, each runs 2s back-to-back

    def test_busy_time_accounts_execution(self, one_site_grid):
        sim = GridSimulator(
            one_site_grid, FixedSiteScheduler(), batch_interval=10.0, rng=0
        )
        res = sim.run(make_jobs([4.0, 6.0]))
        assert res.busy_time[0] == pytest.approx(5.0)  # (4+6)/2

    def test_late_arrival_waits_for_next_tick(self, one_site_grid):
        jobs = make_jobs([2.0, 2.0], arrivals=[0.0, 50.0])
        sim = GridSimulator(
            one_site_grid, FixedSiteScheduler(), batch_interval=20.0, rng=0
        )
        res = sim.run(jobs)
        # First job scheduled at t=20; second arrives at 50, tick at 70.
        assert res.records[0].first_start == 20.0
        assert res.records[1].first_start == 70.0

    def test_batch_accumulation(self, one_site_grid):
        """Jobs arriving within one interval are scheduled together."""
        sched = FixedSiteScheduler()
        jobs = make_jobs([2.0, 2.0, 2.0], arrivals=[0.0, 1.0, 2.0])
        GridSimulator(
            one_site_grid, sched, batch_interval=100.0, rng=0
        ).run(jobs)
        assert len(sched.batches) == 1
        assert sched.batches[0].n_jobs == 3

    def test_empty_workload_rejected(self, one_site_grid):
        sim = GridSimulator(one_site_grid, FixedSiteScheduler(), rng=0)
        with pytest.raises(ValueError, match="empty workload"):
            sim.run([])

    def test_duplicate_ids_rejected(self, one_site_grid):
        jobs = [Job(0, 0.0, 1.0, 0.5), Job(0, 0.0, 1.0, 0.5)]
        sim = GridSimulator(one_site_grid, FixedSiteScheduler(), rng=0)
        with pytest.raises(ValueError, match="duplicate"):
            sim.run(jobs)

    def test_scheduler_wrong_shape_rejected(self, one_site_grid):
        class Bad:
            name = "bad"

            def schedule(self, batch):
                return ScheduleResult.from_assignment(np.array([0, 0]))

        sim = GridSimulator(one_site_grid, Bad(), rng=0)
        with pytest.raises(ValueError, match="shape"):
            sim.run(make_jobs([1.0]))

    def test_scheduler_out_of_range_site_rejected(self, one_site_grid):
        class Bad:
            name = "bad"

            def schedule(self, batch):
                return ScheduleResult.from_assignment(
                    np.full(batch.n_jobs, 5)
                )

        sim = GridSimulator(one_site_grid, Bad(), rng=0)
        with pytest.raises(ValueError, match="site index"):
            sim.run(make_jobs([1.0]))

    def test_order_referencing_unassigned_job_rejected(self):
        """Regression: an order entry pointing at an unassigned job
        used to dispatch its -1 site index, which numpy resolved to
        the *last* site.  The engine must reject it instead."""
        from types import SimpleNamespace

        class Bad:
            # Duck-typed result bypasses ScheduleResult's own checks —
            # exactly what a buggy third-party scheduler would do.
            name = "bad"

            def schedule(self, batch):
                assignment = np.full(batch.n_jobs, -1, dtype=int)
                assignment[0] = 0
                return SimpleNamespace(
                    assignment=assignment,
                    order=np.arange(batch.n_jobs),  # includes unassigned
                )

        grid = Grid.from_arrays([2.0, 1.0], [0.95, 0.9])
        sim = GridSimulator(grid, Bad(), rng=0)
        with pytest.raises(ValueError, match="permutation of the assigned"):
            sim.run(make_jobs([1.0, 1.0]))

    def test_order_with_duplicates_rejected(self, one_site_grid):
        from types import SimpleNamespace

        class Bad:
            name = "bad"

            def schedule(self, batch):
                return SimpleNamespace(
                    assignment=np.zeros(batch.n_jobs, dtype=int),
                    order=np.zeros(batch.n_jobs, dtype=int),  # job 0 repeated
                )

        sim = GridSimulator(one_site_grid, Bad(), rng=0)
        with pytest.raises(ValueError, match="permutation of the assigned"):
            sim.run(make_jobs([1.0, 1.0]))

    def test_order_omitting_assigned_job_rejected(self, one_site_grid):
        from types import SimpleNamespace

        class Bad:
            name = "bad"

            def schedule(self, batch):
                return SimpleNamespace(
                    assignment=np.zeros(batch.n_jobs, dtype=int),
                    order=np.arange(batch.n_jobs - 1),  # last job stranded
                )

        sim = GridSimulator(one_site_grid, Bad(), rng=0)
        with pytest.raises(ValueError, match="permutation of the assigned"):
            sim.run(make_jobs([1.0, 1.0]))

    def test_assignment_below_minus_one_rejected(self, one_site_grid):
        from types import SimpleNamespace

        class Bad:
            name = "bad"

            def schedule(self, batch):
                return SimpleNamespace(
                    assignment=np.full(batch.n_jobs, -2, dtype=int),
                    order=np.empty(0, dtype=int),
                )

        sim = GridSimulator(one_site_grid, Bad(), rng=0)
        with pytest.raises(ValueError, match="below -1"):
            sim.run(make_jobs([1.0]))

    def test_constructor_validation(self, one_site_grid):
        with pytest.raises(TypeError, match="schedule"):
            GridSimulator(one_site_grid, object())
        with pytest.raises(ValueError, match="failure_point"):
            GridSimulator(
                one_site_grid, FixedSiteScheduler(), failure_point="mid"
            )
        with pytest.raises(ValueError, match="fallback"):
            GridSimulator(
                one_site_grid, FixedSiteScheduler(), fallback="ignore"
            )
        with pytest.raises(ValueError):
            GridSimulator(
                one_site_grid, FixedSiteScheduler(), batch_interval=0.0
            )


class TestFailureHandling:
    @pytest.fixture
    def risky_grid(self):
        # Site 0 is insecure and fast; site 1 is safe and slow.
        return Grid.from_arrays([4.0, 1.0], [0.1, 0.99])

    def test_doomed_job_fails_and_retries_secure(self, risky_grid):
        # SD=0.9 on SL=0.1 with huge lambda -> failure certain.
        # Min-Min risky prefers the fast insecure site (ETC 1s vs 4s);
        # the attempt is doomed, and the secure-only retry must land
        # on the safe site.
        jobs = make_jobs([4.0], sds=[0.9])
        sim = GridSimulator(
            risky_grid,
            MinMinScheduler("risky", lam=1000.0),
            batch_interval=10.0,
            lam=1000.0,
            rng=3,
        )
        res = sim.run(jobs)
        rec = res.records[0]
        assert rec.ever_failed and rec.took_risk
        assert rec.attempts >= 2
        assert rec.sites_visited[-1] == 1  # retried on the safe site
        assert rec.state is JobState.DONE

    def test_secure_placement_never_fails(self, risky_grid):
        jobs = make_jobs([4.0] * 20, sds=[0.9] * 20)
        sim = GridSimulator(
            risky_grid,
            FixedSiteScheduler(site=1),
            batch_interval=10.0,
            lam=1000.0,
            rng=5,
        )
        res = sim.run(jobs)
        assert all(not r.ever_failed for r in res.records)
        assert all(not r.took_risk for r in res.records)
        assert all(r.attempts == 1 for r in res.records)

    def test_failure_point_end_charges_full_time(self, risky_grid):
        jobs = make_jobs([4.0], sds=[0.9])
        sim = GridSimulator(
            risky_grid,
            MinMinScheduler("risky", lam=1000.0),
            batch_interval=10.0,
            lam=1000.0,
            failure_point="end",
            rng=1,
        )
        res = sim.run(jobs)
        rec = res.records[0]
        if rec.ever_failed and rec.sites_visited[0] == 0:
            # failed attempt occupied site 0 for the full 1.0 s
            assert res.busy_time[0] == pytest.approx(1.0)

    def test_nfail_bounded_by_nrisk(self):
        grid = Grid.from_arrays([1.0, 1.0, 2.0], [0.3, 0.6, 0.95])
        jobs = make_jobs(
            [5.0] * 60,
            arrivals=np.linspace(0, 500, 60),
            sds=np.linspace(0.6, 0.9, 60),
        )
        sim = GridSimulator(
            grid, MinMinScheduler("risky"), batch_interval=50.0, rng=11
        )
        res = sim.run(jobs)
        n_risk = sum(r.took_risk for r in res.records)
        n_fail = sum(r.ever_failed for r in res.records)
        assert 0 < n_fail <= n_risk

    def test_failed_jobs_only_retry_on_safe_sites(self):
        grid = Grid.from_arrays([1.0, 1.0, 2.0], [0.3, 0.6, 0.95])
        jobs = make_jobs(
            [5.0] * 60,
            arrivals=np.linspace(0, 500, 60),
            sds=[0.9] * 60,
        )
        sim = GridSimulator(
            grid, MinMinScheduler("risky"), batch_interval=50.0, rng=2
        )
        res = sim.run(jobs)
        for rec in res.records:
            if rec.ever_failed:
                # every visit after the first failure must be site 2
                assert rec.sites_visited[-1] == 2
                assert rec.attempts == len(rec.sites_visited)


class TestFallback:
    def test_force_max_sl(self):
        # No site can satisfy SD=0.9 under secure mode.
        grid = Grid.from_arrays([1.0, 2.0], [0.4, 0.6])
        jobs = make_jobs([2.0], sds=[0.9])
        sim = GridSimulator(
            grid,
            MinMinScheduler("secure"),
            batch_interval=10.0,
            fallback="force_max_sl",
            rng=0,
        )
        res = sim.run(jobs)
        rec = res.records[0]
        assert rec.forced
        assert rec.sites_visited[0] == 1  # the max-SL site
        assert res.n_forced == 1

    def test_error_fallback_raises(self):
        grid = Grid.from_arrays([1.0], [0.4])
        jobs = make_jobs([2.0], sds=[0.9])
        sim = GridSimulator(
            grid,
            MinMinScheduler("secure"),
            batch_interval=10.0,
            fallback="error",
            rng=0,
        )
        with pytest.raises(SchedulerDeadlock):
            sim.run(jobs)

    def test_feasible_jobs_proceed_while_infeasible_deferred(self):
        grid = Grid.from_arrays([1.0, 2.0], [0.4, 0.7])
        jobs = make_jobs([2.0, 2.0], sds=[0.65, 0.9])
        sim = GridSimulator(
            grid, MinMinScheduler("secure"), batch_interval=10.0, rng=0
        )
        res = sim.run(jobs)
        assert not res.records[0].forced
        assert res.records[1].forced


class TestDeterminism:
    def test_same_seed_identical(self, small_grid):
        jobs = make_jobs(
            [5.0] * 30,
            arrivals=np.linspace(0, 300, 30),
            sds=np.linspace(0.6, 0.9, 30),
        )
        outs = []
        for _ in range(2):
            sim = GridSimulator(
                small_grid,
                MinMinScheduler("risky"),
                batch_interval=50.0,
                rng=42,
            )
            res = sim.run(list(jobs))
            outs.append([r.completion for r in res.records])
        assert outs[0] == outs[1]

    def test_different_seed_differs(self, small_grid):
        jobs = make_jobs(
            [5.0] * 30,
            arrivals=np.linspace(0, 300, 30),
            sds=[0.9] * 30,
        )
        outs = []
        for seed in (1, 2):
            sim = GridSimulator(
                small_grid,
                MinMinScheduler("risky"),
                batch_interval=50.0,
                rng=seed,
            )
            res = sim.run(list(jobs))
            outs.append(tuple(r.completion for r in res.records))
        assert outs[0] != outs[1]


class TestResultInvariants:
    def test_full_run_invariants(self, small_grid):
        jobs = make_jobs(
            np.linspace(1, 30, 40),
            arrivals=np.linspace(0, 400, 40),
            sds=np.linspace(0.6, 0.9, 40),
        )
        sim = GridSimulator(
            small_grid, MinMinScheduler("f-risky", f=0.5),
            batch_interval=50.0, rng=7,
        )
        res = sim.run(jobs)
        comp, arr, starts = (
            res.completions(),
            res.arrivals(),
            res.first_starts(),
        )
        assert (comp >= starts).all()
        assert (starts >= arr).all()
        assert res.makespan == comp.max()
        assert (res.busy_time <= res.makespan + 1e-9).all()
        assert res.scheduler_seconds > 0
        assert res.n_batches == len(res.batch_sizes)
        assert sum(res.batch_sizes) >= len(jobs)
