"""Tests for repro.grid.security — Eq. 1 and the risk modes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grid.security import (
    RiskMode,
    eligibility_matrix,
    eligible_sites,
    failure_probability,
    max_tolerable_gap,
    risk_tolerance,
)


class TestFailureProbability:
    def test_safe_site_never_fails(self):
        assert failure_probability(0.6, 0.6) == 0.0
        assert failure_probability(0.6, 0.9) == 0.0

    def test_eq1_value(self):
        # P = 1 - exp(-lam * gap)
        p = failure_probability(0.9, 0.4, lam=3.0)
        assert p == pytest.approx(1 - np.exp(-1.5))

    def test_monotone_in_gap(self):
        gaps = np.linspace(0, 0.5, 20)
        ps = failure_probability(0.5 + gaps, 0.5)
        assert (np.diff(ps) > 0).all()

    def test_monotone_in_lambda(self):
        assert failure_probability(0.9, 0.5, lam=6.0) > failure_probability(
            0.9, 0.5, lam=1.0
        )

    def test_broadcasting(self):
        sd = np.array([[0.6], [0.9]])
        sl = np.array([0.5, 0.7, 1.0])
        out = failure_probability(sd, sl)
        assert out.shape == (2, 3)
        assert out[0, 2] == 0.0

    def test_lambda_validated(self):
        with pytest.raises(ValueError):
            failure_probability(0.9, 0.5, lam=0.0)

    @given(
        sd=st.floats(0.0, 1.0),
        sl=st.floats(0.0, 1.0),
        lam=st.floats(0.1, 50.0),
    )
    def test_probability_bounds_property(self, sd, sl, lam):
        p = failure_probability(sd, sl, lam=lam)
        # mathematically p < 1, but 1-exp(-x) rounds to 1.0 in float
        # for large lam*(sd-sl), so the closed upper bound is correct
        assert 0.0 <= p <= 1.0


class TestTolerance:
    def test_modes(self):
        assert risk_tolerance(RiskMode.SECURE) == 0.0
        assert risk_tolerance(RiskMode.RISKY) == 1.0
        assert risk_tolerance(RiskMode.F_RISKY, 0.3) == 0.3

    def test_string_parse(self):
        assert RiskMode.parse("secure") is RiskMode.SECURE
        assert RiskMode.parse("f-risky") is RiskMode.F_RISKY
        with pytest.raises(ValueError, match="unknown risk mode"):
            RiskMode.parse("bogus")

    def test_max_tolerable_gap_inverse_of_eq1(self):
        f = 0.5
        gap = max_tolerable_gap(f, lam=3.0)
        assert failure_probability(0.5 + gap, 0.5, lam=3.0) == pytest.approx(f)

    def test_gap_infinite_at_f1(self):
        assert max_tolerable_gap(1.0) == np.inf

    def test_gap_zero_at_f0(self):
        assert max_tolerable_gap(0.0) == 0.0


class TestEligibility:
    def test_secure_requires_sd_le_sl(self):
        elig = eligibility_matrix([0.6, 0.9], [0.5, 0.7, 0.95], mode="secure")
        expected = np.array([[False, True, True], [False, False, True]])
        np.testing.assert_array_equal(elig, expected)

    def test_risky_allows_all(self):
        elig = eligibility_matrix([0.9], [0.1, 0.5], mode="risky")
        assert elig.all()

    def test_f_risky_between_secure_and_risky(self):
        sd = np.linspace(0.6, 0.9, 8)
        sl = np.linspace(0.4, 1.0, 6)
        sec = eligibility_matrix(sd, sl, mode="secure")
        fr = eligibility_matrix(sd, sl, mode="f-risky", f=0.5)
        ris = eligibility_matrix(sd, sl, mode="risky")
        assert (sec <= fr).all() and (fr <= ris).all()

    def test_f_risky_threshold_exact(self):
        # gap exactly at the tolerance boundary stays eligible
        lam, f = 3.0, 0.5
        gap = max_tolerable_gap(f, lam=lam)
        elig = eligibility_matrix(
            [0.5 + gap], [0.5], mode="f-risky", f=f, lam=lam
        )
        assert elig[0, 0]

    def test_secure_only_overrides_risky(self):
        elig = eligibility_matrix(
            [0.9, 0.9],
            [0.5, 0.95],
            mode="risky",
            secure_only=[True, False],
        )
        np.testing.assert_array_equal(
            elig, [[False, True], [True, True]]
        )

    def test_eligible_sites_helper(self):
        sites = eligible_sites(0.8, [0.5, 0.85, 0.9], mode="secure")
        np.testing.assert_array_equal(sites, [1, 2])

    @given(f=st.floats(0.0, 1.0))
    def test_f_monotone_property(self, f):
        """Larger f can only widen eligibility."""
        sd = np.array([0.6, 0.75, 0.9])
        sl = np.array([0.4, 0.6, 0.8, 1.0])
        small = eligibility_matrix(sd, sl, mode="f-risky", f=min(f, 0.3))
        large = eligibility_matrix(sd, sl, mode="f-risky", f=max(f, 0.3))
        assert (small <= large).all()
