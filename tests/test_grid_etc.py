"""Tests for repro.grid.etc."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.grid.etc import completion_matrix, etc_matrix, masked_completion


class TestEtcMatrix:
    def test_values(self):
        etc = etc_matrix([10.0, 20.0], [1.0, 2.0, 5.0])
        np.testing.assert_allclose(
            etc, [[10.0, 5.0, 2.0], [20.0, 10.0, 4.0]]
        )

    def test_negative_workload_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            etc_matrix([-1.0], [1.0])

    def test_zero_speed_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            etc_matrix([1.0], [0.0])

    def test_2d_workloads_rejected(self):
        with pytest.raises(ValueError):
            etc_matrix(np.ones((2, 2)), [1.0])

    @given(
        w=arrays(float, st.integers(1, 8),
                 elements=st.floats(0.1, 1e6)),
        v=arrays(float, st.integers(1, 6),
                 elements=st.floats(0.1, 1e3)),
    )
    def test_shape_and_positivity_property(self, w, v):
        etc = etc_matrix(w, v)
        assert etc.shape == (w.size, v.size)
        assert (etc > 0).all()
        # faster site => smaller time, row-wise
        order = np.argsort(v)
        sorted_etc = etc[:, order]
        assert (np.diff(sorted_etc, axis=1) <= 1e-9).all()


class TestCompletionMatrix:
    def test_adds_ready(self):
        etc = np.array([[1.0, 2.0]])
        comp = completion_matrix(etc, ready=[5.0, 0.0], now=3.0)
        np.testing.assert_allclose(comp, [[6.0, 5.0]])

    def test_now_clips_past_ready(self):
        comp = completion_matrix(np.array([[1.0]]), ready=[0.0], now=10.0)
        assert comp[0, 0] == 11.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            completion_matrix(np.ones((2, 3)), ready=[0.0, 0.0])


class TestMaskedCompletion:
    def test_ineligible_is_inf(self):
        comp = np.array([[1.0, 2.0]])
        elig = np.array([[True, False]])
        out = masked_completion(comp, elig)
        assert out[0, 0] == 1.0 and np.isinf(out[0, 1])

    def test_original_untouched(self):
        comp = np.array([[1.0, 2.0]])
        masked_completion(comp, np.array([[False, False]]))
        assert np.isfinite(comp).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            masked_completion(np.ones((1, 2)), np.ones((2, 1), dtype=bool))
