"""Tests for repro.experiments.store — the persistent run store.

Real sweeps here reuse the tiny tier-1 configuration of
``test_experiments_sweep`` (2 seeds, no STGA, sequential fallback);
verdict logic is additionally exercised on hand-built synthetic runs
so shifted/overlapping cases are deterministic.
"""

import json

import numpy as np
import pytest

from repro.core.ga import GAConfig
from repro.experiments.config import RunSettings
from repro.experiments.store import (
    SCHEMA_VERSION,
    StoredRun,
    compare_runs,
    list_runs,
    load_run,
    new_run_dir,
    save_run,
    save_run_to_registry,
)
from repro.experiments.sweep import (
    ScenarioVariant,
    SweepResult,
    run_sweep,
)
from repro.metrics.compare import RunDiffRow, render_run_diff
from repro.metrics.report import PerformanceReport

TINY = RunSettings(
    ga=GAConfig(population_size=16, generations=4, flow_weight=1.0)
)


@pytest.fixture(scope="module")
def sweep_result():
    return run_sweep(
        [
            ScenarioVariant(name="psa-small", n_jobs=60, n_training_jobs=0),
            ScenarioVariant(
                name="nas-6",
                workload="nas",
                n_jobs=60,
                n_sites=6,
                n_training_jobs=0,
                ga_overrides={"generations": 2},
            ),
        ],
        (1, 2),
        settings=TINY,
        scale=0.1,
        include_stga=False,
        max_workers=1,
    )


def make_report(scheduler="S", makespan=100.0, **overrides) -> PerformanceReport:
    kwargs = dict(
        scheduler=scheduler,
        n_jobs=10,
        makespan=makespan,
        avg_response_time=makespan / 2,
        avg_service_span=makespan / 4,
        slowdown_ratio=2.0,
        n_risk=3,
        n_fail=1,
        n_forced=0,
        total_attempts=11,
        site_utilization=np.array([50.0, 75.0]),
        scheduler_seconds=0.01,
        n_batches=2,
    )
    kwargs.update(overrides)
    return PerformanceReport(**kwargs)


def synthetic_run(makespans_per_seed, name="v") -> SweepResult:
    """One-variant one-scheduler run with the given per-seed makespans."""
    seeds = tuple(range(len(makespans_per_seed)))
    return SweepResult(
        variants=(ScenarioVariant(name=name, n_jobs=100),),
        seeds=seeds,
        reports={
            name: {
                "S": tuple(make_report(makespan=m) for m in makespans_per_seed)
            }
        },
    )


class TestSaveLoadRoundTrip:
    def test_round_trip_is_bit_identical(self, sweep_result, tmp_path):
        run_dir = save_run(sweep_result, tmp_path / "demo")
        stored = load_run(run_dir)
        # dataclass equality covers every report field exactly
        # (PerformanceReport.__eq__ is array-aware)
        assert stored.result == sweep_result
        # the acceptance check: reloaded summary grids, bit for bit
        for metric in ("makespan", "avg_response_time", "n_fail"):
            assert (
                stored.result.summary_grid(metric)
                == sweep_result.summary_grid(metric)
            )

    def test_provenance_recorded(self, sweep_result, tmp_path):
        stored = load_run(save_run(sweep_result, tmp_path / "demo", name="nightly"))
        assert stored.name == "nightly"
        assert stored.schema_version == SCHEMA_VERSION
        assert stored.created_at  # ISO wall-clock
        assert stored.git_sha is None or len(stored.git_sha) == 40
        assert stored.result.scale == sweep_result.scale
        assert stored.result.settings == TINY
        assert stored.result.elapsed_seconds is not None
        assert "2 variant(s) x 2 seed(s)" in str(stored)

    def test_variant_provenance_round_trips(self, sweep_result, tmp_path):
        stored = load_run(save_run(sweep_result, tmp_path / "demo"))
        assert stored.result.variants == sweep_result.variants
        nas = stored.result.variants[1]
        assert nas.n_sites == 6
        # ga_overrides is normalized to sorted (field, value) pairs
        assert nas.ga_overrides == (("generations", 2),)

    def test_grid_csv_written(self, sweep_result, tmp_path):
        run_dir = save_run(sweep_result, tmp_path / "demo")
        lines = (run_dir / "grid.csv").read_text().strip().splitlines()
        header = lines[0].split(",")
        assert header[:3] == ["variant", "scheduler", "seed"]
        assert "makespan" in header and "mean_utilization" in header
        n_cells = (
            len(sweep_result.variants)
            * len(sweep_result.schedulers())
            * len(sweep_result.seeds)
        )
        assert len(lines) == 1 + n_cells

    def test_refuses_overwrite_by_default(self, sweep_result, tmp_path):
        save_run(sweep_result, tmp_path / "demo")
        with pytest.raises(FileExistsError, match="overwrite"):
            save_run(sweep_result, tmp_path / "demo")
        save_run(sweep_result, tmp_path / "demo", overwrite=True)

    def test_manifest_provenance_round_trips(self, sweep_result, tmp_path):
        stored = load_run(save_run(
            sweep_result,
            tmp_path / "resumed",
            manifest={"path": "work/manifest.json", "spec_sha256": "ab" * 32},
        ))
        assert stored.manifest == {
            "path": "work/manifest.json",
            "spec_sha256": "ab" * 32,
        }
        # a directly-saved record carries no manifest key at all
        plain = save_run(sweep_result, tmp_path / "plain")
        payload = json.loads((plain / "run.json").read_text())
        assert "manifest" not in payload
        assert load_run(plain).manifest is None

    def test_manifest_provenance_rejects_unknown_keys(
        self, sweep_result, tmp_path
    ):
        with pytest.raises(ValueError, match="path/spec_sha256"):
            save_run(
                sweep_result,
                tmp_path / "bad",
                manifest={"path": "x", "oops": "y"},
            )

    def test_load_missing_and_bad_version(self, sweep_result, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(tmp_path / "nope")
        run_dir = save_run(sweep_result, tmp_path / "demo")
        record = run_dir / "run.json"
        payload = json.loads(record.read_text())
        payload["schema_version"] = 999
        record.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema_version"):
            load_run(run_dir)


class TestRegistry:
    def test_new_run_dir_layout(self, tmp_path):
        path = new_run_dir(tmp_path, "baseline")
        assert path.parent == tmp_path
        assert path.name.endswith("-baseline")
        assert path.name[:8].isdigit()  # YYYYMMDD

    def test_registry_same_second_saves_get_distinct_dirs(
        self, sweep_result, tmp_path
    ):
        # the timestamp has seconds resolution; back-to-back saves
        # must uniquify instead of tripping the overwrite guard
        a = save_run_to_registry(sweep_result, tmp_path, name="x")
        b = save_run_to_registry(sweep_result, tmp_path, name="x")
        c = save_run_to_registry(sweep_result, tmp_path, name="x")
        assert len({a, b, c}) == 3
        assert len(list_runs(tmp_path)) == 3

    def test_list_runs(self, sweep_result, tmp_path):
        assert list_runs(tmp_path / "empty") == []
        save_run_to_registry(sweep_result, tmp_path, name="a")
        save_run(sweep_result, tmp_path / "explicit", name="b")
        (tmp_path / "not-a-run").mkdir()  # ignored: no run.json
        runs = list_runs(tmp_path)
        assert [type(r) for r in runs] == [StoredRun, StoredRun]
        assert sorted(r.name for r in runs) == ["a", "b"]
        assert [r.created_at for r in runs] == sorted(
            r.created_at for r in runs
        )

    def test_list_runs_skips_and_reports_bad_records(
        self, sweep_result, tmp_path
    ):
        # one corrupt record must not make the whole registry
        # unlistable; casualties surface through the side-channel
        save_run(sweep_result, tmp_path / "good", name="good")
        truncated = save_run(sweep_result, tmp_path / "truncated")
        record = truncated / "run.json"
        record.write_text(record.read_text()[:25])
        wrong = save_run(sweep_result, tmp_path / "wrong-schema")
        payload = json.loads((wrong / "run.json").read_text())
        payload["schema_version"] = 999
        (wrong / "run.json").write_text(json.dumps(payload))

        skipped: list = []
        runs = list_runs(tmp_path, skipped=skipped)
        assert [r.name for r in runs] == ["good"]
        assert sorted(path.name for path, _ in skipped) == [
            "truncated",
            "wrong-schema",
        ]
        reasons = {path.name: reason for path, reason in skipped}
        assert "corrupted or truncated" in reasons["truncated"]
        assert "schema_version" in reasons["wrong-schema"]
        # without the side-channel the scan still survives
        assert [r.name for r in list_runs(tmp_path)] == ["good"]


class TestCompareRuns:
    def test_self_compare_all_same_zero_shift(self, sweep_result, tmp_path):
        run_dir = save_run(sweep_result, tmp_path / "demo")
        rows = compare_runs(run_dir, run_dir)
        assert rows  # every (variant, scheduler, metric) cell present
        assert all(r.verdict == "same" for r in rows)
        assert all(r.mean_shift == 0.0 for r in rows)
        assert all(r.shift_pct in (0.0,) or np.isnan(r.shift_pct) for r in rows)

    def test_accepts_results_stored_runs_and_paths(self, sweep_result, tmp_path):
        run_dir = save_run(sweep_result, tmp_path / "demo")
        stored = load_run(run_dir)
        for b in (sweep_result, stored, run_dir, str(run_dir)):
            rows = compare_runs(sweep_result, b)
            assert all(r.verdict == "same" for r in rows)

    def test_overlapping_shift_within_ci(self):
        a = synthetic_run((100.0, 110.0, 120.0))
        b = synthetic_run((102.0, 112.0, 122.0))  # +2 on a ±25 CI
        row = next(
            r for r in compare_runs(a, b) if r.metric == "makespan"
        )
        assert row.verdict == "overlap"
        assert row.mean_shift == pytest.approx(2.0)
        assert row.shift_pct == pytest.approx(2.0 / 110.0 * 100.0)

    def test_diverged_when_cis_disjoint(self):
        a = synthetic_run((100.0, 101.0, 102.0))
        b = synthetic_run((200.0, 201.0, 202.0))
        row = next(
            r for r in compare_runs(a, b) if r.metric == "makespan"
        )
        assert row.verdict == "diverged"
        assert row.mean_shift == pytest.approx(100.0)

    def test_single_seed_edge_cases(self):
        # n = 1 on both sides: zero-width CIs, so any difference is
        # a divergence and equality is "same"
        same = compare_runs(synthetic_run((5.0,)), synthetic_run((5.0,)))
        assert all(r.verdict == "same" for r in same)
        diff = next(
            r
            for r in compare_runs(synthetic_run((5.0,)), synthetic_run((6.0,)))
            if r.metric == "makespan"
        )
        assert diff.verdict == "diverged"
        assert diff.n_a == diff.n_b == 1 and diff.ci_a == diff.ci_b == 0.0

    def test_disjoint_runs_raise(self):
        a = synthetic_run((1.0,), name="left")
        b = synthetic_run((1.0,), name="right")
        with pytest.raises(ValueError, match="share no"):
            compare_runs(a, b)

    def test_render_run_diff(self):
        rows = compare_runs(
            synthetic_run((100.0, 110.0)), synthetic_run((100.0, 110.0))
        )
        out = render_run_diff(rows, title="self diff")
        assert "self diff" in out
        assert "same" in out and "±" in out
        assert isinstance(rows[0], RunDiffRow)
