"""Tests for repro.metrics.compare (Table 2 machinery)."""

import numpy as np
import pytest

from repro.metrics.compare import (
    compare_ensemble,
    compare_to_reference,
    render_comparison,
    render_ensemble_comparison,
)
from repro.metrics.report import PerformanceReport


def report(name, makespan, response):
    return PerformanceReport(
        scheduler=name,
        n_jobs=100,
        makespan=makespan,
        avg_response_time=response,
        avg_service_span=response / 2,
        slowdown_ratio=2.0,
        n_risk=10,
        n_fail=2,
        n_forced=0,
        total_attempts=102,
        site_utilization=np.full(4, 50.0),
        scheduler_seconds=0.1,
        n_batches=10,
    )


class TestCompare:
    def test_reference_is_unit(self):
        reps = [report("STGA", 100.0, 10.0), report("A", 130.0, 20.0)]
        rows = compare_to_reference(reps, "STGA")
        stga = next(r for r in rows if r.scheduler == "STGA")
        assert stga.alpha == 1.0 and stga.beta == 1.0
        assert stga.rank == 1

    def test_ratios(self):
        reps = [report("STGA", 100.0, 10.0), report("A", 130.0, 20.0)]
        a = next(
            r for r in compare_to_reference(reps) if r.scheduler == "A"
        )
        assert a.alpha == pytest.approx(1.3)
        assert a.beta == pytest.approx(2.0)

    def test_ranking_dense_with_ties(self):
        reps = [
            report("STGA", 100.0, 10.0),
            report("R1", 109.0, 12.6),
            report("R2", 110.0, 12.7),  # within tolerance of R1
            report("S1", 131.0, 20.0),
        ]
        rows = {r.scheduler: r.rank for r in compare_to_reference(reps)}
        assert rows["STGA"] == 1
        assert rows["R1"] == rows["R2"] == 2
        assert rows["S1"] == 3

    def test_missing_reference_raises(self):
        with pytest.raises(KeyError, match="reference"):
            compare_to_reference([report("A", 1.0, 1.0)], "STGA")

    def test_rank_labels(self):
        reps = [
            report("STGA", 100.0, 10.0),
            report("A", 150.0, 20.0),
            report("B", 200.0, 30.0),
            report("C", 300.0, 40.0),
        ]
        labels = {
            r.scheduler: r.rank_label for r in compare_to_reference(reps)
        }
        assert labels["STGA"] == "1st"
        assert labels["A"] == "2nd"
        assert labels["B"] == "3rd"
        assert labels["C"] == "4th"

    def test_render(self):
        reps = [report("STGA", 100.0, 10.0), report("A", 130.0, 20.0)]
        out = render_comparison(compare_to_reference(reps))
        assert "alpha" in out and "STGA" in out and "1st" in out


class TestCompareEnsemble:
    def test_mean_and_std_across_seeds(self):
        per_seed = [
            [report("STGA", 100.0, 10.0), report("A", 120.0, 20.0)],
            [report("STGA", 100.0, 10.0), report("A", 140.0, 30.0)],
        ]
        rows = {r.scheduler: r for r in compare_ensemble(per_seed)}
        a = rows["A"]
        assert a.n_seeds == 2
        assert a.alpha_mean == pytest.approx(np.mean([1.2, 1.4]))
        assert a.alpha_std == pytest.approx(np.std([1.2, 1.4], ddof=1))
        assert a.beta_mean == pytest.approx(np.mean([2.0, 3.0]))
        stga = rows["STGA"]
        assert stga.alpha_mean == 1.0 and stga.alpha_std == 0.0
        assert stga.rank == 1 and a.rank == 2

    def test_single_seed_zero_std(self):
        rows = compare_ensemble(
            [[report("STGA", 100.0, 10.0), report("A", 130.0, 20.0)]]
        )
        assert all(r.alpha_std == 0.0 and r.beta_std == 0.0 for r in rows)

    def test_mismatched_lineups_rejected(self):
        per_seed = [
            [report("STGA", 100.0, 10.0), report("A", 130.0, 20.0)],
            [report("STGA", 100.0, 10.0), report("B", 130.0, 20.0)],
        ]
        with pytest.raises(ValueError, match="lineup"):
            compare_ensemble(per_seed)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="replication"):
            compare_ensemble([])

    def test_render(self):
        per_seed = [
            [report("STGA", 100.0, 10.0), report("A", 120.0, 20.0)],
            [report("STGA", 100.0, 10.0), report("A", 140.0, 30.0)],
        ]
        out = render_ensemble_comparison(compare_ensemble(per_seed))
        assert "±" in out and "2 seeds" in out and "STGA" in out
