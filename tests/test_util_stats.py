"""Tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    improvement_pct,
    is_concave_around,
    ratio,
    summarize,
    t_critical,
)


class TestTCritical:
    #: standard two-sided 95 % t-table, hand-copied (scipy-free)
    TABLE_95 = {
        1: 12.7062047,
        2: 4.3026527,
        4: 2.7764451,
        9: 2.2621572,
        10: 2.2281389,
        29: 2.0452296,
        100: 1.9839715,
    }

    @pytest.mark.parametrize("df,expected", sorted(TABLE_95.items()))
    def test_matches_t_table(self, df, expected):
        assert t_critical(df) == pytest.approx(expected, abs=5e-7)

    def test_large_df_approaches_normal(self):
        assert t_critical(10**6) == pytest.approx(1.959964, abs=1e-4)

    def test_other_confidence_levels(self):
        # 99 % two-sided at df = 9 (t-table: 3.2498355)
        assert t_critical(9, confidence=0.99) == pytest.approx(
            3.2498355, abs=5e-7
        )
        # 90 % two-sided at df = 4 (t-table: 2.1318468)
        assert t_critical(4, confidence=0.90) == pytest.approx(
            2.1318468, abs=5e-7
        )

    def test_monotone_decreasing_in_df(self):
        values = [t_critical(df) for df in (1, 2, 5, 10, 50, 500)]
        assert values == sorted(values, reverse=True)
        assert all(v > 1.959963 for v in values)

    def test_validation(self):
        with pytest.raises(ValueError, match="df"):
            t_critical(0)
        with pytest.raises(ValueError, match="confidence"):
            t_critical(5, confidence=1.0)
        with pytest.raises(ValueError, match="confidence"):
            t_critical(5, confidence=0.0)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.median == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_bounds_property(self, xs):
        s = summarize(xs)
        tol = 1e-9 * (1 + abs(s.maximum))  # float accumulation slack
        assert s.minimum <= s.median <= s.maximum
        assert s.minimum - tol <= s.mean <= s.maximum + tol


class TestRatios:
    def test_ratio(self):
        assert ratio(3.0, 2.0) == 1.5

    def test_ratio_zero_baseline(self):
        with pytest.raises(ZeroDivisionError):
            ratio(1.0, 0.0)

    def test_improvement_pct(self):
        # 80 is a 20% improvement over 100.
        assert improvement_pct(80.0, 100.0) == pytest.approx(20.0)

    def test_improvement_negative_when_worse(self):
        assert improvement_pct(110.0, 100.0) < 0

    def test_improvement_zero_reference(self):
        with pytest.raises(ZeroDivisionError):
            improvement_pct(1.0, 0.0)


class TestConcavity:
    def test_dip_detected(self):
        xs = [0, 0.25, 0.5, 0.75, 1.0]
        ys = [10, 8, 7, 8, 9.5]
        assert is_concave_around(xs, ys)

    def test_monotone_not_concave(self):
        xs = [0, 0.5, 1.0]
        ys = [10, 9, 8]
        assert not is_concave_around(xs, ys)

    def test_flat_not_concave(self):
        assert not is_concave_around([0, 0.5, 1], [5, 5, 5])

    def test_unsorted_x_handled(self):
        xs = [1.0, 0.0, 0.5]
        ys = [9.5, 10, 7]
        assert is_concave_around(xs, ys)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            is_concave_around([0, 1], [1, 2])
