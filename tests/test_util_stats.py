"""Tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    improvement_pct,
    is_concave_around,
    ratio,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.median == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_bounds_property(self, xs):
        s = summarize(xs)
        tol = 1e-9 * (1 + abs(s.maximum))  # float accumulation slack
        assert s.minimum <= s.median <= s.maximum
        assert s.minimum - tol <= s.mean <= s.maximum + tol


class TestRatios:
    def test_ratio(self):
        assert ratio(3.0, 2.0) == 1.5

    def test_ratio_zero_baseline(self):
        with pytest.raises(ZeroDivisionError):
            ratio(1.0, 0.0)

    def test_improvement_pct(self):
        # 80 is a 20% improvement over 100.
        assert improvement_pct(80.0, 100.0) == pytest.approx(20.0)

    def test_improvement_negative_when_worse(self):
        assert improvement_pct(110.0, 100.0) < 0

    def test_improvement_zero_reference(self):
        with pytest.raises(ZeroDivisionError):
            improvement_pct(1.0, 0.0)


class TestConcavity:
    def test_dip_detected(self):
        xs = [0, 0.25, 0.5, 0.75, 1.0]
        ys = [10, 8, 7, 8, 9.5]
        assert is_concave_around(xs, ys)

    def test_monotone_not_concave(self):
        xs = [0, 0.5, 1.0]
        ys = [10, 9, 8]
        assert not is_concave_around(xs, ys)

    def test_flat_not_concave(self):
        assert not is_concave_around([0, 0.5, 1], [5, 5, 5])

    def test_unsorted_x_handled(self):
        xs = [1.0, 0.0, 0.5]
        ys = [9.5, 10, 7]
        assert is_concave_around(xs, ys)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            is_concave_around([0, 1], [1, 2])
