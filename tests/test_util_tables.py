"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import format_number, render_table


class TestFormatNumber:
    def test_int(self):
        assert format_number(42) == "42"

    def test_bool(self):
        assert format_number(True) == "True"

    def test_float(self):
        assert format_number(3.14159) == "3.142"

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_large_scientific(self):
        assert "e" in format_number(1.6e6)

    def test_small_scientific(self):
        assert "e" in format_number(1.2e-5)

    def test_nan(self):
        assert format_number(float("nan")) == "nan"

    def test_string_passthrough(self):
        assert format_number("STGA") == "STGA"


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["name", "v"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0] and "v" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "22" in lines[3]

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="row 0"):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out

    def test_columns_aligned(self):
        out = render_table(["col"], [["x"], ["yyyy"]])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines padded to equal width
