"""Tests for repro.core.similarity — Eq. 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.similarity import (
    batch_similarity,
    population_similarity,
    vector_similarity,
)


class TestPopulationSimilarity:
    def test_matches_scalar_exactly(self):
        rng = np.random.default_rng(0)
        stack = rng.uniform(0, 100, size=(20, 7))
        vec = rng.uniform(0, 100, size=7)
        for normalized in (True, False):
            vectorized = population_similarity(
                stack, vec, normalized=normalized
            )
            scalar = [
                vector_similarity(row, vec, normalized=normalized)
                for row in stack
            ]
            # bit-identical, not approx: the kernel performs the same
            # operations in the same order as the scalar path
            assert vectorized.tolist() == scalar

    def test_identical_row_is_one(self):
        v = np.array([1.0, 2.0, 3.0])
        out = population_similarity(np.stack([v, 2 * v]), v)
        assert out[0] == 1.0 and out[1] < 1.0

    def test_all_zero_rows(self):
        zero = np.zeros(3)
        stack = np.stack([zero, np.array([0.0, 0.0, 1e-9])])
        out = population_similarity(np.vstack([stack[0:1], stack[0:1]]), zero)
        np.testing.assert_array_equal(out, [1.0, 1.0])
        # a zero query against a non-zero row uses the row's max
        out2 = population_similarity(stack, zero)
        assert out2[0] == 1.0 and out2[1] != 1.0

    def test_empty_stack_returns_empty(self):
        assert population_similarity(np.empty((0, 3)), [1.0, 2.0, 3.0]).size == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            population_similarity(np.ones(3), np.ones(3))
        with pytest.raises(ValueError, match="length"):
            population_similarity(np.ones((2, 3)), np.ones(4))
        with pytest.raises(ValueError, match="empty"):
            population_similarity(np.empty((2, 0)), np.empty(0))


class TestVectorSimilarity:
    def test_identical_is_one(self):
        assert vector_similarity([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_identical_zeros_is_one(self):
        assert vector_similarity([0.0, 0.0], [0.0, 0.0]) == 1.0

    def test_literal_formula(self):
        # paper form: 1 - sum|a-b| / max{max a, max b}
        a, b = [1.0, 3.0], [2.0, 5.0]
        lit = vector_similarity(a, b, normalized=False)
        assert lit == pytest.approx(1 - (1 + 2) / 5)

    def test_normalized_formula(self):
        a, b = [1.0, 3.0], [2.0, 5.0]
        norm = vector_similarity(a, b, normalized=True)
        assert norm == pytest.approx(1 - ((1 + 2) / 2) / 5)

    def test_normalized_ge_literal_for_k_gt_1(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([3.0, 2.0, 1.0])
        assert vector_similarity(a, b) >= vector_similarity(
            a, b, normalized=False
        )

    def test_symmetry(self):
        a, b = [1.0, 5.0, 2.0], [4.0, 1.0, 2.0]
        assert vector_similarity(a, b) == vector_similarity(b, a)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            vector_similarity([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            vector_similarity([], [])

    def test_matrix_inputs_flattened(self):
        a = np.ones((2, 2))
        assert vector_similarity(a, a) == 1.0

    @given(
        a=arrays(float, 5, elements=st.floats(0.0, 1e3)),
        b=arrays(float, 5, elements=st.floats(0.0, 1e3)),
    )
    @settings(max_examples=50)
    def test_upper_bound_property(self, a, b):
        sim = vector_similarity(a, b)
        assert sim <= 1.0 + 1e-12

    @given(a=arrays(float, 6, elements=st.floats(0.1, 1e3)))
    def test_self_similarity_property(self, a):
        assert vector_similarity(a, a) == 1.0


class TestBatchSimilarity:
    def _batch(self, scale=1.0):
        ready = np.array([1.0, 2.0]) * scale
        etc = np.array([[3.0, 4.0], [5.0, 6.0]]) * scale
        sd = np.array([0.6, 0.8])
        return ready, etc, sd

    def test_identical_batches(self):
        r, e, s = self._batch()
        assert batch_similarity(r, e, s, r, e, s) == 1.0

    def test_average_of_three(self):
        r1, e1, s1 = self._batch()
        r2 = r1 * 2
        sim = batch_similarity(r1, e1, s1, r2, e1, s1)
        expected = (vector_similarity(r1, r2) + 1.0 + 1.0) / 3
        assert sim == pytest.approx(expected)

    def test_shape_mismatch_rejected(self):
        r, e, s = self._batch()
        with pytest.raises(ValueError, match="ETC shapes"):
            batch_similarity(r, e, s, r, e[:1], s[:1])

    def test_similar_batches_score_high(self):
        r1, e1, s1 = self._batch()
        r2, e2, s2 = self._batch(scale=1.05)
        assert batch_similarity(r1, e1, s1, r2, e2, s2) > 0.9

    def test_dissimilar_batches_score_low(self):
        r1, e1, s1 = self._batch()
        r2, e2, _ = self._batch(scale=20.0)
        assert batch_similarity(r1, e1, s1, r2, e2, s1) < 0.8
