"""Tests for repro.core.operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chromosome import EligibleSites
from repro.core.operators import (
    apply_elitism,
    mutate,
    roulette_select,
    selection_weights,
    single_point_crossover,
)


class TestSelectionWeights:
    def test_better_fitness_higher_weight(self):
        w = selection_weights(np.array([1.0, 2.0, 3.0]))
        assert w[0] > w[1] > w[2]
        assert w.sum() == pytest.approx(1.0)

    def test_worst_keeps_nonzero_weight(self):
        w = selection_weights(np.array([1.0, 100.0]))
        assert w[1] > 0

    def test_uniform_when_all_equal(self):
        w = selection_weights(np.full(4, 7.0))
        np.testing.assert_allclose(w, 0.25)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            selection_weights(np.array([]))
        with pytest.raises(ValueError):
            selection_weights(np.array([1.0, np.inf]))
        with pytest.raises(ValueError):
            selection_weights(np.ones((2, 2)))

    @given(
        fits=st.lists(
            st.floats(1.0, 1e6, allow_nan=False), min_size=1, max_size=30
        )
    )
    def test_is_distribution_property(self, fits):
        w = selection_weights(np.array(fits))
        assert (w >= 0).all()
        assert w.sum() == pytest.approx(1.0)


class TestRouletteSelect:
    def test_shape_preserved(self, rng):
        pop = np.arange(12).reshape(6, 2)
        out = roulette_select(pop, np.arange(1.0, 7.0), rng)
        assert out.shape == pop.shape

    def test_strong_bias_to_best(self, rng):
        pop = np.array([[0], [1]])
        fit = np.array([1.0, 1000.0])
        out = roulette_select(np.repeat(pop, 1, axis=0), fit, rng)
        # With extreme fitness gap the best should dominate selection.
        picks = [roulette_select(pop, fit, rng)[:, 0] for _ in range(50)]
        frac_best = np.mean([np.mean(p == 0) for p in picks])
        assert frac_best > 0.8


class TestCrossover:
    def test_prob_zero_identity(self, rng):
        pop = np.arange(20).reshape(4, 5)
        out = single_point_crossover(pop, 0.0, rng)
        np.testing.assert_array_equal(out, pop)

    def test_gene_multiset_preserved_per_position(self, rng):
        """Crossover only exchanges genes between chromosomes at the
        same position — the per-column multiset is invariant."""
        pop = rng.integers(0, 5, size=(10, 8))
        out = single_point_crossover(pop, 1.0, rng)
        for col in range(8):
            assert sorted(out[:, col]) == sorted(pop[:, col])

    def test_pairs_swap_tails(self):
        rng = np.random.default_rng(0)
        pop = np.array([[1, 1, 1, 1], [2, 2, 2, 2]])
        out = single_point_crossover(pop, 1.0, rng)
        # some prefix stays, some suffix swapped
        assert (out[0] != pop[0]).any()
        joined = np.sort(np.concatenate([out[0], out[1]]))
        np.testing.assert_array_equal(joined, np.sort(pop.ravel()))

    def test_single_gene_chromosomes_unchanged(self, rng):
        pop = np.array([[1], [2]])
        out = single_point_crossover(pop, 1.0, rng)
        np.testing.assert_array_equal(np.sort(out.ravel()), [1, 2])

    def test_input_not_mutated(self, rng):
        pop = np.zeros((4, 4), dtype=int)
        before = pop.copy()
        single_point_crossover(pop, 1.0, rng)
        np.testing.assert_array_equal(pop, before)


class TestMutate:
    def _sites(self, b=6, s=4):
        return EligibleSites.from_mask(np.ones((b, s), dtype=bool))

    def test_prob_zero_identity(self, rng):
        pop = np.zeros((5, 6), dtype=int)
        out = mutate(pop, self._sites(), 0.0, rng)
        np.testing.assert_array_equal(out, pop)

    def test_prob_one_stays_eligible(self, rng):
        mask = np.zeros((6, 4), dtype=bool)
        mask[:, 2] = True  # only site 2 eligible
        sites = EligibleSites.from_mask(mask)
        pop = np.zeros((5, 6), dtype=int)
        out = mutate(pop, sites, 1.0, rng)
        assert (out == 2).all()

    def test_mutation_rate_roughly_respected(self, rng):
        pop = np.zeros((100, 50), dtype=int)
        out = mutate(pop, self._sites(50, 4), 0.1, rng)
        changed = (out != pop).mean()
        # genes resample uniformly over 4 sites: expect ~0.1*3/4
        assert 0.04 < changed < 0.12

    def test_input_not_mutated(self, rng):
        pop = np.zeros((3, 6), dtype=int)
        mutate(pop, self._sites(), 1.0, rng)
        assert (pop == 0).all()


class TestElitism:
    def test_elites_preserved(self):
        children = np.array([[0], [1], [2]])
        child_fit = np.array([5.0, 6.0, 7.0])
        elites = np.array([[9]])
        elite_fit = np.array([1.0])
        pop, fit = apply_elitism(children, child_fit, elites, elite_fit)
        assert 9 in pop[:, 0]
        assert fit.min() == 1.0

    def test_worst_replaced(self):
        children = np.array([[0], [1], [2]])
        child_fit = np.array([5.0, 9.0, 7.0])
        pop, fit = apply_elitism(
            children, child_fit, np.array([[8]]), np.array([1.0])
        )
        assert 1 not in pop[:, 0]  # the fitness-9 child was evicted

    def test_zero_elites_noop(self):
        children = np.array([[0]])
        child_fit = np.array([5.0])
        pop, fit = apply_elitism(
            children, child_fit, np.empty((0, 1), int), np.empty(0)
        )
        np.testing.assert_array_equal(pop, children)

    def test_inputs_not_mutated(self):
        children = np.array([[0], [1]])
        child_fit = np.array([5.0, 6.0])
        apply_elitism(children, child_fit, np.array([[7]]), np.array([1.0]))
        np.testing.assert_array_equal(children, [[0], [1]])
        np.testing.assert_array_equal(child_fit, [5.0, 6.0])


class TestBoundaryRates:
    """rate=0 and rate=1 boundaries, pinned for both backends."""

    def _sites(self, b=7, s=4, seed=3):
        rng = np.random.default_rng(seed)
        mask = rng.random((b, s)) < 0.6
        mask[np.arange(b), rng.integers(0, s, size=b)] = True
        return EligibleSites.from_mask(mask)

    def test_crossover_rate_zero_identity_both_backends(self, rng):
        from repro.core.operators import fast_crossover_inplace

        pop = rng.integers(0, 4, size=(10, 6))
        ref = single_point_crossover(pop, 0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(ref, pop)
        fast = fast_crossover_inplace(pop.copy(), 0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(fast, pop)

    def test_crossover_rate_one_crosses_every_pair(self, rng):
        from repro.core.operators import fast_crossover_inplace

        for attempt in range(5):
            g = np.random.default_rng(attempt)
            pop = np.vstack([np.zeros((5, 6), dtype=int),
                             np.full((5, 6), 3, dtype=int)])
            g.shuffle(pop)
            out = single_point_crossover(pop, 1.0, np.random.default_rng(attempt))
            fast = fast_crossover_inplace(
                pop.copy(), 1.0, np.random.default_rng(attempt)
            )
            np.testing.assert_array_equal(out, fast)
            # every heterogeneous pair must actually exchange a tail:
            # the crossover point is in [1, B), so the last gene always
            # swaps when the parents differ there
            for a, b, oa, ob in zip(pop[0::2], pop[1::2], out[0::2], out[1::2]):
                if a[-1] != b[-1]:
                    assert oa[-1] == b[-1] and ob[-1] == a[-1]

    def test_mutation_rate_zero_identity_and_no_rng_consumption(self):
        from repro.core.operators import fast_mutate_inplace

        sites = self._sites()
        g0 = np.random.default_rng(0)
        pop = sites.sample(g0, (9, 7))
        for fn in (
            lambda p, g: mutate(p, sites, 0.0, g),
            lambda p, g: fast_mutate_inplace(p, sites, 0.0, g),
        ):
            g = np.random.default_rng(42)
            out = fn(pop.copy() if fn is not mutate else pop, g)
            np.testing.assert_array_equal(out, pop)
            # prob<=0 short-circuits before any draw — the stream is
            # untouched, so this equals a fresh generator's first draw
            assert g.random() == np.random.default_rng(42).random()

    def test_mutation_rate_one_touches_every_gene(self):
        """rate=1: every gene is redrawn from its eligibility row (the
        redraw may coincide with the old value, so assert on the RNG
        mask semantics: all genes remain eligible and both backends
        agree bit-for-bit, including with single-site rows where the
        'redraw' is forced to the same value)."""
        from repro.core.operators import fast_mutate_inplace

        sites = self._sites(b=6, s=5, seed=9)
        g = np.random.default_rng(1)
        pop = sites.sample(g, (8, 6))
        ref = mutate(pop, sites, 1.0, np.random.default_rng(7))
        fast = fast_mutate_inplace(pop.copy(), sites, 1.0, np.random.default_rng(7))
        np.testing.assert_array_equal(ref, fast)
        assert sites.allowed(ref).all()
        # with >=2 eligible sites everywhere and rate=1, at least one
        # gene changes with overwhelming probability across 8x6 genes
        assert (ref != pop).any()

    def test_selection_rate_boundaries_not_applicable_note(self):
        """Selection has no rate parameter; uniform fitness gives a
        uniform distribution — both kernels must then sample the same
        rows from the same stream."""
        from repro.core.operators import fast_roulette_select_into

        pop = np.arange(24, dtype=np.int64).reshape(8, 3) % 4
        fit = np.full(8, 5.0)
        ref = roulette_select(pop, fit, np.random.default_rng(11))
        out = np.empty_like(pop)
        fast_roulette_select_into(pop, fit, np.random.default_rng(11), out)
        np.testing.assert_array_equal(ref, out)
