"""Tests for the scheduler/workload plugin registries."""

import numpy as np
import pytest

from repro.experiments.config import PaperDefaults, RunSettings
from repro.experiments.runner import PAPER_LINEUP, run_lineup
from repro.heuristics.base import BatchScheduler
from repro.heuristics.factory import make_heuristic
from repro.heuristics.minmin import MinMinScheduler
from repro.registry import (
    available_schedulers,
    available_workloads,
    build_scheduler,
    parse_scheduler_ref,
    register_scheduler,
    register_workload,
    scheduler_spec,
    unregister_scheduler,
    unregister_workload,
    workload_spec,
)
from repro.util.rng import RngFactory
from repro.workloads.psa import PSAConfig, psa_scenario

SETTINGS = RunSettings(seed=5)


class TestRegistration:
    def test_builtins_present(self):
        names = available_schedulers()
        for ref in PAPER_LINEUP:
            assert ref in names
        assert "ga" in names
        assert set(available_workloads()) >= {"psa", "nas"}

    def test_duplicate_scheduler_rejected(self):
        @register_scheduler("test-dup-sched")
        def _build(settings, rng, **_):  # pragma: no cover - never built
            raise AssertionError

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scheduler("test-dup-sched")(lambda s, r, **_: None)
        finally:
            unregister_scheduler("test-dup-sched")

    def test_duplicate_alias_rejected(self):
        @register_scheduler("test-alias-sched", aliases=("test-alias",))
        def _build(settings, rng, **_):  # pragma: no cover
            raise AssertionError

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scheduler("test-alias")(lambda s, r, **_: None)
            with pytest.raises(ValueError, match="already registered"):
                register_scheduler(
                    "other-name", aliases=("test-alias-sched",)
                )(lambda s, r, **_: None)
        finally:
            unregister_scheduler("test-alias-sched")

    def test_duplicate_workload_rejected(self):
        @register_workload("test-dup-wl")
        def _build(variant, seed, scale=1.0):  # pragma: no cover
            raise AssertionError

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_workload("test-dup-wl")(lambda v, s, sc=1.0: None)
        finally:
            unregister_workload("test-dup-wl")

    def test_unknown_scheduler_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            scheduler_spec("no-such-sched")
        with pytest.raises(KeyError, match="min-min-risky"):
            scheduler_spec("no-such-sched")

    def test_unknown_workload_lists_available(self):
        with pytest.raises(KeyError, match="psa"):
            workload_spec("no-such-workload")

    def test_alias_resolves_to_secure_mode(self):
        sched = build_scheduler("min-min", SETTINGS)
        assert sched.name == "Min-Min Secure"
        assert scheduler_spec("min-min") is scheduler_spec("min-min-secure")

    def test_unregister_is_idempotent(self):
        unregister_scheduler("never-registered")
        unregister_workload("never-registered")

    def test_unregister_alias_keeps_canonical_entry(self):
        @register_scheduler("test-canon", aliases=("test-canon-alias",))
        def _build(settings, rng, **_):  # pragma: no cover
            raise AssertionError

        try:
            unregister_scheduler("test-canon-alias")
            assert scheduler_spec("test-canon").name == "test-canon"
            with pytest.raises(KeyError):
                scheduler_spec("test-canon-alias")
            # the freed alias name is registrable again
            register_scheduler("test-canon-alias")(lambda s, r, **_: None)
            unregister_scheduler("test-canon-alias")
        finally:
            unregister_scheduler("test-canon")


class TestSchedulerRefs:
    def test_bare_ref(self):
        assert parse_scheduler_ref("stga") == ("stga", {})

    def test_params_parse_as_json_scalars(self):
        name, params = parse_scheduler_ref(
            "stga?capacity=50&threshold=0.9&eviction=fifo"
            "&heuristic_seeds=false"
        )
        assert name == "stga"
        assert params == {
            "capacity": 50,
            "threshold": 0.9,
            "eviction": "fifo",
            "heuristic_seeds": False,
        }

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="empty name"):
            parse_scheduler_ref("?f=0.5")

    def test_malformed_param_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_scheduler_ref("stga?capacity")
        with pytest.raises(ValueError, match="key=value"):
            parse_scheduler_ref("stga?=5")


class TestBuildScheduler:
    def test_matches_factory_construction(self):
        built = build_scheduler(
            "min-min-risky", SETTINGS, defaults=PaperDefaults()
        )
        direct = make_heuristic("min-min", "risky", f=0.5, lam=SETTINGS.lam)
        assert type(built) is type(direct)
        assert built.name == direct.name
        assert built.mode == direct.mode
        assert built.lam == direct.lam

    def test_f_parameter_overrides_defaults(self):
        sched = build_scheduler("sufferage-f-risky?f=0.3", SETTINGS)
        assert sched.f == 0.3
        assert sched.name == "Sufferage f-Risky(f=0.3)"

    def test_label_parameter_renames_report(self):
        sched = build_scheduler(
            "min-min-risky?label=custom-name", SETTINGS
        )
        assert sched.name == "custom-name"

    def test_label_wraps_schedulers_with_fixed_names(self):
        # a plugin whose `name` property ignores .label still renames
        @register_scheduler("test-fixed-name")
        def _build(settings, rng, **_):
            return _FixedScheduler()

        try:
            sched = build_scheduler(
                "test-fixed-name?label=renamed", SETTINGS
            )
            assert sched.name == "renamed"
            assert sched.schedule is not None  # delegation intact
        finally:
            unregister_scheduler("test-fixed-name")

    def test_stga_requires_scenario_context(self):
        with pytest.raises(ValueError, match="scenario"):
            build_scheduler("stga", SETTINGS)

    def test_stga_builds_with_context(self):
        scenario = psa_scenario(PSAConfig(n_jobs=30), rng=5)
        stga = build_scheduler(
            "stga?capacity=17&eviction=fifo",
            SETTINGS,
            scenario=scenario,
            training=None,
            defaults=PaperDefaults(),
        )
        assert stga.name == "STGA"
        assert stga.history.capacity == 17
        assert stga.history.eviction == "fifo"

    def test_unknown_ref_raises_keyerror(self):
        with pytest.raises(KeyError, match="available"):
            build_scheduler("no-such-sched?f=0.5", SETTINGS)


class _FixedScheduler(BatchScheduler):
    """Trivial plugin: everything to site 0 (always eligible or not)."""

    @property
    def name(self):
        return "Fixed(0)"

    def schedule(self, batch):
        from repro.grid.batch import ScheduleResult

        return ScheduleResult.from_assignment(
            np.zeros(batch.n_jobs, dtype=int)
        )


class TestPluginLineup:
    def test_registered_plugin_runs_in_lineup(self):
        @register_scheduler("test-fixed", description="plugin smoke")
        def _build(settings, rng, **_):
            return _FixedScheduler()

        try:
            scenario = psa_scenario(PSAConfig(n_jobs=25), rng=3)
            reports = run_lineup(
                scenario,
                None,
                SETTINGS,
                lineup=("min-min-risky", "test-fixed"),
            )
            assert [r.scheduler for r in reports] == [
                "Min-Min Risky",
                "Fixed(0)",
            ]
        finally:
            unregister_scheduler("test-fixed")

    def test_lineup_and_schedulers_mutually_exclusive(self):
        scenario = psa_scenario(PSAConfig(n_jobs=25), rng=3)
        with pytest.raises(ValueError, match="either"):
            run_lineup(
                scenario,
                None,
                SETTINGS,
                schedulers=[MinMinScheduler("risky")],
                lineup=("min-min-risky",),
            )

    def test_legacy_schedulers_path_appends_registry_stga(self):
        scenario = psa_scenario(PSAConfig(n_jobs=25), rng=3)
        fast = RunSettings(
            seed=5, ga=PaperDefaults().ga_config(
                population_size=8, generations=2
            )
        )
        reports = run_lineup(
            scenario,
            None,
            fast,
            schedulers=[MinMinScheduler("risky")],
            include_stga=True,
        )
        assert [r.scheduler for r in reports] == ["Min-Min Risky", "STGA"]


class TestWorkloadRegistry:
    def test_build_workload_matches_variant_build(self):
        from repro.experiments.sweep import ScenarioVariant
        from repro.registry import build_workload

        variant = ScenarioVariant(
            name="x", workload="psa", n_jobs=120, n_training_jobs=0
        )
        a, a_train = build_workload(variant, 9, 1.0)
        b, b_train = variant.build_scenarios(9, 1.0)
        assert a_train is None and b_train is None
        assert a.n_jobs == b.n_jobs == 120
        assert a.jobs == b.jobs

    def test_variant_rejects_unknown_workload_listing_available(self):
        from repro.experiments.sweep import ScenarioVariant

        with pytest.raises(ValueError, match="psa"):
            ScenarioVariant(name="x", workload="no-such-workload")

    def test_nas_validator_still_rejects_arrival_rate(self):
        from repro.experiments.sweep import ScenarioVariant

        with pytest.raises(ValueError, match="PSA-only"):
            ScenarioVariant(
                name="x", workload="nas", arrival_rate=0.01
            )

    def test_plugin_workload_usable_in_variant(self):
        from repro.experiments.sweep import ScenarioVariant

        @register_workload("test-wl", description="plugin smoke")
        def _build(variant, seed, scale=1.0):
            return psa_scenario(
                PSAConfig(n_jobs=variant.n_jobs), rng=seed
            ), None

        try:
            variant = ScenarioVariant(
                name="x", workload="test-wl", n_jobs=30
            )
            scenario, training = variant.build_scenarios(4, 1.0)
            assert scenario.n_jobs == 30
            assert training is None
        finally:
            unregister_workload("test-wl")
