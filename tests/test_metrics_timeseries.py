"""Tests for repro.metrics.timeseries."""

import numpy as np
import pytest

from repro.grid.engine import GridSimulator
from repro.grid.site import Grid
from repro.grid.trace import Attempt, AttemptLog
from repro.heuristics.minmin import MinMinScheduler
from repro.metrics.timeseries import (
    backlog_series,
    failure_timeline,
    running_series,
    utilization_series,
    waste_fraction,
)
from tests.conftest import make_jobs


def simple_log():
    log = AttemptLog()
    log.record(Attempt(0, 0, 0.0, 4.0, False, False, 1))
    log.record(Attempt(1, 1, 2.0, 6.0, True, True, 1))
    log.record(Attempt(1, 0, 7.0, 9.0, False, False, 2))
    return log


class TestRunningSeries:
    def test_counts(self):
        times, counts = running_series(simple_log())
        # starts at 0 (1 running), 2 (2), ends at 4 (1), 6 (0), ...
        assert counts.max() == 2
        assert counts[-1] == 0  # everything eventually ends
        assert (counts >= 0).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            running_series(AttemptLog())


class TestUtilization:
    def test_full_occupancy_single_site(self):
        log = AttemptLog()
        log.record(Attempt(0, 0, 0.0, 10.0, False, False, 1))
        edges, frac = utilization_series(log, 1, n_bins=5)
        np.testing.assert_allclose(frac, 1.0)
        assert edges.shape == (6,)

    def test_half_occupancy(self):
        log = AttemptLog()
        log.record(Attempt(0, 0, 0.0, 5.0, False, False, 1))
        log.record(Attempt(1, 0, 5.0, 10.0, False, False, 1))
        edges, frac = utilization_series(log, 2, n_bins=2)
        np.testing.assert_allclose(frac, 0.5)

    def test_horizon_clipping(self):
        log = AttemptLog()
        log.record(Attempt(0, 0, 0.0, 100.0, False, False, 1))
        _, frac = utilization_series(log, 1, n_bins=4, horizon=50.0)
        np.testing.assert_allclose(frac, 1.0)

    def test_validation(self):
        log = simple_log()
        with pytest.raises(ValueError):
            utilization_series(AttemptLog(), 1)
        with pytest.raises(ValueError):
            utilization_series(log, 0)
        with pytest.raises(ValueError):
            utilization_series(log, 1, n_bins=0)


class TestFailureTimeline:
    def test_cumulative(self):
        log = simple_log()
        times, cum = failure_timeline(log)
        np.testing.assert_allclose(times, [6.0])
        np.testing.assert_array_equal(cum, [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            failure_timeline(AttemptLog())


class TestWasteFraction:
    def test_value(self):
        # failed attempt 4s out of 4+4+2=10s total
        assert waste_fraction(simple_log()) == pytest.approx(4.0 / 10.0)

    def test_no_busy_time_rejected(self):
        with pytest.raises(ValueError):
            waste_fraction(AttemptLog())


class TestEndToEnd:
    def test_backlog_series_from_simulation(self, small_grid):
        jobs = make_jobs(
            [10.0] * 25,
            arrivals=np.linspace(0, 100, 25),
            sds=[0.7] * 25,
        )
        sim = GridSimulator(
            small_grid,
            MinMinScheduler("risky"),
            batch_interval=20.0,
            rng=0,
            record_attempts=True,
        )
        res = sim.run(jobs)
        times, counts = backlog_series(res)
        assert counts.max() >= 1
        assert counts[-1] == 0  # all jobs complete
        assert (np.diff(times) >= 0).all()

        # utilization over the run is bounded by 1 per site
        edges, frac = utilization_series(
            res.attempts, small_grid.n_sites, n_bins=20
        )
        assert (frac <= 1.0 + 1e-9).all()
        assert frac.mean() > 0.0
