"""Hypothesis property tests: end-to-end engine invariants.

These generate random grids, workloads and scheduler configurations
and assert the conservation laws that must hold for *every* valid
simulation, regardless of tuning:

* every job completes, exactly once, after its arrival;
* first start >= arrival; completion >= first start;
* N_fail <= N_risk <= N; secure placements never fail;
* per-site busy time fits inside the makespan;
* with ``failure_point='end'`` busy time equals the attempt-weighted
  executed work exactly;
* attempts on one site never overlap in time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.engine import GridSimulator
from repro.grid.job import Job
from repro.grid.site import Grid
from repro.heuristics.factory import make_heuristic

SCHEDULER_SPECS = [
    ("min-min", "secure"),
    ("min-min", "f-risky"),
    ("min-min", "risky"),
    ("sufferage", "risky"),
    ("max-min", "f-risky"),
    ("mct", "risky"),
    ("olb", "f-risky"),
    ("duplex", "risky"),
]


def build_case(seed: int, n_jobs: int, n_sites: int):
    rng = np.random.default_rng(seed)
    sls = rng.uniform(0.4, 1.0, size=n_sites)
    sls[rng.integers(n_sites)] = rng.uniform(0.9, 1.0)  # cover max SD
    grid = Grid.from_arrays(rng.uniform(1, 10, size=n_sites), sls)
    arrivals = np.sort(rng.uniform(0, 500, size=n_jobs))
    jobs = [
        Job(
            job_id=i,
            arrival=float(arrivals[i]),
            workload=float(rng.uniform(1, 200)),
            security_demand=float(rng.uniform(0.6, 0.9)),
        )
        for i in range(n_jobs)
    ]
    return grid, jobs


@given(
    seed=st.integers(0, 500),
    n_jobs=st.integers(1, 25),
    n_sites=st.integers(1, 6),
    spec=st.sampled_from(SCHEDULER_SPECS),
    interval=st.sampled_from([25.0, 100.0, 400.0]),
)
@settings(max_examples=60, deadline=None)
def test_engine_invariants(seed, n_jobs, n_sites, spec, interval):
    grid, jobs = build_case(seed, n_jobs, n_sites)
    algo, mode = spec
    sim = GridSimulator(
        grid,
        make_heuristic(algo, mode),
        batch_interval=interval,
        rng=seed,
        record_attempts=True,
    )
    res = sim.run(jobs)

    completions = res.completions()
    arrivals = res.arrivals()
    starts = res.first_starts()

    assert np.isfinite(completions).all()
    assert (starts >= arrivals - 1e-9).all()
    assert (completions >= starts - 1e-9).all()
    assert res.makespan == pytest.approx(completions.max())
    assert (res.busy_time <= res.makespan + 1e-6).all()

    n_risk = sum(r.took_risk for r in res.records)
    n_fail = sum(r.ever_failed for r in res.records)
    assert 0 <= n_fail <= n_risk <= n_jobs

    # every record's visit list matches its attempt count, and
    # all post-failure visits are absolutely safe
    log = res.attempts
    for rec in res.records:
        assert rec.attempts == len(rec.sites_visited) >= 1
        mine = log.for_job(rec.job.job_id)
        assert len(mine) == rec.attempts
        failed_seen = False
        for a in mine:
            if failed_seen and not rec.forced:
                assert (
                    grid.security_levels[a.site_id]
                    >= rec.job.security_demand
                )
            failed_seen = failed_seen or a.failed

    # per-site attempts never overlap
    for s in range(grid.n_sites):
        site_attempts = sorted(log.for_site(s), key=lambda a: a.start)
        for prev, nxt in zip(site_attempts, site_attempts[1:]):
            assert nxt.start >= prev.end - 1e-9


@given(seed=st.integers(0, 200), n_jobs=st.integers(1, 20))
@settings(max_examples=30, deadline=None)
def test_end_failure_point_work_conservation(seed, n_jobs):
    grid, jobs = build_case(seed, n_jobs, 4)
    sim = GridSimulator(
        grid,
        make_heuristic("min-min", "risky"),
        batch_interval=100.0,
        failure_point="end",
        rng=seed,
        record_attempts=True,
    )
    res = sim.run(jobs)
    expected = sum(
        rec.job.workload / grid.speeds[s]
        for rec in res.records
        for s in rec.sites_visited
    )
    assert res.busy_time.sum() == pytest.approx(expected)
    assert res.attempts.total_busy_time() == pytest.approx(expected)


@given(seed=st.integers(0, 200))
@settings(max_examples=20, deadline=None)
def test_secure_mode_is_failure_free(seed):
    grid, jobs = build_case(seed, 15, 5)
    sim = GridSimulator(
        grid,
        make_heuristic("min-min", "secure"),
        batch_interval=100.0,
        rng=seed,
    )
    res = sim.run(jobs)
    for rec in res.records:
        if not rec.forced:  # fallback placements may take risk
            assert not rec.took_risk
            assert not rec.ever_failed
